// opwatd: the portal daemon — serves a catalog of peering inference
// snapshots over the portal binary protocol (plus the HTTP/JSON debug
// surface) until SIGINT/SIGTERM, then drains in-flight requests and
// exits cleanly.  This is the process the CI load-smoke lane boots
// against catalog_tiny.opwatc and the piece a deployment would run.
//
//   $ ./opwatd --gen small --port 9417            # synthetic catalog
//   $ ./opwatd --load catalog.opwatc --port 9417  # serve a snapshot
//   $ ./opwatd --gen small --save catalog.opwatc  # generate + persist
//   $ curl http://127.0.0.1:9417/stats            # HTTP debug surface
//
// Prints "opwatd listening on ADDR:PORT" once ready (stdout, flushed) —
// scripts wait for that line.  On SIGINT/SIGTERM it stops accepting,
// drains every admitted request, joins all threads and prints the final
// counter snapshot.  On SIGHUP it reloads --load FILE and publishes the
// fresh snapshot atomically; if the reload fails for ANY reason the
// previous snapshot stays up and the failure is only counted
// (reload_failures in /stats) — a corrupt file on disk must never take
// down a serving portal.
//
// Exit codes are distinct per failure class so supervisors can react
// (restart vs page vs fix the config): 0 clean, 2 usage, 3 the catalog
// could not be loaded/generated, 4 the listen socket could not be
// bound.
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "opwat/eval/scenario.hpp"
#include "opwat/portal/server.hpp"
#include "opwat/serve/shared_catalog.hpp"
#include "opwat/serve/store.hpp"
#include "opwat/util/failpoint.hpp"

namespace {

constexpr int k_exit_usage = 2;
constexpr int k_exit_load = 3;
constexpr int k_exit_bind = 4;

// Written by the signal handlers, polled by the main loop.
volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_reload = 0;

extern "C" void on_signal(int) { g_stop = 1; }
extern "C" void on_reload(int) { g_reload = 1; }

void usage(std::ostream& os, const char* argv0) {
  os << "usage: " << argv0
     << " [--load FILE [--recover]] [--gen small|paper] [--save FILE]\n"
        "       [--addr A] [--port N] [--workers N] [--scan-threads N]\n"
        "       [--seed N] [--epochs N] [--help]\n"
        "\n"
        "  --load FILE    serve the epochs of a .opwatc snapshot\n"
        "  --recover      with --load: salvage a damaged snapshot instead\n"
        "                 of refusing it — serve the longest valid epoch\n"
        "                 prefix and report as degraded in /healthz\n"
        "  --gen S        build a synthetic catalog instead: scenario\n"
        "                 scale small (default) or paper\n"
        "  --save FILE    after --gen, persist the catalog as .opwatc\n"
        "  --addr A       bind address (default 127.0.0.1)\n"
        "  --port N       bind port (default 9417; 0 = ephemeral)\n"
        "  --workers N    query worker threads (default 2)\n"
        "  --scan-threads N  morsel-parallel scan threads per worker\n"
        "                 (default 0 = serial scans)\n"
        "  --seed N       --gen scenario seed (default 42)\n"
        "  --epochs N     --gen epoch count (default 1; consecutive\n"
        "                 months from 2018-04, distinct seeds)\n"
        "  --help         this text\n"
        "\n"
        "signals: SIGINT/SIGTERM drain and exit; SIGHUP reloads --load\n"
        "FILE (keeping the current snapshot if the reload fails).\n"
        "\n"
        "environment:\n"
        "  OPWAT_FAILPOINTS       deterministic fault injection spec,\n"
        "                         \"site=policy:action[:arg];...\" — e.g.\n"
        "                         \"net-send=one-in-10:error;store-read=\"\n"
        "                         \"2-times:error\".  Sites are listed in\n"
        "                         opwat/util/failpoint_sites.hpp.\n"
        "  OPWAT_FAILPOINTS_SEED  seed for one-in-N decision streams\n"
        "\n"
        "exit codes: 0 clean, 2 usage, 3 catalog load/generate failed,\n"
        "4 bind failed\n";
}

/// Month label for --gen --epochs: 2018-04, 2018-05, ... rolling into
/// later years past December.
std::string epoch_label(std::size_t i) {
  const std::size_t month0 = 3 + i;  // 0-based April + i
  const std::size_t year = 2018 + month0 / 12;
  const std::size_t month = month0 % 12 + 1;
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04zu-%02zu", year, month);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opwat;

  std::string load_path;
  std::string save_path;
  std::string gen_scale = "small";
  bool gen = false;
  bool recover = false;
  portal::server_config cfg;
  cfg.port = 9417;
  std::uint64_t seed = 42;
  std::size_t epochs = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(std::cerr, argv[0]);
        std::exit(k_exit_usage);
      }
      return argv[++i];
    };
    if (arg == "--load") {
      load_path = next();
    } else if (arg == "--recover") {
      recover = true;
    } else if (arg == "--gen") {
      gen = true;
      gen_scale = next();
    } else if (arg == "--save") {
      save_path = next();
    } else if (arg == "--addr") {
      cfg.bind_addr = next();
    } else if (arg == "--port") {
      cfg.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--workers") {
      cfg.workers = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--scan-threads") {
      cfg.scan_threads = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--epochs") {
      epochs = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout, argv[0]);
      return 0;
    } else {
      usage(std::cerr, argv[0]);
      return k_exit_usage;
    }
  }
  if (load_path.empty() && !gen) gen = true;  // default: synthetic small
  if (!load_path.empty() && gen) {
    std::cerr << argv[0] << ": --load and --gen are exclusive\n";
    return k_exit_usage;
  }
  if (recover && load_path.empty()) {
    std::cerr << argv[0] << ": --recover needs --load\n";
    return k_exit_usage;
  }
  if (gen && gen_scale != "small" && gen_scale != "paper") {
    usage(std::cerr, argv[0]);
    return k_exit_usage;
  }
  if (gen && epochs == 0) {
    std::cerr << argv[0] << ": --epochs wants at least 1\n";
    return k_exit_usage;
  }

  try {
    util::failpoint_registry::instance().configure_from_env();
  } catch (const std::invalid_argument& e) {
    std::cerr << argv[0] << ": OPWAT_FAILPOINTS: " << e.what() << "\n";
    return k_exit_usage;
  }

  const serve::recovery_policy policy = recover
                                            ? serve::recovery_policy::recover
                                            : serve::recovery_policy::strict;
  serve::shared_catalog cat;
  portal::health_status health;
  try {
    if (!load_path.empty()) {
      const auto report = cat.load(load_path, policy);
      if (report.recovered) {
        health.degraded = true;
        health.quarantined_epochs = report.epochs_dropped;
        health.bytes_truncated = report.bytes_truncated;
        std::cerr << argv[0] << ": recovered " << load_path << ": "
                  << report.detail << "\n";
      }
      if (cat.snapshot()->epoch_count() == 0) {
        std::cerr << argv[0] << ": " << load_path << " holds no epochs\n";
        return k_exit_load;
      }
    } else {
      for (std::size_t e = 0; e < epochs; ++e) {
        eval::scenario_config scfg;
        if (gen_scale == "small") {
          scfg = eval::small_scenario_config(seed + e);
        } else {
          scfg = eval::default_scenario_config();
          scfg.world.seed = seed + e;
        }
        const auto scenario = eval::scenario::build(scfg);
        const auto result = scenario.run_inference();
        cat.ingest(scenario.w, scenario.view, result, epoch_label(e));
      }
      if (!save_path.empty()) cat.save(save_path);
    }
  } catch (const serve::store_error& e) {
    // The typed errc goes to stderr so a supervisor can tell bit rot
    // (checksum_mismatch) from a missing file (io) without parsing
    // prose.
    std::cerr << argv[0] << ": store_errc::" << serve::to_string(e.kind())
              << ": " << e.what() << "\n";
    return k_exit_load;
  } catch (const std::exception& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return k_exit_load;
  }

  portal::server srv{cat, cfg};
  srv.set_health(health);
  try {
    srv.start();
  } catch (const net::socket_error& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return k_exit_bind;
  }

  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  struct sigaction hup {};
  hup.sa_handler = on_reload;
  ::sigemptyset(&hup.sa_mask);
  ::sigaction(SIGHUP, &hup, nullptr);

  {
    const auto snap = cat.snapshot();
    std::cout << "opwatd serving " << snap->epoch_count() << " epoch(s), "
              << cfg.workers << " worker(s), " << cfg.scan_threads
              << " scan thread(s)/worker\n";
  }
  std::cout << "opwatd listening on " << cfg.bind_addr << ":" << srv.port()
            << std::endl;  // flushed: readiness line scripts wait for

  while (!g_stop) {
    if (g_reload) {
      g_reload = 0;
      if (load_path.empty()) {
        std::cout << "opwatd: SIGHUP ignored (no --load file to reload)\n";
      } else {
        try {
          const auto report = cat.load(load_path, policy);
          health.degraded = report.recovered;
          health.quarantined_epochs = report.epochs_dropped;
          health.bytes_truncated = report.bytes_truncated;
          srv.set_health(health);
          std::cout << "opwatd: reloaded " << load_path << " ("
                    << cat.snapshot()->epoch_count() << " epoch(s)"
                    << (report.recovered ? ", recovered" : "") << ")"
                    << std::endl;
        } catch (const std::exception& e) {
          // The previous snapshot is still published — serving continues
          // undisturbed on the last good catalog.
          ++health.reload_failures;
          srv.set_health(health);
          std::cout << "opwatd: reload failed, keeping current snapshot: "
                    << e.what() << std::endl;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{50});
  }

  std::cout << "opwatd: signal received, draining\n";
  srv.stop();  // graceful: every admitted request gets its response

  const auto s = srv.stats();
  std::cout << "opwatd: served ok=" << s.responses_ok
            << " error=" << s.responses_error
            << " shed=" << (s.shed_queue_full + s.shed_pipeline)
            << " protocol_errors=" << s.protocol_errors
            << " cache_hits=" << s.cache_hits << "/"
            << (s.cache_hits + s.cache_misses)
            << " connections=" << s.connections_accepted << "\n";
  return 0;
}
