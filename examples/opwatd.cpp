// opwatd: the portal daemon — serves a catalog of peering inference
// snapshots over the portal binary protocol (plus the HTTP/JSON debug
// surface) until SIGINT/SIGTERM, then drains in-flight requests and
// exits cleanly.  This is the process the CI load-smoke lane boots
// against catalog_tiny.opwatc and the piece a deployment would run.
//
//   $ ./opwatd --gen small --port 9417            # synthetic catalog
//   $ ./opwatd --load catalog.opwatc --port 9417  # serve a snapshot
//   $ ./opwatd --gen small --save catalog.opwatc  # generate + persist
//   $ curl http://127.0.0.1:9417/stats            # HTTP debug surface
//
// Prints "opwatd listening on ADDR:PORT" once ready (stdout, flushed) —
// scripts wait for that line.  On SIGINT/SIGTERM it stops accepting,
// drains every admitted request, joins all threads and prints the final
// counter snapshot.
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "opwat/eval/scenario.hpp"
#include "opwat/portal/server.hpp"
#include "opwat/serve/shared_catalog.hpp"
#include "opwat/serve/store.hpp"

namespace {

// Written by the signal handler, polled by the main loop.
volatile std::sig_atomic_t g_stop = 0;

extern "C" void on_signal(int) { g_stop = 1; }

void usage(std::ostream& os, const char* argv0) {
  os << "usage: " << argv0
     << " [--load FILE | --gen small|paper] [--save FILE]\n"
        "       [--addr A] [--port N] [--workers N] [--scan-threads N]\n"
        "       [--seed N] [--help]\n"
        "\n"
        "  --load FILE    serve the epochs of a .opwatc snapshot\n"
        "  --gen S        build a synthetic catalog instead: scenario\n"
        "                 scale small (default) or paper\n"
        "  --save FILE    after --gen, persist the catalog as .opwatc\n"
        "  --addr A       bind address (default 127.0.0.1)\n"
        "  --port N       bind port (default 9417; 0 = ephemeral)\n"
        "  --workers N    query worker threads (default 2)\n"
        "  --scan-threads N  morsel-parallel scan threads per worker\n"
        "                 (default 0 = serial scans)\n"
        "  --seed N       --gen scenario seed (default 42)\n"
        "  --help         this text\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opwat;

  std::string load_path;
  std::string save_path;
  std::string gen_scale = "small";
  bool gen = false;
  portal::server_config cfg;
  cfg.port = 9417;
  std::uint64_t seed = 42;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(std::cerr, argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--load") {
      load_path = next();
    } else if (arg == "--gen") {
      gen = true;
      gen_scale = next();
    } else if (arg == "--save") {
      save_path = next();
    } else if (arg == "--addr") {
      cfg.bind_addr = next();
    } else if (arg == "--port") {
      cfg.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--workers") {
      cfg.workers = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--scan-threads") {
      cfg.scan_threads = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout, argv[0]);
      return 0;
    } else {
      usage(std::cerr, argv[0]);
      return 2;
    }
  }
  if (load_path.empty() && !gen) gen = true;  // default: synthetic small
  if (!load_path.empty() && gen) {
    std::cerr << argv[0] << ": --load and --gen are exclusive\n";
    return 2;
  }
  if (gen && gen_scale != "small" && gen_scale != "paper") {
    usage(std::cerr, argv[0]);
    return 2;
  }

  serve::shared_catalog cat;
  try {
    if (!load_path.empty()) {
      cat.load(load_path);
      if (cat.snapshot()->epoch_count() == 0) {
        std::cerr << argv[0] << ": " << load_path << " holds no epochs\n";
        return 1;
      }
    } else {
      eval::scenario_config scfg;
      if (gen_scale == "small") {
        scfg = eval::small_scenario_config(seed);
      } else {
        scfg = eval::default_scenario_config();
        scfg.world.seed = seed;
      }
      const auto scenario = eval::scenario::build(scfg);
      const auto result = scenario.run_inference();
      cat.ingest(scenario.w, scenario.view, result, "2018-04");
      if (!save_path.empty()) cat.save(save_path);
    }
  } catch (const serve::store_error& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return 1;
  }

  portal::server srv{cat, cfg};
  try {
    srv.start();
  } catch (const net::socket_error& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return 1;
  }

  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  {
    const auto snap = cat.snapshot();
    std::cout << "opwatd serving " << snap->epoch_count() << " epoch(s), "
              << cfg.workers << " worker(s), " << cfg.scan_threads
              << " scan thread(s)/worker\n";
  }
  std::cout << "opwatd listening on " << cfg.bind_addr << ":" << srv.port()
            << std::endl;  // flushed: readiness line scripts wait for

  while (!g_stop)
    std::this_thread::sleep_for(std::chrono::milliseconds{50});

  std::cout << "opwatd: signal received, draining\n";
  srv.stop();  // graceful: every admitted request gets its response

  const auto s = srv.stats();
  std::cout << "opwatd: served ok=" << s.responses_ok
            << " error=" << s.responses_error
            << " shed=" << (s.shed_queue_full + s.shed_pipeline)
            << " protocol_errors=" << s.protocol_errors
            << " cache_hits=" << s.cache_hits << "/"
            << (s.cache_hits + s.cache_misses)
            << " connections=" << s.connections_accepted << "\n";
  return 0;
}
