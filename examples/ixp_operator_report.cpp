// IXP operator report: the "remote peering portal" use case (§9).
//
// For one IXP, produce the report an operator (or prospective member)
// would want: every member interface with its inferred class, the
// evidence behind the inference (step, RTT, feasible facilities), port
// capacity, and an aggregate member-base profile.  Everything is served
// from a catalog epoch through the fluent query API — the pipeline
// result is ingested once and never rescanned.
//
//   $ ./ixp_operator_report [ixp-rank]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "opwat/eval/scenario.hpp"
#include "opwat/serve/query.hpp"
#include "opwat/util/strings.hpp"
#include "opwat/util/table.hpp"

int main(int argc, char** argv) {
  using namespace opwat;
  using infer::peering_class;

  const std::size_t rank = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 0;

  const auto scenario = eval::scenario::build(eval::small_scenario_config(21));
  const auto result = scenario.run_inference();
  if (result.scope.empty()) {
    std::cerr << "no measurable IXPs in the scenario\n";
    return 1;
  }

  serve::catalog cat;
  cat.ingest(scenario.w, scenario.view, result, "report");
  const auto& ep = cat.of("report");

  const auto& block = ep.blocks()[std::min(rank, ep.blocks().size() - 1)];
  const auto& entry = cat.ixps()[block.ixp];
  const auto& x = scenario.w.ixps[entry.id];

  std::cout << "=== Remote peering report for " << entry.name << " ===\n";
  std::cout << "switching sites: " << x.facilities.size()
            << ", minimum physical port: " << entry.min_physical_capacity_gbps
            << " G, reseller program: " << (x.supports_resellers ? "yes" : "no")
            << ", metro: " << cat.metro_name(entry.metro) << "\n\n";

  util::text_table t{"Member interfaces"};
  t.header({"Interface", "Member", "Class", "Evidence", "RTTmin ms", "Port G"});
  for (const auto& row : serve::query(cat).epoch("report").at_ixp(entry.id).rows()) {
    t.row({row.ip.to_string(), net::to_string(row.asn),
           std::string{to_string(row.cls)},
           row.cls != peering_class::unknown ? std::string{to_string(row.step)} : "-",
           !std::isnan(row.rtt_min_ms) ? util::fmt_double(row.rtt_min_ms, 2) : "-",
           !std::isnan(row.port_gbps) ? util::fmt_double(row.port_gbps, 1) : "?"});
  }
  t.print(std::cout);

  const auto local = ep.count(block.ixp, peering_class::local);
  const auto remote = ep.count(block.ixp, peering_class::remote);
  const auto unknown = ep.count(block.ixp, peering_class::unknown);
  const double inferred = static_cast<double>(local + remote);
  std::cout << "\nmember base: " << local << " local, " << remote << " remote, "
            << unknown << " unknown";
  if (inferred > 0)
    std::cout << "  (remote share of inferred: "
              << util::fmt_percent(static_cast<double>(remote) / inferred) << ")";
  std::cout << "\n";

  // Resilience note (§7): reseller ports shared by several remote peers.
  const auto reseller_ports = serve::query(cat)
                                  .epoch("report")
                                  .at_ixp(entry.id)
                                  .step(infer::method_step::port_capacity)
                                  .count();
  std::cout << "fractional-port (reseller) customers detected: " << reseller_ports
            << " — these share physical ports; one port outage propagates to all "
               "of them.\n";

  // Where do this IXP's remote members sit?  A one-liner with the
  // catalog: group the remote rows by member metro.
  const auto metros = serve::query(cat)
                          .epoch("report")
                          .at_ixp(entry.id)
                          .cls(peering_class::remote)
                          .by_metro()
                          .top(5)
                          .group_counts();
  if (!metros.empty()) {
    std::cout << "top remote-member metros:";
    for (const auto& g : metros) std::cout << "  " << g.key << " (" << g.count << ")";
    std::cout << "\n";
  }
  return 0;
}
