// IXP operator report: the "remote peering portal" use case (§9).
//
// For one IXP, produce the report an operator (or prospective member)
// would want: every member interface with its inferred class, the
// evidence behind the inference (step, RTT, feasible facilities), port
// capacity, and an aggregate member-base profile.
//
//   $ ./ixp_operator_report [ixp-rank]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "opwat/eval/scenario.hpp"
#include "opwat/util/strings.hpp"
#include "opwat/util/table.hpp"

int main(int argc, char** argv) {
  using namespace opwat;

  const std::size_t rank = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 0;

  const auto scenario = eval::scenario::build(eval::small_scenario_config(21));
  const auto result = scenario.run_inference();
  if (result.scope.empty()) {
    std::cerr << "no measurable IXPs in the scenario\n";
    return 1;
  }
  const auto ixp = result.scope[std::min(rank, result.scope.size() - 1)];
  const auto& x = scenario.w.ixps[ixp];

  std::cout << "=== Remote peering report for " << x.name << " ===\n";
  std::cout << "switching sites: " << x.facilities.size()
            << ", minimum physical port: " << x.min_physical_capacity_gbps
            << " G, reseller program: " << (x.supports_resellers ? "yes" : "no")
            << "\n\n";

  util::text_table t{"Member interfaces"};
  t.header({"Interface", "Member", "Class", "Evidence", "RTTmin ms", "Port G"});
  std::size_t local = 0, remote = 0, unknown = 0;
  for (const auto& e : scenario.view.interfaces_of_ixp(ixp)) {
    const infer::iface_key key{ixp, e.ip};
    const auto* inf = result.inferences.find(key);
    const auto cls = inf ? inf->cls : infer::peering_class::unknown;
    switch (cls) {
      case infer::peering_class::local: ++local; break;
      case infer::peering_class::remote: ++remote; break;
      case infer::peering_class::unknown: ++unknown; break;
    }
    const auto cap = scenario.view.port_capacity(e.asn, ixp);
    // RTT evidence is kept even for undecided interfaces.
    const double rtt = result.inferences.rtt_min_ms(key);
    t.row({e.ip.to_string(), net::to_string(e.asn), std::string{to_string(cls)},
           inf ? std::string{to_string(inf->step)} : "-",
           !std::isnan(rtt) ? util::fmt_double(rtt, 2) : "-",
           cap ? util::fmt_double(*cap, 1) : "?"});
  }
  t.print(std::cout);

  const double inferred = static_cast<double>(local + remote);
  std::cout << "\nmember base: " << local << " local, " << remote << " remote, "
            << unknown << " unknown";
  if (inferred > 0)
    std::cout << "  (remote share of inferred: "
              << util::fmt_percent(static_cast<double>(remote) / inferred) << ")";
  std::cout << "\n";

  // Resilience note (§7): reseller ports shared by several remote peers.
  std::size_t reseller_ports = 0;
  for (const auto& [key, inf] : result.inferences.items())
    if (key.ixp == ixp && inf.step == infer::method_step::port_capacity)
      ++reseller_ports;
  std::cout << "fractional-port (reseller) customers detected: " << reseller_ports
            << " — these share physical ports; one port outage propagates to all "
               "of them.\n";
  return 0;
}
