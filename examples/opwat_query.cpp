// opwat_query: one-shot CLI client for a running opwatd — sends a single
// portal request over the binary protocol and prints the response as
// text (default) or JSON (--json).  The CI load-smoke lane uses it as
// the protocol smoke test before the load harness runs.
//
//   $ ./opwat_query --op epochs
//   $ ./opwat_query --op member --asn 64512
//   $ ./opwat_query --op rtt-band --lo 0 --hi 10 --ixp 3
//   $ ./opwat_query --op group-by --dim cls
//   $ ./opwat_query --op diff --epoch 2018-04 --to 2018-05
//   $ ./opwat_query --op stats --json
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "opwat/infer/types.hpp"
#include "opwat/net/ipv4.hpp"
#include "opwat/portal/client.hpp"
#include "opwat/util/json.hpp"
#include "opwat/util/strings.hpp"

namespace {

void usage(std::ostream& os, const char* argv0) {
  os << "usage: " << argv0
     << " [--connect HOST:PORT] --op OP [filters] [--json]\n"
        "\n"
        "  --connect H:P  server address (default 127.0.0.1:9417)\n"
        "  --op OP        ping | member | rtt-band | group-by | diff |\n"
        "                 stats | epochs\n"
        "  --asn N        member: the ASN to look up\n"
        "  --ixp N        member/rtt-band/group-by: world IXP id filter\n"
        "  --lo X --hi X  rtt-band: RTT window in ms\n"
        "  --dim D        group-by: ixp | asn | metro | cls | step\n"
        "  --cls N        group-by: peering-class filter (0..2)\n"
        "  --epoch S      epoch label (default: latest)\n"
        "  --to S         diff: the newer epoch\n"
        "  --limit N      row/group cap (default 100)\n"
        "  --retry N      self-healing mode: up to N attempts with\n"
        "                 reconnect + backoff on transient failures\n"
        "                 (default 1 = fail fast)\n"
        "  --repeat K     send the request K times (default 1); with\n"
        "                 --retry, prints the client's retry stats\n"
        "  --json         machine-readable output\n"
        "  --help         this text\n";
}

void print_json(const opwat::portal::response& r) {
  using opwat::portal::portal_errc;
  opwat::util::json_writer w;
  w.begin_object();
  w.key("status").value(opwat::portal::to_string(r.status));
  w.key("epoch").value(r.epoch);
  w.key("cache_hit").value(r.cache_hit);
  if (!r.message.empty()) w.key("message").value(r.message);
  w.key("total").value(r.total);
  if (!r.rows.empty()) {
    w.key("rows").begin_array();
    for (const auto& row : r.rows) {
      w.begin_object();
      w.key("ip").value(opwat::net::ipv4_addr{row.ip}.to_string());
      w.key("ixp").value(row.ixp);
      w.key("asn").value(row.asn);
      w.key("class").value(
          to_string(static_cast<opwat::infer::peering_class>(row.cls)));
      w.key("step").value(
          to_string(static_cast<opwat::infer::method_step>(row.step)));
      if (std::isnan(row.rtt_ms))
        w.key("rtt_ms").null();
      else
        w.key("rtt_ms").value(row.rtt_ms);
      w.end_object();
    }
    w.end_array();
  }
  if (!r.groups.empty()) {
    w.key("groups").begin_object();
    for (const auto& g : r.groups) w.key(g.key).value(g.count);
    w.end_object();
  }
  if (r.appeared + r.disappeared + r.reclassified > 0 || r.labels.size() == 2) {
    w.key("appeared").value(r.appeared);
    w.key("disappeared").value(r.disappeared);
    w.key("reclassified").value(r.reclassified);
  }
  if (!r.labels.empty()) {
    w.key("labels").begin_array();
    for (const auto& l : r.labels) w.value(l);
    w.end_array();
  }
  w.end_object();
  std::cout << w.str() << "\n";
}

void print_text(const opwat::portal::response& r) {
  using opwat::portal::portal_errc;
  std::cout << "status: " << opwat::portal::to_string(r.status);
  if (!r.message.empty()) std::cout << " (" << r.message << ")";
  std::cout << "\n";
  if (!r.epoch.empty()) std::cout << "epoch: " << r.epoch << "\n";
  if (r.cache_hit) std::cout << "cache: hit\n";
  if (r.total > 0 || !r.rows.empty())
    std::cout << "total: " << r.total << "\n";
  for (const auto& row : r.rows) {
    std::cout << "  " << opwat::net::ipv4_addr{row.ip}.to_string() << "  ixp "
              << row.ixp << "  AS" << row.asn << "  "
              << to_string(static_cast<opwat::infer::peering_class>(row.cls))
              << "  "
              << to_string(static_cast<opwat::infer::method_step>(row.step));
    if (!std::isnan(row.rtt_ms))
      std::cout << "  " << opwat::util::fmt_double(row.rtt_ms, 2) << " ms";
    std::cout << "\n";
  }
  for (const auto& g : r.groups)
    std::cout << "  " << g.key << ": " << g.count << "\n";
  if (r.appeared + r.disappeared + r.reclassified > 0 ||
      (r.labels.size() == 2 && r.groups.empty() && r.rows.empty()))
    std::cout << "appeared: " << r.appeared
              << "\ndisappeared: " << r.disappeared
              << "\nreclassified: " << r.reclassified << "\n";
  if (!r.labels.empty() && r.groups.empty() && r.rows.empty() &&
      r.labels.size() != 2)
    for (const auto& l : r.labels) std::cout << "  " << l << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opwat;
  using portal::group_dim;
  using portal::op_code;

  std::string connect = "127.0.0.1:9417";
  std::string op_name;
  portal::request req;
  bool json = false;
  std::uint32_t retry = 1;
  std::uint32_t repeat = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(std::cerr, argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--connect") {
      connect = next();
    } else if (arg == "--op") {
      op_name = next();
    } else if (arg == "--asn") {
      req.asn = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--ixp") {
      req.ixp_id =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--lo") {
      req.rtt_lo_ms = std::atof(next());
    } else if (arg == "--hi") {
      req.rtt_hi_ms = std::atof(next());
    } else if (arg == "--dim") {
      const std::string_view d = next();
      if (d == "ixp") req.dim = group_dim::ixp;
      else if (d == "asn") req.dim = group_dim::asn;
      else if (d == "metro") req.dim = group_dim::metro;
      else if (d == "cls") req.dim = group_dim::cls;
      else if (d == "step") req.dim = group_dim::step;
      else {
        usage(std::cerr, argv[0]);
        return 2;
      }
    } else if (arg == "--cls") {
      req.cls_filter =
          static_cast<std::uint8_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--epoch") {
      req.epoch = next();
    } else if (arg == "--to") {
      req.epoch_to = next();
    } else if (arg == "--limit") {
      req.limit = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--retry") {
      retry = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
      if (retry == 0) retry = 1;
    } else if (arg == "--repeat") {
      repeat = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
      if (repeat == 0) repeat = 1;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout, argv[0]);
      return 0;
    } else {
      usage(std::cerr, argv[0]);
      return 2;
    }
  }

  if (op_name == "ping") req.op = op_code::ping;
  else if (op_name == "member") req.op = op_code::member;
  else if (op_name == "rtt-band") req.op = op_code::rtt_band;
  else if (op_name == "group-by") req.op = op_code::group_by;
  else if (op_name == "diff") req.op = op_code::diff;
  else if (op_name == "stats") req.op = op_code::stats;
  else if (op_name == "epochs") req.op = op_code::epochs;
  else {
    usage(std::cerr, argv[0]);
    return 2;
  }
  req.id = 1;

  const auto colon = connect.rfind(':');
  if (colon == std::string::npos) {
    std::cerr << argv[0] << ": --connect wants HOST:PORT\n";
    return 2;
  }

  try {
    portal::client c{connect.substr(0, colon),
                     static_cast<std::uint16_t>(
                         std::stoi(connect.substr(colon + 1)))};
    portal::retry_config rcfg;
    rcfg.max_attempts = retry;
    portal::response resp;
    for (std::uint32_t k = 0; k < repeat; ++k) {
      req.id = k + 1;
      resp = retry > 1 ? c.call_retry(req, rcfg) : c.call(req);
      // Only the last response is printed; --repeat exists to exercise
      // the connection (chaos smoke), not to spam K copies of the same
      // rows.
    }
    if (json)
      print_json(resp);
    else
      print_text(resp);
    if (retry > 1) {
      const auto& rs = c.stats();
      std::cerr << "retry: attempts=" << rs.attempts
                << " retries=" << rs.retries
                << " reconnects=" << rs.reconnects
                << " transient_errors=" << rs.transient_errors
                << " giveups=" << rs.giveups << "\n";
    }
    return resp.status == portal::portal_errc::ok ? 0 : 1;
  } catch (const net::socket_error& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return 1;
  } catch (const portal::protocol_error& e) {
    std::cerr << argv[0] << ": protocol error: " << e.what() << "\n";
    return 1;
  }
}
