// opwatc_fsck: offline integrity checker for .opwatc catalog snapshots.
//
//   $ ./opwatc_fsck catalog.opwatc
//   $ ./opwatc_fsck --repair catalog.opwatc
//
// Walks the snapshot through every defensive layer the library has —
// section framing, CRC-verified decode, then the full deep audit
// (opwat/serve/audit.cpp): dictionary/watermark consistency, block
// framing, count indexes, zone maps and permutation indexes — and
// prints a per-section report.  Unlike the automatic audit inside
// catalog::load (active only in Debug / -DOPWAT_AUDIT=ON builds), fsck
// always runs the deep checks, so a Release build of this binary is a
// complete verifier.
//
// --repair rewrites a damaged snapshot in place (atomically: tmp +
// fsync + rename) to its longest valid epoch prefix — the same salvage
// walk catalog::load(path, recovery_policy::recover) runs in memory —
// then re-verifies the result with the full check sequence.  An intact
// file is left byte-identical; an unrecoverable file (wrong magic /
// version) is refused with its store_errc exit code.
//
// Exit status encodes the failure kind so scripts can branch on it:
//   0            snapshot is fully consistent (after repair, if asked)
//   2            usage / file-system error
//   10 + errc    store_error with that store_errc (10 = io, 11 =
//                bad_magic, 12 = bad_version, 13 = truncated, 14 =
//                checksum_mismatch, 15 = corrupt, 16 = mismatch)
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "opwat/serve/compress.hpp"
#include "opwat/serve/query.hpp"
#include "opwat/serve/store.hpp"

namespace {

void section(const std::string& name, const std::string& detail) {
  std::cout << "  [ ok ] " << name;
  if (!detail.empty()) std::cout << ": " << detail;
  std::cout << "\n";
}

[[noreturn]] void fail_section(const std::string& name,
                               const opwat::serve::store_error& e) {
  std::cout << "  [FAIL] " << name << ": " << e.what() << "\n";
  std::cout << "fsck: " << opwat::serve::to_string(e.kind()) << "\n";
  std::exit(10 + static_cast<int>(e.kind()));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opwat;

  bool repair = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--repair") {
      repair = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "usage: opwatc_fsck [--repair] <catalog.opwatc>\n";
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "usage: opwatc_fsck [--repair] <catalog.opwatc>\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: opwatc_fsck [--repair] <catalog.opwatc>\n";
    return 2;
  }
  std::cout << "opwatc_fsck: " << path << "\n";

  if (repair) {
    try {
      const auto rep = serve::store_repair(path);
      if (rep.recovered) {
        section("repair", "kept " + std::to_string(rep.epochs_kept) +
                              " epoch(s), dropped " +
                              std::to_string(rep.epochs_dropped) +
                              ", truncated " +
                              std::to_string(rep.bytes_truncated) +
                              " byte(s) — " + rep.detail);
      } else {
        section("repair", "file intact, nothing to do");
      }
    } catch (const serve::store_error& e) {
      fail_section("repair", e);
    }
  }

  // 1. Raw bytes + section framing (lengths only, no checksums yet).
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "opwatc_fsck: cannot open " << path << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    bytes = ss.str();
  }
  try {
    const auto bounds = serve::store_section_boundaries(bytes);
    section("framing", std::to_string(bounds.size() - 1) + " sections, " +
                           std::to_string(bytes.size()) + " bytes");
  } catch (const serve::store_error& e) {
    fail_section("framing", e);
  }

  // 1b. Format version + column codecs (shallow walk; v1 records report
  //     all columns raw).
  try {
    const auto info = serve::store_inspect(bytes);
    std::size_t by_codec[4] = {0, 0, 0, 0};
    for (const auto& rec : info.column_codecs)
      for (const auto c : rec)
        if (c < 4) ++by_codec[c];
    std::string detail = "v" + std::to_string(info.version);
    for (std::uint8_t c = 0; c < 4; ++c)
      if (by_codec[c] > 0)
        detail += std::string{", "} +
                  std::string{serve::compress::to_string(
                      static_cast<serve::compress::column_codec>(c))} +
                  "×" + std::to_string(by_codec[c]);
    section("format", detail);
  } catch (const serve::store_error& e) {
    fail_section("format", e);
  }

  // 2. Full decode: magic, version, per-section CRC-32, payload shapes.
  serve::catalog cat;
  try {
    cat = serve::catalog::load(path);
    section("decode", std::to_string(cat.epoch_count()) + " epochs, " +
                          std::to_string(cat.ixps().size()) + " IXPs, " +
                          std::to_string(cat.metros().size()) + " metros");
  } catch (const serve::store_error& e) {
    fail_section("decode", e);
  }

  // 3. Per-epoch deep audit: columns, block framing, count indexes,
  //    zone maps, permutation indexes, watermark bounds.
  for (serve::epoch_id e = 0; e < cat.epoch_count(); ++e) {
    const auto& ep = cat.at(e);
    const std::string name = "epoch " + std::to_string(e) + " (" + ep.label() + ")";
    try {
      ep.audit(cat);
      section(name, std::to_string(ep.rows()) + " rows, " +
                        std::to_string(ep.blocks().size()) + " blocks");
    } catch (const serve::store_error& err) {
      fail_section(name, err);
    }
  }

  // 4. Catalog-level cross-epoch checks: dictionary lookup tables,
  //    label index, watermark monotonicity across the epoch sequence.
  try {
    cat.audit();
    section("catalog", "dictionaries and watermark chain consistent");
  } catch (const serve::store_error& e) {
    fail_section("catalog", e);
  }

  std::cout << "fsck: clean\n";
  return 0;
}
