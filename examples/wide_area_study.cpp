// Wide-area IXP study: the Fig. 7 worked example, programmatically.
//
// Demonstrates why a fixed RTT threshold cannot classify the members of a
// geographically distributed IXP, and how the feasible-ring test (Step 3)
// fixes both failure modes:
//   - a member colocated at a distant site of the SAME IXP looks remote
//     to a naive threshold (false positive),
//   - a nearby-but-not-colocated network looks local (false negative).
//
// Part 2 runs the pipeline on a small scenario, serves it from a
// catalog epoch, and asks the wide-area questions through the query
// API: where do remote members sit (group-by metro), how far away are
// they (RTT ECDF), and which IXPs attract the most remote peering.
//
//   $ ./wide_area_study
#include <iostream>

#include "opwat/eval/scenario.hpp"
#include "opwat/geo/geodesic.hpp"
#include "opwat/geo/speed_model.hpp"
#include "opwat/serve/query.hpp"
#include "opwat/util/strings.hpp"
#include "opwat/world/cities.hpp"

int main() {
  using namespace opwat;
  using util::fmt_double;

  const auto ams = world::find_city("Amsterdam")->location;
  const auto lon = world::find_city("London")->location;
  const auto fra = world::find_city("Frankfurt")->location;
  const auto rot = world::find_city("Rotterdam")->location;

  std::cout << "=== Wide-area IXP study (the paper's Fig. 7 example) ===\n\n";
  std::cout << "An NL-IX-style IXP has facilities in Amsterdam, London and "
               "Frankfurt.\nOur vantage point is in the Amsterdam facility.\n\n";

  std::cout << "facility distances from the VP:\n";
  std::cout << "  London:    " << fmt_double(geo::geodesic_km(ams, lon), 0) << " km\n";
  std::cout << "  Frankfurt: " << fmt_double(geo::geodesic_km(ams, fra), 0) << " km\n\n";

  // Case 1: a member answers in 4 ms.
  const double rtt = 4.0;
  const auto ring = geo::feasible_ring(rtt);
  std::cout << "case 1 — member interface with RTTmin = " << rtt << " ms:\n";
  std::cout << "  a 2 ms threshold says REMOTE.\n";
  std::cout << "  the speed model says the router is " << fmt_double(ring.d_min_km, 0)
            << ".." << fmt_double(ring.d_max_km, 0)
            << " km away (paper: 299..532 km).\n";
  for (const auto& [name, loc] : {std::pair{"London", lon}, {"Frankfurt", fra}}) {
    const double d = geo::geodesic_km(ams, loc);
    std::cout << "  " << name << " at " << fmt_double(d, 0) << " km is "
              << (ring.contains(d) ? "FEASIBLE" : "not feasible") << "\n";
  }
  std::cout << "  => if the member is colocated at a feasible facility of the IXP, "
               "it is LOCAL\n     despite the 4 ms RTT: the threshold's false "
               "positive is avoided.\n\n";

  // Case 2: the Rotterdam trap.
  const double d_rot = geo::geodesic_km(ams, rot);
  const double rtt_rot = 2.0 * d_rot / (0.7 * geo::kVMaxKmPerMs);
  std::cout << "case 2 — a network in Rotterdam (" << fmt_double(d_rot, 0)
            << " km away) connected remotely:\n";
  std::cout << "  its RTT is ~" << fmt_double(rtt_rot, 1)
            << " ms, far below any threshold: a naive method says LOCAL.\n";
  std::cout << "  its colocation record shows a facility where the IXP is NOT "
               "present\n  => Step 3 classifies it REMOTE: the false negative is "
               "avoided.\n\n";

  // The envelope itself.
  std::cout << "speed envelope used (v_max = 4/9 c = "
            << fmt_double(geo::kVMaxKmPerMs, 1) << " km/ms):\n";
  std::cout << "  RTT ms | feasible ring km\n";
  for (const double r : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    const auto rg = geo::feasible_ring(r);
    std::cout << "  " << fmt_double(r, 1) << "    | [" << fmt_double(rg.d_min_km, 0)
              << ", " << fmt_double(rg.d_max_km, 0) << "]\n";
  }

  // --- Part 2: the same questions at ecosystem scale, via the catalog -------
  using infer::peering_class;
  std::cout << "\n=== Wide-area remote peering, served from a catalog epoch ===\n\n";
  const auto scenario = eval::scenario::build(eval::small_scenario_config(42));
  const auto result = scenario.run_inference();
  serve::catalog cat;
  cat.ingest(scenario.w, scenario.view, result, "study");

  std::cout << "which IXPs attract remote peering (top 5 by remote members):\n";
  for (const auto& g : serve::query(cat)
                           .cls(peering_class::remote)
                           .by_ixp()
                           .top(5)
                           .group_counts())
    std::cout << "  " << g.key << ": " << g.count << "\n";

  std::cout << "\nwhere the remote members sit (top 5 member metros):\n";
  for (const auto& g : serve::query(cat)
                           .cls(peering_class::remote)
                           .by_metro()
                           .top(5)
                           .group_counts())
    std::cout << "  " << g.key << ": " << g.count << "\n";

  std::cout << "\nhow far away they are (RTT ECDF over remote members):\n";
  for (const auto& p : serve::query(cat).cls(peering_class::remote).rtt_ecdf(6))
    std::cout << "  <= " << fmt_double(p.upper_ms, 2) << " ms: "
              << util::fmt_percent(p.fraction) << " (" << p.cum_count << ")\n";

  const auto within_metro = serve::query(cat)
                                .cls(peering_class::remote)
                                .rtt_between(0.0, 1.0)
                                .count();
  std::cout << "\nremote members answering within 1 ms (the Fig. 1b trap a naive\n"
               "threshold cannot see): "
            << within_metro << "\n";
  return 0;
}
