// Wide-area IXP study: the Fig. 7 worked example, programmatically.
//
// Demonstrates why a fixed RTT threshold cannot classify the members of a
// geographically distributed IXP, and how the feasible-ring test (Step 3)
// fixes both failure modes:
//   - a member colocated at a distant site of the SAME IXP looks remote
//     to a naive threshold (false positive),
//   - a nearby-but-not-colocated network looks local (false negative).
//
//   $ ./wide_area_study
#include <iostream>

#include "opwat/geo/geodesic.hpp"
#include "opwat/geo/speed_model.hpp"
#include "opwat/util/strings.hpp"
#include "opwat/world/cities.hpp"

int main() {
  using namespace opwat;
  using util::fmt_double;

  const auto ams = world::find_city("Amsterdam")->location;
  const auto lon = world::find_city("London")->location;
  const auto fra = world::find_city("Frankfurt")->location;
  const auto rot = world::find_city("Rotterdam")->location;

  std::cout << "=== Wide-area IXP study (the paper's Fig. 7 example) ===\n\n";
  std::cout << "An NL-IX-style IXP has facilities in Amsterdam, London and "
               "Frankfurt.\nOur vantage point is in the Amsterdam facility.\n\n";

  std::cout << "facility distances from the VP:\n";
  std::cout << "  London:    " << fmt_double(geo::geodesic_km(ams, lon), 0) << " km\n";
  std::cout << "  Frankfurt: " << fmt_double(geo::geodesic_km(ams, fra), 0) << " km\n\n";

  // Case 1: a member answers in 4 ms.
  const double rtt = 4.0;
  const auto ring = geo::feasible_ring(rtt);
  std::cout << "case 1 — member interface with RTTmin = " << rtt << " ms:\n";
  std::cout << "  a 2 ms threshold says REMOTE.\n";
  std::cout << "  the speed model says the router is " << fmt_double(ring.d_min_km, 0)
            << ".." << fmt_double(ring.d_max_km, 0)
            << " km away (paper: 299..532 km).\n";
  for (const auto& [name, loc] : {std::pair{"London", lon}, {"Frankfurt", fra}}) {
    const double d = geo::geodesic_km(ams, loc);
    std::cout << "  " << name << " at " << fmt_double(d, 0) << " km is "
              << (ring.contains(d) ? "FEASIBLE" : "not feasible") << "\n";
  }
  std::cout << "  => if the member is colocated at a feasible facility of the IXP, "
               "it is LOCAL\n     despite the 4 ms RTT: the threshold's false "
               "positive is avoided.\n\n";

  // Case 2: the Rotterdam trap.
  const double d_rot = geo::geodesic_km(ams, rot);
  const double rtt_rot = 2.0 * d_rot / (0.7 * geo::kVMaxKmPerMs);
  std::cout << "case 2 — a network in Rotterdam (" << fmt_double(d_rot, 0)
            << " km away) connected remotely:\n";
  std::cout << "  its RTT is ~" << fmt_double(rtt_rot, 1)
            << " ms, far below any threshold: a naive method says LOCAL.\n";
  std::cout << "  its colocation record shows a facility where the IXP is NOT "
               "present\n  => Step 3 classifies it REMOTE: the false negative is "
               "avoided.\n\n";

  // The envelope itself.
  std::cout << "speed envelope used (v_max = 4/9 c = "
            << fmt_double(geo::kVMaxKmPerMs, 1) << " km/ms):\n";
  std::cout << "  RTT ms | feasible ring km\n";
  for (const double r : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    const auto rg = geo::feasible_ring(r);
    std::cout << "  " << fmt_double(r, 1) << "    | [" << fmt_double(rg.d_min_km, 0)
              << ", " << fmt_double(rg.d_max_km, 0) << "]\n";
  }
  return 0;
}
