// Quickstart: build a small synthetic ecosystem, run the five-step remote
// peering inference pipeline, and score it against ground truth.
//
//   $ ./quickstart [seed]
//
// This is the 60-second tour of the library: world -> noisy DB views ->
// ping/traceroute measurements -> inference -> validation metrics.
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "opwat/eval/metrics.hpp"
#include "opwat/eval/scenario.hpp"
#include "opwat/util/strings.hpp"
#include "opwat/util/table.hpp"

int main(int argc, char** argv) {
  using namespace opwat;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // 1. Build a small scenario: ground-truth world, noisy database
  //    snapshots merged with the paper's preference order, vantage points
  //    and a traceroute corpus.
  const auto scenario = eval::scenario::build(eval::small_scenario_config(seed));
  std::cout << "world: " << scenario.w.ixps.size() << " IXPs, "
            << scenario.w.ases.size() << " ASes, " << scenario.w.memberships.size()
            << " memberships; measuring " << scenario.scope.size()
            << " IXPs from " << scenario.vps.size() << " vantage points\n\n";

  // 2. Assemble the inference engine with the fluent builder — Step 1
  //    (port capacity) -> Steps 2+3 (RTT + colocation) -> Step 4
  //    (multi-IXP routers) -> Step 5 (private links) — and run it.  The
  //    ping campaign and traceroute path extraction the steps depend on
  //    are inserted automatically.
  const auto engine = infer::engine()
                          .with_step("port-capacity")
                          .with_step("rtt-colo")
                          .with_step("multi-ixp")
                          .with_step("private-links")
                          .seed(scenario.cfg.pipeline.seed)
                          .build();
  const auto result = scenario.run_inference(engine);

  // 3. The engine ledger: provenance and cost of every step, straight
  //    from the result.
  {
    const auto steps = engine.steps();
    util::text_table ledger{"Engine ledger"};
    ledger.header({"Step", "Paper", "Batches", "Local", "Remote", "ms"});
    for (const auto& tr : result.trace) {
      const auto info = std::find_if(steps.begin(), steps.end(),
                                     [&](const auto& si) { return si.name == tr.step; });
      ledger.row({tr.step, info != steps.end() ? info->paper_section : "",
                  std::to_string(tr.invocations), std::to_string(tr.decided_local),
                  std::to_string(tr.decided_remote),
                  util::fmt_double(tr.elapsed_ms, 2)});
    }
    ledger.print(std::cout);
    std::cout << "\n";
  }

  // 4. Per-IXP summary.
  util::text_table t{"Inference results"};
  t.header({"IXP", "local", "remote", "unknown"});
  for (const auto x : result.scope) {
    const auto local = result.count(x, infer::peering_class::local);
    const auto remote = result.count(x, infer::peering_class::remote);
    const auto total = scenario.view.interfaces_of_ixp(x).size();
    t.row({scenario.w.ixps[x].name, std::to_string(local), std::to_string(remote),
           std::to_string(total - local - remote)});
  }
  t.print(std::cout);

  // 5. Score against the (partial, operator/website-style) validation data.
  const auto metrics = eval::compute_metrics(result.inferences, scenario.validation.test);
  std::cout << "\nvalidation (test subset, " << scenario.validation.test.size()
            << " interfaces):\n"
            << "  accuracy  " << util::fmt_percent(metrics.acc) << "\n"
            << "  precision " << util::fmt_percent(metrics.pre) << "\n"
            << "  coverage  " << util::fmt_percent(metrics.cov) << "\n";

  // 6. Compare with the RTT-threshold baseline.
  const auto baseline = infer::run_baseline_on(result);
  const auto base_metrics = eval::compute_metrics(baseline, scenario.validation.test);
  std::cout << "baseline (10 ms RTT threshold):\n"
            << "  accuracy  " << util::fmt_percent(base_metrics.acc) << "\n"
            << "  precision " << util::fmt_percent(base_metrics.pre) << "\n"
            << "  coverage  " << util::fmt_percent(base_metrics.cov) << "\n";
  return 0;
}
