// Routing implications of remote peering (§6.4), as a runnable example.
//
// Builds a scenario, infers the remote members of the largest IXP, then
// traceroutes from each remote member toward other members they share a
// second IXP with, and classifies every observed crossing as hot-potato
// compliant, a remote-peering detour, or a missed offload opportunity.
//
//   $ ./routing_implications
#include <iostream>

#include "opwat/eval/routing.hpp"
#include "opwat/eval/scenario.hpp"
#include "opwat/util/strings.hpp"
#include "opwat/util/table.hpp"

int main() {
  using namespace opwat;

  const auto scenario = eval::scenario::build(eval::small_scenario_config(33));
  const auto result = scenario.run_inference();
  if (result.scope.empty()) {
    std::cerr << "no measurable IXPs\n";
    return 1;
  }
  const auto studied = result.scope.front();
  std::cout << "studying routing around " << scenario.w.ixps[studied].name << "\n";

  std::vector<net::asn> remote_members;
  for (const auto& [key, inf] : result.inferences.items())
    if (key.ixp == studied && inf.cls == infer::peering_class::remote)
      if (const auto asn = scenario.view.member_of_interface(key.ip))
        remote_members.push_back(*asn);
  std::cout << "inferred remote members: " << remote_members.size() << "\n\n";

  const auto engine = scenario.make_traceroute_engine();
  const auto study = eval::run_routing_study(scenario.w, scenario.view,
                                             scenario.prefix2as, engine, studied,
                                             remote_members, {.max_pairs = 1500});

  util::text_table t{"Crossing classification (AS_R -> AS_x traceroutes)"};
  t.header({"Verdict", "Count", "Share"});
  const double n = static_cast<double>(study.cases.size());
  for (const auto v : {eval::routing_verdict::hot_potato, eval::routing_verdict::rp_detour,
                       eval::routing_verdict::missed_rp, eval::routing_verdict::other}) {
    const auto c = study.count(v);
    t.row({std::string{to_string(v)}, std::to_string(c),
           n > 0 ? util::fmt_percent(static_cast<double>(c) / n) : "-"});
  }
  t.footer("paper (DE-CIX FRA): 66% hot-potato, 18% detour over the remote port, "
           "16% missed offload.");
  t.print(std::cout);

  // Show a few concrete detours.
  std::cout << "\nexample detours:\n";
  int shown = 0;
  for (const auto& c : study.cases) {
    if (c.verdict != eval::routing_verdict::rp_detour || shown >= 3) continue;
    ++shown;
    std::cout << "  " << net::to_string(c.as_r) << " -> " << net::to_string(c.as_x)
              << " crossed " << scenario.w.ixps[c.used_ixp].name << " at "
              << util::fmt_double(c.used_distance_km, 0) << " km although "
              << scenario.w.ixps[c.closest_common_ixp].name << " is "
              << util::fmt_double(c.closest_distance_km, 0) << " km away\n";
  }
  if (shown == 0) std::cout << "  (none in this small scenario)\n";
  return 0;
}
