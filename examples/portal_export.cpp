// Portal snapshot export: the paper's remote-IXP-peering portal publishes
// monthly inference snapshots; this example runs the pipeline, ingests
// the result as one epoch of a serve::catalog, and renders that epoch as
// the equivalent JSON document on stdout (pipe to a file or `jq`).
//
//   $ ./portal_export > snapshot.json
//   $ ./portal_export --summary                  # totals only, no member lists
//   $ ./portal_export --scale paper --seed 7     # full-size scenario, seed 7
//   $ ./portal_export --label 2018-05            # epoch/snapshot label
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "opwat/eval/portal.hpp"
#include "opwat/eval/scenario.hpp"
#include "opwat/serve/catalog.hpp"

namespace {

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--summary] [--scale small|paper] [--seed N] [--label S]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opwat;

  bool summary_only = false;
  std::string scale = "small";
  std::uint64_t seed = 42;
  std::string label = "2018-04";  // the paper's measurement month

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--summary") {
      summary_only = true;
    } else if (arg == "--scale") {
      scale = next();
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--label") {
      label = next();
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  eval::scenario_config cfg;
  if (scale == "small") {
    cfg = eval::small_scenario_config(seed);
  } else if (scale == "paper") {
    cfg = eval::default_scenario_config();
    cfg.world.seed = seed;
  } else {
    usage(argv[0]);
    return 2;
  }

  const auto scenario = eval::scenario::build(cfg);
  const auto result = scenario.run_inference();

  serve::catalog cat;
  cat.ingest(scenario.w, scenario.view, result, label);

  eval::portal_options opt;
  opt.snapshot_label = label;
  if (summary_only) {
    opt.include_interfaces = false;
    opt.include_facilities = false;
  }
  std::cout << eval::portal_snapshot_json(cat, label, opt) << "\n";
  return 0;
}
