// Portal snapshot export: the paper's remote-IXP-peering portal publishes
// monthly inference snapshots; this example produces the equivalent JSON
// document on stdout (pipe to a file or `jq`).
//
//   $ ./portal_export > snapshot.json
//   $ ./portal_export --summary        # totals only, no member lists
#include <cstring>
#include <iostream>

#include "opwat/eval/portal.hpp"
#include "opwat/eval/scenario.hpp"

int main(int argc, char** argv) {
  using namespace opwat;

  const bool summary_only = argc > 1 && std::strcmp(argv[1], "--summary") == 0;

  const auto scenario = eval::scenario::build(eval::small_scenario_config(42));
  const auto result = scenario.run_inference();

  eval::portal_options opt;
  opt.snapshot_label = "2018-04";  // the paper's measurement month
  if (summary_only) {
    opt.include_interfaces = false;
    opt.include_facilities = false;
  }
  std::cout << eval::portal_snapshot_json(scenario, result, opt) << "\n";
  return 0;
}
