// Portal snapshot export: the paper's remote-IXP-peering portal publishes
// monthly inference snapshots; this example runs the pipeline, ingests
// the result as one epoch of a serve::catalog, and renders that epoch as
// the equivalent JSON document on stdout (pipe to a file or `jq`).
//
// With --save/--load the catalog round-trips through the durable .opwatc
// snapshot format (opwat/serve/store.hpp), so an export can replay a
// stored snapshot instead of recomputing the pipeline:
//
//   $ ./portal_export > snapshot.json
//   $ ./portal_export --summary                  # totals only, no member lists
//   $ ./portal_export --scale paper --seed 7     # full-size scenario, seed 7
//   $ ./portal_export --label 2018-05            # epoch/snapshot label
//   $ ./portal_export --save portal.opwatc       # persist the catalog too
//   $ ./portal_export --load portal.opwatc       # render from a stored catalog
//   $ ./portal_export --load portal.opwatc --label 2018-05   # pick an epoch
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "opwat/eval/portal.hpp"
#include "opwat/eval/scenario.hpp"
#include "opwat/serve/store.hpp"

namespace {

void usage(std::ostream& os, const char* argv0) {
  os << "usage: " << argv0
     << " [--summary] [--scale small|paper] [--seed N] [--label S]\n"
        "       [--save FILE] [--load FILE] [--help]\n"
        "\n"
        "  --summary      totals only: omit per-member and facility lists\n"
        "  --scale S      scenario size: small (default) or paper\n"
        "  --seed N       world/pipeline seed (default 42)\n"
        "  --label S      epoch label to ingest or render (default 2018-04;\n"
        "                 with --load, defaults to the file's latest epoch)\n"
        "  --save FILE    after ingesting, save the catalog as a versioned\n"
        "                 .opwatc snapshot (checksummed columnar format)\n"
        "  --load FILE    skip the pipeline: load the catalog from FILE and\n"
        "                 render the chosen epoch from it\n"
        "  --help         this text\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opwat;

  bool summary_only = false;
  std::string scale = "small";
  std::uint64_t seed = 42;
  std::string label = "2018-04";  // the paper's measurement month
  bool label_given = false;
  std::string save_path;
  std::string load_path;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(std::cerr, argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--summary") {
      summary_only = true;
    } else if (arg == "--scale") {
      scale = next();
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--label") {
      label = next();
      label_given = true;
    } else if (arg == "--save") {
      save_path = next();
    } else if (arg == "--load") {
      load_path = next();
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout, argv[0]);
      return 0;
    } else {
      usage(std::cerr, argv[0]);
      return 2;
    }
  }

  if (scale != "small" && scale != "paper") {
    usage(std::cerr, argv[0]);
    return 2;
  }

  serve::catalog cat;
  try {
    if (!load_path.empty()) {
      cat = serve::catalog::load(load_path);
      if (cat.epoch_count() == 0) {
        std::cerr << argv[0] << ": " << load_path << " holds no epochs\n";
        return 1;
      }
      if (!label_given) label = cat.labels().back();
    } else {
      eval::scenario_config cfg;
      if (scale == "small") {
        cfg = eval::small_scenario_config(seed);
      } else {
        cfg = eval::default_scenario_config();
        cfg.world.seed = seed;
      }
      const auto scenario = eval::scenario::build(cfg);
      const auto result = scenario.run_inference();
      cat.ingest(scenario.w, scenario.view, result, label);
    }

    if (!save_path.empty()) cat.save(save_path);

    eval::portal_options opt;
    opt.snapshot_label = label;
    if (summary_only) {
      opt.include_interfaces = false;
      opt.include_facilities = false;
    }
    std::cout << eval::portal_snapshot_json(cat, label, opt) << "\n";
  } catch (const serve::store_error& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return 1;
  } catch (const std::invalid_argument& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return 1;
  }
  return 0;
}
