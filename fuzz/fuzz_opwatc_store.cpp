// Fuzz harness for the .opwatc snapshot store (opwat/serve/store.hpp).
//
// Arbitrary bytes go through both loader surfaces:
//
//   * store_section_boundaries — the framing walk the corruption tests
//     and opwatc_fsck use; must throw store_error on unwalkable
//     framing, never UB;
//   * catalog::load — the CRC-verified full decode, via a scratch file
//     (the loader API is path-based).  Rejection must be a typed
//     store_error.
//   * catalog::load in recovery mode — must NEVER throw for content
//     damage, whatever the bytes (only store_errc::io may escape), and
//     whatever it salvages must round-trip as a valid file.
//
// When a mutated file does load, the save-of-loaded invariant from the
// format header is enforced as a fixed point: save(load(f)) must
// reload, and its own re-save must be byte-identical.
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "opwat/eval/scenario.hpp"
#include "opwat/serve/catalog.hpp"
#include "opwat/serve/store.hpp"

#include "driver.hpp"

namespace {

namespace stdfs = std::filesystem;

const stdfs::path& scratch_dir() {
  static const stdfs::path dir = [] {
    const auto d = stdfs::temp_directory_path() /
                   ("opwat_fuzz_store_" + std::to_string(::getpid()));
    stdfs::create_directories(d);
    return d;
  }();
  return dir;
}

std::string slurp(const stdfs::path& p) {
  std::ifstream in{p, std::ios::binary};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spit(const stdfs::path& p, std::string_view bytes) {
  std::ofstream out{p, std::ios::binary | std::ios::trunc};
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes{reinterpret_cast<const char*>(data), size};
  try {
    (void)opwat::serve::store_section_boundaries(bytes);
  } catch (const opwat::serve::store_error&) {
  }

  const auto in = scratch_dir() / "input.opwatc";
  spit(in, bytes);

  // Recovery mode first: the self-healing boot path sees exactly these
  // bytes after a crash, and its contract is "content damage never
  // throws" — only real I/O errors (store_errc::io) may escape.  The
  // salvaged prefix must itself be a valid, reloadable file.
  try {
    opwat::serve::recovery_report rep;
    const auto rec = opwat::serve::catalog::load(
        in.string(), opwat::serve::recovery_policy::recover, &rep);
    const auto salvaged = scratch_dir() / "salvaged.opwatc";
    rec.save(salvaged.string());
    (void)opwat::serve::catalog::load(salvaged.string());
  } catch (const opwat::serve::store_error& e) {
    if (e.kind() != opwat::serve::store_errc::io) __builtin_trap();
  }

  std::optional<opwat::serve::catalog> cat;
  try {
    cat.emplace(opwat::serve::catalog::load(in.string()));
  } catch (const opwat::serve::store_error&) {
    return 0;  // typed rejection is the expected path
  }
  // Loaded => must save, reload, and re-save byte-identically (the
  // format's canonical-bytes guarantee).  Any throw from here escapes
  // and crashes the harness — that's the finding.
  const auto resave1 = scratch_dir() / "resave1.opwatc";
  const auto resave2 = scratch_dir() / "resave2.opwatc";
  cat->save(resave1.string());
  const auto reloaded = opwat::serve::catalog::load(resave1.string());
  reloaded.save(resave2.string());
  if (slurp(resave1) != slurp(resave2)) __builtin_trap();
  return 0;
}

std::vector<std::string> fuzz_seeds() {
  std::vector<std::string> seeds;
  const auto save_bytes = [](const opwat::serve::catalog& cat,
                             const char* name) {
    const auto p = scratch_dir() / name;
    cat.save(p.string());
    return slurp(p);
  };
  // The minimal valid file: header only, zero epochs.
  seeds.push_back(save_bytes(opwat::serve::catalog{}, "seed_empty.opwatc"));
  // A real two-epoch snapshot from the tiny deterministic scenario, so
  // the mutation stream hits dictionary deltas, blocks and columns.
  const auto s =
      opwat::eval::scenario::build(opwat::eval::small_scenario_config(7));
  auto pcfg = s.cfg.pipeline;
  opwat::serve::catalog cat;
  cat.ingest(s.w, s.view, s.run_inference(pcfg), "e00");
  pcfg.seed += 1;
  cat.ingest(s.w, s.view, s.run_inference(pcfg), "e01");
  seeds.push_back(save_bytes(cat, "seed_two_epochs.opwatc"));
  // The same snapshot pinned to the v1 writer (raw columns), so the
  // mutation stream keeps BOTH column-section formats alive — save()
  // above writes v2 with compressed frames.
  const auto v1 = scratch_dir() / "seed_two_epochs_v1.opwatc";
  cat.save(v1.string(), 1);
  seeds.push_back(slurp(v1));
  // Torn tails: the v2 snapshot truncated at (and one byte past) every
  // section boundary — exactly the shapes a writer killed mid-append
  // leaves behind, seeding the recovery corpus at the format's joints.
  const std::string full = seeds[1];
  for (const auto off : opwat::serve::store_section_boundaries(full)) {
    if (off == 0 || off >= full.size()) continue;
    seeds.push_back(full.substr(0, off));
    if (off + 1 < full.size()) seeds.push_back(full.substr(0, off + 1));
  }
  return seeds;
}
