// Fuzz harness for the portal wire protocol (opwat/portal/protocol.hpp).
//
// Feeds arbitrary bytes to every decode surface the server and client
// expose to the network — frame_size over buffered prefixes,
// decode_request / decode_response over frame payloads, and cache_key
// over whatever decodes — and checks the protocol's contracts:
//
//   * malformed input raises protocol_error, never UB (ASan/UBSan in
//     the CI fuzz-smoke lane turn any violation into a crash);
//   * encode∘decode is idempotent: re-encoding a decoded message and
//     decoding it again must reproduce the same canonical bytes
//     (cache_hit is the one lossy field — any nonzero byte decodes to
//     true — which is why the check compares canonical encodings, not
//     raw input bytes);
//   * cache_key of any decodable request is itself a decodable frame.
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "opwat/portal/protocol.hpp"

#include "driver.hpp"

namespace portal = opwat::portal;

namespace {

template <typename Decoded, Decoded (*decode)(std::string_view),
          std::string (*encode)(const Decoded&)>
void check_canonical(std::string_view payload) {
  Decoded first;
  try {
    first = decode(payload);
  } catch (const portal::protocol_error&) {
    return;  // rejection is the expected path for junk
  }
  // The canonical payload must decode (an exception here escapes and
  // crashes the harness — that's the finding), and re-encoding the
  // result must be a fixed point.
  const std::string framed = encode(first);
  const auto canonical =
      std::string_view{framed}.substr(portal::k_frame_prefix_bytes);
  const Decoded second = decode(canonical);
  if (encode(second) != framed) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes{reinterpret_cast<const char*>(data), size};
  try {
    (void)portal::frame_size(bytes);
  } catch (const portal::protocol_error&) {
  }
  check_canonical<portal::request, portal::decode_request,
                  portal::encode_request>(bytes);
  check_canonical<portal::response, portal::decode_response,
                  portal::encode_response>(bytes);
  try {
    const auto req = portal::decode_request(bytes);
    const std::string key = portal::cache_key(req);
    (void)portal::decode_request(
        std::string_view{key}.substr(portal::k_frame_prefix_bytes));
  } catch (const portal::protocol_error&) {
  }
  return 0;
}

std::vector<std::string> fuzz_seeds() {
  std::vector<std::string> seeds;
  const auto payload = [](const std::string& framed) {
    return framed.substr(portal::k_frame_prefix_bytes);
  };
  {
    portal::request r;
    r.id = 7;
    seeds.push_back(payload(portal::encode_request(r)));  // ping
  }
  {
    portal::request r;
    r.op = portal::op_code::member;
    r.id = 8;
    r.epoch = "e00";
    r.asn = 64512;
    r.ixp_id = 3;
    seeds.push_back(payload(portal::encode_request(r)));
  }
  {
    portal::request r;
    r.op = portal::op_code::rtt_band;
    r.id = 9;
    r.rtt_lo_ms = 0.5;
    r.rtt_hi_ms = 10.25;
    r.limit = 32;
    seeds.push_back(payload(portal::encode_request(r)));
  }
  {
    portal::request r;
    r.op = portal::op_code::group_by;
    r.id = 10;
    r.dim = portal::group_dim::cls;
    r.cls_filter = 1;
    seeds.push_back(payload(portal::encode_request(r)));
  }
  {
    portal::request r;
    r.op = portal::op_code::diff;
    r.id = 11;
    r.epoch = "e00";
    r.epoch_to = "e01";
    seeds.push_back(payload(portal::encode_request(r)));
  }
  {
    portal::response r;
    r.id = 7;
    r.epoch = "e00";
    r.total = 2;
    r.rows.push_back({0x0a000001u, 3, 64512, 1, 2, 7.5});
    r.rows.push_back({0x0a000002u, 3, 64513, 0, 1, 0.25});
    r.groups.push_back({"remote", 12});
    r.labels = {"e00", "e01"};
    seeds.push_back(payload(portal::encode_response(r)));
  }
  {
    portal::response r;
    r.id = 8;
    r.status = portal::portal_errc::unknown_epoch;
    r.message = "epoch label not served";
    seeds.push_back(payload(portal::encode_response(r)));
  }
  {
    // A full frame (prefix included) so frame_size sees valid prefixes
    // too, not only the payload-shaped seeds above.
    portal::request r;
    r.op = portal::op_code::stats;
    r.id = 12;
    seeds.push_back(portal::encode_request(r));
  }
  return seeds;
}
