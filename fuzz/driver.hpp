// Standalone driver shared by the fuzz harnesses (fuzz/fuzz_*.cpp).
//
// Each harness defines the libFuzzer entry point
// LLVMFuzzerTestOneInput plus fuzz_seeds(), the valid inputs that seed
// the corpus.  Built two ways by CMake:
//
//   fuzz_<name>            this driver provides main(); no fuzzing
//                          runtime needed, so it builds under gcc and
//                          runs as a ctest (--selftest pushes every
//                          seed plus deterministic truncations and
//                          bit flips through the harness).
//   fuzz_<name>_libfuzzer  -DOPWAT_LIBFUZZER + -fsanitize=fuzzer
//                          (clang): main() comes from libFuzzer, this
//                          header contributes nothing.  The CI
//                          fuzz-smoke lane runs these under ASan.
//
// Driver modes:
//   fuzz_<name> --make-corpus <dir>   write the seeds as files
//   fuzz_<name> --selftest            seeds + deterministic mutations
//   fuzz_<name> <file>...             replay saved inputs (crash repro)
//   fuzz_<name>                       run the bare seeds only
//
// The selftest mutations use a fixed-seed xorshift stream: identical
// inputs on every run and machine, so a failure is always reproducible.
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

/// The harness's seed inputs — written verbatim by --make-corpus and
/// used as mutation bases by --selftest.
std::vector<std::string> fuzz_seeds();

#if !defined(OPWAT_LIBFUZZER)

namespace opwat::fuzzdrv {

inline void run_one(const std::string& bytes) {
  (void)LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
}

/// xorshift64* with a fixed seed: the selftest input stream is part of
/// the test's identity, not a source of run-to-run variance.
struct det_rng {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545f4914f6cdd1dULL;
  }
};

inline int make_corpus(const std::string& dir) {
  std::filesystem::create_directories(dir);
  const auto seeds = fuzz_seeds();
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "seed_%03zu.bin", i);
    std::ofstream out{std::filesystem::path{dir} / name,
                      std::ios::binary | std::ios::trunc};
    out.write(seeds[i].data(),
              static_cast<std::streamsize>(seeds[i].size()));
    if (!out) {
      std::fprintf(stderr, "make-corpus: cannot write %s/%s\n", dir.c_str(),
                   name);
      return 1;
    }
  }
  std::printf("make-corpus: %zu seeds written to %s\n", seeds.size(),
              dir.c_str());
  return 0;
}

inline int selftest() {
  const auto seeds = fuzz_seeds();
  std::size_t executed = 0;
  run_one(std::string{});
  ++executed;
  for (const auto& seed : seeds) {
    run_one(seed);
    ++executed;
    if (seed.empty()) continue;
    // Every truncation point of a small seed, an even stride otherwise.
    const std::size_t step = seed.size() <= 256 ? 1 : seed.size() / 256;
    for (std::size_t cut = 0; cut < seed.size(); cut += step) {
      run_one(seed.substr(0, cut));
      ++executed;
    }
    // Deterministic single-byte mutations: bit flips, byte stomps, and
    // short appended tails (length-prefix confusion).
    det_rng rng{0x9e3779b97f4a7c15ULL ^ seed.size()};
    for (int i = 0; i < 2048; ++i) {
      std::string m = seed;
      const auto pos = static_cast<std::size_t>(rng.next() % m.size());
      switch (rng.next() % 3) {
        case 0:
          m[pos] = static_cast<char>(
              static_cast<std::uint8_t>(m[pos]) ^ (1u << (rng.next() % 8)));
          break;
        case 1:
          m[pos] = static_cast<char>(rng.next() & 0xff);
          break;
        default:
          m.append(1 + rng.next() % 8, static_cast<char>(rng.next() & 0xff));
          break;
      }
      run_one(m);
      ++executed;
    }
  }
  std::printf("selftest: %zu inputs executed, no crashes\n", executed);
  return 0;
}

inline int replay(const char* path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    std::fprintf(stderr, "replay: cannot read %s\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  run_one(buf.str());
  std::printf("replay: %s ok\n", path);
  return 0;
}

}  // namespace opwat::fuzzdrv

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  if (mode == "--make-corpus" && argc == 3)
    return opwat::fuzzdrv::make_corpus(argv[2]);
  if (mode == "--selftest") return opwat::fuzzdrv::selftest();
  if (!mode.empty() && mode[0] == '-') {
    std::fprintf(stderr,
                 "usage: %s [--make-corpus <dir> | --selftest | <file>...]\n",
                 argv[0]);
    return 2;
  }
  if (argc == 1) {
    for (const auto& seed : fuzz_seeds()) opwat::fuzzdrv::run_one(seed);
    std::printf("seeds ok\n");
    return 0;
  }
  for (int i = 1; i < argc; ++i) {
    const int rc = opwat::fuzzdrv::replay(argv[i]);
    if (rc != 0) return rc;
  }
  return 0;
}

#endif  // !OPWAT_LIBFUZZER
