// opwat_lint — in-tree static analyzer for the project-specific
// correctness rules that generic tooling cannot know about.  The repo's
// load-bearing property is bit-identical determinism (parallel ≡
// serial, vectorized ≡ reference, append ≡ full-save); these rules
// statically defend it:
//
//   nondeterminism    banned wall-clock / libc-randomness sources in
//                     src/ (std::rand & friends, std::random_device,
//                     time(), std::chrono::system_clock) — randomness
//                     flows through util::rng streams, time through
//                     explicit inputs.
//   unordered-iter    range-for over a std::unordered_{map,set,...}:
//                     iteration order is unspecified, so any
//                     accumulation that feeds merged / serialized /
//                     displayed output silently becomes
//                     order-dependent.  Annotate provably
//                     order-insensitive loops (see below).
//   float-compare     == / != against a floating-point literal; exact
//                     comparisons are only rarely right (exact-zero
//                     guards) and must say why.
//   bare-assert       assert( in src/ compiles out in Release; use
//                     OPWAT_ASSERT / OPWAT_INVARIANT
//                     (opwat/util/contracts.hpp), which also cover
//                     -DOPWAT_AUDIT=ON optimized builds.
//   include-hygiene   headers start with #pragma once, no
//                     parent-relative includes, src/ quoted includes
//                     are rooted at opwat/ (plus the <cassert> ban,
//                     reported under bare-assert).
//
// Concurrency / wire-safety rules (every file kind — locking and
// byte-handling discipline hold tree-wide):
//
//   raw-lock            manual .lock()/.unlock()/.try_lock() (and the
//                       _shared variants) banned; critical sections go
//                       through the RAII guards of
//                       opwat/util/annotations.hpp so clang's
//                       -Wthread-safety analysis can follow them.
//   blocking-in-handler inside a span opened by a comment of the form
//                       "region(nonblocking): <reason>" and closed by
//                       "endregion(nonblocking)" — both carrying the
//                       usual opwat-lint comment prefix — unbounded
//                       blocking calls (poll/select/sleep*/join/wait*/
//                       send/recv/file I/O...) are banned — only the
//                       bounded net::send_all / net::recv_some wrappers
//                       touch the network there.  The portal acceptor
//                       and worker hot paths declare such spans.
//   throw-in-noexcept   a lexical `throw` in a noexcept function body
//                       (std::terminate waiting to happen) or anywhere
//                       in a nonblocking region (never-throw contract).
//                       Direct throws only; throwing callees are the
//                       sanitizer lanes' and fuzzers' job.
//   wire-safety         in net/ and portal/ path segments:
//                       reinterpret_cast, raw memcpy/memmove, and
//                       unchecked `.data() + offset` arithmetic are
//                       banned — decoding goes through the
//                       bounds-checked wire::reader.  Kernel-API
//                       boundaries carry allow()s.
//   lock-order          cross-TU: per-function RAII-guard nesting is
//                       extracted from every file (lock_edges below),
//                       composed into one acquisition graph, and every
//                       cycle is reported with the witness site of each
//                       hop.  Emitted by lint_files (the pass needs the
//                       whole file set), not lint_source.
//   failpoint-naming    cross-TU: every OPWAT_FAILPOINT(...) call site
//                       must pass a string literal naming a site
//                       registered in util/failpoint_sites.hpp (a typo
//                       compiles and silently never fires); registry
//                       names must be kebab-case and unique.  Helpers
//                       that forward a site name as a parameter carry
//                       an allow() with the reason.  Emitted by
//                       lint_files, not lint_source.
//
// Per-line suppression: a comment of the shape shown below, naming the
// allowed rule(s) with a required reason after the closing colon.  A
// trailing comment suppresses its own line; a whole-line comment
// suppresses the next line that holds code:
//
//   code();  // opwat-lint: allow(float-compare): exact sentinel check
//   // opwat-lint: allow(unordered-iter): results are sorted below
//   code();
//
// A suppression without a reason (or naming an unknown rule) is itself
// a finding (rule "bad-suppression"), so every exception in the tree
// carries a written justification.
//
// The analysis is lexical: comments, string/char literals and raw
// strings are stripped with real tokenization, but there is no
// preprocessor or type system.  Unordered-container variables are
// recognized from their declarations in the same file plus the
// companion header of a .cpp (and through `using X = ...unordered...`
// aliases); a container smuggled through typedefs in a third header is
// missed.  That trade keeps the tool dependency-free, fast enough to
// run as a ctest, and false-positive-poor — the rules err toward
// requiring an annotation over silently passing.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace opwat::lint {

/// Which tree a file belongs to — selects the active rule set.
enum class file_kind {
  source,   ///< src/ (and the library proper): every rule
  tool,     ///< tools/: every rule (the linter lints itself)
  test,     ///< tests/: determinism + hygiene rules, gtest asserts allowed
  bench,    ///< bench/: timers allowed, hygiene + unordered-iter kept
  example,  ///< examples/: same as bench
  other,    ///< unknown location: hygiene rules only
};

/// Classifies by the nearest known path segment (src/tests/bench/
/// examples/tools), so absolute and repo-relative paths agree.
[[nodiscard]] file_kind classify(std::string_view path) noexcept;

/// One rule violation.
struct finding {
  std::string file;
  int line = 0;  ///< 1-based
  std::string rule;
  std::string message;

  [[nodiscard]] bool operator==(const finding&) const = default;
};

/// Every rule id the tool can emit (suppression comments are validated
/// against this list).
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// Names of variables/members declared (directly or through a local
/// `using` alias) with an unordered container type in `text` — exposed
/// so a .cpp can be linted with its companion header's members seeded.
[[nodiscard]] std::set<std::string> unordered_names(std::string_view text);

/// Lints one file's contents.  `seeded_names` augments the
/// unordered-container name set (typically unordered_names() of the
/// companion header).
[[nodiscard]] std::vector<finding> lint_source(
    std::string_view path, std::string_view text,
    const std::set<std::string>& seeded_names = {});

/// One "mutex B acquired while mutex A is held" site, extracted from
/// RAII-guard nesting inside a single function.  Mutex identity is the
/// final identifier of the guard's constructor argument (`m_`,
/// `conn->write_mu` -> "write_mu") — lexical, so two unrelated mutexes
/// sharing a member name merge into one node (conservative for cycle
/// detection; rename one or annotate if a false cycle ever appears).
struct lock_edge {
  std::string held;      ///< mutex already held
  std::string acquired;  ///< mutex acquired under it
  std::string file;
  int line = 0;  ///< 1-based acquisition (witness) site
  /// allow(lock-order) at the witness line: the edge is dropped from
  /// the graph, so one justified annotation breaks its cycle.
  bool suppressed = false;

  [[nodiscard]] bool operator==(const lock_edge&) const = default;
};

/// The acquisition edges of one file — exposed for tests and for
/// external graph consumers; lint_files aggregates these across the
/// whole file set for the cycle report.
[[nodiscard]] std::vector<lock_edge> lock_edges(std::string_view path,
                                                std::string_view text);

/// A file handed to lint_files (path + contents, already read).
struct file_input {
  std::string path;
  std::string text;
};

/// Lints a file set; a .cpp automatically inherits the unordered
/// names of a same-stem .hpp/.h present in the set.  Findings come
/// back sorted by (file, line, rule).
[[nodiscard]] std::vector<finding> lint_files(const std::vector<file_input>& files);

/// Machine-readable report: {"findings": [{file, line, rule, message}...]}.
[[nodiscard]] std::string to_json(const std::vector<finding>& findings);

}  // namespace opwat::lint
