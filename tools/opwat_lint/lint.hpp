// opwat_lint — in-tree static analyzer for the project-specific
// correctness rules that generic tooling cannot know about.  The repo's
// load-bearing property is bit-identical determinism (parallel ≡
// serial, vectorized ≡ reference, append ≡ full-save); these rules
// statically defend it:
//
//   nondeterminism    banned wall-clock / libc-randomness sources in
//                     src/ (std::rand & friends, std::random_device,
//                     time(), std::chrono::system_clock) — randomness
//                     flows through util::rng streams, time through
//                     explicit inputs.
//   unordered-iter    range-for over a std::unordered_{map,set,...}:
//                     iteration order is unspecified, so any
//                     accumulation that feeds merged / serialized /
//                     displayed output silently becomes
//                     order-dependent.  Annotate provably
//                     order-insensitive loops (see below).
//   float-compare     == / != against a floating-point literal; exact
//                     comparisons are only rarely right (exact-zero
//                     guards) and must say why.
//   bare-assert       assert( in src/ compiles out in Release; use
//                     OPWAT_ASSERT / OPWAT_INVARIANT
//                     (opwat/util/contracts.hpp), which also cover
//                     -DOPWAT_AUDIT=ON optimized builds.
//   include-hygiene   headers start with #pragma once, no
//                     parent-relative includes, src/ quoted includes
//                     are rooted at opwat/ (plus the <cassert> ban,
//                     reported under bare-assert).
//
// Per-line suppression: a comment of the shape shown below, naming the
// allowed rule(s) with a required reason after the closing colon.  A
// trailing comment suppresses its own line; a whole-line comment
// suppresses the next line that holds code:
//
//   code();  // opwat-lint: allow(float-compare): exact sentinel check
//   // opwat-lint: allow(unordered-iter): results are sorted below
//   code();
//
// A suppression without a reason (or naming an unknown rule) is itself
// a finding (rule "bad-suppression"), so every exception in the tree
// carries a written justification.
//
// The analysis is lexical: comments, string/char literals and raw
// strings are stripped with real tokenization, but there is no
// preprocessor or type system.  Unordered-container variables are
// recognized from their declarations in the same file plus the
// companion header of a .cpp (and through `using X = ...unordered...`
// aliases); a container smuggled through typedefs in a third header is
// missed.  That trade keeps the tool dependency-free, fast enough to
// run as a ctest, and false-positive-poor — the rules err toward
// requiring an annotation over silently passing.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace opwat::lint {

/// Which tree a file belongs to — selects the active rule set.
enum class file_kind {
  source,   ///< src/ (and the library proper): every rule
  tool,     ///< tools/: every rule (the linter lints itself)
  test,     ///< tests/: determinism + hygiene rules, gtest asserts allowed
  bench,    ///< bench/: timers allowed, hygiene + unordered-iter kept
  example,  ///< examples/: same as bench
  other,    ///< unknown location: hygiene rules only
};

/// Classifies by the nearest known path segment (src/tests/bench/
/// examples/tools), so absolute and repo-relative paths agree.
[[nodiscard]] file_kind classify(std::string_view path) noexcept;

/// One rule violation.
struct finding {
  std::string file;
  int line = 0;  ///< 1-based
  std::string rule;
  std::string message;

  [[nodiscard]] bool operator==(const finding&) const = default;
};

/// Every rule id the tool can emit (suppression comments are validated
/// against this list).
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// Names of variables/members declared (directly or through a local
/// `using` alias) with an unordered container type in `text` — exposed
/// so a .cpp can be linted with its companion header's members seeded.
[[nodiscard]] std::set<std::string> unordered_names(std::string_view text);

/// Lints one file's contents.  `seeded_names` augments the
/// unordered-container name set (typically unordered_names() of the
/// companion header).
[[nodiscard]] std::vector<finding> lint_source(
    std::string_view path, std::string_view text,
    const std::set<std::string>& seeded_names = {});

/// A file handed to lint_files (path + contents, already read).
struct file_input {
  std::string path;
  std::string text;
};

/// Lints a file set; a .cpp automatically inherits the unordered
/// names of a same-stem .hpp/.h present in the set.  Findings come
/// back sorted by (file, line, rule).
[[nodiscard]] std::vector<finding> lint_files(const std::vector<file_input>& files);

/// Machine-readable report: {"findings": [{file, line, rule, message}...]}.
[[nodiscard]] std::string to_json(const std::vector<finding>& findings);

}  // namespace opwat::lint
