// opwat_lint CLI — scans files / directories (recursively, *.cpp *.cc
// *.hpp *.h; build trees skipped), prints findings as
// "path:line: [rule] message", optionally writes the machine-readable
// JSON report, and exits non-zero when the tree is not clean.
//
//   opwat_lint [--json <out.json>] [--quiet] <file-or-dir>...
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.  Registered as the
// `lint_tree` ctest and run by the CI lint job over src/, tests/,
// bench/, examples/ and tools/.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "opwat_lint/lint.hpp"

namespace {

namespace fs = std::filesystem;

bool lintable(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

bool skipped_dir(const fs::path& p) {
  const auto name = p.filename().string();
  return name == "build" || name == ".git" || name.rfind("cmake-build", 0) == 0;
}

int usage() {
  std::cerr << "usage: opwat_lint [--json <out.json>] [--quiet] <file-or-dir>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool quiet = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (++i >= argc) return usage();
      json_path = argv[i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage();

  std::vector<fs::path> paths;
  for (const auto& r : roots) {
    std::error_code ec;
    if (fs::is_directory(r, ec)) {
      auto it = fs::recursive_directory_iterator(
          r, fs::directory_options::skip_permission_denied, ec);
      if (ec) {
        std::cerr << "opwat_lint: cannot scan " << r << ": " << ec.message()
                  << "\n";
        return 2;
      }
      for (; it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && skipped_dir(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && lintable(it->path()))
          paths.push_back(it->path());
      }
    } else if (fs::is_regular_file(r, ec)) {
      paths.push_back(r);
    } else {
      std::cerr << "opwat_lint: no such file or directory: " << r << "\n";
      return 2;
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<opwat::lint::file_input> files;
  files.reserve(paths.size());
  for (const auto& p : paths) {
    std::ifstream f{p, std::ios::binary};
    if (!f) {
      std::cerr << "opwat_lint: cannot read " << p << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    files.push_back({p.generic_string(), ss.str()});
  }

  const auto findings = opwat::lint::lint_files(files);
  if (!quiet) {
    for (const auto& f : findings)
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    std::cout << "opwat_lint: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << " in " << files.size()
              << " files scanned\n";
  }
  if (!json_path.empty()) {
    std::ofstream out{json_path, std::ios::trunc};
    if (!out) {
      std::cerr << "opwat_lint: cannot write " << json_path << "\n";
      return 2;
    }
    out << opwat::lint::to_json(findings);
  }
  return findings.empty() ? 0 : 1;
}
