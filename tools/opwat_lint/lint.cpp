#include "opwat_lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <tuple>
#include <utility>

namespace opwat::lint {

namespace {

// --- lexical stripping -------------------------------------------------------
// Comments and string/char literals are replaced by spaces (lengths and
// line structure preserved) so every rule scans real code only; comment
// text is kept separately for suppression parsing.

struct stripped_file {
  std::vector<std::string> code;     ///< per line, literals/comments blanked
  std::vector<std::string> comment;  ///< per line, comment text only
  std::vector<std::string> raw;      ///< per line, untouched (include paths)
};

[[nodiscard]] bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

stripped_file strip(std::string_view text) {
  stripped_file out;
  out.code.emplace_back();
  out.comment.emplace_back();
  out.raw.emplace_back();
  enum class state { code, line_comment, block_comment, str, chr, raw_str };
  state st = state::code;
  std::string raw_delim;  // raw-string delimiter incl. closing paren
  const auto n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    if (c == '\n') {
      // A line comment ends; every other state carries across lines.
      if (st == state::line_comment) st = state::code;
      out.code.emplace_back();
      out.comment.emplace_back();
      out.raw.emplace_back();
      continue;
    }
    out.raw.back() += c;
    const char next = i + 1 < n ? text[i + 1] : '\0';
    switch (st) {
      case state::code:
        if (c == '/' && next == '/') {
          st = state::line_comment;
          out.code.back() += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          st = state::block_comment;
          out.code.back() += "  ";
          ++i;
          out.raw.back() += '*';
        } else if (c == 'R' && next == '"' &&
                   (out.code.back().empty() ||
                    !ident_char(out.code.back().back()))) {
          // R"delim( ... )delim"
          std::size_t j = i + 2;
          std::string delim;
          while (j < n && text[j] != '(' && text[j] != '\n') delim += text[j++];
          if (j < n && text[j] == '(') {
            st = state::raw_str;
            raw_delim = ")" + delim + "\"";
            out.code.back() += ' ';
            // consume up to and including '('
            for (std::size_t k = i + 1; k <= j; ++k) {
              out.code.back() += ' ';
              if (k > i + 1) out.raw.back() += text[k - 1];
            }
            out.raw.back() += '(';
            i = j;
          } else {
            out.code.back() += c;
          }
        } else if (c == '"') {
          st = state::str;
          out.code.back() += ' ';
        } else if (c == '\'') {
          st = state::chr;
          out.code.back() += ' ';
        } else {
          out.code.back() += c;
        }
        break;
      case state::line_comment:
        out.comment.back() += c;
        out.code.back() += ' ';
        break;
      case state::block_comment:
        if (c == '*' && next == '/') {
          st = state::code;
          out.code.back() += "  ";
          ++i;
          out.raw.back() += '/';
        } else {
          out.comment.back() += c;
          out.code.back() += ' ';
        }
        break;
      case state::str:
        if (c == '\\' && next != '\0' && next != '\n') {
          out.code.back() += "  ";
          out.raw.back() += next;
          ++i;
        } else {
          if (c == '"') st = state::code;
          out.code.back() += ' ';
        }
        break;
      case state::chr:
        if (c == '\\' && next != '\0' && next != '\n') {
          out.code.back() += "  ";
          out.raw.back() += next;
          ++i;
        } else {
          if (c == '\'') st = state::code;
          out.code.back() += ' ';
        }
        break;
      case state::raw_str:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 1; k < raw_delim.size(); ++k)
            out.raw.back() += text[i + k];
          out.code.back().append(raw_delim.size(), ' ');
          i += raw_delim.size() - 1;
          st = state::code;
        } else {
          out.code.back() += ' ';
        }
        break;
    }
  }
  return out;
}

// --- joined code with line mapping -------------------------------------------

struct joined_code {
  std::string text;                 ///< all code lines joined with '\n'
  std::vector<std::size_t> starts;  ///< offset of each line's first char

  [[nodiscard]] int line_of(std::size_t off) const noexcept {
    const auto it = std::upper_bound(starts.begin(), starts.end(), off);
    return static_cast<int>(it - starts.begin());
  }
};

joined_code join(const std::vector<std::string>& lines) {
  joined_code j;
  for (const auto& l : lines) {
    j.starts.push_back(j.text.size());
    j.text += l;
    j.text += '\n';
  }
  return j;
}

[[nodiscard]] std::size_t skip_spaces(std::string_view t, std::size_t i) noexcept {
  while (i < t.size() &&
         std::isspace(static_cast<unsigned char>(t[i])) != 0)
    ++i;
  return i;
}

/// First non-space position at or before `i` (walking left); npos when none.
[[nodiscard]] std::size_t prev_nonspace(std::string_view t, std::size_t i) noexcept {
  while (i != std::string_view::npos &&
         (i >= t.size() || std::isspace(static_cast<unsigned char>(t[i])) != 0))
    i = i == 0 ? std::string_view::npos : i - 1;
  return i;
}

/// Iterates identifier tokens of `t`, calling fn(token, start_offset).
template <typename Fn>
void for_each_ident(std::string_view t, Fn&& fn) {
  std::size_t i = 0;
  while (i < t.size()) {
    if (ident_char(t[i]) &&
        std::isdigit(static_cast<unsigned char>(t[i])) == 0) {
      std::size_t j = i;
      while (j < t.size() && ident_char(t[j])) ++j;
      fn(t.substr(i, j - i), i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(t[i])) != 0) {
      while (i < t.size() && ident_char(t[i])) ++i;  // skip number tokens whole
    } else {
      ++i;
    }
  }
}

/// Matches a decimal floating-point literal at `i`; returns one past its
/// end, or npos when `t[i...]` is not one.  (Hex floats are not used in
/// this tree and are not matched.)
[[nodiscard]] std::size_t match_float_literal(std::string_view t,
                                              std::size_t i) noexcept {
  std::size_t j = i;
  bool digits = false;
  bool dot = false;
  bool exp = false;
  while (j < t.size() && std::isdigit(static_cast<unsigned char>(t[j])) != 0) {
    ++j;
    digits = true;
  }
  if (j < t.size() && t[j] == '.') {
    dot = true;
    ++j;
    while (j < t.size() && std::isdigit(static_cast<unsigned char>(t[j])) != 0) {
      ++j;
      digits = true;
    }
  }
  if (digits && j < t.size() && (t[j] == 'e' || t[j] == 'E')) {
    std::size_t k = j + 1;
    if (k < t.size() && (t[k] == '+' || t[k] == '-')) ++k;
    if (k < t.size() && std::isdigit(static_cast<unsigned char>(t[k])) != 0) {
      while (k < t.size() && std::isdigit(static_cast<unsigned char>(t[k])) != 0)
        ++k;
      j = k;
      exp = true;
    }
  }
  if (!digits || !(dot || exp)) return std::string_view::npos;
  while (j < t.size() && (t[j] == 'f' || t[j] == 'F' || t[j] == 'l' || t[j] == 'L'))
    ++j;
  return j;
}

// --- suppressions ------------------------------------------------------------

struct suppressions {
  /// line (1-based) -> rules allowed on that line.
  std::map<int, std::set<std::string>> allowed;
  /// Inclusive [open, close] line spans declared nonblocking via
  /// region(nonblocking) / endregion(nonblocking) markers.
  std::vector<std::pair<int, int>> nonblocking;
  std::vector<finding> bad;  ///< malformed suppression comments

  [[nodiscard]] bool allows(int line, std::string_view rule) const {
    const auto it = allowed.find(line);
    return it != allowed.end() && it->second.count(std::string{rule}) != 0;
  }
  [[nodiscard]] bool in_nonblocking(int line) const noexcept {
    for (const auto& [b, e] : nonblocking)
      if (line >= b && line <= e) return true;
    return false;
  }
};

suppressions parse_suppressions(std::string_view path, const stripped_file& f) {
  suppressions s;
  static constexpr std::string_view k_marker = "opwat-lint:";
  std::vector<int> region_stack;  // open lines of region(nonblocking)
  for (std::size_t li = 0; li < f.comment.size(); ++li) {
    const std::string& c = f.comment[li];
    const auto m = c.find(k_marker);
    if (m == std::string::npos) continue;
    const int line = static_cast<int>(li) + 1;
    const auto bad = [&](const std::string& why) {
      s.bad.push_back({std::string{path}, line, "bad-suppression", why});
    };
    std::size_t i = skip_spaces(c, m + k_marker.size());
    static constexpr std::string_view k_allow = "allow(";
    static constexpr std::string_view k_region = "region(";
    static constexpr std::string_view k_endregion = "endregion(";
    // Region markers: "region(nonblocking): <reason>" opens a span in
    // which the blocking-in-handler and throw-in-noexcept rules are
    // active; "endregion(nonblocking)" closes it.
    if (c.compare(i, k_region.size(), k_region) == 0 ||
        c.compare(i, k_endregion.size(), k_endregion) == 0) {
      const bool opening = c.compare(i, k_region.size(), k_region) == 0;
      i += opening ? k_region.size() : k_endregion.size();
      const auto close = c.find(')', i);
      if (close == std::string::npos) {
        bad("unterminated region(...) marker");
        continue;
      }
      const std::string name = c.substr(i, close - i);
      if (name != "nonblocking") {
        bad("unknown region \"" + name + "\" — only region(nonblocking) exists");
        continue;
      }
      if (opening) {
        const std::size_t r = skip_spaces(c, close + 1);
        if (r >= c.size() || c[r] != ':' || skip_spaces(c, r + 1) >= c.size()) {
          bad("region(nonblocking) carries no reason — write "
              "\"region(nonblocking): <what this span guarantees>\"");
          continue;
        }
        region_stack.push_back(line);
      } else {
        if (region_stack.empty()) {
          bad("endregion(nonblocking) without a matching region marker");
          continue;
        }
        s.nonblocking.emplace_back(region_stack.back(), line);
        region_stack.pop_back();
      }
      continue;
    }
    if (c.compare(i, k_allow.size(), k_allow) != 0) {
      bad("expected \"opwat-lint: allow(<rule>): <reason>\" or a "
          "region(nonblocking) marker");
      continue;
    }
    i += k_allow.size();
    const auto close = c.find(')', i);
    if (close == std::string::npos) {
      bad("unterminated allow(...) rule list");
      continue;
    }
    // Split the comma-separated rule list.
    std::set<std::string> rules;
    bool ok = true;
    std::size_t start = i;
    for (std::size_t j = i; j <= close && ok; ++j) {
      if (j == close || c[j] == ',') {
        std::size_t b = skip_spaces(c, start);
        std::size_t e = j;
        while (e > b && std::isspace(static_cast<unsigned char>(c[e - 1])) != 0)
          --e;
        const std::string rule = c.substr(b, e - b);
        const auto& known = rule_ids();
        if (std::find(known.begin(), known.end(), rule) == known.end()) {
          bad("unknown rule \"" + rule + "\" in allow(...)");
          ok = false;
        } else {
          rules.insert(rule);
        }
        start = j + 1;
      }
    }
    if (!ok) continue;
    std::size_t r = skip_spaces(c, close + 1);
    if (r >= c.size() || c[r] != ':' ||
        skip_spaces(c, r + 1) >= c.size()) {
      bad("suppression carries no reason — write \"allow(" +
          *rules.begin() + "): <why this is safe>\"");
      continue;
    }
    // A trailing comment suppresses its own line; a whole-line comment
    // suppresses the next line that holds code (so a suppression whose
    // reason wraps onto further comment lines still lands on the loop).
    const bool whole_line =
        skip_spaces(f.code[li], 0) >= f.code[li].size();
    std::size_t target = li;
    if (whole_line) {
      target = li + 1;
      while (target < f.code.size() &&
             skip_spaces(f.code[target], 0) >= f.code[target].size())
        ++target;
    }
    s.allowed[static_cast<int>(target) + 1].insert(rules.begin(), rules.end());
  }
  for (const int open : region_stack)
    s.bad.push_back({std::string{path}, open, "bad-suppression",
                     "region(nonblocking) is never closed — add "
                     "\"opwat-lint: endregion(nonblocking)\""});
  return s;
}

// --- rule helpers ------------------------------------------------------------

struct rule_ctx {
  std::string_view path;
  file_kind kind = file_kind::other;
  const stripped_file* file = nullptr;
  const joined_code* code = nullptr;
  const suppressions* supp = nullptr;
  std::vector<finding>* out = nullptr;

  void emit(int line, std::string rule, std::string message) const {
    const auto it = supp->allowed.find(line);
    if (it != supp->allowed.end() && it->second.count(rule) != 0) return;
    out->push_back({std::string{path}, line, std::move(rule), std::move(message)});
  }
};

void check_nondeterminism(const rule_ctx& ctx) {
  static const std::set<std::string_view> banned = {
      "rand",   "srand",   "rand_r",        "drand48",       "lrand48",
      "mrand48", "random_shuffle", "random_device",
  };
  const auto& t = ctx.code->text;
  for_each_ident(t, [&](std::string_view id, std::size_t off) {
    const int line = ctx.code->line_of(off);
    if (banned.count(id) != 0) {
      ctx.emit(line, "nondeterminism",
               "banned randomness source \"" + std::string{id} +
                   "\" — draw from a util::rng stream instead");
    } else if (id == "system_clock") {
      ctx.emit(line, "nondeterminism",
               "std::chrono::system_clock reads the wall clock — pass "
               "timestamps in as explicit inputs");
    } else if (id == "time") {
      const auto nx = skip_spaces(t, off + id.size());
      if (nx < t.size() && t[nx] == '(')
        ctx.emit(line, "nondeterminism",
                 "time() reads the wall clock — pass timestamps in as "
                 "explicit inputs");
    }
  });
}

void check_bare_assert(const rule_ctx& ctx) {
  const auto& t = ctx.code->text;
  for_each_ident(t, [&](std::string_view id, std::size_t off) {
    if (id != "assert") return;
    const auto nx = skip_spaces(t, off + id.size());
    if (nx < t.size() && t[nx] == '(')
      ctx.emit(ctx.code->line_of(off), "bare-assert",
               "bare assert() compiles out in Release — use OPWAT_ASSERT / "
               "OPWAT_INVARIANT from opwat/util/contracts.hpp");
  });
}

void check_float_compare(const rule_ctx& ctx) {
  const auto& t = ctx.code->text;
  static constexpr std::string_view k_op_neighbors = "<>=!&|^+-*/%";
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!((t[i] == '=' || t[i] == '!') && t[i + 1] == '=')) continue;
    if (i + 2 < t.size() && t[i + 2] == '=') continue;
    if (i > 0 && k_op_neighbors.find(t[i - 1]) != std::string_view::npos)
      continue;
    bool literal = false;
    // Right operand: a float literal directly after the operator?
    const auto r = skip_spaces(t, i + 2);
    if (r < t.size() && match_float_literal(t, r) != std::string_view::npos)
      literal = true;
    // Left operand: walk back over the token and re-match forward.
    if (!literal && i >= 1) {
      auto e = prev_nonspace(t, i - 1);
      if (e != std::string_view::npos) {
        auto b = e;
        static constexpr std::string_view k_lit_chars = "0123456789.eEfFlL+-";
        while (b > 0 && k_lit_chars.find(t[b - 1]) != std::string_view::npos)
          --b;
        for (std::size_t p = b; p <= e && !literal; ++p)
          literal = match_float_literal(t, p) == e + 1;
      }
    }
    if (literal)
      ctx.emit(ctx.code->line_of(i), "float-compare",
               "exact floating-point comparison against a literal — compare "
               "with a tolerance, or annotate why exactness is intended");
  }
}

/// Balanced <...> skip starting at the '<'; returns one past the
/// matching '>', or npos when unbalanced.
[[nodiscard]] std::size_t skip_template_args(std::string_view t,
                                             std::size_t i) noexcept {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i] == '<') ++depth;
    else if (t[i] == '>' && --depth == 0) return i + 1;
    else if (t[i] == ';') break;  // a stray '<' was a comparison, bail
  }
  return std::string_view::npos;
}

std::set<std::string> collect_unordered_names(const joined_code& code) {
  const auto& t = code.text;
  std::set<std::string> type_tokens = {"unordered_map", "unordered_set",
                                       "unordered_multimap",
                                       "unordered_multiset"};
  // Aliases: `using X = ...unordered_...;` (covers template aliases).
  for_each_ident(t, [&](std::string_view id, std::size_t off) {
    if (id != "using") return;
    auto i = skip_spaces(t, off + id.size());
    std::size_t j = i;
    while (j < t.size() && ident_char(t[j])) ++j;
    if (j == i) return;
    const std::string alias{t.substr(i, j - i)};
    const auto eq = skip_spaces(t, j);
    if (eq >= t.size() || t[eq] != '=') return;
    const auto semi = t.find(';', eq);
    if (semi == std::string_view::npos) return;
    if (t.substr(eq, semi - eq).find("unordered_") != std::string_view::npos)
      type_tokens.insert(alias);
  });
  // Declarations: <type-token> [<...>] [&*]* name  where name is
  // followed by ; = { ( , or ).
  std::set<std::string> names;
  for_each_ident(t, [&](std::string_view id, std::size_t off) {
    if (type_tokens.count(std::string{id}) == 0) return;
    auto i = skip_spaces(t, off + id.size());
    if (i < t.size() && t[i] == '<') {
      i = skip_template_args(t, i);
      if (i == std::string_view::npos) return;
      i = skip_spaces(t, i);
    }
    while (i < t.size() && (t[i] == '&' || t[i] == '*')) i = skip_spaces(t, i + 1);
    if (i >= t.size() || !ident_char(t[i]) ||
        std::isdigit(static_cast<unsigned char>(t[i])) != 0)
      return;
    std::size_t j = i;
    while (j < t.size() && ident_char(t[j])) ++j;
    const auto nx = skip_spaces(t, j);
    if (nx < t.size() && (t[nx] == ';' || t[nx] == '=' || t[nx] == '{' ||
                          t[nx] == '(' || t[nx] == ',' || t[nx] == ')'))
      names.insert(std::string{t.substr(i, j - i)});
  });
  names.insert(type_tokens.begin(), type_tokens.end());
  return names;
}

void check_unordered_iter(const rule_ctx& ctx,
                          const std::set<std::string>& unordered) {
  const auto& t = ctx.code->text;
  for_each_ident(t, [&](std::string_view id, std::size_t off) {
    if (id != "for") return;
    auto open = skip_spaces(t, off + id.size());
    if (open >= t.size() || t[open] != '(') return;
    // Find the matching ')' and a top-level ':' (range-for separator).
    int depth = 0;
    std::size_t colon = std::string_view::npos;
    std::size_t close = std::string_view::npos;
    for (std::size_t i = open; i < t.size(); ++i) {
      const char c = t[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      else if (c == ')' || c == ']' || c == '}') {
        if (--depth == 0 && c == ')') {
          close = i;
          break;
        }
      } else if (c == ':' && depth == 1 && colon == std::string_view::npos) {
        const bool dbl = (i > 0 && t[i - 1] == ':') ||
                         (i + 1 < t.size() && t[i + 1] == ':');
        if (!dbl) colon = i;
      }
    }
    if (close == std::string_view::npos || colon == std::string_view::npos)
      return;  // classic for, or unterminated
    const auto range_expr = t.substr(colon + 1, close - colon - 1);
    std::string hit;
    for_each_ident(range_expr, [&](std::string_view rid, std::size_t) {
      if (hit.empty() && unordered.count(std::string{rid}) != 0)
        hit = std::string{rid};
    });
    if (!hit.empty())
      ctx.emit(ctx.code->line_of(off), "unordered-iter",
               "range-for over unordered container \"" + hit +
                   "\" — iteration order is unspecified; accumulate into an "
                   "ordered structure or sort the results, then annotate why "
                   "the loop is order-insensitive");
  });
}

void check_include_hygiene(const rule_ctx& ctx) {
  const auto& f = *ctx.file;
  const bool is_header = ctx.path.size() >= 4 &&
                         (ctx.path.ends_with(".hpp") || ctx.path.ends_with(".h"));
  // Headers must open with #pragma once (comments/blank lines aside).
  if (is_header) {
    bool ok = false;
    for (const auto& l : f.code) {
      const auto i = skip_spaces(l, 0);
      if (i >= l.size()) continue;
      ok = l.compare(i, 12, "#pragma once") == 0;
      break;
    }
    if (!ok)
      ctx.emit(1, "include-hygiene",
               "header's first directive must be #pragma once");
  }
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    // The path in an #include is a literal (blanked in code), so detect
    // the directive in code and read the path from the raw line.
    const auto& cl = f.code[li];
    auto i = skip_spaces(cl, 0);
    if (i >= cl.size() || cl[i] != '#') continue;
    i = skip_spaces(cl, i + 1);
    if (cl.compare(i, 7, "include") != 0) continue;
    const auto& raw = f.raw[li];
    const int line = static_cast<int>(li) + 1;
    const auto q1 = raw.find_first_of("\"<", i + 7);
    if (q1 == std::string::npos) continue;
    const char closing = raw[q1] == '"' ? '"' : '>';
    const auto q2 = raw.find(closing, q1 + 1);
    if (q2 == std::string::npos) continue;
    const std::string inc = raw.substr(q1 + 1, q2 - q1 - 1);
    if (inc.rfind("../", 0) == 0 || inc.find("/../") != std::string::npos)
      ctx.emit(line, "include-hygiene",
               "parent-relative #include \"" + inc +
                   "\" — include from the source root instead");
    else if (ctx.kind == file_kind::source && closing == '"' &&
             inc.rfind("opwat/", 0) != 0)
      ctx.emit(line, "include-hygiene",
               "quoted include \"" + inc +
                   "\" in src/ must be rooted at opwat/");
    if ((ctx.kind == file_kind::source || ctx.kind == file_kind::tool) &&
        (inc == "cassert" || inc == "assert.h"))
      ctx.emit(line, "bare-assert",
               "#include <" + inc +
                   "> — use opwat/util/contracts.hpp (OPWAT_ASSERT) instead");
  }
}

// --- concurrency / wire-safety rules -----------------------------------------

/// raw-lock: manual .lock()/.unlock() (and the shared/try variants) are
/// banned everywhere — locks are held through the RAII guards in
/// opwat/util/annotations.hpp, which clang's thread-safety analysis can
/// follow.  The guard implementations themselves carry allow()s.
void check_raw_lock(const rule_ctx& ctx) {
  static const std::set<std::string_view> methods = {
      "lock",        "unlock",        "try_lock",
      "lock_shared", "unlock_shared", "try_lock_shared",
  };
  const auto& t = ctx.code->text;
  for_each_ident(t, [&](std::string_view id, std::size_t off) {
    if (methods.count(id) == 0) return;
    // Must be a member call: `.lock(` or `->lock(`.
    if (off == 0) return;
    const auto p = prev_nonspace(t, off - 1);
    if (p == std::string_view::npos) return;
    const bool member = t[p] == '.' || (t[p] == '>' && p > 0 && t[p - 1] == '-');
    if (!member) return;
    const auto nx = skip_spaces(t, off + id.size());
    if (nx >= t.size() || t[nx] != '(') return;
    ctx.emit(ctx.code->line_of(off), "raw-lock",
             "manual ." + std::string{id} +
                 "() — hold locks through the RAII guards in "
                 "opwat/util/annotations.hpp (util::mutex_lock / "
                 "writer_lock / reader_lock) so the thread-safety "
                 "analysis can see the critical section");
  });
}

/// blocking-in-handler: inside a declared `region(nonblocking)` span
/// (the portal acceptor and worker hot paths), unbounded blocking
/// primitives are banned.  The bounded wrappers net::send_all /
/// net::recv_some tokenize differently and pass.
void check_blocking_in_handler(const rule_ctx& ctx) {
  static const std::set<std::string_view> calls = {
      "poll",      "ppoll",     "select",     "pselect",  "epoll_wait",
      "sleep",     "usleep",    "nanosleep",  "sleep_for", "sleep_until",
      "join",      "wait",      "wait_for",   "wait_until",
      "system",    "popen",     "fopen",      "fread",    "fwrite",
      "fsync",     "getline",   "read",       "write",    "pread",
      "pwrite",    "send",      "recv",       "sendto",   "recvfrom",
      "sendmsg",   "recvmsg",   "connect",
  };
  static const std::set<std::string_view> types = {"ifstream", "ofstream",
                                                   "fstream"};
  if (ctx.supp->nonblocking.empty()) return;
  const auto& t = ctx.code->text;
  for_each_ident(t, [&](std::string_view id, std::size_t off) {
    const int line = ctx.code->line_of(off);
    if (!ctx.supp->in_nonblocking(line)) return;
    if (types.count(id) != 0) {
      ctx.emit(line, "blocking-in-handler",
               "file stream \"" + std::string{id} +
                   "\" inside a nonblocking region — handlers may not do "
                   "file I/O");
      return;
    }
    if (calls.count(id) == 0) return;
    const auto nx = skip_spaces(t, off + id.size());
    if (nx >= t.size() || t[nx] != '(') return;
    ctx.emit(line, "blocking-in-handler",
             "call to \"" + std::string{id} +
                 "\" inside a nonblocking region — only bounded "
                 "primitives (net::send_all / net::recv_some with a "
                 "timeout) may block here");
  });
}

/// throw-in-noexcept: a lexical `throw` inside the body of a noexcept
/// function is std::terminate waiting to happen (the PR 7 send_all bug
/// class); a `throw` inside a nonblocking region violates the acceptor
/// and worker never-throw contracts.  Direct throws only — a callee
/// that throws through a noexcept frame is the thread-safety lane's and
/// the fuzzers' job to catch.
void check_throw_in_noexcept(const rule_ctx& ctx) {
  const auto& t = ctx.code->text;
  const bool full = ctx.kind == file_kind::source || ctx.kind == file_kind::tool;
  // Part 1: throw inside a declared nonblocking region (any file kind).
  if (!ctx.supp->nonblocking.empty()) {
    for_each_ident(t, [&](std::string_view id, std::size_t off) {
      if (id != "throw") return;
      const int line = ctx.code->line_of(off);
      if (ctx.supp->in_nonblocking(line))
        ctx.emit(line, "throw-in-noexcept",
                 "throw inside a nonblocking region — these handlers run "
                 "under a never-throw contract; return a typed error "
                 "instead");
    });
  }
  if (!full) return;
  // Part 2: throw lexically inside a noexcept function body.
  for_each_ident(t, [&](std::string_view id, std::size_t off) {
    if (id != "noexcept") return;
    std::size_t i = skip_spaces(t, off + id.size());
    // noexcept(expr) — the conditional specifier or the operator; both
    // are out of scope for the lexical pass.
    if (i < t.size() && t[i] == '(') return;
    // Scan ahead for the function body's '{' at paren depth 0; a ';' or
    // '=' first means declaration-only / =default / =delete.
    int pdepth = 0;
    std::size_t body = std::string_view::npos;
    for (; i < t.size(); ++i) {
      const char c = t[i];
      if (c == '(') ++pdepth;
      else if (c == ')') --pdepth;
      else if (pdepth == 0 && (c == ';' || c == '=')) return;
      else if (pdepth == 0 && c == '{') {
        body = i;
        break;
      }
    }
    if (body == std::string_view::npos) return;
    // A ctor's member-init list puts brace-initializers before the real
    // body: keep consuming balanced groups while another '{' (or a ','
    // leading to one) follows; the last group is the body.
    std::size_t open = body;
    std::size_t close = std::string_view::npos;
    while (true) {
      int bdepth = 0;
      std::size_t j = open;
      for (; j < t.size(); ++j) {
        if (t[j] == '{') ++bdepth;
        else if (t[j] == '}' && --bdepth == 0) break;
      }
      if (j >= t.size()) return;  // unbalanced; bail
      close = j;
      std::size_t nx = skip_spaces(t, j + 1);
      bool comma = false;
      if (nx < t.size() && t[nx] == ',') {
        comma = true;
        nx = skip_spaces(t, nx + 1);
      }
      if (nx < t.size() && t[nx] == '{') {
        open = nx;
        continue;
      }
      // Also step over `name{init}` member initializers after a ',' —
      // only after one: initializers are comma-separated, so an ident
      // right after a close brace with no comma is the next declaration
      // (e.g. `namespace {` after a noexcept function), not more of
      // this function.
      if (comma && nx < t.size() && ident_char(t[nx])) {
        std::size_t k = nx;
        while (k < t.size() && (ident_char(t[k]) || t[k] == ':')) ++k;
        k = skip_spaces(t, k);
        if (k < t.size() && (t[k] == '{' || t[k] == '(')) {
          // another initializer; find its '{' and keep going
          const auto nb = t.find('{', nx);
          if (nb == std::string_view::npos) break;
          open = nb;
          continue;
        }
      }
      break;
    }
    const auto body_text = t.substr(open + 1, close - open - 1);
    for_each_ident(body_text, [&](std::string_view bid, std::size_t boff) {
      if (bid != "throw") return;
      ctx.emit(ctx.code->line_of(open + 1 + boff), "throw-in-noexcept",
               "throw inside a noexcept function — an escaping exception "
               "is std::terminate; return an error value or drop the "
               "noexcept");
    });
  });
}

/// wire-safety: in net/ and portal/ (the code that touches bytes from
/// the network), reinterpret_cast, raw memcpy/memmove and unchecked
/// `.data() + offset` pointer arithmetic are banned — decoding goes
/// through the bounds-checked wire::reader.  The handful of kernel-API
/// boundaries carry allow()s with written justification.
[[nodiscard]] bool wire_scope(std::string_view path) noexcept {
  const auto has_segment = [&](std::string_view seg) {
    std::size_t pos = 0;
    while ((pos = path.find(seg, pos)) != std::string_view::npos) {
      const bool starts = pos == 0 || path[pos - 1] == '/';
      const bool ends =
          pos + seg.size() < path.size() && path[pos + seg.size()] == '/';
      if (starts && ends) return true;
      ++pos;
    }
    return false;
  };
  return has_segment("net") || has_segment("portal");
}

void check_wire_safety(const rule_ctx& ctx) {
  if (!wire_scope(ctx.path)) return;
  const auto& t = ctx.code->text;
  for_each_ident(t, [&](std::string_view id, std::size_t off) {
    const int line = ctx.code->line_of(off);
    if (id == "reinterpret_cast") {
      ctx.emit(line, "wire-safety",
               "reinterpret_cast in wire-handling code — decode through "
               "wire::reader / std::bit_cast, or justify the cast with an "
               "allow()");
      return;
    }
    if (id == "memcpy" || id == "memmove") {
      ctx.emit(line, "wire-safety",
               std::string{id} +
                   " from a wire buffer — use wire::reader (bounds-checked) "
                   "or std::bit_cast for fixed-size values");
      return;
    }
    if (id != "data") return;
    // `.data() + k` / `->data() + k`: unchecked pointer arithmetic.
    if (off == 0) return;
    const auto p = prev_nonspace(t, off - 1);
    if (p == std::string_view::npos ||
        !(t[p] == '.' || (t[p] == '>' && p > 0 && t[p - 1] == '-')))
      return;
    auto i = skip_spaces(t, off + id.size());
    if (i >= t.size() || t[i] != '(') return;
    i = skip_spaces(t, i + 1);
    if (i >= t.size() || t[i] != ')') return;
    i = skip_spaces(t, i + 1);
    if (i < t.size() && t[i] == '+' && (i + 1 >= t.size() || t[i + 1] != '+'))
      ctx.emit(line, "wire-safety",
               ".data() + offset arithmetic on a wire buffer — slice with "
               "substr()/subspan() or decode through wire::reader, or "
               "justify the cursor with an allow()");
  });
}

// --- lock-order extraction ---------------------------------------------------

/// RAII guard constructions recognized as mutex acquisitions.
[[nodiscard]] bool guard_type(std::string_view id) noexcept {
  static const std::set<std::string_view> guards = {
      "lock_guard", "unique_lock", "shared_lock", "scoped_lock",
      "mutex_lock", "writer_lock", "reader_lock",
  };
  return guards.count(id) != 0;
}

std::vector<lock_edge> extract_lock_edges(std::string_view path,
                                          const joined_code& code,
                                          const suppressions& supp) {
  static const std::set<std::string_view> tags = {"std", "adopt_lock",
                                                  "defer_lock", "try_to_lock"};
  const auto& t = code.text;
  struct acq {
    std::string name;
    int depth;
  };
  std::vector<acq> active;
  std::vector<lock_edge> edges;
  int depth = 0;
  std::size_t i = 0;
  while (i < t.size()) {
    const char c = t[i];
    if (c == '{') {
      ++depth;
      ++i;
      continue;
    }
    if (c == '}') {
      --depth;
      while (!active.empty() && active.back().depth > depth) active.pop_back();
      ++i;
      continue;
    }
    if (!ident_char(c) || std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (i > 0 && ident_char(t[i - 1]))) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < t.size() && ident_char(t[j])) ++j;
    const auto id = t.substr(i, j - i);
    if (!guard_type(id)) {
      i = j;
      continue;
    }
    // <template args>?  variable-name  ( or {  args  ) or }
    std::size_t k = skip_spaces(t, j);
    if (k < t.size() && t[k] == '<') {
      const auto e = skip_template_args(t, k);
      if (e == std::string_view::npos) {
        i = j;
        continue;
      }
      k = skip_spaces(t, e);
    }
    if (k >= t.size() || !ident_char(t[k]) ||
        std::isdigit(static_cast<unsigned char>(t[k])) != 0) {
      i = j;
      continue;
    }
    std::size_t ne = k;
    while (ne < t.size() && ident_char(t[ne])) ++ne;
    const std::size_t open = skip_spaces(t, ne);
    if (open >= t.size() || (t[open] != '{' && t[open] != '(')) {
      i = j;
      continue;
    }
    // Walk the constructor arguments (nesting tracked so the main
    // depth counter never sees these braces), splitting top-level ','.
    // Slice through a view of `t` — std::string::substr would hand the
    // vector views of destroyed temporaries.
    const std::string_view tv{t};
    int d2 = 0;
    std::size_t p = open;
    std::size_t arg_start = open + 1;
    std::vector<std::string_view> args;
    for (; p < t.size(); ++p) {
      const char a = t[p];
      if (a == '(' || a == '{' || a == '[') {
        ++d2;
      } else if (a == ')' || a == '}' || a == ']') {
        if (--d2 == 0) {
          args.push_back(tv.substr(arg_start, p - arg_start));
          break;
        }
      } else if (a == ',' && d2 == 1) {
        args.push_back(tv.substr(arg_start, p - arg_start));
        arg_start = p + 1;
      }
    }
    if (p >= t.size()) {
      i = j;
      continue;
    }
    const int line = code.line_of(i);
    const bool suppressed = supp.allows(line, "lock-order");
    for (const auto arg : args) {
      // The mutex's identity is the last identifier of the argument
      // expression (`m_`, `conn->write_mu` -> write_mu), skipping the
      // std lock tags.
      std::string name;
      for_each_ident(arg, [&](std::string_view aid, std::size_t) {
        if (tags.count(aid) == 0) name = std::string{aid};
      });
      if (name.empty()) continue;
      for (const auto& h : active)
        if (h.name != name)
          edges.push_back({h.name, name, std::string{path}, line, suppressed});
      active.push_back({std::move(name), depth});
    }
    i = p + 1;
  }
  return edges;
}

/// Cross-TU lock-order pass over the per-file acquisition edges: build
/// the acquisition graph and report every edge that closes a cycle,
/// with the witness chain completing it.
void check_lock_order(const std::vector<lock_edge>& all,
                      std::vector<finding>& out) {
  // One witness per (held, acquired) pair — the lexicographically first
  // site keeps reports deterministic.  Suppressed edges are removed
  // from the graph entirely, so one justified allow() breaks its cycle.
  std::map<std::pair<std::string, std::string>, const lock_edge*> witness;
  for (const auto& e : all) {
    if (e.suppressed) continue;
    auto& w = witness[{e.held, e.acquired}];
    if (w == nullptr || std::tie(e.file, e.line) < std::tie(w->file, w->line))
      w = &e;
  }
  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [key, e] : witness) adj[key.first].insert(key.second);

  for (const auto& [key, e] : witness) {
    const auto& [held, acquired] = key;
    // Does a path acquired ->* held exist?  BFS with parent tracking so
    // the report can name every hop's witness site.
    std::map<std::string, std::string> parent;
    std::vector<std::string> queue{acquired};
    parent[acquired] = acquired;
    bool found = false;
    for (std::size_t qi = 0; qi < queue.size() && !found; ++qi) {
      const auto cur = queue[qi];
      const auto it = adj.find(cur);
      if (it == adj.end()) continue;
      for (const auto& nx : it->second) {
        if (parent.count(nx) != 0) continue;
        parent[nx] = cur;
        if (nx == held) {
          found = true;
          break;
        }
        queue.push_back(nx);
      }
    }
    if (!found) continue;
    // Reconstruct acquired -> ... -> held and describe each hop.
    std::vector<std::string> path{held};
    while (path.back() != acquired) path.push_back(parent[path.back()]);
    std::string chain;
    for (std::size_t hop = path.size() - 1; hop > 0; --hop) {
      const auto* w = witness[{path[hop], path[hop - 1]}];
      chain += " \"" + path[hop] + "\" -> \"" + path[hop - 1] + "\" (" +
               w->file + ":" + std::to_string(w->line) + ")";
    }
    out.push_back(
        {e->file, e->line, "lock-order",
         "lock-order cycle: \"" + acquired + "\" is acquired while \"" + held +
             "\" is held here, but the reverse order exists:" + chain +
             " — pick one global order or justify with allow(lock-order)"});
  }
}

// --- failpoint-naming (cross-TU) ---------------------------------------------
// Fault-injection sites form a closed registry
// (util/failpoint_sites.hpp): OPWAT_FAILPOINT("net-sned") compiles fine
// and silently never fires — exactly the failure a chaos harness cannot
// observe.  The rule reads the registry's literals (must be kebab-case
// and unique) and checks every OPWAT_FAILPOINT(...) call site passes a
// registered string literal.  A helper that forwards the site name as a
// parameter carries an allow(failpoint-naming) with its reason.  When
// the registry header is not part of the linted set (partial file
// lists), call sites are still held to literal-ness and kebab-case,
// just not to membership.

[[nodiscard]] bool kebab_case(std::string_view s) noexcept {
  if (s.empty() || s.front() == '-' || s.back() == '-') return false;
  for (const char c : s)
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-'))
      return false;
  return s.find("--") == std::string_view::npos;
}

/// Every double-quoted string literal in `text` with its 1-based line —
/// a tiny re-lex, because strip() blanks literal contents.  Char
/// literals and comments never contribute; raw strings are not handled
/// (the registry header has none).
[[nodiscard]] std::vector<std::pair<int, std::string>> string_literals(
    std::string_view text) {
  std::vector<std::pair<int, std::string>> out;
  int line = 1;
  enum class st { code, line_c, block_c, str, chr };
  st s = st::code;
  std::string cur;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      if (s == st::line_c || s == st::str || s == st::chr) s = st::code;
      continue;
    }
    const char nx = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (s) {
      case st::code:
        if (c == '/' && nx == '/') {
          s = st::line_c;
          ++i;
        } else if (c == '/' && nx == '*') {
          s = st::block_c;
          ++i;
        } else if (c == '"') {
          s = st::str;
          cur.clear();
        } else if (c == '\'') {
          s = st::chr;
        }
        break;
      case st::line_c:
        break;
      case st::block_c:
        if (c == '*' && nx == '/') {
          s = st::code;
          ++i;
        }
        break;
      case st::str:
        if (c == '\\' && nx != '\0') {
          cur += nx;
          ++i;
        } else if (c == '"') {
          out.emplace_back(line, cur);
          s = st::code;
        } else {
          cur += c;
        }
        break;
      case st::chr:
        if (c == '\\' && nx != '\0') {
          ++i;
        } else if (c == '\'') {
          s = st::code;
        }
        break;
    }
  }
  return out;
}

/// Whether the registry header is this file (by basename, so absolute
/// and repo-relative paths agree).
[[nodiscard]] bool is_failpoint_registry(std::string_view path) noexcept {
  const auto slash = path.rfind('/');
  const auto base = slash == std::string_view::npos ? path : path.substr(slash + 1);
  return base == "failpoint_sites.hpp";
}

void check_failpoint_naming(const std::vector<file_input>& files,
                            std::vector<finding>& out) {
  static constexpr std::string_view k_macro = "OPWAT_FAILPOINT(";
  // Pass 1: the registry's own names — kebab-case and unique.
  std::set<std::string> sites;
  bool have_registry = false;
  for (const auto& fi : files) {
    if (!is_failpoint_registry(fi.path)) continue;
    have_registry = true;
    const auto f = strip(fi.text);
    const auto supp = parse_suppressions(fi.path, f);
    for (const auto& [line, lit] : string_literals(fi.text)) {
      // Preprocessor lines (include paths) are not site names.
      const std::string& cl = f.code[static_cast<std::size_t>(line) - 1];
      const auto b = skip_spaces(cl, 0);
      if (b < cl.size() && cl[b] == '#') continue;
      if (supp.allows(line, "failpoint-naming")) continue;
      if (!kebab_case(lit))
        out.push_back({fi.path, line, "failpoint-naming",
                       "failpoint site \"" + lit +
                           "\" is not kebab-case — lower-case words joined "
                           "by single '-'"});
      else if (!sites.insert(lit).second)
        out.push_back({fi.path, line, "failpoint-naming",
                       "duplicate failpoint site \"" + lit + "\""});
    }
  }
  // Pass 2: every call site names a registered literal.
  for (const auto& fi : files) {
    if (is_failpoint_registry(fi.path)) continue;
    if (fi.text.find(k_macro) == std::string::npos) continue;
    const auto f = strip(fi.text);
    const auto supp = parse_suppressions(fi.path, f);
    for (std::size_t li = 0; li < f.code.size(); ++li) {
      const std::string& code = f.code[li];
      const std::string& raw = f.raw[li];
      const int line = static_cast<int>(li) + 1;
      // The macro's own #define (and any conditional around it).
      const auto first = skip_spaces(code, 0);
      if (first < code.size() && code[first] == '#') continue;
      std::size_t pos = 0;
      while ((pos = code.find(k_macro, pos)) != std::string::npos) {
        if (pos > 0 && ident_char(code[pos - 1])) {
          ++pos;
          continue;
        }
        const auto emit = [&](std::string msg) {
          if (!supp.allows(line, "failpoint-naming"))
            out.push_back({fi.path, line, "failpoint-naming", std::move(msg)});
        };
        // The argument starts right after '('; literals are blanked in
        // `code`, so read it from the position-aligned `raw` line.
        std::size_t j = pos + k_macro.size();
        while (j < raw.size() && (raw[j] == ' ' || raw[j] == '\t')) ++j;
        if (j >= raw.size() || raw[j] != '"') {
          emit("OPWAT_FAILPOINT argument must be a string literal naming a "
               "site from failpoint_sites.hpp — a forwarded name needs "
               "allow(failpoint-naming) with the reason");
          ++pos;
          continue;
        }
        const auto close = raw.find('"', j + 1);
        if (close == std::string::npos) {
          ++pos;
          continue;  // literal continues past the line — out of scope
        }
        const std::string name = raw.substr(j + 1, close - j - 1);
        if (!kebab_case(name))
          emit("failpoint site \"" + name +
               "\" is not kebab-case — lower-case words joined by single "
               "'-'");
        else if (have_registry && sites.count(name) == 0)
          emit("unknown failpoint site \"" + name +
               "\" — register it in util/failpoint_sites.hpp or fix the "
               "typo");
        ++pos;
      }
    }
  }
}

[[nodiscard]] std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

file_kind classify(std::string_view path) noexcept {
  file_kind kind = file_kind::other;
  std::size_t best = std::string_view::npos;
  const auto consider = [&](std::string_view seg, file_kind k) {
    // Match "seg/" as a full path segment (start of path or after '/').
    std::size_t pos = 0;
    while ((pos = path.find(seg, pos)) != std::string_view::npos) {
      const bool starts = pos == 0 || path[pos - 1] == '/';
      const bool ends = pos + seg.size() < path.size() &&
                        path[pos + seg.size()] == '/';
      if (starts && ends && (best == std::string_view::npos || pos > best)) {
        best = pos;
        kind = k;
      }
      ++pos;
    }
  };
  consider("src", file_kind::source);
  consider("tests", file_kind::test);
  consider("bench", file_kind::bench);
  consider("examples", file_kind::example);
  consider("tools", file_kind::tool);
  return kind;
}

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids = {
      "nondeterminism",      "unordered-iter",
      "float-compare",       "bare-assert",
      "include-hygiene",     "bad-suppression",
      "raw-lock",            "blocking-in-handler",
      "throw-in-noexcept",   "wire-safety",
      "lock-order",          "failpoint-naming",
  };
  return ids;
}

std::set<std::string> unordered_names(std::string_view text) {
  const auto f = strip(text);
  return collect_unordered_names(join(f.code));
}

std::vector<finding> lint_source(std::string_view path, std::string_view text,
                                 const std::set<std::string>& seeded_names) {
  const auto kind = classify(path);
  const auto f = strip(text);
  const auto code = join(f.code);
  const auto supp = parse_suppressions(path, f);

  std::vector<finding> out;
  rule_ctx ctx{path, kind, &f, &code, &supp, &out};

  if (kind == file_kind::source || kind == file_kind::tool) {
    check_nondeterminism(ctx);
    check_bare_assert(ctx);
    check_float_compare(ctx);
  }
  auto names = collect_unordered_names(code);
  names.insert(seeded_names.begin(), seeded_names.end());
  check_unordered_iter(ctx, names);
  check_include_hygiene(ctx);
  // The concurrency and wire rules run for every file kind: locking and
  // byte-handling discipline hold in benches, examples and tests too
  // (nonblocking regions and wire scope are opt-in by marker / path, so
  // they cost nothing where they don't apply).
  check_raw_lock(ctx);
  check_blocking_in_handler(ctx);
  check_throw_in_noexcept(ctx);
  check_wire_safety(ctx);

  out.insert(out.end(), supp.bad.begin(), supp.bad.end());
  std::sort(out.begin(), out.end(), [](const finding& a, const finding& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return out;
}

std::vector<lock_edge> lock_edges(std::string_view path, std::string_view text) {
  const auto f = strip(text);
  const auto code = join(f.code);
  const auto supp = parse_suppressions(path, f);
  return extract_lock_edges(path, code, supp);
}

std::vector<finding> lint_files(const std::vector<file_input>& files) {
  // Companion-header lookup: path minus extension -> unordered names.
  std::map<std::string, std::set<std::string>> header_names;
  for (const auto& f : files) {
    const auto dot = f.path.rfind('.');
    if (dot == std::string::npos) continue;
    const auto ext = f.path.substr(dot);
    if (ext == ".hpp" || ext == ".h")
      header_names[f.path.substr(0, dot)] = unordered_names(f.text);
  }
  std::vector<finding> out;
  std::vector<lock_edge> edges;
  for (const auto& f : files) {
    std::set<std::string> seeded;
    const auto dot = f.path.rfind('.');
    if (dot != std::string::npos) {
      const auto it = header_names.find(f.path.substr(0, dot));
      if (it != header_names.end()) seeded = it->second;
    }
    auto fs = lint_source(f.path, f.text, seeded);
    out.insert(out.end(), fs.begin(), fs.end());
    auto es = lock_edges(f.path, f.text);
    edges.insert(edges.end(), es.begin(), es.end());
  }
  // The cross-TU pass: per-function acquisition nesting from every file
  // composes into one graph; an inversion split across TUs is exactly
  // the deadlock a per-file view cannot see.
  check_lock_order(edges, out);
  check_failpoint_naming(files, out);
  std::sort(out.begin(), out.end(), [](const finding& a, const finding& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return out;
}

std::string to_json(const std::vector<finding>& findings) {
  std::string out = "{\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": \"" + json_escape(f.file) +
           "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"" +
           json_escape(f.rule) + "\", \"message\": \"" + json_escape(f.message) +
           "\"}";
  }
  out += findings.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace opwat::lint
