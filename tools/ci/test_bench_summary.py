#!/usr/bin/env python3
"""Unit tests for tools/ci/bench_summary.py.

Covers the hardening contract: a partial or corrupted artifact download
(missing directory, malformed JSON, bench files with unexpected field
types) degrades the summary with ::warning lines and exit 0 — it never
crashes the gating CI step — while well-formed artifacts still land in
the schema-stable output.

Run directly (python3 tools/ci/test_bench_summary.py) or via ctest
(bench_summary_py).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_summary.py")


def run_summary(in_dir, out_path):
    return subprocess.run(
        [sys.executable, SCRIPT, in_dir, out_path],
        capture_output=True, text=True, check=False)


class BenchSummaryTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)
        self.in_dir = os.path.join(self.tmp.name, "collected")
        self.out = os.path.join(self.tmp.name, "bench_summary.json")
        os.makedirs(self.in_dir)

    def write(self, name, content):
        path = os.path.join(self.in_dir, name)
        with open(path, "w", encoding="utf-8") as fh:
            if isinstance(content, str):
                fh.write(content)
            else:
                json.dump(content, fh)
        return path

    def summary(self):
        with open(self.out, encoding="utf-8") as fh:
            return json.load(fh)

    def test_happy_path_portal_load(self):
        self.write("portal_load.json", {
            "bench": "portal_load",
            "phases": [
                {"mode": "closed_loop", "p50_us": 110.0, "p99_us": 420.0,
                 "qps": 81234.5},
                {"mode": "open_loop", "p50_us": 95.0, "p99_us": 300.0,
                 "qps": 8000.0},
            ],
        })
        res = run_summary(self.in_dir, self.out)
        self.assertEqual(res.returncode, 0, res.stderr)
        shapes = self.summary()["sources"]["portal_load"]
        self.assertEqual(sorted(shapes), ["closed_loop", "open_loop"])
        self.assertAlmostEqual(shapes["closed_loop"]["qps"], 81234.5)

    def test_missing_input_dir_warns_and_writes_empty_summary(self):
        res = run_summary(os.path.join(self.tmp.name, "nope"), self.out)
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertIn("::warning", res.stdout)
        self.assertEqual(self.summary(), {"schema": 1, "sources": {}})

    def test_malformed_json_is_skipped_with_warning(self):
        self.write("broken.json", "{not json at all")
        self.write("ok.json", {"bench": "x", "p50_us": 1.0, "p99_us": 2.0,
                               "qps": 3.0})
        res = run_summary(self.in_dir, self.out)
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertIn("::warning", res.stdout)
        self.assertIn("broken.json", res.stdout)
        # The well-formed file still lands in the summary.
        self.assertIn("x", self.summary()["sources"])

    def test_wrong_field_types_are_skipped_with_warning(self):
        self.write("bad_types.json", {
            "bench": "catalog_query",
            "queries": [{"query": "member", "p50_ms": "fast",
                         "p99_ms": 2.0, "queries_per_sec": 10.0}],
        })
        res = run_summary(self.in_dir, self.out)
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertIn("::warning", res.stdout)
        self.assertNotIn("catalog_query", self.summary()["sources"])

    def test_non_bench_json_is_silently_ignored(self):
        self.write("gbench_dump.json", {"context": {}, "benchmarks": []})
        res = run_summary(self.in_dir, self.out)
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertNotIn("::warning", res.stdout)
        self.assertEqual(self.summary()["sources"], {})

    def test_empty_tree_exits_zero_with_placeholder_table(self):
        res = run_summary(self.in_dir, self.out)
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertIn("no bench artifacts found", res.stdout)


if __name__ == "__main__":
    unittest.main()
