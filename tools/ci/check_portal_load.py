#!/usr/bin/env python3
"""Threshold gate for the CI load-smoke lane (bench_portal_load output).

Hard failures (exit 1) — correctness, never flaky on slow runners:
  * any phase reporting protocol_errors > 0 or errors > 0;
  * any shed response at tiny scale (the open-loop target is set far
    below capacity there, so a shed means admission control misfired).

Soft failures (GitHub ::warning annotations, exit 0) — performance
numbers that depend on runner hardware:
  * closed-loop QPS below the floor (OPWAT_QPS_FLOOR, default 50000);
  * closed-loop p99 above the ceiling (OPWAT_P99_CEILING_US, 5000).

With the optional second argument (the server's /stats JSON, captured
by the workflow while opwatd is still up), the server-side counters are
gated too: every expected counter key must be present, and
accept_errors must be exactly 0 — an EMFILE/ENFILE burst in the
acceptor is a correctness failure even when every client-side request
still succeeded.

Usage: check_portal_load.py portal_load.json [server_stats.json]
"""

import json
import os
import sys

# Counters the portal server's /stats endpoint must expose; a missing
# key means the debug surface regressed, which would blind this gate.
SERVER_COUNTER_KEYS = (
    "connections_accepted",
    "requests_admitted",
    "responses_ok",
    "responses_error",
    "shed_queue_full",
    "shed_pipeline",
    "protocol_errors",
    "accept_errors",
    "cache_hits",
    "cache_misses",
    "parallel_scans",
    "morsels_executed",
    # Self-healing surface: the load lane runs against a healthy
    # snapshot, so beyond presence the degraded flag must be 0 here.
    "degraded",
    "quarantined_epochs",
    "bytes_truncated",
    "reload_failures",
)


def check_server_stats(path, hard_failures):
    """Gate the opwatd /stats counters captured during the load run."""
    with open(path, encoding="utf-8") as fh:
        stats = json.load(fh)
    for key in SERVER_COUNTER_KEYS:
        if key not in stats:
            hard_failures.append(f"server stats: counter {key!r} missing")
    if stats.get("accept_errors", 0) > 0:
        hard_failures.append(
            f"server stats: {stats['accept_errors']} accept error(s) — "
            "the acceptor hit accept()/fd failures during the run")
    if stats.get("degraded", 0) != 0:
        hard_failures.append(
            "server stats: serving degraded — the load snapshot needed "
            "recovery, which this lane never injects")
    print("server: " + " ".join(
        f"{k}={stats[k]}" for k in SERVER_COUNTER_KEYS if k in stats))


def main() -> int:
    if len(sys.argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as fh:
        data = json.load(fh)

    qps_floor = float(os.environ.get("OPWAT_QPS_FLOOR", "50000"))
    p99_ceiling_us = float(os.environ.get("OPWAT_P99_CEILING_US", "5000"))
    tiny = data.get("scale") == "tiny"

    hard_failures = []
    for phase in data.get("phases", []):
        mode = phase.get("mode", "?")
        if phase.get("protocol_errors", 0) > 0:
            hard_failures.append(
                f"{mode}: {phase['protocol_errors']} protocol error(s)")
        if phase.get("errors", 0) > 0:
            hard_failures.append(f"{mode}: {phase['errors']} error response(s)")
        if tiny and phase.get("shed", 0) > 0:
            hard_failures.append(
                f"{mode}: {phase['shed']} shed response(s) at tiny scale")
        print(f"{mode}: qps={phase.get('qps', 0):.0f} "
              f"p50={phase.get('p50_us', 0):.1f}us "
              f"p99={phase.get('p99_us', 0):.1f}us "
              f"p999={phase.get('p999_us', 0):.1f}us "
              f"shed={phase.get('shed', 0)} errors={phase.get('errors', 0)}")

    closed = next((p for p in data.get("phases", [])
                   if p.get("mode") == "closed_loop"), None)
    if closed is None:
        hard_failures.append("no closed_loop phase in the report")
    else:
        if closed.get("qps", 0) < qps_floor:
            print(f"::warning title=portal load below QPS floor::"
                  f"closed-loop {closed['qps']:.0f} qps < floor "
                  f"{qps_floor:.0f} (soft: runner-hardware dependent)")
        if closed.get("p99_us", 0) > p99_ceiling_us:
            print(f"::warning title=portal p99 above ceiling::"
                  f"closed-loop p99 {closed['p99_us']:.0f}us > ceiling "
                  f"{p99_ceiling_us:.0f}us (soft: runner-hardware dependent)")

    if len(sys.argv) == 3:
        check_server_stats(sys.argv[2], hard_failures)

    if hard_failures:
        for f in hard_failures:
            print(f"::error title=portal load-smoke hard failure::{f}")
        return 1
    print("portal load-smoke thresholds OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
