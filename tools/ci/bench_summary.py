#!/usr/bin/env python3
"""Collects every bench JSON artifact into one bench_summary.json with a
stable schema plus a markdown table for $GITHUB_STEP_SUMMARY.

Input: a directory tree holding the OPWAT_BENCH_JSON outputs (the CI
bench-summary job downloads all artifacts there).  Any *.json file whose
top level carries a "bench" key is picked up; files without one (gbench
dumps, result digests) are ignored.  A missing input directory, a
malformed JSON file, or a bench file whose fields have unexpected types
each produce a ::warning and are skipped — a partial artifact download
must degrade the table, never crash the job (the summary is a gating
step behind every bench lane).

Output schema (consumed by trajectory tooling — keep it stable; bump
"schema" on breaking changes):

  {"schema": 1,
   "sources": {
     "<bench>": {
       "<shape>": {"p50_us": float|null,
                   "p99_us": float|null,
                   "qps": float|null}}}}

Per-bench shape extraction:
  portal_load       one shape per load phase (closed_loop / open_loop)
  catalog_query     one shape per query workload
  catalog_io        save / load MB/s-style rows have no latency; only the
                    concurrent-serving row carries qps
  parallel_scaling  one shape per thread count (pipeline runs/sec)
  anything else     top-level keys matching p50/p99/qps patterns

Usage: bench_summary.py <input-dir> <output-json>
"""

import json
import os
import sys


def row(p50_us=None, p99_us=None, qps=None):
    return {
        "p50_us": round(p50_us, 3) if p50_us is not None else None,
        "p99_us": round(p99_us, 3) if p99_us is not None else None,
        "qps": round(qps, 1) if qps is not None else None,
    }


def extract(data):
    """bench JSON dict -> {shape: row}."""
    bench = data["bench"]
    shapes = {}
    if bench == "portal_load":
        for phase in data.get("phases", []):
            shapes[phase.get("mode", "?")] = row(
                p50_us=phase.get("p50_us"),
                p99_us=phase.get("p99_us"),
                qps=phase.get("qps"))
    elif bench == "catalog_query":
        for q in data.get("queries", []):
            p50_ms, p99_ms = q.get("p50_ms"), q.get("p99_ms")
            shapes[q.get("query", "?")] = row(
                p50_us=p50_ms * 1000.0 if p50_ms is not None else None,
                p99_us=p99_ms * 1000.0 if p99_ms is not None else None,
                qps=q.get("queries_per_sec"))
    elif bench == "catalog_io":
        conc = data.get("concurrent", {})
        if "queries_per_sec" in conc:
            shapes["concurrent_serving"] = row(qps=conc["queries_per_sec"])
    elif bench == "parallel_scaling":
        for r in data.get("results", []):
            ms = r.get("ms")
            shapes[f"threads_{r.get('threads', '?')}"] = row(
                qps=1000.0 / ms if ms else None)
    else:
        # Generic fallback: top-level latency/throughput keys.
        p50 = data.get("p50_us")
        p99 = data.get("p99_us")
        qps = data.get("qps", data.get("queries_per_sec"))
        if any(v is not None for v in (p50, p99, qps)):
            shapes["default"] = row(p50_us=p50, p99_us=p99, qps=qps)
    return shapes


def fmt(v):
    return "-" if v is None else f"{v:,.1f}"


def warn(title, message):
    print(f"::warning title={title}::{message}")


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    in_dir, out_path = sys.argv[1], sys.argv[2]

    if not os.path.isdir(in_dir):
        warn("bench-summary input missing",
             f"input directory {in_dir!r} does not exist; "
             "writing an empty summary")

    sources = {}
    for root, _dirs, files in sorted(os.walk(in_dir)):
        for name in sorted(files):
            if not name.endswith(".json"):
                continue
            path = os.path.join(root, name)
            try:
                with open(path, encoding="utf-8") as fh:
                    data = json.load(fh)
            except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
                warn("bench-summary skipped a file",
                     f"{path}: unreadable or malformed JSON ({exc})")
                continue
            if not isinstance(data, dict) or "bench" not in data:
                continue  # gbench dumps, digests: expected, no warning
            try:
                shapes = extract(data)
            except (TypeError, ValueError, AttributeError, KeyError) as exc:
                warn("bench-summary skipped a file",
                     f"{path}: bench payload has unexpected shape ({exc})")
                continue
            if shapes:
                sources.setdefault(str(data["bench"]), {}).update(shapes)

    summary = {"schema": 1, "sources": sources}
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")

    lines = ["# Bench trajectory", "",
             "| bench | shape | p50 (us) | p99 (us) | qps |",
             "|---|---|---:|---:|---:|"]
    for bench in sorted(sources):
        for shape in sorted(sources[bench]):
            r = sources[bench][shape]
            lines.append(f"| {bench} | {shape} | {fmt(r['p50_us'])} | "
                         f"{fmt(r['p99_us'])} | {fmt(r['qps'])} |")
    if not sources:
        lines.append("| (no bench artifacts found) | | | | |")
    table = "\n".join(lines) + "\n"
    print(table)
    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a", encoding="utf-8") as fh:
            fh.write(table)
    print(f"wrote {out_path} ({sum(len(s) for s in sources.values())} shapes "
          f"from {len(sources)} benches)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
