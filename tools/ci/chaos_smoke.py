#!/usr/bin/env python3
"""Chaos smoke for the self-healing serving path (CI chaos-smoke lane).

Boots opwatd through a scripted sequence of crash-shaped snapshot
damage and deterministic socket-fault schedules (OPWAT_FAILPOINTS) and
asserts the self-healing contracts end to end, from outside the
process:

  1. generate + persist a snapshot, serve it, drain on SIGINT (exit 0);
  2. a torn snapshot tail is refused by a strict boot with exit code 3
     and a typed store_errc on stderr;
  3. opwatc_fsck flags the torn file, and --repair rewrites it in place
     into a file fsck then passes;
  4. a --recover boot serves the salvaged prefix, reports
     degraded=true in /healthz, and heals injected send faults
     (net-send=2-times:error) through opwat_query --retry with zero
     giveups;
  5. binding the occupied port exits with code 4 (distinct from load
     failures, so supervisors can tell "fix the config" from "restart");
  6. SIGHUP with a corrupt file on disk keeps the previous snapshot
     serving (reload_failures counts it); SIGHUP after the file is
     restored publishes the fresh snapshot and clears degraded;
  7. the final SIGINT drains cleanly (exit 0).

Every phase has a hard deadline — a hang is a failure, not a wait.

Usage: chaos_smoke.py BUILD_DIR [--keep]
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

DEADLINE_S = 30.0


class ChaosError(Exception):
    pass


def log(msg):
    print(f"chaos-smoke: {msg}", flush=True)


class Opwatd:
    """One opwatd process: spawn, wait for readiness, signal, reap."""

    def __init__(self, binary, args, logpath, env=None):
        self.logpath = logpath
        self.logfh = open(logpath, "w", encoding="utf-8")
        full_env = dict(os.environ)
        full_env.pop("OPWAT_FAILPOINTS", None)
        full_env.pop("OPWAT_FAILPOINTS_SEED", None)
        if env:
            full_env.update(env)
        self.proc = subprocess.Popen(
            [binary] + args, stdout=self.logfh, stderr=subprocess.STDOUT,
            env=full_env)
        self.port = None

    def read_log(self):
        with open(self.logpath, encoding="utf-8") as fh:
            return fh.read()

    def wait_ready(self):
        """Blocks until the readiness line appears; returns the port."""
        deadline = time.monotonic() + DEADLINE_S
        while time.monotonic() < deadline:
            text = self.read_log()
            for line in text.splitlines():
                if "listening on" in line:
                    self.port = int(line.rsplit(":", 1)[1])
                    return self.port
            if self.proc.poll() is not None:
                raise ChaosError(
                    f"opwatd exited rc={self.proc.returncode} before "
                    f"readiness:\n{text}")
            time.sleep(0.05)
        raise ChaosError(f"opwatd not ready in {DEADLINE_S}s:\n{self.read_log()}")

    def wait_log(self, needle):
        deadline = time.monotonic() + DEADLINE_S
        while time.monotonic() < deadline:
            if needle in self.read_log():
                return
            if self.proc.poll() is not None:
                raise ChaosError(
                    f"opwatd exited rc={self.proc.returncode} while waiting "
                    f"for {needle!r}:\n{self.read_log()}")
            time.sleep(0.05)
        raise ChaosError(
            f"{needle!r} not seen in {DEADLINE_S}s:\n{self.read_log()}")

    def signal(self, sig):
        self.proc.send_signal(sig)

    def wait_exit(self):
        try:
            rc = self.proc.wait(timeout=DEADLINE_S)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            raise ChaosError(f"opwatd did not exit in {DEADLINE_S}s (hang)")
        finally:
            self.logfh.close()
        return rc

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()
        self.logfh.close()


def http_json(port, path):
    url = f"http://127.0.0.1:{port}{path}"
    with urllib.request.urlopen(url, timeout=DEADLINE_S) as resp:
        return json.loads(resp.read().decode())


def run(cmd, env=None, expect_rc=0):
    full_env = dict(os.environ)
    if env:
        full_env.update(env)
    r = subprocess.run(cmd, capture_output=True, text=True, env=full_env,
                       timeout=DEADLINE_S * 2)
    if r.returncode != expect_rc:
        raise ChaosError(
            f"{' '.join(cmd)}: rc={r.returncode}, wanted {expect_rc}\n"
            f"stdout:\n{r.stdout}\nstderr:\n{r.stderr}")
    return r


def main():
    args = [a for a in sys.argv[1:] if a != "--keep"]
    keep = "--keep" in sys.argv[1:]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    build = os.path.abspath(args[0])
    opwatd = os.path.join(build, "opwatd")
    opwat_query = os.path.join(build, "opwat_query")
    opwatc_fsck = os.path.join(build, "opwatc_fsck")
    for b in (opwatd, opwat_query, opwatc_fsck):
        if not os.path.exists(b):
            print(f"missing binary {b} — build opwatd opwat_query "
                  "opwatc_fsck first", file=sys.stderr)
            return 2

    work = tempfile.mkdtemp(prefix="opwat_chaos_")
    snap = os.path.join(work, "catalog.opwatc")
    torn = os.path.join(work, "torn.opwatc")
    servers = []
    try:
        # --- 1. generate, persist, serve, drain --------------------------
        log("phase 1: generate + save + clean drain")
        srv = Opwatd(opwatd, ["--gen", "small", "--save", snap, "--port", "0"],
                     os.path.join(work, "gen.log"))
        servers.append(srv)
        port = srv.wait_ready()
        health = http_json(port, "/healthz")
        if health.get("degraded") is not False:
            raise ChaosError(f"fresh catalog reports degraded: {health}")
        run([opwat_query, "--connect", f"127.0.0.1:{port}", "--op", "epochs"])
        srv.signal(signal.SIGINT)
        rc = srv.wait_exit()
        if rc != 0:
            raise ChaosError(f"clean drain exited rc={rc}:\n{srv.read_log()}")
        if "protocol_errors=0" not in srv.read_log():
            raise ChaosError(f"drain summary missing:\n{srv.read_log()}")

        # --- 2. torn tail: strict boot refuses with exit code 3 ----------
        log("phase 2: torn snapshot, strict boot exits 3 with typed errc")
        shutil.copyfile(snap, torn)
        with open(torn, "ab") as fh:
            fh.write(b"\xee" * 120)  # crash-shaped trailing garbage
        r = subprocess.run([opwatd, "--load", torn, "--port", "0"],
                           capture_output=True, text=True, timeout=DEADLINE_S)
        if r.returncode != 3:
            raise ChaosError(
                f"strict boot on torn file: rc={r.returncode}, wanted 3\n"
                f"{r.stdout}\n{r.stderr}")
        if "store_errc::" not in r.stderr:
            raise ChaosError(f"no typed errc on stderr: {r.stderr!r}")

        # --- 3. fsck sees the damage; --repair heals it in place ---------
        log("phase 3: opwatc_fsck --repair")
        repaired = os.path.join(work, "repaired.opwatc")
        shutil.copyfile(torn, repaired)
        r = subprocess.run([opwatc_fsck, repaired], capture_output=True,
                           text=True, timeout=DEADLINE_S)
        if r.returncode == 0:
            raise ChaosError("fsck passed a torn file")
        run([opwatc_fsck, "--repair", repaired])
        run([opwatc_fsck, repaired])

        # --- 4. recover boot under injected send faults ------------------
        log("phase 4: --recover boot, healing net-send faults via --retry")
        srv = Opwatd(
            opwatd, ["--load", torn, "--recover", "--port", "0"],
            os.path.join(work, "recover.log"),
            env={"OPWAT_FAILPOINTS": "net-send=2-times:error"})
        servers.append(srv)
        port = srv.wait_ready()
        # The retrying client must heal through both injected faults —
        # reconnect + resend — and still print the response.  Each
        # failed server send burns one fire, so by the third attempt the
        # wire is clean.
        r = run([opwat_query, "--connect", f"127.0.0.1:{port}", "--op",
                 "epochs", "--retry", "6", "--repeat", "3"])
        if "giveups=0" not in r.stderr:
            raise ChaosError(f"retry stats missing/giving up: {r.stderr!r}")
        # Faults exhausted: the debug surface reports the salvage.
        health = http_json(port, "/healthz")
        if health.get("degraded") is not True:
            raise ChaosError(f"recovered boot not degraded: {health}")
        stats = http_json(port, "/stats")
        if stats.get("bytes_truncated", 0) <= 0:
            raise ChaosError(f"bytes_truncated not reported: {stats}")

        # --- 5. occupied port: bind failure is exit code 4 ---------------
        log("phase 5: bind to the occupied port exits 4")
        r = subprocess.run(
            [opwatd, "--gen", "small", "--port", str(port)],
            capture_output=True, text=True, timeout=DEADLINE_S * 2)
        if r.returncode != 4:
            raise ChaosError(
                f"bind clash: rc={r.returncode}, wanted 4\n{r.stderr}")

        # --- 6. SIGHUP: corrupt reload is survived, good reload lands ----
        log("phase 6: SIGHUP with corrupt then restored file")
        with open(torn, "wb") as fh:
            fh.write(b"not an opwatc file")
        srv.signal(signal.SIGHUP)
        srv.wait_log("reload failed, keeping current snapshot")
        run([opwat_query, "--connect", f"127.0.0.1:{port}", "--op", "epochs"])
        stats = http_json(port, "/stats")
        if stats.get("reload_failures", 0) != 1:
            raise ChaosError(f"reload_failures != 1: {stats}")
        shutil.copyfile(snap, torn)  # the operator fixed the file
        srv.signal(signal.SIGHUP)
        srv.wait_log("reloaded")
        health = http_json(port, "/healthz")
        if health.get("degraded") is not False:
            raise ChaosError(f"degraded after clean reload: {health}")
        run([opwat_query, "--connect", f"127.0.0.1:{port}", "--op", "epochs"])

        # --- 7. final drain ----------------------------------------------
        log("phase 7: SIGINT drain")
        srv.signal(signal.SIGINT)
        rc = srv.wait_exit()
        if rc != 0:
            raise ChaosError(f"final drain rc={rc}:\n{srv.read_log()}")

        log("all phases OK")
        return 0
    except ChaosError as e:
        print(f"::error title=chaos smoke failed::{e}", flush=True)
        return 1
    finally:
        for s in servers:
            s.kill()
        if keep:
            log(f"artifacts kept in {work}")
        else:
            shutil.rmtree(work, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
