#include "opwat/infer/step3_colo.hpp"

#include <algorithm>

#include "opwat/geo/geodesic.hpp"

namespace opwat::infer {

ring_verdict evaluate_ring(const db::merged_view& view,
                           const measure::vantage_point& vp, world::ixp_id ixp,
                           net::asn member, const rtt_observation& obs,
                           const geo::speed_fit& fit, int* n_feasible_ixp) {
  // Outer radius from the measured RTT; inner radius from the corrected
  // RTT when the VP rounds up to integer milliseconds (§6.1).
  const auto outer = geo::feasible_ring(obs.rtt_min_ms, fit);
  const double rtt_for_dmin =
      obs.rounded ? std::max(0.0, obs.rtt_min_ms - 1.0) : obs.rtt_min_ms;
  const auto inner = geo::feasible_ring(rtt_for_dmin, fit);
  const geo::distance_ring ring{inner.d_min_km, outer.d_max_km};

  const auto in_ring = [&](world::facility_id f) -> bool {
    const auto loc = view.facility_location(f);
    if (!loc) return false;
    return ring.contains(geo::geodesic_km(vp.location, *loc));
  };

  int feasible_ixp = 0;
  bool member_at_feasible_ixp_fac = false;
  for (const auto f : view.facilities_of_ixp(ixp)) {
    if (!in_ring(f)) continue;
    ++feasible_ixp;
    const auto& member_facs = view.facilities_of_as(member);
    if (std::find(member_facs.begin(), member_facs.end(), f) != member_facs.end())
      member_at_feasible_ixp_fac = true;
  }
  if (n_feasible_ixp) *n_feasible_ixp = feasible_ixp;

  if (feasible_ixp == 0) return ring_verdict::remote;
  if (member_at_feasible_ixp_fac) return ring_verdict::local;

  // Member present at a feasible facility where the IXP is not present?
  const auto& ixp_facs = view.facilities_of_ixp(ixp);
  for (const auto f : view.facilities_of_as(member)) {
    if (std::find(ixp_facs.begin(), ixp_facs.end(), f) != ixp_facs.end()) continue;
    if (in_ring(f)) return ring_verdict::remote;
  }
  return ring_verdict::unknown;
}

step3_stats run_step3_colo(const db::merged_view& view,
                           std::span<const measure::vantage_point> vps,
                           const step2_result& rtts, const step3_config& cfg,
                           inference_map& out,
                           std::span<const world::ixp_id> only) {
  step3_stats st;
  const auto judge = [&](const iface_key& key,
                         const std::vector<rtt_observation>& observations) {
    if (out.cls(key) != peering_class::unknown) return;
    const auto member = view.member_of_interface(key.ip);
    if (!member) return;

    bool any_local = false;
    bool any_remote = false;
    int best_feasible = -1;
    for (const auto& obs : observations) {
      int n_feasible = 0;
      const auto v = evaluate_ring(view, vps[obs.vp_index], key.ixp, *member, obs,
                                   cfg.fit, &n_feasible);
      best_feasible = std::max(best_feasible, n_feasible);
      if (v == ring_verdict::local) any_local = true;
      if (v == ring_verdict::remote) any_remote = true;
    }
    if (best_feasible >= 0) out.annotate_feasible(key, best_feasible);

    // Any local evidence wins: a single VP placing the member inside a
    // common facility is conclusive, while remote verdicts can be caused
    // by a distant VP of a wide-area IXP.
    if (any_local) {
      out.decide(key, peering_class::local, cfg.provenance);
      ++st.decided_local;
    } else if (any_remote) {
      out.decide(key, peering_class::remote, cfg.provenance);
      ++st.decided_remote;
    } else {
      ++st.left_unknown;
    }
  };
  for_each_scoped_observation(rtts.observations, only, judge);
  return st;
}

}  // namespace opwat::infer
