#include "opwat/infer/step4_multiixp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "opwat/geo/geodesic.hpp"

namespace opwat::infer {

namespace {

using fac_list = std::vector<world::facility_id>;

bool have_common_facility(const fac_list& a, const fac_list& b) {
  for (const auto f : a)
    if (std::find(b.begin(), b.end(), f) != b.end()) return true;
  return false;
}

double min_fac_distance(const db::merged_view& view, const fac_list& a,
                        const fac_list& b) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto fa : a) {
    const auto la = view.facility_location(fa);
    if (!la) continue;
    for (const auto fb : b) {
      const auto lb = view.facility_location(fb);
      if (!lb) continue;
      best = std::min(best, geo::geodesic_km(*la, *lb));
    }
  }
  return best;
}

double max_fac_distance(const db::merged_view& view, const fac_list& a,
                        const fac_list& b) {
  double best = -1.0;
  for (const auto fa : a) {
    const auto la = view.facility_location(fa);
    if (!la) continue;
    for (const auto fb : b) {
      const auto lb = view.facility_location(fb);
      if (!lb) continue;
      best = std::max(best, geo::geodesic_km(*la, *lb));
    }
  }
  return best;
}

}  // namespace

step4_result run_step4_multi_ixp(const db::merged_view& view,
                                 const traix::extraction& paths,
                                 const alias::resolver& resolve,
                                 std::span<const world::ixp_id> scope,
                                 inference_map& out) {
  step4_result result;
  const std::set<world::ixp_id> in_scope{scope.begin(), scope.end()};

  // Candidate interfaces per member AS, and the IXPs each is adjacent to.
  std::map<net::asn, std::set<net::ipv4_addr>> cand;
  std::map<std::pair<net::asn, net::ipv4_addr>, std::set<world::ixp_id>> iface_ixps;
  for (const auto& adj : paths.adjacencies) {
    cand[adj.member_as].insert(adj.member_ip);
    iface_ixps[{adj.member_as, adj.member_ip}].insert(adj.ixp);
  }

  // Interfaces of (asn, ixp) in the merged view, for label lookup and
  // propagation.
  const auto keys_of = [&](net::asn as, world::ixp_id x) {
    std::vector<iface_key> keys;
    for (const auto& e : view.interfaces_of_ixp(x))
      if (e.asn == as) keys.push_back({x, e.ip});
    return keys;
  };
  const auto label_of = [&](net::asn as, world::ixp_id x) {
    bool any_local = false, any_remote = false;
    for (const auto& k : keys_of(as, x)) {
      const auto c = out.cls(k);
      any_local |= c == peering_class::local;
      any_remote |= c == peering_class::remote;
    }
    if (any_local) return peering_class::local;
    if (any_remote) return peering_class::remote;
    return peering_class::unknown;
  };
  const auto decide_all = [&](net::asn as, world::ixp_id x, peering_class c) {
    std::size_t n = 0;
    for (const auto& k : keys_of(as, x))
      if (out.decide(k, c, method_step::multi_ixp)) ++n;
    return n;
  };

  for (const auto& [asn, ifaces] : cand) {
    const std::vector<net::ipv4_addr> iface_vec{ifaces.begin(), ifaces.end()};
    const auto groups = resolve.resolve(iface_vec);

    for (const auto& group : groups) {
      std::set<world::ixp_id> ixps;
      for (const auto& ip : group) {
        const auto it = iface_ixps.find({asn, ip});
        if (it != iface_ixps.end()) ixps.insert(it->second.begin(), it->second.end());
      }
      inferred_router rec;
      rec.owner = asn;
      rec.interfaces = group;
      rec.ixps.assign(ixps.begin(), ixps.end());
      if (ixps.size() < 2) {
        rec.kind = router_kind::single_ixp;
        result.routers.push_back(std::move(rec));
        continue;
      }

      std::vector<world::ixp_id> local_anchors, remote_anchors, unresolved;
      for (const auto x : ixps) {
        switch (label_of(asn, x)) {
          case peering_class::local: local_anchors.push_back(x); break;
          case peering_class::remote: remote_anchors.push_back(x); break;
          case peering_class::unknown:
            // Propagate only into the studied IXPs.
            if (in_scope.contains(x)) unresolved.push_back(x);
            break;
        }
      }

      const auto& as_facs = view.facilities_of_as(asn);

      if (!local_anchors.empty()) {
        // Cases 1 and 3.
        for (const auto j : unresolved) {
          const auto& j_facs = view.facilities_of_ixp(j);
          bool shared = false;
          for (const auto l : local_anchors)
            if (have_common_facility(view.facilities_of_ixp(l), j_facs)) shared = true;
          if (shared) {
            result.decided += decide_all(asn, j, peering_class::local);  // case 1
            continue;
          }
          // Case 3(a): no common facility with any local anchor; 3(b) is
          // implied when the L<->J distance exceeds the member's maximum
          // distance from L — both collapse to "remote" here.
          const auto l = local_anchors.front();
          fac_list common_l;
          for (const auto f : as_facs) {
            const auto& l_facs = view.facilities_of_ixp(l);
            if (std::find(l_facs.begin(), l_facs.end(), f) != l_facs.end())
              common_l.push_back(f);
          }
          const double dmax_member_l = max_fac_distance(view, common_l, common_l);
          const double dist_l_j =
              min_fac_distance(view, view.facilities_of_ixp(l), j_facs);
          const bool cond_3b = dmax_member_l >= 0.0 && dist_l_j > dmax_member_l;
          (void)cond_3b;  // 3(a) already held; recorded for completeness
          result.decided += decide_all(asn, j, peering_class::remote);
        }
      } else if (!remote_anchors.empty()) {
        // Case 2.
        const auto r = remote_anchors.front();
        const auto& r_facs = view.facilities_of_ixp(r);
        bool all_common = true;
        for (const auto x : ixps)
          for (const auto y : ixps)
            if (x < y &&
                !have_common_facility(view.facilities_of_ixp(x), view.facilities_of_ixp(y)))
              all_common = false;
        const double dmin_member_r = min_fac_distance(view, as_facs, r_facs);
        for (const auto j : unresolved) {
          if (all_common) {
            result.decided += decide_all(asn, j, peering_class::remote);  // 2(a)
            continue;
          }
          const double dmax_j_r =
              max_fac_distance(view, view.facilities_of_ixp(j), r_facs);
          if (dmax_j_r >= 0.0 && std::isfinite(dmin_member_r) &&
              dmax_j_r < dmin_member_r)
            result.decided += decide_all(asn, j, peering_class::remote);  // 2(b)
        }
      }

      // Final router kind for the Fig. 9d statistics.
      bool any_local = false, any_remote = false, any_unknown = false;
      for (const auto x : ixps) {
        switch (label_of(asn, x)) {
          case peering_class::local: any_local = true; break;
          case peering_class::remote: any_remote = true; break;
          case peering_class::unknown: any_unknown = true; break;
        }
      }
      if (any_local && any_remote)
        rec.kind = router_kind::hybrid;
      else if (any_local && !any_unknown)
        rec.kind = router_kind::local;
      else if (any_remote && !any_unknown)
        rec.kind = router_kind::remote;
      else
        rec.kind = router_kind::undetermined;
      result.routers.push_back(std::move(rec));
    }
  }
  return result;
}

}  // namespace opwat::infer
