#include "opwat/infer/step2_rtt.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace opwat::infer {

double step2_result::best_rtt(const iface_key& k) const {
  const auto it = observations.find(k);
  if (it == observations.end() || it->second.empty())
    return std::numeric_limits<double>::quiet_NaN();
  double best = std::numeric_limits<double>::infinity();
  for (const auto& o : it->second) best = std::min(best, o.rtt_min_ms);
  return best;
}

step2_result run_step2_rtt(const world::world& w, const measure::latency_model& lat,
                           std::span<const measure::vantage_point> vps,
                           const db::merged_view& view,
                           std::span<const world::ixp_id> ixps,
                           const step2_config& cfg, util::rng rng,
                           inference_map& annotate) {
  step2_result out;

  // Targets: every interface the merged DB lists for the scoped IXPs.
  std::vector<measure::ping_target> targets;
  const std::set<world::ixp_id> scope{ixps.begin(), ixps.end()};
  for (const auto x : ixps)
    for (const auto& e : view.interfaces_of_ixp(x)) targets.push_back({e.ip, x});
  out.targets_queried = targets.size();

  out.campaign = measure::run_ping_campaign(w, lat, vps, targets, cfg.ping, rng);

  // VP filters.
  std::vector<char> usable(vps.size(), 0);
  for (std::size_t vi = 0; vi < vps.size(); ++vi) {
    const auto& vp = vps[vi];
    if (!vp.alive || !scope.contains(vp.ixp)) continue;
    if (cfg.apply_mgmt_filter && vp.type == measure::vp_type::atlas &&
        out.campaign.route_server_rtt_ms[vi] >= cfg.mgmt_filter_ms) {
      out.mgmt_filtered_vps.push_back(vi);
      continue;
    }
    usable[vi] = 1;
    out.usable_vps.push_back(vi);
  }

  std::set<net::ipv4_addr> responsive;
  for (const auto& pm : out.campaign.measurements) {
    if (!pm.responsive) continue;
    responsive.insert(pm.target);
    if (!usable[pm.vp_index]) continue;
    rtt_observation obs;
    obs.vp_index = pm.vp_index;
    obs.rtt_min_ms = pm.rtt_min_ms;
    obs.rounded = cfg.apply_lg_rounding_correction && vps[pm.vp_index].rounds_rtt_up;
    out.observations[{pm.ixp, pm.target}].push_back(obs);
  }
  out.targets_responsive = responsive.size();

  for (const auto& [k, obs] : out.observations) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& o : obs) best = std::min(best, o.rtt_min_ms);
    annotate.annotate_rtt(k, best);
  }
  return out;
}

}  // namespace opwat::infer
