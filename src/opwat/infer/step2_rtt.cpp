#include "opwat/infer/step2_rtt.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <set>

namespace opwat::infer {

double step2_result::best_rtt(const iface_key& k) const {
  const auto it = observations.find(k);
  if (it == observations.end() || it->second.empty())
    return std::numeric_limits<double>::quiet_NaN();
  double best = std::numeric_limits<double>::infinity();
  for (const auto& o : it->second) best = std::min(best, o.rtt_min_ms);
  return best;
}

void step2_result::merge_from(step2_result&& part) {
  observations.merge(part.observations);

  // Both measurement lists are ordered by VP index (the campaign's outer
  // loop); a stable in-place merge restores the global VP-major order.
  const auto mid = static_cast<std::ptrdiff_t>(campaign.measurements.size());
  campaign.measurements.insert(
      campaign.measurements.end(),
      std::make_move_iterator(part.campaign.measurements.begin()),
      std::make_move_iterator(part.campaign.measurements.end()));
  std::inplace_merge(campaign.measurements.begin(),
                     campaign.measurements.begin() + mid, campaign.measurements.end(),
                     [](const measure::ping_measurement& a,
                        const measure::ping_measurement& b) {
                       return a.vp_index < b.vp_index;
                     });

  // A VP's route-server RTT is finite only in the partial that covered
  // its IXP (+inf in every other, since the campaign skips VPs whose
  // IXP has no targets); the element-wise min keeps the finite value.
  // When a VP is measured by several partials the draws are keyed by
  // (seed, vp), so the candidates are bitwise identical anyway.
  if (campaign.route_server_rtt_ms.empty()) {
    campaign.route_server_rtt_ms = std::move(part.campaign.route_server_rtt_ms);
  } else {
    const auto n = std::min(campaign.route_server_rtt_ms.size(),
                            part.campaign.route_server_rtt_ms.size());
    for (std::size_t i = 0; i < n; ++i)
      campaign.route_server_rtt_ms[i] = std::min(
          campaign.route_server_rtt_ms[i], part.campaign.route_server_rtt_ms[i]);
  }

  const auto merge_sorted = [](std::vector<std::size_t>& into,
                               std::vector<std::size_t>&& from) {
    const auto m = static_cast<std::ptrdiff_t>(into.size());
    into.insert(into.end(), from.begin(), from.end());
    std::inplace_merge(into.begin(), into.begin() + m, into.end());
  };
  merge_sorted(usable_vps, std::move(part.usable_vps));
  merge_sorted(mgmt_filtered_vps, std::move(part.mgmt_filtered_vps));

  targets_queried += part.targets_queried;
  targets_responsive += part.targets_responsive;
}

step2_result run_step2_rtt(const world::world& w, const measure::latency_model& lat,
                           std::span<const measure::vantage_point> vps,
                           const db::merged_view& view,
                           std::span<const world::ixp_id> ixps,
                           const step2_config& cfg, util::rng rng,
                           inference_map& annotate) {
  step2_result out;

  // Targets: every interface the merged DB lists for the scoped IXPs.
  // IXPs contributing at least one target are the ones whose VPs the
  // campaign will actually measure.
  std::vector<measure::ping_target> targets;
  std::set<world::ixp_id> measured_ixps;
  for (const auto x : ixps) {
    const auto& ifaces = view.interfaces_of_ixp(x);
    if (!ifaces.empty()) measured_ixps.insert(x);
    for (const auto& e : ifaces) targets.push_back({e.ip, x});
  }
  out.targets_queried = targets.size();

  out.campaign = measure::run_ping_campaign(w, lat, vps, targets, cfg.ping, rng);

  // VP filters.  A scoped IXP with no listed interface produced no
  // targets, so its VPs were never measured (route-server RTT is +inf) —
  // they are neither usable nor mgmt-filtered, just absent, exactly as
  // in a run where the IXP is out of scope.
  std::vector<char> usable(vps.size(), 0);
  for (std::size_t vi = 0; vi < vps.size(); ++vi) {
    const auto& vp = vps[vi];
    if (!vp.alive || !measured_ixps.contains(vp.ixp)) continue;
    if (cfg.apply_mgmt_filter && vp.type == measure::vp_type::atlas &&
        out.campaign.route_server_rtt_ms[vi] >= cfg.mgmt_filter_ms) {
      out.mgmt_filtered_vps.push_back(vi);
      continue;
    }
    usable[vi] = 1;
    out.usable_vps.push_back(vi);
  }

  std::set<net::ipv4_addr> responsive;
  for (const auto& pm : out.campaign.measurements) {
    if (!pm.responsive) continue;
    responsive.insert(pm.target);
    if (!usable[pm.vp_index]) continue;
    rtt_observation obs;
    obs.vp_index = pm.vp_index;
    obs.rtt_min_ms = pm.rtt_min_ms;
    obs.rounded = cfg.apply_lg_rounding_correction && vps[pm.vp_index].rounds_rtt_up;
    out.observations[{pm.ixp, pm.target}].push_back(obs);
  }
  out.targets_responsive = responsive.size();

  for (const auto& [k, obs] : out.observations) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& o : obs) best = std::min(best, o.rtt_min_ms);
    annotate.annotate_rtt(k, best);
  }
  return out;
}

}  // namespace opwat::infer
