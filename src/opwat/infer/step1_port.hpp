// Step 1 — reseller customers via port capacities (§5.1.1 / §5.2).
//
// Fractional port capacities can only be purchased through resellers, so
// any member whose recorded port capacity is below the IXP's minimum
// physical port capacity (the pricing-page Cmin) must be a reseller
// customer — hence remote by Definition 1.  High precision, low coverage;
// runs first because it is the most reliable signal.
#pragma once

#include <span>

#include "opwat/db/merge.hpp"
#include "opwat/infer/types.hpp"

namespace opwat::infer {

struct step1_stats {
  std::size_t examined = 0;
  std::size_t inferred_remote = 0;

  step1_stats& operator+=(const step1_stats& o) noexcept {
    examined += o.examined;
    inferred_remote += o.inferred_remote;
    return *this;
  }
};

/// Applies Step 1 over every interface of the scoped IXPs.
///
/// Shard contract (parallel executor): reads `view` only, touches only
/// keys of `ixps`, and draws no randomness — concurrent calls on
/// disjoint scopes with per-shard maps are race-free and merge exactly.
step1_stats run_step1_port_capacity(const db::merged_view& view,
                                    std::span<const world::ixp_id> ixps,
                                    inference_map& out);

}  // namespace opwat::infer
