// Execution backends for the inference engine's per-IXP fan-out.
//
// The engine delegates every per-IXP step to an executor:
//
//  - serial_executor — the scope-batch loop the engine always had: one
//    thread, cfg.batch_size IXPs per invocation (0 = the whole scope).
//
//  - parallel_executor — splits the scope into shards (cfg.batch_size
//    IXPs per shard; 0 = one IXP per shard), runs each shard on a
//    thread pool against a shard-local step_context (a sliced inference
//    map, fresh per-step stats, shard-keyed rng streams, and the frozen
//    run-level result as the read side), then merges the shard deltas
//    back IN FIXED SCOPE ORDER.  Every merge is exact — inference-map
//    slices are disjoint by construction, stats add commutatively, and
//    campaign partials interleave by VP index — so a parallel run is
//    bit-identical to the serial run of the same config and seed, for
//    any thread count and any shard completion order, in everything but
//    the ledger's `invocations` field, which reports the actual
//    partition (one shard per IXP here vs. one batch serially).
//
// Cross-IXP steps never reach an executor; the engine runs them on the
// barrier path.  They may still fan out internally over a non-IXP axis
// through step_context::pool() (path extraction shards the trace
// corpus), which the parallel executor exposes and the serial one does
// not.
#pragma once

#include <cstddef>
#include <memory>

#include "opwat/infer/step.hpp"
#include "opwat/util/thread_pool.hpp"

namespace opwat::infer {

class executor {
 public:
  virtual ~executor() = default;

  /// Runs a per-IXP step over the full scope, leaving `ctx.result` in
  /// the same state a single-threaded full-scope run would.  Returns the
  /// number of batch/shard invocations (the ledger's `invocations`).
  virtual std::size_t run_step(inference_step& step, step_context& ctx,
                               const engine_inputs& in) = 0;

  /// Worker pool for cross-IXP steps that parallelize internally; null
  /// when the backend is serial.
  [[nodiscard]] virtual util::thread_pool* pool() noexcept { return nullptr; }
};

class serial_executor final : public executor {
 public:
  std::size_t run_step(inference_step& step, step_context& ctx,
                       const engine_inputs& in) override;
};

class parallel_executor final : public executor {
 public:
  /// Uses cfg.threads workers (0 = hardware concurrency) and
  /// cfg.batch_size IXPs per shard (0 = one IXP per shard).
  explicit parallel_executor(const pipeline_config& cfg);

  std::size_t run_step(inference_step& step, step_context& ctx,
                       const engine_inputs& in) override;
  [[nodiscard]] util::thread_pool* pool() noexcept override { return &pool_; }

 private:
  std::size_t ixps_per_shard_;
  util::thread_pool pool_;
};

/// The backend selected by cfg.execution.
[[nodiscard]] std::unique_ptr<executor> make_executor(const pipeline_config& cfg);

}  // namespace opwat::infer
