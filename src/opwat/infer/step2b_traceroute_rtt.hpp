// "Beyond Pings" (§8): traceroute-derived RTT observations.
//
// Ping-based Step 2 needs a vantage point inside the IXP, which exists for
// only a fraction of IXPs and is unstable over time.  The paper proposes
// deriving the member-to-IXP delay from traceroutes taken ANYWHERE: in an
// IXP crossing ... -> IP_near -> IP_ixp -> ..., the difference between the
// RTT at the peering-LAN hop and the RTT at the preceding hop approximates
// the delay between the two member routers.  When the near-side member is
// known to be LOCAL (previously inferred, or evidenced by colocation), the
// near router sits in an IXP facility, so the delta approximates the far
// member's RTT to that facility — exactly what Step 3 needs, without any
// in-IXP vantage point (Fig. 12b validates the approximation).
//
// The derived observations are expressed as synthetic "virtual VPs"
// located at the near member's facility, so the unchanged Step-3 ring
// logic consumes them directly.
#pragma once

#include <map>
#include <vector>

#include "opwat/db/merge.hpp"
#include "opwat/infer/step2_rtt.hpp"
#include "opwat/infer/types.hpp"
#include "opwat/measure/vantage.hpp"
#include "opwat/traix/crossing.hpp"

namespace opwat::infer {

struct traceroute_rtt_config {
  /// Deltas below this are treated as same-facility noise floor.
  double min_delta_ms = 0.0;
  /// Require the near-side member to be inferred local already; when
  /// false, a near member with exactly one common facility with the IXP
  /// (per the colocation DB) is accepted too.
  bool require_local_near = true;
  /// Keep at most this many observations per interface (smallest deltas
  /// first — minimum filtering, like RTT_min).
  std::size_t max_observations_per_iface = 4;
};

struct traceroute_rtt_result {
  /// Synthetic VPs placed at the near members' facilities.  Observation
  /// vp_index values refer to THIS vector.
  std::vector<measure::vantage_point> virtual_vps;
  std::map<iface_key, std::vector<rtt_observation>> observations;
  std::size_t crossings_seen = 0;
  std::size_t crossings_used = 0;

  /// Packs the derived observations into a step2_result so that
  /// run_step3_colo can consume them unchanged.
  [[nodiscard]] step2_result as_step2_result() const;
};

/// Derives RTT observations from the traceroute corpus.  `prior` supplies
/// the local anchors (the ping-based pipeline's inferences); pass an empty
/// map with require_local_near = false for the fully ping-free variant.
[[nodiscard]] traceroute_rtt_result derive_traceroute_rtts(
    const db::merged_view& view, const traix::extraction& paths,
    const inference_map& prior, const traceroute_rtt_config& cfg = {});

}  // namespace opwat::infer
