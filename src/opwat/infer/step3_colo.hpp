// Step 3 — colocation-informed RTT interpretation (§5.2, Fig. 7).
//
// For every interface with a usable RTT, compute the feasible distance
// ring [d_min, d_max] around each VP (d_max = v_max * RTT; d_min from the
// empirical minimum-speed fixed point; LG-rounded RTTs use RTT-1 for the
// d_min side).  Intersect the ring with the IXP's facility footprint and
// the member's colocation records:
//   - no feasible IXP facility                        -> remote
//   - member colocated at a feasible IXP facility     -> local
//   - member at a feasible non-IXP facility           -> remote
//   - IXP feasible but member's whereabouts unknown   -> no inference
// This is what neutralizes both wide-area-IXP false positives and
// nearby-remote false negatives of the plain RTT threshold (§4).
#pragma once

#include <span>

#include "opwat/db/merge.hpp"
#include "opwat/geo/speed_model.hpp"
#include "opwat/infer/step2_rtt.hpp"
#include "opwat/infer/types.hpp"
#include "opwat/measure/vantage.hpp"

namespace opwat::infer {

struct step3_config {
  geo::speed_fit fit;
  /// Provenance recorded on decisions (the §8 traceroute-RTT variant runs
  /// the same rules under a different label).
  method_step provenance = method_step::rtt_colo;
};

struct step3_stats {
  std::size_t decided_local = 0;
  std::size_t decided_remote = 0;
  std::size_t left_unknown = 0;

  step3_stats& operator+=(const step3_stats& o) noexcept {
    decided_local += o.decided_local;
    decided_remote += o.decided_remote;
    left_unknown += o.left_unknown;
    return *this;
  }
};

/// A non-empty `only` restricts the ring test to interfaces of those IXPs
/// (used by the engine's scope batching and parallel shards).
///
/// Shard contract (parallel executor): reads view/vps/rtts only, touches
/// only keys of `only` IXPs, and draws no randomness — concurrent calls
/// on disjoint scopes with per-shard maps are race-free and merge exactly.
step3_stats run_step3_colo(const db::merged_view& view,
                           std::span<const measure::vantage_point> vps,
                           const step2_result& rtts, const step3_config& cfg,
                           inference_map& out,
                           std::span<const world::ixp_id> only = {});

/// The per-VP verdict used internally; exposed for tests and Fig. 9c.
enum class ring_verdict : std::uint8_t { local, remote, unknown };

/// Evaluates the Step-3 rules for one observation.  `n_feasible_ixp` is
/// filled with the number of IXP facilities inside the ring.
[[nodiscard]] ring_verdict evaluate_ring(const db::merged_view& view,
                                         const measure::vantage_point& vp,
                                         world::ixp_id ixp, net::asn member,
                                         const rtt_observation& obs,
                                         const geo::speed_fit& fit,
                                         int* n_feasible_ixp);

}  // namespace opwat::infer
