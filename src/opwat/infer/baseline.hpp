// The state-of-the-art baseline (Castro et al., CoNEXT'14): min-RTT from
// in-IXP vantage points with TTL filters, thresholded at 10 ms (§4.1).
// Members with a usable RTT below the threshold are local, above remote;
// no colocation/port/topology information is used.  Reproduced here to
// regenerate Table 4's baseline row and the ablation sweeps.
#pragma once

#include <span>

#include "opwat/infer/step2_rtt.hpp"
#include "opwat/infer/types.hpp"

namespace opwat::infer {

struct baseline_config {
  double threshold_ms = 10.0;
};

/// Classifies every interface with at least one usable observation.
/// A non-empty `only` restricts classification to interfaces of those
/// IXPs (used by the engine's scope batching and parallel shards).
/// Returns the number of inferences made.
///
/// Shard contract (parallel executor): reads `rtts` only and touches only
/// keys of `only` IXPs — concurrent calls on disjoint scopes with
/// per-shard maps are race-free and merge exactly.
std::size_t run_rtt_baseline(const step2_result& rtts, const baseline_config& cfg,
                             inference_map& out,
                             std::span<const world::ixp_id> only = {});

}  // namespace opwat::infer
