// Step 5 — localization via private connectivity (§5.1.4 / §5.2).
//
// Last-resort heuristic, a Constrained-Facility-Search-style vote: for a
// still-unknown member interface, alias-resolve the member's interfaces
// (IXP-adjacent and private), find the router carrying the interface,
// collect its private AS neighbours, and look up the facilities most of
// those neighbours occupy.  If exactly one IXP facility is common to the
// feasible IXP footprint and the neighbourhood's facilities, the member is
// local; otherwise remote.
#pragma once

#include <span>

#include "opwat/alias/resolver.hpp"
#include "opwat/db/merge.hpp"
#include "opwat/geo/speed_model.hpp"
#include "opwat/infer/step2_rtt.hpp"
#include "opwat/infer/types.hpp"
#include "opwat/measure/vantage.hpp"
#include "opwat/traix/crossing.hpp"

namespace opwat::infer {

struct step5_config {
  geo::speed_fit fit;
  /// Minimum number of private neighbours required to vote; a single
  /// neighbour is too noisy for a majority argument.
  std::size_t min_neighbors = 2;
};

struct step5_stats {
  std::size_t decided_local = 0;
  std::size_t decided_remote = 0;
  std::size_t no_inference = 0;
};

/// Barrier-path step: the constrained-facility vote reads neighbours'
/// classifications across IXPs, so the engine never shards this over the
/// scope — it runs once, single-threaded, against the merged result.
step5_stats run_step5_private(const db::merged_view& view,
                              const traix::extraction& paths,
                              const alias::resolver& resolve,
                              std::span<const measure::vantage_point> vps,
                              const step2_result& rtts,
                              std::span<const world::ixp_id> scope,
                              const step5_config& cfg, inference_map& out);

}  // namespace opwat::infer
