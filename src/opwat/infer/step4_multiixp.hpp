// Step 4 — multi-IXP router inference (§5.1.3 / §5.2, Fig. 3).
//
// From traceroute {member-interface, IXP} adjacencies, alias-resolve each
// member's interfaces into routers.  A router adjacent to two or more
// IXPs is a multi-IXP router; labels established by earlier steps at one
// of its IXPs propagate to the others under facility-distance consistency
// conditions:
//   case 1 (local):  anchor local at L, L and J share a facility -> J local
//   case 3 (hybrid): anchor local at L, no common facility (3a) or the
//                    L<->J facility distance exceeds the member's maximum
//                    possible distance from L (3b)                -> J remote
//   case 2 (remote): anchor remote at R; all involved IXPs share a
//                    facility (2a), or every J facility is closer to R
//                    than the member can possibly be (2b)         -> J remote
#pragma once

#include <span>

#include "opwat/alias/resolver.hpp"
#include "opwat/db/merge.hpp"
#include "opwat/infer/types.hpp"
#include "opwat/traix/crossing.hpp"

namespace opwat::infer {

enum class router_kind : std::uint8_t { single_ixp, local, remote, hybrid, undetermined };

[[nodiscard]] constexpr std::string_view to_string(router_kind k) noexcept {
  switch (k) {
    case router_kind::single_ixp: return "single-IXP";
    case router_kind::local: return "local";
    case router_kind::remote: return "remote";
    case router_kind::hybrid: return "hybrid";
    case router_kind::undetermined: return "undetermined";
  }
  return "?";
}

struct inferred_router {
  net::asn owner;
  std::vector<net::ipv4_addr> interfaces;
  std::vector<world::ixp_id> ixps;  // next-hop IXPs seen in traceroutes
  router_kind kind = router_kind::undetermined;
};

struct step4_result {
  std::vector<inferred_router> routers;
  std::size_t decided = 0;
};

/// Barrier-path step: router labels propagate evidence BETWEEN the scoped
/// IXPs, so the engine never shards this over the scope — it runs once,
/// single-threaded, against the merged run-level result.
step4_result run_step4_multi_ixp(const db::merged_view& view,
                                 const traix::extraction& paths,
                                 const alias::resolver& resolve,
                                 std::span<const world::ixp_id> scope,
                                 inference_map& out);

}  // namespace opwat::infer
