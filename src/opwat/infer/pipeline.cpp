#include "opwat/infer/pipeline.hpp"

#include <algorithm>

#include "opwat/infer/engine.hpp"

namespace opwat::infer {

// Thin shims over the inference map's per-IXP tallies (the same indexed
// store the serve catalog ingests): no rescans, O(log #IXPs).
std::size_t pipeline_result::contribution(world::ixp_id x, method_step s) const {
  return inferences.contribution(x, s);
}

std::size_t pipeline_result::count(world::ixp_id x, peering_class c) const {
  return inferences.count(x, c);
}

const step_trace* pipeline_result::trace_for(std::string_view step) const {
  const auto it = std::find_if(trace.begin(), trace.end(),
                               [&](const step_trace& t) { return t.step == step; });
  return it == trace.end() ? nullptr : &*it;
}

inference_map run_baseline_on(const pipeline_result& pr, const baseline_config& cfg) {
  inference_map out;
  run_rtt_baseline(pr.rtt, cfg, out);
  return out;
}

}  // namespace opwat::infer
