#include "opwat/infer/pipeline.hpp"

namespace opwat::infer {

std::size_t pipeline_result::contribution(world::ixp_id x, method_step s) const {
  std::size_t n = 0;
  for (const auto& [k, inf] : inferences.items())
    if (k.ixp == x && inf.step == s && inf.cls != peering_class::unknown) ++n;
  return n;
}

std::size_t pipeline_result::count(world::ixp_id x, peering_class c) const {
  std::size_t n = 0;
  for (const auto& [k, inf] : inferences.items())
    if (k.ixp == x && inf.cls == c) ++n;
  return n;
}

pipeline_result run_pipeline(const world::world& w, const db::merged_view& view,
                             const db::ip2as& prefix2as,
                             const measure::latency_model& lat,
                             std::span<const measure::vantage_point> vps,
                             std::span<const measure::trace> traces,
                             std::span<const world::ixp_id> scope,
                             const pipeline_config& cfg) {
  pipeline_result pr;
  pr.scope.assign(scope.begin(), scope.end());
  util::rng root{cfg.seed};

  // Measurement substrate: campaign + traceroute extraction run up front;
  // the decision steps below consume them in the configured order.
  pr.rtt = run_step2_rtt(w, lat, vps, view, scope, cfg.step2, root.fork("ping"),
                         pr.inferences);
  pr.paths = traix::extract(traces, view, prefix2as);

  const alias::resolver resolve{w, cfg.resolver, root.fork("alias").seed()};

  for (const auto step : cfg.order) {
    switch (step) {
      case method_step::port_capacity:
        pr.s1 = run_step1_port_capacity(view, scope, pr.inferences);
        break;
      case method_step::rtt_colo:
        pr.s3 = run_step3_colo(view, vps, pr.rtt, cfg.step3, pr.inferences);
        break;
      case method_step::multi_ixp:
        pr.s4 = run_step4_multi_ixp(view, pr.paths, resolve, scope, pr.inferences);
        break;
      case method_step::private_links:
        pr.s5 = run_step5_private(view, pr.paths, resolve, vps, pr.rtt, scope,
                                  cfg.step5, pr.inferences);
        break;
      case method_step::rtt_threshold:
        run_rtt_baseline(pr.rtt, {}, pr.inferences);
        break;
      case method_step::none:
      case method_step::traceroute_rtt:
        break;
    }
  }

  // §8 "Beyond Pings": derive member-to-IXP delays from the traceroute
  // corpus and apply the Step-3 ring rules to interfaces still unknown.
  if (cfg.use_traceroute_rtt) {
    pr.beyond_pings =
        derive_traceroute_rtts(view, pr.paths, pr.inferences, cfg.traceroute_rtt);
    step3_config colo_cfg = cfg.step3;
    colo_cfg.provenance = method_step::traceroute_rtt;
    const auto packed = pr.beyond_pings.as_step2_result();
    pr.s2b = run_step3_colo(view, pr.beyond_pings.virtual_vps, packed, colo_cfg,
                            pr.inferences);
  }
  return pr;
}

inference_map run_baseline_on(const pipeline_result& pr, const baseline_config& cfg) {
  inference_map out;
  run_rtt_baseline(pr.rtt, cfg, out);
  return out;
}

}  // namespace opwat::infer
