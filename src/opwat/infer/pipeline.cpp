#include "opwat/infer/pipeline.hpp"

#include <algorithm>

#include "opwat/infer/engine.hpp"

namespace opwat::infer {

std::size_t pipeline_result::contribution(world::ixp_id x, method_step s) const {
  std::size_t n = 0;
  for (const auto& [k, inf] : inferences.items())
    if (k.ixp == x && inf.step == s && inf.cls != peering_class::unknown) ++n;
  return n;
}

std::size_t pipeline_result::count(world::ixp_id x, peering_class c) const {
  std::size_t n = 0;
  for (const auto& [k, inf] : inferences.items())
    if (k.ixp == x && inf.cls == c) ++n;
  return n;
}

const step_trace* pipeline_result::trace_for(std::string_view step) const {
  const auto it = std::find_if(trace.begin(), trace.end(),
                               [&](const step_trace& t) { return t.step == step; });
  return it == trace.end() ? nullptr : &*it;
}

// Deprecated shim: the monolithic entry point is now a one-liner over the
// engine; output is identical to the equivalent builder chain.
pipeline_result run_pipeline(const world::world& w, const db::merged_view& view,
                             const db::ip2as& prefix2as,
                             const measure::latency_model& lat,
                             std::span<const measure::vantage_point> vps,
                             std::span<const measure::trace> traces,
                             std::span<const world::ixp_id> scope,
                             const pipeline_config& cfg) {
  return pipeline_builder::from_config(cfg).build().run(
      {w, view, prefix2as, lat, vps, traces, scope});
}

inference_map run_baseline_on(const pipeline_result& pr, const baseline_config& cfg) {
  inference_map out;
  run_rtt_baseline(pr.rtt, cfg, out);
  return out;
}

}  // namespace opwat::infer
