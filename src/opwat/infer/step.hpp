// The composable inference-step interface.
//
// The §5.2 methodology is a *chain* of heuristics whose order and subsets
// are themselves experimental variables (Table 4, Fig. 10a).  Each
// heuristic — the five paper steps, the Castro et al. RTT-threshold
// baseline and the §8 traceroute-RTT extension — implements
// `inference_step` and runs against a `step_context` that bundles every
// input the monolithic run_pipeline() used to thread through seven
// positional arguments.  Steps declare what they consume and produce so
// the pipeline_builder can validate an order before anything runs.
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "opwat/infer/pipeline.hpp"
#include "opwat/util/rng.hpp"

namespace opwat::infer {

/// Measurement steps build the evidence substrate (ping campaign,
/// traceroute extraction); decision steps classify interfaces from it.
enum class step_kind : std::uint8_t { measurement, decision };

/// Batchable steps decide each IXP independently: the engine may invoke
/// them once per scope batch (and, later, per worker shard) with
/// identical results.  Cross-IXP steps propagate evidence between IXPs
/// (multi-IXP routers, private-link votes) and always see the full scope.
enum class step_granularity : std::uint8_t { per_ixp, cross_ixp };

/// Everything a pipeline run reads: the measured world, the merged
/// database view, prefix-to-AS mapping, the latency model behind the
/// synthetic campaigns, vantage points, the traceroute corpus and the
/// studied IXPs.  Spans refer to caller-owned storage that must outlive
/// the run.
struct engine_inputs {
  const world::world& w;
  const db::merged_view& view;
  const db::ip2as& prefix2as;
  const measure::latency_model& lat;
  std::span<const measure::vantage_point> vps;
  std::span<const measure::trace> traces;
  std::span<const world::ixp_id> scope;
};

/// Shared state handed to every step: the run inputs, the configuration,
/// the accumulating pipeline_result (inference map, per-step stats,
/// measurement products) and deterministic utilities (tagged rng forks, a
/// lazily built alias resolver).
class step_context {
 public:
  step_context(const engine_inputs& in, const pipeline_config& cfg,
               pipeline_result& result, util::rng root) noexcept
      : w(in.w), view(in.view), prefix2as(in.prefix2as), lat(in.lat), vps(in.vps),
        traces(in.traces), scope(in.scope), batch(in.scope), cfg(cfg),
        result(result), root_(root) {}

  step_context(const step_context&) = delete;
  step_context& operator=(const step_context&) = delete;

  const world::world& w;
  const db::merged_view& view;
  const db::ip2as& prefix2as;
  const measure::latency_model& lat;
  std::span<const measure::vantage_point> vps;
  std::span<const measure::trace> traces;
  /// The full studied scope.
  std::span<const world::ixp_id> scope;
  /// The slice a per-IXP step should operate on in this invocation
  /// (equals `scope` for cross-IXP steps and unbatched runs).
  std::span<const world::ixp_id> batch;
  const pipeline_config& cfg;
  pipeline_result& result;

  /// Deterministic child stream for a step-specific purpose.  Forks
  /// depend only on (run seed, tag), never on draw counts, so step
  /// reordering keeps experiments reproducible.
  [[nodiscard]] util::rng fork(std::string_view tag) const noexcept {
    return root_.fork(tag);
  }

  /// The alias resolver shared by topology steps (built on first use with
  /// the run's "alias" stream, exactly as the monolithic pipeline did).
  [[nodiscard]] const alias::resolver& resolver() {
    if (!resolver_)
      resolver_.emplace(w, cfg.resolver, root_.fork("alias").seed());
    return *resolver_;
  }

 private:
  util::rng root_;
  std::optional<alias::resolver> resolver_;
};

/// One pluggable stage of the inference engine.
class inference_step {
 public:
  virtual ~inference_step() = default;

  /// Stable registry name (also the ledger key), e.g. "rtt-colo".
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual step_kind kind() const noexcept {
    return step_kind::decision;
  }
  [[nodiscard]] virtual step_granularity granularity() const noexcept {
    return step_granularity::per_ixp;
  }
  /// Data dependencies, as product tags ("rtt", "paths").  The builder
  /// verifies each input is produced by an earlier step in the chain and
  /// auto-inserts the builtin measurement steps when missing.
  [[nodiscard]] virtual std::vector<std::string_view> inputs() const { return {}; }
  [[nodiscard]] virtual std::vector<std::string_view> outputs() const { return {}; }
  /// Paper anchor for docs and reports, e.g. "§5.1.1".
  [[nodiscard]] virtual std::string_view paper_section() const noexcept { return ""; }

  virtual void run(step_context& ctx) = 0;
};

}  // namespace opwat::infer
