// The composable inference-step interface.
//
// The §5.2 methodology is a *chain* of heuristics whose order and subsets
// are themselves experimental variables (Table 4, Fig. 10a).  Each
// heuristic — the five paper steps, the Castro et al. RTT-threshold
// baseline and the §8 traceroute-RTT extension — implements
// `inference_step` and runs against a `step_context` that bundles every
// input the monolithic run_pipeline() used to thread through seven
// positional arguments.  Steps declare what they consume and produce so
// the pipeline_builder can validate an order before anything runs.
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "opwat/infer/pipeline.hpp"
#include "opwat/util/rng.hpp"

namespace opwat::util {
class thread_pool;
}

namespace opwat::infer {

/// Measurement steps build the evidence substrate (ping campaign,
/// traceroute extraction); decision steps classify interfaces from it.
enum class step_kind : std::uint8_t { measurement, decision };

/// Batchable steps decide each IXP independently: the engine may invoke
/// them once per scope batch (and, later, per worker shard) with
/// identical results.  Cross-IXP steps propagate evidence between IXPs
/// (multi-IXP routers, private-link votes) and always see the full scope.
enum class step_granularity : std::uint8_t { per_ixp, cross_ixp };

/// Everything a pipeline run reads: the measured world, the merged
/// database view, prefix-to-AS mapping, the latency model behind the
/// synthetic campaigns, vantage points, the traceroute corpus and the
/// studied IXPs.  Spans refer to caller-owned storage that must outlive
/// the run.
struct engine_inputs {
  const world::world& w;
  const db::merged_view& view;
  const db::ip2as& prefix2as;
  const measure::latency_model& lat;
  std::span<const measure::vantage_point> vps;
  std::span<const measure::trace> traces;
  std::span<const world::ixp_id> scope;
};

/// Shared state handed to every step: the run inputs, the configuration,
/// the accumulating pipeline_result (inference map, per-step stats,
/// measurement products) and deterministic utilities (tagged rng forks, a
/// lazily built alias resolver).
///
/// Write/read split for the parallel executor: steps WRITE through
/// `result` and READ earlier steps' products (rtt, paths, …) through
/// `shared()`.  On the serial and barrier paths both are the same
/// object; inside a parallel shard, `result` is a shard-local delta (a
/// sliced inference map plus fresh stats) while `shared()` is the frozen
/// run-level result — so concurrent shards never share mutable state.
class step_context {
 public:
  step_context(const engine_inputs& in, const pipeline_config& cfg,
               pipeline_result& result, util::rng root,
               const pipeline_result* shared = nullptr,
               util::thread_pool* pool = nullptr) noexcept
      : w(in.w), view(in.view), prefix2as(in.prefix2as), lat(in.lat), vps(in.vps),
        traces(in.traces), scope(in.scope), batch(in.scope), cfg(cfg),
        result(result), shared_(shared), pool_(pool), root_(root) {}

  step_context(const step_context&) = delete;
  step_context& operator=(const step_context&) = delete;

  const world::world& w;
  const db::merged_view& view;
  const db::ip2as& prefix2as;
  const measure::latency_model& lat;
  std::span<const measure::vantage_point> vps;
  std::span<const measure::trace> traces;
  /// The full studied scope.
  std::span<const world::ixp_id> scope;
  /// The slice a per-IXP step should operate on in this invocation
  /// (equals `scope` for cross-IXP steps and unbatched runs).
  std::span<const world::ixp_id> batch;
  const pipeline_config& cfg;
  /// The write side: the run-level result on the serial/barrier path, a
  /// shard-local delta inside a parallel shard (merged deterministically
  /// by the executor afterwards).
  pipeline_result& result;

  /// The read side: the merged products of the steps that already ran.
  /// Always read rtt/paths/… through here, never through `result` — on
  /// a parallel shard the delta's product slots are empty.
  [[nodiscard]] const pipeline_result& shared() const noexcept {
    return shared_ ? *shared_ : result;
  }

  /// Worker pool of the parallel executor, for cross-IXP steps that fan
  /// out over a non-IXP axis (path extraction shards the trace corpus).
  /// Null on the serial path and inside per-IXP shards.
  [[nodiscard]] util::thread_pool* pool() const noexcept { return pool_; }

  /// Deterministic child stream for a step-specific purpose.  Forks
  /// depend only on (run seed, tag), never on draw counts, so step
  /// reordering keeps experiments reproducible.
  [[nodiscard]] util::rng fork(std::string_view tag) const noexcept {
    return root_.fork(tag);
  }

  /// Per-shard named stream: depends only on (run seed, tag, first IXP
  /// of the current batch) — the same no matter which thread runs the
  /// shard or in what order shards execute.  NOTE it IS keyed by the
  /// batch partition: serial unbatched runs are one batch, so a step
  /// drawing from shard_fork sees different streams under different
  /// batch_size/backend choices.  For draws that must be invariant
  /// across partitions too (the guarantee all builtin steps meet), key
  /// per entity instead: fork(tag).fork(ixp) / fork(tag).fork(ip).
  [[nodiscard]] util::rng shard_fork(std::string_view tag) const noexcept {
    return root_.stream(tag, batch.empty() ? ~0ULL : batch.front());
  }

  /// The run's root stream (for executors building shard contexts).
  [[nodiscard]] util::rng root() const noexcept { return root_; }

  /// The alias resolver shared by topology steps (built on first use with
  /// the run's "alias" stream, exactly as the monolithic pipeline did).
  [[nodiscard]] const alias::resolver& resolver() {
    if (!resolver_)
      resolver_.emplace(w, cfg.resolver, root_.fork("alias").seed());
    return *resolver_;
  }

 private:
  const pipeline_result* shared_ = nullptr;
  util::thread_pool* pool_ = nullptr;
  util::rng root_;
  std::optional<alias::resolver> resolver_;
};

/// One pluggable stage of the inference engine.
class inference_step {
 public:
  virtual ~inference_step() = default;

  /// Stable registry name (also the ledger key), e.g. "rtt-colo".
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual step_kind kind() const noexcept {
    return step_kind::decision;
  }
  [[nodiscard]] virtual step_granularity granularity() const noexcept {
    return step_granularity::per_ixp;
  }
  /// Data dependencies, as product tags ("rtt", "paths").  The builder
  /// verifies each input is produced by an earlier step in the chain and
  /// auto-inserts the builtin measurement steps when missing.
  [[nodiscard]] virtual std::vector<std::string_view> inputs() const { return {}; }
  [[nodiscard]] virtual std::vector<std::string_view> outputs() const { return {}; }
  /// Paper anchor for docs and reports, e.g. "§5.1.1".
  [[nodiscard]] virtual std::string_view paper_section() const noexcept { return ""; }

  virtual void run(step_context& ctx) = 0;
};

}  // namespace opwat::infer
