// Shared types of the inference pipeline (§5).
//
// Inferences are keyed per *interface* on an IXP peering LAN — the same
// granularity as the paper's validation (a member can be local at one IXP
// and remote at another, or even have several ports at one IXP).
#pragma once

#include <array>
#include <compare>
#include <limits>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "opwat/net/ipv4.hpp"
#include "opwat/world/world.hpp"

namespace opwat::infer {

enum class peering_class : std::uint8_t { unknown, local, remote };

enum class method_step : std::uint8_t {
  none,
  port_capacity,    // Step 1
  rtt_colo,         // Steps 2+3
  multi_ixp,        // Step 4
  private_links,    // Step 5
  rtt_threshold,    // Castro et al. baseline
  traceroute_rtt,   // §8 extension: traceroute-derived RTT + colocation
};

/// Enumerator counts, for dense per-class / per-step count arrays.
inline constexpr std::size_t k_n_peering_classes = 3;
inline constexpr std::size_t k_n_method_steps = 7;

[[nodiscard]] constexpr std::string_view to_string(peering_class c) noexcept {
  switch (c) {
    case peering_class::unknown: return "unknown";
    case peering_class::local: return "local";
    case peering_class::remote: return "remote";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(method_step s) noexcept {
  switch (s) {
    case method_step::none: return "none";
    case method_step::port_capacity: return "port-capacity";
    case method_step::rtt_colo: return "rtt+colo";
    case method_step::multi_ixp: return "multi-ixp";
    case method_step::private_links: return "private-links";
    case method_step::rtt_threshold: return "rtt-threshold";
    case method_step::traceroute_rtt: return "traceroute-rtt";
  }
  return "?";
}

/// Per-step execution ledger entry: every engine run records, for each
/// step in chain order, how often it was invoked (once per scope batch
/// for batchable steps), how long it took, and which decisions it is
/// responsible for — the provenance behind Fig. 10a without a rescan.
struct step_trace {
  std::string step;               ///< registry name, e.g. "rtt-colo"
  std::size_t invocations = 0;    ///< batch invocations (1 for cross-IXP steps)
  double elapsed_ms = 0.0;        ///< wall-clock time across invocations
  std::size_t decided_local = 0;  ///< decisions this step contributed
  std::size_t decided_remote = 0;
};

/// An interface on an IXP: the unit of inference.
struct iface_key {
  world::ixp_id ixp = world::k_invalid;
  net::ipv4_addr ip;
  auto operator<=>(const iface_key&) const noexcept = default;
};

struct inference {
  peering_class cls = peering_class::unknown;
  method_step step = method_step::none;
  /// Minimum usable RTT observed for the interface (NaN when none).
  double rtt_min_ms = std::numeric_limits<double>::quiet_NaN();
  /// Count of IXP facilities inside the feasible ring (-1 = not computed).
  int feasible_ixp_facilities = -1;
};

class inference_map {
 public:
  /// Sets the class only if the interface is still undecided; returns true
  /// when the call decided the interface.  Steps never overwrite earlier
  /// steps (the pipeline order encodes trust, §5.2).  Asking for
  /// `peering_class::unknown` is a no-op: `items()` holds decided
  /// interfaces only.
  bool decide(const iface_key& k, peering_class cls, method_step step) {
    if (cls == peering_class::unknown) return false;
    const auto [it, inserted] = items_.try_emplace(k);
    if (!inserted) return false;
    auto& inf = it->second;
    if (const auto a = pending_.find(k); a != pending_.end()) {
      inf.rtt_min_ms = a->second.rtt_min_ms;
      inf.feasible_ixp_facilities = a->second.feasible_ixp_facilities;
      pending_.erase(a);
    }
    inf.cls = cls;
    inf.step = step;
    ++counts_[static_cast<std::size_t>(cls)];
    auto& tally = by_ixp_[k.ixp];
    ++tally.by_class[static_cast<std::size_t>(cls)];
    ++tally.by_step[static_cast<std::size_t>(step)];
    return true;
  }

  /// Annotations attach measurement evidence without deciding the
  /// interface: for an undecided key they are parked in a side store (no
  /// phantom `unknown` entry is created) and folded in when — if ever —
  /// a step decides it.
  void annotate_rtt(const iface_key& k, double rtt_min_ms) {
    if (const auto it = items_.find(k); it != items_.end())
      it->second.rtt_min_ms = rtt_min_ms;
    else
      pending_[k].rtt_min_ms = rtt_min_ms;
  }
  void annotate_feasible(const iface_key& k, int n) {
    if (const auto it = items_.find(k); it != items_.end())
      it->second.feasible_ixp_facilities = n;
    else
      pending_[k].feasible_ixp_facilities = n;
  }

  /// Decided entry for the interface; nullptr while undecided.
  [[nodiscard]] const inference* find(const iface_key& k) const {
    const auto it = items_.find(k);
    return it == items_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] peering_class cls(const iface_key& k) const {
    const auto* inf = find(k);
    return inf ? inf->cls : peering_class::unknown;
  }
  /// Minimum usable RTT annotation, decided or not (NaN when none).
  [[nodiscard]] double rtt_min_ms(const iface_key& k) const {
    if (const auto* inf = find(k)) return inf->rtt_min_ms;
    const auto it = pending_.find(k);
    return it == pending_.end() ? std::numeric_limits<double>::quiet_NaN()
                                : it->second.rtt_min_ms;
  }
  /// Feasible-ring annotation, decided or not (-1 when not computed).
  [[nodiscard]] int feasible_facilities(const iface_key& k) const {
    if (const auto* inf = find(k)) return inf->feasible_ixp_facilities;
    const auto it = pending_.find(k);
    return it == pending_.end() ? -1 : it->second.feasible_ixp_facilities;
  }

  /// Decided interfaces only (annotated-but-undecided keys live in the
  /// pending store and never inflate these totals).
  [[nodiscard]] const std::map<iface_key, inference>& items() const noexcept {
    return items_;
  }
  [[nodiscard]] std::size_t count(peering_class c) const noexcept {
    return counts_[static_cast<std::size_t>(c)];
  }

  /// Decisions of one IXP by class — O(log #IXPs) via the per-IXP
  /// tallies maintained in decide(); this is the indexed store behind
  /// pipeline_result::count and the serve-catalog ingest.
  [[nodiscard]] std::size_t count(world::ixp_id x, peering_class c) const noexcept {
    const auto it = by_ixp_.find(x);
    return it == by_ixp_.end() ? 0 : it->second.by_class[static_cast<std::size_t>(c)];
  }
  /// Decisions of one IXP by evidence step (Fig. 10a), same index.
  [[nodiscard]] std::size_t contribution(world::ixp_id x, method_step s) const noexcept {
    const auto it = by_ixp_.find(x);
    return it == by_ixp_.end() ? 0 : it->second.by_step[static_cast<std::size_t>(s)];
  }

  // --- shard merging (parallel executor) ------------------------------------
  //
  // Keys are (ixp, ip) and the map is ordered, so every IXP owns one
  // contiguous range of both the decided items and the pending side
  // store.  The parallel executor copies each shard's ranges out with
  // slice(), lets the shard decide/annotate on its private copy, and
  // folds the copy back with replace_slice() — per-class counters and
  // pending annotations move with the entries, so merged counts never
  // drift from the item tally (count(c) == the number of items of class
  // c, always).

  /// Deep-copies the decided entries and pending annotations of the given
  /// IXPs into a fresh map whose counters tally exactly the copied items.
  [[nodiscard]] inference_map slice(std::span<const world::ixp_id> ixps) const;

  /// Replaces this map's entries for the given IXPs with `delta`'s:
  /// erases the current ranges (decrementing their counters), then
  /// splices in `delta`'s items and pending annotations (incrementing
  /// counters per spliced item).  Every key in `delta` must belong to one
  /// of `ixps`; `delta` is left empty.
  void replace_slice(std::span<const world::ixp_id> ixps, inference_map&& delta);

 private:
  struct annotation {
    double rtt_min_ms = std::numeric_limits<double>::quiet_NaN();
    int feasible_ixp_facilities = -1;
  };
  /// Per-IXP decision tallies (by class and by evidence step), updated
  /// in decide() and moved with entries by slice()/replace_slice().
  struct ixp_tally {
    std::array<std::size_t, k_n_peering_classes> by_class{};
    std::array<std::size_t, k_n_method_steps> by_step{};
  };

  std::map<iface_key, inference> items_;
  std::map<iface_key, annotation> pending_;
  /// Per-class decision counters, updated in decide(): count() is O(1).
  std::array<std::size_t, k_n_peering_classes> counts_{};
  std::map<world::ixp_id, ixp_tally> by_ixp_;
};

}  // namespace opwat::infer
