// Shared types of the inference pipeline (§5).
//
// Inferences are keyed per *interface* on an IXP peering LAN — the same
// granularity as the paper's validation (a member can be local at one IXP
// and remote at another, or even have several ports at one IXP).
#pragma once

#include <compare>
#include <limits>
#include <map>
#include <optional>
#include <string>

#include "opwat/net/ipv4.hpp"
#include "opwat/world/world.hpp"

namespace opwat::infer {

enum class peering_class : std::uint8_t { unknown, local, remote };

enum class method_step : std::uint8_t {
  none,
  port_capacity,    // Step 1
  rtt_colo,         // Steps 2+3
  multi_ixp,        // Step 4
  private_links,    // Step 5
  rtt_threshold,    // Castro et al. baseline
  traceroute_rtt,   // §8 extension: traceroute-derived RTT + colocation
};

[[nodiscard]] constexpr std::string_view to_string(peering_class c) noexcept {
  switch (c) {
    case peering_class::unknown: return "unknown";
    case peering_class::local: return "local";
    case peering_class::remote: return "remote";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(method_step s) noexcept {
  switch (s) {
    case method_step::none: return "none";
    case method_step::port_capacity: return "port-capacity";
    case method_step::rtt_colo: return "rtt+colo";
    case method_step::multi_ixp: return "multi-ixp";
    case method_step::private_links: return "private-links";
    case method_step::rtt_threshold: return "rtt-threshold";
    case method_step::traceroute_rtt: return "traceroute-rtt";
  }
  return "?";
}

/// An interface on an IXP: the unit of inference.
struct iface_key {
  world::ixp_id ixp = world::k_invalid;
  net::ipv4_addr ip;
  auto operator<=>(const iface_key&) const noexcept = default;
};

struct inference {
  peering_class cls = peering_class::unknown;
  method_step step = method_step::none;
  /// Minimum usable RTT observed for the interface (NaN when none).
  double rtt_min_ms = std::numeric_limits<double>::quiet_NaN();
  /// Count of IXP facilities inside the feasible ring (-1 = not computed).
  int feasible_ixp_facilities = -1;
};

class inference_map {
 public:
  /// Sets the class only if the interface is still unknown; returns true
  /// when the call decided the interface.  Steps never overwrite earlier
  /// steps (the pipeline order encodes trust, §5.2).
  bool decide(const iface_key& k, peering_class cls, method_step step) {
    auto& inf = items_[k];
    if (inf.cls != peering_class::unknown) return false;
    inf.cls = cls;
    inf.step = step;
    return true;
  }

  void annotate_rtt(const iface_key& k, double rtt_min_ms) {
    items_[k].rtt_min_ms = rtt_min_ms;
  }
  void annotate_feasible(const iface_key& k, int n) {
    items_[k].feasible_ixp_facilities = n;
  }

  [[nodiscard]] const inference* find(const iface_key& k) const {
    const auto it = items_.find(k);
    return it == items_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] peering_class cls(const iface_key& k) const {
    const auto* inf = find(k);
    return inf ? inf->cls : peering_class::unknown;
  }

  [[nodiscard]] const std::map<iface_key, inference>& items() const noexcept {
    return items_;
  }
  [[nodiscard]] std::size_t count(peering_class c) const {
    std::size_t n = 0;
    for (const auto& [k, inf] : items_)
      if (inf.cls == c) ++n;
    return n;
  }

 private:
  std::map<iface_key, inference> items_;
};

}  // namespace opwat::infer
