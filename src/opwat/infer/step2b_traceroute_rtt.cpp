#include "opwat/infer/step2b_traceroute_rtt.hpp"

#include <algorithm>
#include <set>

namespace opwat::infer {

step2_result traceroute_rtt_result::as_step2_result() const {
  step2_result out;
  out.observations = observations;
  out.targets_queried = observations.size();
  out.targets_responsive = observations.size();
  for (std::size_t i = 0; i < virtual_vps.size(); ++i) out.usable_vps.push_back(i);
  return out;
}

traceroute_rtt_result derive_traceroute_rtts(const db::merged_view& view,
                                             const traix::extraction& paths,
                                             const inference_map& prior,
                                             const traceroute_rtt_config& cfg) {
  traceroute_rtt_result out;

  // (asn, ixp) -> inferred-local flag, from the prior inference map.
  const auto near_is_local = [&](net::asn as, world::ixp_id x) {
    for (const auto& e : view.interfaces_of_ixp(x)) {
      if (e.asn != as) continue;
      if (prior.cls({x, e.ip}) == peering_class::local) return true;
    }
    return false;
  };

  // The near member's anchor facility at the IXP: a facility common to
  // both, per the colocation DB.
  const auto anchor_facility = [&](net::asn as,
                                   world::ixp_id x) -> std::optional<world::facility_id> {
    const auto& ixp_facs = view.facilities_of_ixp(x);
    for (const auto f : view.facilities_of_as(as))
      if (std::find(ixp_facs.begin(), ixp_facs.end(), f) != ixp_facs.end()) return f;
    return std::nullopt;
  };

  // Virtual VP per (ixp, facility).
  std::map<std::pair<world::ixp_id, world::facility_id>, std::size_t> vp_index;
  const auto vp_for = [&](world::ixp_id x,
                          world::facility_id f) -> std::optional<std::size_t> {
    const auto it = vp_index.find({x, f});
    if (it != vp_index.end()) return it->second;
    const auto loc = view.facility_location(f);
    if (!loc) return std::nullopt;
    measure::vantage_point vp;
    vp.name = "virtual.ixp" + std::to_string(x) + ".fac" + std::to_string(f);
    vp.type = measure::vp_type::atlas;  // out-of-LAN semantics
    vp.ixp = x;
    vp.facility = f;
    vp.location = *loc;
    vp.in_peering_lan = false;
    vp.rounds_rtt_up = false;
    out.virtual_vps.push_back(std::move(vp));
    vp_index[{x, f}] = out.virtual_vps.size() - 1;
    return out.virtual_vps.size() - 1;
  };

  for (const auto& c : paths.crossings) {
    ++out.crossings_seen;
    // Locality evidence for the near member.
    const bool local_anchor = near_is_local(c.near_as, c.ixp);
    if (cfg.require_local_near && !local_anchor) continue;
    const auto fac = anchor_facility(c.near_as, c.ixp);
    if (!fac) continue;
    if (!cfg.require_local_near && !local_anchor) {
      // Ping-free variant: accept the colocation DB's single common
      // facility as the anchor (weaker evidence).
      std::size_t common = 0;
      const auto& ixp_facs = view.facilities_of_ixp(c.ixp);
      for (const auto f : view.facilities_of_as(c.near_as))
        if (std::find(ixp_facs.begin(), ixp_facs.end(), f) != ixp_facs.end()) ++common;
      if (common != 1) continue;
    }
    const auto vp = vp_for(c.ixp, *fac);
    if (!vp) continue;

    const double delta =
        std::max(cfg.min_delta_ms, c.rtt_to_ixp_ip_ms - c.rtt_to_near_ip_ms);
    rtt_observation obs;
    obs.vp_index = *vp;
    obs.rtt_min_ms = delta;
    obs.rounded = false;
    out.observations[{c.ixp, c.ixp_ip}].push_back(obs);
    ++out.crossings_used;
  }

  // Minimum filtering: keep the smallest deltas per interface (transient
  // queueing only inflates the difference).
  for (auto& [key, obs] : out.observations) {
    std::sort(obs.begin(), obs.end(),
              [](const rtt_observation& a, const rtt_observation& b) {
                return a.rtt_min_ms < b.rtt_min_ms;
              });
    if (obs.size() > cfg.max_observations_per_iface)
      obs.resize(cfg.max_observations_per_iface);
  }
  return out;
}

}  // namespace opwat::infer
