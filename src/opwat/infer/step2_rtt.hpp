// Step 2 — ping RTT measurement campaign (§5.2).
//
// Runs the ping campaign from every VP colocated with the scoped IXPs,
// applies the TTL filters, the management-LAN probe filter (Atlas probes
// with >= 1 ms to the route server are discarded, §6.1) and the LG
// integer-rounding correction, and aggregates the usable minimum RTT per
// {VP, interface}.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "opwat/db/merge.hpp"
#include "opwat/infer/types.hpp"
#include "opwat/measure/ping.hpp"

namespace opwat::infer {

struct step2_config {
  measure::ping_config ping;
  /// Atlas probes at or above this RTT to the route server are unusable.
  double mgmt_filter_ms = 1.0;
  bool apply_mgmt_filter = true;
  bool apply_lg_rounding_correction = true;
};

/// One usable RTT observation for an interface.
struct rtt_observation {
  std::size_t vp_index = 0;
  double rtt_min_ms = 0.0;
  /// True when the VP rounds to whole ms: the d_min bound must then be
  /// computed from (rtt - 1) per §6.1.
  bool rounded = false;
};

struct step2_result {
  /// Usable observations per interface.
  std::map<iface_key, std::vector<rtt_observation>> observations;
  /// The raw campaign (for Table 5 / Fig. 9a statistics).
  measure::ping_campaign campaign;
  /// VPs that survived the filters.
  std::vector<std::size_t> usable_vps;
  /// VPs discarded by the management-LAN filter.
  std::vector<std::size_t> mgmt_filtered_vps;
  std::size_t targets_queried = 0;
  std::size_t targets_responsive = 0;

  /// Minimum usable RTT across VPs for an interface (NaN when none).
  [[nodiscard]] double best_rtt(const iface_key& k) const;

  /// Folds in a campaign run over a disjoint IXP subset (the engine's
  /// batch/shard path).  The merge is exact: observation keys are
  /// (ixp, ip) so subsets never collide, measurements interleave by VP
  /// index (a VP pings only its own IXP, so indices are disjoint too),
  /// and a VP's route-server RTT is finite only in the partial covering
  /// its IXP (element-wise min keeps it; candidates measured twice are
  /// bitwise identical since draws are keyed by (seed, vp)).  Merging
  /// the per-IXP partials therefore reproduces the full-scope result
  /// byte for byte, in any merge order.
  void merge_from(step2_result&& part);
};

/// Builds targets from the merged view and runs the filtered campaign.
step2_result run_step2_rtt(const world::world& w, const measure::latency_model& lat,
                           std::span<const measure::vantage_point> vps,
                           const db::merged_view& view,
                           std::span<const world::ixp_id> ixps,
                           const step2_config& cfg, util::rng rng,
                           inference_map& annotate);

/// Invokes fn(key, observations) for every observation of the scoped
/// IXPs (empty `only` = all).  Observations are keyed (ixp, ip), so each
/// scoped IXP is a contiguous map range; per-interface consumers are
/// partition-independent under any scope batching.
template <typename Fn>
void for_each_scoped_observation(
    const std::map<iface_key, std::vector<rtt_observation>>& observations,
    std::span<const world::ixp_id> only, Fn&& fn) {
  if (only.empty()) {
    for (const auto& [key, obs] : observations) fn(key, obs);
    return;
  }
  for (const auto x : only)
    for (auto it = observations.lower_bound(iface_key{x, net::ipv4_addr{}});
         it != observations.end() && it->first.ixp == x; ++it)
      fn(it->first, it->second);
}

}  // namespace opwat::infer
