#include "opwat/infer/step1_port.hpp"

namespace opwat::infer {

step1_stats run_step1_port_capacity(const db::merged_view& view,
                                    std::span<const world::ixp_id> ixps,
                                    inference_map& out) {
  step1_stats st;
  for (const auto x : ixps) {
    const auto cmin = view.min_physical_capacity(x);
    if (!cmin) continue;  // pricing page unavailable
    for (const auto& e : view.interfaces_of_ixp(x)) {
      ++st.examined;
      const auto cap = view.port_capacity(e.asn, x);
      if (!cap) continue;
      if (*cap < *cmin) {
        if (out.decide({x, e.ip}, peering_class::remote, method_step::port_capacity))
          ++st.inferred_remote;
      }
    }
  }
  return st;
}

}  // namespace opwat::infer
