#include "opwat/infer/engine.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <stdexcept>

#include "opwat/infer/executor.hpp"

namespace opwat::infer {

namespace {

/// Builtin producer of a data product, for auto-insertion.
std::string_view producer_of(std::string_view product) noexcept {
  if (product == "rtt") return "ping-campaign";
  if (product == "paths") return "path-extraction";
  return "";
}

}  // namespace

std::string_view step_name_of(method_step s) noexcept {
  switch (s) {
    case method_step::none: return "";
    case method_step::port_capacity: return "port-capacity";
    case method_step::rtt_colo: return "rtt-colo";
    case method_step::multi_ixp: return "multi-ixp";
    case method_step::private_links: return "private-links";
    case method_step::rtt_threshold: return "rtt-threshold";
    case method_step::traceroute_rtt: return "traceroute-rtt";
  }
  return "";
}

pipeline_builder pipeline_builder::from_config(const pipeline_config& cfg) {
  pipeline_builder b;
  b.cfg_ = cfg;
  // The monolithic pipeline ran the measurement substrate unconditionally
  // and, like its order loop, treated traceroute_rtt as the flag-gated
  // epilogue rather than an order entry.
  b.with_step("ping-campaign").with_step("path-extraction");
  for (const auto s : cfg.order) {
    if (s == method_step::none || s == method_step::traceroute_rtt) continue;
    b.with_step(step_name_of(s));
  }
  if (cfg.use_traceroute_rtt) b.with_step("traceroute-rtt");
  return b;
}

pipeline_builder& pipeline_builder::with_step(std::string_view name) {
  steps_.push_back({registry_->make(name),
                    [reg = registry_, n = std::string{name}] { return reg->make(n); }});
  return *this;
}

pipeline_builder& pipeline_builder::with_step(std::shared_ptr<inference_step> step) {
  if (!step) throw std::invalid_argument("pipeline_builder: null step");
  steps_.push_back({std::move(step), nullptr});
  return *this;
}

std::vector<pipeline_builder::planned_step> pipeline_builder::keep_measurement_steps() {
  std::vector<planned_step> kept;
  for (auto& s : steps_)
    if (s.prototype->kind() == step_kind::measurement) kept.push_back(std::move(s));
  return kept;
}

pipeline_builder& pipeline_builder::order(std::initializer_list<std::string_view> names) {
  steps_ = keep_measurement_steps();
  for (const auto name : names) with_step(name);
  return *this;
}

pipeline_builder& pipeline_builder::order(std::span<const method_step> steps) {
  steps_ = keep_measurement_steps();
  cfg_.order.assign(steps.begin(), steps.end());
  // Mirror the legacy semantics exactly: none and traceroute_rtt order
  // entries are no-ops, and the §8 extension is the flag-gated epilogue —
  // so from_config(cfg).order(perm) == from_config(cfg with order=perm).
  for (const auto s : steps) {
    if (s == method_step::none || s == method_step::traceroute_rtt) continue;
    with_step(step_name_of(s));
  }
  if (cfg_.use_traceroute_rtt) with_step("traceroute-rtt");
  return *this;
}

pipeline_builder& pipeline_builder::seed(std::uint64_t seed) {
  cfg_.seed = seed;
  return *this;
}
pipeline_builder& pipeline_builder::batch_size(std::size_t n) {
  cfg_.batch_size = n;
  return *this;
}
pipeline_builder& pipeline_builder::threads(std::size_t n) {
  cfg_.execution = parallelism::parallel;
  cfg_.threads = n;
  return *this;
}
pipeline_builder& pipeline_builder::execution(parallelism mode) {
  cfg_.execution = mode;
  return *this;
}
pipeline_builder& pipeline_builder::step2(const step2_config& cfg) {
  cfg_.step2 = cfg;
  return *this;
}
pipeline_builder& pipeline_builder::step3(const step3_config& cfg) {
  cfg_.step3 = cfg;
  return *this;
}
pipeline_builder& pipeline_builder::step5(const step5_config& cfg) {
  cfg_.step5 = cfg;
  return *this;
}
pipeline_builder& pipeline_builder::resolver(const alias::resolver_config& cfg) {
  cfg_.resolver = cfg;
  return *this;
}
pipeline_builder& pipeline_builder::baseline(const baseline_config& cfg) {
  cfg_.baseline = cfg;
  return *this;
}
pipeline_builder& pipeline_builder::traceroute_rtt(const traceroute_rtt_config& cfg) {
  cfg_.traceroute_rtt = cfg;
  return *this;
}

inference_engine pipeline_builder::build() const {
  // Registry steps are instantiated fresh per build so engines never
  // alias each other's (or the builder's) step objects; caller-supplied
  // steps have no factory and are shared by contract.
  std::vector<std::shared_ptr<inference_step>> chain;
  chain.reserve(steps_.size());
  for (const auto& s : steps_) chain.push_back(s.make ? s.make() : s.prototype);

  // Auto-insert builtin measurement steps for unproduced inputs (front of
  // the chain, stable order).
  {
    std::set<std::string_view> produced, present;
    for (const auto& s : chain) {
      present.insert(s->name());
      for (const auto out : s->outputs()) produced.insert(out);
    }
    std::vector<std::shared_ptr<inference_step>> missing;
    for (const auto& s : chain) {
      for (const auto in : s->inputs()) {
        if (produced.contains(in)) continue;
        const auto maker = producer_of(in);
        if (maker.empty() || present.contains(maker) || !registry_->contains(maker))
          continue;  // leave for the dependency check below to report
        missing.push_back(registry_->make(maker));
        present.insert(missing.back()->name());
        for (const auto out : missing.back()->outputs()) produced.insert(out);
      }
    }
    chain.insert(chain.begin(), std::make_move_iterator(missing.begin()),
                 std::make_move_iterator(missing.end()));
  }

  // No step may appear twice: decisions are first-write-wins, so a
  // repeated step is a configuration error, not a way to run it harder.
  {
    std::set<std::string_view> seen;
    for (const auto& s : chain)
      if (!seen.insert(s->name()).second)
        throw std::invalid_argument("pipeline_builder: duplicate step '" +
                                    std::string{s->name()} + "'");
  }

  // Every declared input must be produced by an EARLIER step.
  {
    std::set<std::string_view> produced;
    for (const auto& s : chain) {
      for (const auto in : s->inputs())
        if (!produced.contains(in))
          throw std::invalid_argument("pipeline_builder: step '" +
                                      std::string{s->name()} + "' consumes '" +
                                      std::string{in} +
                                      "' before any step produces it");
      for (const auto out : s->outputs()) produced.insert(out);
    }
  }

  return inference_engine{std::move(chain), cfg_};
}

std::vector<step_info> inference_engine::steps() const {
  std::vector<step_info> out;
  out.reserve(steps_.size());
  for (const auto& s : steps_)
    out.push_back({std::string{s->name()}, s->kind(), s->granularity(),
                   std::string{s->paper_section()}});
  return out;
}

pipeline_result inference_engine::run(const engine_inputs& in) const {
  using clock = std::chrono::steady_clock;

  pipeline_result pr;
  pr.scope.assign(in.scope.begin(), in.scope.end());
  const auto exec = make_executor(cfg_);
  step_context ctx{in, cfg_, pr, util::rng{cfg_.seed}, nullptr, exec->pool()};

  for (const auto& step : steps_) {
    step_trace tr;
    tr.step = std::string{step->name()};
    const auto local0 = pr.inferences.count(peering_class::local);
    const auto remote0 = pr.inferences.count(peering_class::remote);
    const auto t0 = clock::now();

    if (step->granularity() == step_granularity::per_ixp) {
      tr.invocations = exec->run_step(*step, ctx, in);
    } else {
      // Cross-IXP steps propagate evidence between IXPs and run on the
      // barrier path: the whole scope, the merged result, one thread.
      ctx.batch = in.scope;
      step->run(ctx);
      tr.invocations = 1;
    }

    tr.elapsed_ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    tr.decided_local = pr.inferences.count(peering_class::local) - local0;
    tr.decided_remote = pr.inferences.count(peering_class::remote) - remote0;
    pr.trace.push_back(std::move(tr));
  }
  return pr;
}

}  // namespace opwat::infer
