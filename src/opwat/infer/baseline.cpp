#include "opwat/infer/baseline.hpp"

#include <cmath>

namespace opwat::infer {

std::size_t run_rtt_baseline(const step2_result& rtts, const baseline_config& cfg,
                             inference_map& out,
                             std::span<const world::ixp_id> only) {
  std::size_t n = 0;
  const auto classify = [&](const iface_key& key,
                            const std::vector<rtt_observation>& observations) {
    if (observations.empty()) return;
    const double best = rtts.best_rtt(key);
    if (std::isnan(best)) return;
    out.annotate_rtt(key, best);
    const auto cls = best <= cfg.threshold_ms ? peering_class::local : peering_class::remote;
    if (out.decide(key, cls, method_step::rtt_threshold)) ++n;
  };
  for_each_scoped_observation(rtts.observations, only, classify);
  return n;
}

}  // namespace opwat::infer
