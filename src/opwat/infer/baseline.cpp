#include "opwat/infer/baseline.hpp"

#include <cmath>

namespace opwat::infer {

std::size_t run_rtt_baseline(const step2_result& rtts, const baseline_config& cfg,
                             inference_map& out) {
  std::size_t n = 0;
  for (const auto& [key, observations] : rtts.observations) {
    if (observations.empty()) continue;
    const double best = rtts.best_rtt(key);
    if (std::isnan(best)) continue;
    out.annotate_rtt(key, best);
    const auto cls = best <= cfg.threshold_ms ? peering_class::local : peering_class::remote;
    if (out.decide(key, cls, method_step::rtt_threshold)) ++n;
  }
  return n;
}

}  // namespace opwat::infer
