#include "opwat/infer/types.hpp"

#include <algorithm>

#include "opwat/util/contracts.hpp"

namespace opwat::infer {

namespace {

/// First possible key of an IXP's contiguous range ((ixp, ip) ordering).
[[nodiscard]] iface_key range_begin(world::ixp_id x) noexcept {
  return iface_key{x, net::ipv4_addr{}};
}

}  // namespace

inference_map inference_map::slice(std::span<const world::ixp_id> ixps) const {
  inference_map out;
  for (const auto x : ixps) {
    ixp_tally* tally = nullptr;  // materialized on the first copied item
    for (auto it = items_.lower_bound(range_begin(x));
         it != items_.end() && it->first.ixp == x; ++it) {
      out.items_.emplace(it->first, it->second);
      ++out.counts_[static_cast<std::size_t>(it->second.cls)];
      if (!tally) tally = &out.by_ixp_[x];
      ++tally->by_class[static_cast<std::size_t>(it->second.cls)];
      ++tally->by_step[static_cast<std::size_t>(it->second.step)];
    }
    for (auto it = pending_.lower_bound(range_begin(x));
         it != pending_.end() && it->first.ixp == x; ++it)
      out.pending_.emplace(it->first, it->second);
  }
  return out;
}

void inference_map::replace_slice(std::span<const world::ixp_id> ixps,
                                  inference_map&& delta) {
  for (const auto x : ixps) {
    for (auto it = items_.lower_bound(range_begin(x));
         it != items_.end() && it->first.ixp == x;) {
      --counts_[static_cast<std::size_t>(it->second.cls)];
      it = items_.erase(it);
    }
    // The whole range of x is gone, so its tally is exactly zero now.
    by_ixp_.erase(x);
    for (auto it = pending_.lower_bound(range_begin(x));
         it != pending_.end() && it->first.ixp == x;)
      it = pending_.erase(it);
  }
  // Counters follow the items actually inserted, not delta's own tally,
  // so count(c) equals the item tally afterwards even for a hand-built
  // delta.  A collision (a delta key outside `ixps` that the base
  // already holds — the erased ranges cannot collide) violates the call
  // contract: the base entry wins and the contract checks flag it in
  // Debug and audit builds.
  for (const auto& [key, inf] : delta.items_)
    if (items_.emplace(key, inf).second) {
      ++counts_[static_cast<std::size_t>(inf.cls)];
      auto& tally = by_ixp_[key.ixp];
      ++tally.by_class[static_cast<std::size_t>(inf.cls)];
      ++tally.by_step[static_cast<std::size_t>(inf.step)];
    }
  pending_.merge(delta.pending_);
  OPWAT_ASSERT(delta.pending_.empty(),
               "replace_slice: delta pending keys collide with the base");
  // Deep recount: side-effect-free (builds fresh tallies, mutates
  // nothing) and compiled out entirely in plain Release builds.
  OPWAT_INVARIANT(([&] {
    auto tally = decltype(counts_){};
    auto per_ixp = decltype(by_ixp_){};
    for (const auto& [key, inf] : items_) {
      ++tally[static_cast<std::size_t>(inf.cls)];
      ++per_ixp[key.ixp].by_class[static_cast<std::size_t>(inf.cls)];
      ++per_ixp[key.ixp].by_step[static_cast<std::size_t>(inf.step)];
    }
    const auto live = [](const auto& m) {
      std::size_t n = 0;
      for (const auto& [x, t] : m)
        for (const auto c : t.by_class) n += c;
      return n;
    };
    return tally == counts_ && live(per_ixp) == live(by_ixp_) &&
           std::all_of(per_ixp.begin(), per_ixp.end(), [&](const auto& kv) {
             const auto it = by_ixp_.find(kv.first);
             return it != by_ixp_.end() && it->second.by_class == kv.second.by_class &&
                    it->second.by_step == kv.second.by_step;
           });
  }()),
                  "replace_slice: class/step tallies diverged from items");
  delta.counts_ = {};
  delta.items_.clear();
  delta.pending_.clear();
  delta.by_ixp_.clear();
}

}  // namespace opwat::infer
