#include "opwat/infer/types.hpp"

#include <cassert>

namespace opwat::infer {

namespace {

/// First possible key of an IXP's contiguous range ((ixp, ip) ordering).
[[nodiscard]] iface_key range_begin(world::ixp_id x) noexcept {
  return iface_key{x, net::ipv4_addr{}};
}

}  // namespace

inference_map inference_map::slice(std::span<const world::ixp_id> ixps) const {
  inference_map out;
  for (const auto x : ixps) {
    for (auto it = items_.lower_bound(range_begin(x));
         it != items_.end() && it->first.ixp == x; ++it) {
      out.items_.emplace(it->first, it->second);
      ++out.counts_[static_cast<std::size_t>(it->second.cls)];
    }
    for (auto it = pending_.lower_bound(range_begin(x));
         it != pending_.end() && it->first.ixp == x; ++it)
      out.pending_.emplace(it->first, it->second);
  }
  return out;
}

void inference_map::replace_slice(std::span<const world::ixp_id> ixps,
                                  inference_map&& delta) {
  for (const auto x : ixps) {
    for (auto it = items_.lower_bound(range_begin(x));
         it != items_.end() && it->first.ixp == x;) {
      --counts_[static_cast<std::size_t>(it->second.cls)];
      it = items_.erase(it);
    }
    for (auto it = pending_.lower_bound(range_begin(x));
         it != pending_.end() && it->first.ixp == x;)
      it = pending_.erase(it);
  }
  // Counters follow the items actually inserted, not delta's own tally,
  // so count(c) equals the item tally afterwards even for a hand-built
  // delta.  A collision (a delta key outside `ixps` that the base
  // already holds — the erased ranges cannot collide) violates the call
  // contract: the base entry wins and the asserts flag it in Debug.
  for (const auto& [key, inf] : delta.items_)
    if (items_.emplace(key, inf).second)
      ++counts_[static_cast<std::size_t>(inf.cls)];
  pending_.merge(delta.pending_);
  assert(delta.pending_.empty());
  assert(([&] {
    auto tally = decltype(counts_){};
    for (const auto& [key, inf] : items_)
      ++tally[static_cast<std::size_t>(inf.cls)];
    return tally == counts_;
  }()));
  delta.counts_ = {};
  delta.items_.clear();
  delta.pending_.clear();
}

}  // namespace opwat::infer
