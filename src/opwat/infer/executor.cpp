#include "opwat/infer/executor.hpp"

#include <algorithm>
#include <optional>
#include <vector>

namespace opwat::infer {

std::size_t serial_executor::run_step(inference_step& step, step_context& ctx,
                                      const engine_inputs& in) {
  const std::size_t batch =
      ctx.cfg.batch_size == 0 ? in.scope.size() : ctx.cfg.batch_size;
  if (batch >= in.scope.size()) {
    ctx.batch = in.scope;
    step.run(ctx);
    return 1;
  }
  std::size_t invocations = 0;
  for (std::size_t from = 0; from < in.scope.size(); from += batch) {
    ctx.batch = in.scope.subspan(from, std::min(batch, in.scope.size() - from));
    step.run(ctx);
    ++invocations;
  }
  ctx.batch = in.scope;
  return invocations;
}

parallel_executor::parallel_executor(const pipeline_config& cfg)
    : ixps_per_shard_(cfg.batch_size == 0 ? 1 : cfg.batch_size),
      pool_(cfg.threads) {}

std::size_t parallel_executor::run_step(inference_step& step, step_context& ctx,
                                        const engine_inputs& in) {
  const auto scope = in.scope;
  const std::size_t n_shards =
      scope.empty() ? 0 : (scope.size() + ixps_per_shard_ - 1) / ixps_per_shard_;
  if (n_shards == 0) {
    // Empty scope: nothing to shard; mirror the serial executor's single
    // empty-batch invocation.
    ctx.batch = scope;
    step.run(ctx);
    return 1;
  }
  // Even a single shard goes through the shard machinery so the
  // step_context contract (shard-local result, null pool) holds for any
  // scope size.

  // Shard setup runs on the caller: each shard gets a private
  // pipeline_result whose inference map is the slice of the IXPs it
  // owns, and a context whose read side is the frozen run-level result.
  pipeline_result& base = ctx.result;
  struct shard_state {
    std::span<const world::ixp_id> ixps;
    pipeline_result local;
    std::optional<step_context> ctx;
  };
  std::vector<shard_state> shards(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i) {
    auto& sh = shards[i];
    const auto from = i * ixps_per_shard_;
    sh.ixps = scope.subspan(from, std::min(ixps_per_shard_, scope.size() - from));
    sh.local.inferences = base.inferences.slice(sh.ixps);
    sh.ctx.emplace(in, ctx.cfg, sh.local, ctx.root(), &base);
    sh.ctx->batch = sh.ixps;
  }

  pool_.parallel_for(n_shards,
                     [&](std::size_t i) { step.run(*shards[i].ctx); });

  // Deterministic merge: fixed scope order, regardless of which thread
  // finished which shard when.  Per-IXP steps may write the inference
  // map, the additive stats blocks and the campaign partials; the
  // cross-IXP-only products (paths, s4, s5, beyond_pings) stay on the
  // barrier path and are never populated here.
  for (auto& sh : shards) {
    base.inferences.replace_slice(sh.ixps, std::move(sh.local.inferences));
    base.s1 += sh.local.s1;
    base.s3 += sh.local.s3;
    base.s2b += sh.local.s2b;
    base.rtt.merge_from(std::move(sh.local.rtt));
  }
  ctx.batch = scope;
  return n_shards;
}

std::unique_ptr<executor> make_executor(const pipeline_config& cfg) {
  if (cfg.execution == parallelism::parallel)
    return std::make_unique<parallel_executor>(cfg);
  return std::make_unique<serial_executor>();
}

}  // namespace opwat::infer
