// The full five-step inference pipeline (§5.2).
//
// Orchestrates:  Step 1 (port capacity) -> Step 2 (ping campaign with VP
// filtering) -> Step 3 (RTT + colocation) -> Step 4 (multi-IXP routers) ->
// Step 5 (private connectivity), with per-step provenance so every table
// and figure of §5.3/§6 can be regenerated.  The step *order* is
// configurable for the ablation study; measurement substeps always run
// first since later steps consume their outputs.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "opwat/alias/resolver.hpp"
#include "opwat/db/ip2as.hpp"
#include "opwat/db/merge.hpp"
#include "opwat/infer/baseline.hpp"
#include "opwat/infer/step1_port.hpp"
#include "opwat/infer/step2_rtt.hpp"
#include "opwat/infer/step2b_traceroute_rtt.hpp"
#include "opwat/infer/step3_colo.hpp"
#include "opwat/infer/step4_multiixp.hpp"
#include "opwat/infer/step5_private.hpp"
#include "opwat/measure/traceroute.hpp"

namespace opwat::infer {

/// Execution backend of the engine's per-IXP fan-out (see
/// opwat/infer/executor.hpp).  The serial backend is the default; the
/// parallel backend shards per-IXP steps over a thread pool and merges
/// the shard deltas deterministically, so both produce bit-identical
/// pipeline_results for the same config and seed.
enum class parallelism : std::uint8_t { serial, parallel };

struct pipeline_config {
  /// Decision order; subsets/permutations supported for ablations.
  std::vector<method_step> order{method_step::port_capacity, method_step::rtt_colo,
                                 method_step::multi_ixp, method_step::private_links};
  step2_config step2;
  step3_config step3;
  step5_config step5;
  alias::resolver_config resolver;
  baseline_config baseline;
  /// §8 extension: after the five steps, derive RTT observations from the
  /// traceroute corpus and re-run the ring test on remaining unknowns.
  bool use_traceroute_rtt = false;
  traceroute_rtt_config traceroute_rtt;
  std::uint64_t seed = 0x0b5e55ed;
  /// Scope-batch size for per-IXP steps; 0 = one batch over the whole
  /// scope under the serial backend, one IXP per shard under the
  /// parallel backend.  Per-IXP steps are partition-independent, so
  /// results are identical for any batch size.
  std::size_t batch_size = 0;
  /// Execution backend: parallelism::parallel fans per-IXP steps out
  /// over scope shards on a worker pool (cross-IXP steps stay on the
  /// barrier path) and merges shard deltas in fixed scope order.
  parallelism execution = parallelism::serial;
  /// Worker threads for the parallel backend (0 = hardware concurrency).
  /// The thread count never changes results — only wall-clock time.
  std::size_t threads = 0;
};

struct pipeline_result {
  inference_map inferences;
  std::vector<world::ixp_id> scope;
  step1_stats s1;
  step2_result rtt;
  step3_stats s3;
  step4_result s4;
  step5_stats s5;
  traix::extraction paths;
  /// §8 extension outputs (populated when use_traceroute_rtt is set).
  traceroute_rtt_result beyond_pings;
  step3_stats s2b;
  /// Per-step timing + provenance ledger, in execution order (one entry
  /// per engine step, measurement steps included).
  std::vector<step_trace> trace;

  /// Inference counts per (IXP, step) for the Fig. 10a contribution plot.
  [[nodiscard]] std::size_t contribution(world::ixp_id x, method_step s) const;
  /// Inference counts per IXP and class for Fig. 10b.
  [[nodiscard]] std::size_t count(world::ixp_id x, peering_class c) const;
  /// Ledger entry of a step by registry name; nullptr when the step did
  /// not run.
  [[nodiscard]] const step_trace* trace_for(std::string_view step) const;
};

/// Convenience: the Castro et al. baseline on the same campaign data.
[[nodiscard]] inference_map run_baseline_on(const pipeline_result& pr,
                                            const baseline_config& cfg = {});

}  // namespace opwat::infer
