// The composable inference engine (§5.2 as an API).
//
// Replaces the monolithic run_pipeline() free function: steps come from a
// registry (or are supplied as custom objects), a fluent builder
// assembles and validates the chain, and the engine executes it over the
// IXP scope in batches while keeping a per-step timing + provenance
// ledger in the result.
//
//   const auto eng = infer::engine()
//                        .with_step("port-capacity")
//                        .with_step("rtt-colo")
//                        .with_step("multi-ixp")
//                        .with_step("private-links")
//                        .seed(42)
//                        .build();
//   const auto pr = eng.run({w, view, prefix2as, lat, vps, traces, scope});
//   const auto* ledger = pr.trace_for("rtt-colo");
//
// Measurement steps a chain depends on ("ping-campaign" for "rtt",
// "path-extraction" for "paths") are inserted automatically when absent.
#pragma once

#include <initializer_list>
#include <memory>
#include <string>

#include "opwat/infer/registry.hpp"

namespace opwat::infer {

/// Descriptive view of a configured step (for reports, docs and tests).
struct step_info {
  std::string name;
  step_kind kind = step_kind::decision;
  step_granularity granularity = step_granularity::per_ixp;
  std::string paper_section;
};

/// An immutable, reusable executor for one validated step chain.
class inference_engine {
 public:
  /// Executes the chain over `in.scope`.  Per-IXP steps go through the
  /// configured executor — the serial batch loop by default, scope
  /// shards on a worker pool with a deterministic merge under
  /// threads(n)/parallelism::parallel — while cross-IXP steps always see
  /// the full scope on the barrier path.  Results are bit-identical for
  /// any batch size, backend and thread count, provided steps key their
  /// randomness per entity (fork(tag).fork(ixp/ip), as every builtin
  /// does) rather than per partition (step_context::shard_fork, which is
  /// thread- and order-invariant but batch-partition-keyed by design).
  [[nodiscard]] pipeline_result run(const engine_inputs& in) const;

  /// The validated chain, in execution order.
  [[nodiscard]] std::vector<step_info> steps() const;

 private:
  friend class pipeline_builder;
  inference_engine(std::vector<std::shared_ptr<inference_step>> steps,
                   pipeline_config cfg) noexcept
      : steps_(std::move(steps)), cfg_(std::move(cfg)) {}

  std::vector<std::shared_ptr<inference_step>> steps_;
  pipeline_config cfg_;
};

/// Fluent assembler for an inference_engine.
///
/// build() validates the chain: duplicate steps and inputs consumed
/// before any earlier step produces them are rejected with
/// std::invalid_argument; with_step(name) rejects names the registry does
/// not know immediately.
class pipeline_builder {
 public:
  /// Builds against the default (builtin) registry.
  pipeline_builder() : registry_(&default_registry()) {}
  /// Builds against a custom registry (e.g. with plugged-in heuristics).
  explicit pipeline_builder(const step_registry& reg) : registry_(&reg) {}

  /// The legacy pipeline_config, translated: decision order, step
  /// configs, seed, the §8 extension flag and batch size.  The two
  /// measurement steps are always present, as in the monolithic pipeline.
  [[nodiscard]] static pipeline_builder from_config(const pipeline_config& cfg);

  /// Appends a registry step by name.  Every build() instantiates a
  /// fresh object from the registry factory, so engines never share step
  /// state with each other or with the builder.
  pipeline_builder& with_step(std::string_view name);
  /// Appends a caller-supplied step object (plugin path; the name must
  /// still be unique within the chain).  The object is shared by every
  /// engine built from this builder and reused across runs — custom
  /// steps must be stateless across runs (or reset themselves in run()).
  pipeline_builder& with_step(std::shared_ptr<inference_step> step);

  /// Replaces the decision chain with the named steps, in order —
  /// explicit full control (flag-gated steps are NOT re-appended).
  /// Previously added measurement steps are kept in front.
  pipeline_builder& order(std::initializer_list<std::string_view> names);
  /// Same, from the legacy method_step enum (ablation benches sweep
  /// these), with legacy semantics: none and traceroute_rtt entries are
  /// no-ops and the §8 step is re-appended when use_traceroute_rtt is
  /// set, so from_config(cfg).order(perm) == from_config(cfg with
  /// order=perm).
  pipeline_builder& order(std::span<const method_step> steps);

  pipeline_builder& seed(std::uint64_t seed);
  pipeline_builder& batch_size(std::size_t n);
  /// Selects the parallel backend with `n` worker threads (0 = hardware
  /// concurrency).  Per-IXP steps fan out over IXP shards; cross-IXP
  /// steps stay on the barrier path.  Results are bit-identical to the
  /// serial backend for any n (see opwat/infer/executor.hpp).
  pipeline_builder& threads(std::size_t n);
  /// Explicit backend selection (parallelism::serial is the default).
  pipeline_builder& execution(parallelism mode);
  pipeline_builder& step2(const step2_config& cfg);
  pipeline_builder& step3(const step3_config& cfg);
  pipeline_builder& step5(const step5_config& cfg);
  pipeline_builder& resolver(const alias::resolver_config& cfg);
  pipeline_builder& baseline(const baseline_config& cfg);
  pipeline_builder& traceroute_rtt(const traceroute_rtt_config& cfg);

  /// Validates and freezes the chain.
  [[nodiscard]] inference_engine build() const;

 private:
  /// A chain entry: registry steps carry their factory (fresh instance
  /// per build); caller-supplied steps carry only the shared object.
  struct planned_step {
    std::shared_ptr<inference_step> prototype;
    step_registry::factory make;  // null for caller-supplied steps
  };

  std::vector<planned_step> keep_measurement_steps();

  const step_registry* registry_;
  std::vector<planned_step> steps_;
  pipeline_config cfg_;
};

/// Entry point of the fluent API: engine().with_step(...)....build().
[[nodiscard]] inline pipeline_builder engine() { return pipeline_builder{}; }

/// Registry name of a legacy method_step ("" for none).
[[nodiscard]] std::string_view step_name_of(method_step s) noexcept;

}  // namespace opwat::infer
