#include "opwat/infer/registry.hpp"

#include <stdexcept>

namespace opwat::infer {

namespace {

// ---------------------------------------------------------------------------
// Measurement substrate.

/// Step 2's campaign (§5.2/§6.1): pings from every usable VP, TTL +
/// management-LAN filters, LG rounding correction.  Produces the "rtt"
/// product every RTT-consuming decision step reads.
///
/// Per-IXP: a VP only pings its own IXP's members, and every draw is
/// keyed by (campaign seed, VP, target) rather than by draw order, so
/// running the campaign per scope batch/shard and merging the partials
/// reproduces the full-scope campaign byte for byte.
class ping_campaign_step final : public inference_step {
 public:
  std::string_view name() const noexcept override { return "ping-campaign"; }
  step_kind kind() const noexcept override { return step_kind::measurement; }
  std::vector<std::string_view> outputs() const override { return {"rtt"}; }
  std::string_view paper_section() const noexcept override { return "sec. 5.2, 6.1"; }

  void run(step_context& ctx) override {
    ctx.result.rtt.merge_from(run_step2_rtt(ctx.w, ctx.lat, ctx.vps, ctx.view,
                                            ctx.batch, ctx.cfg.step2,
                                            ctx.fork("ping"),
                                            ctx.result.inferences));
  }
};

/// traIXroute-style IXP-crossing and private-link extraction from the
/// traceroute corpus.  Produces the "paths" product.  Cross-IXP (the
/// corpus is not an IXP axis), but fans out over trace chunks on the
/// parallel executor's pool when one is available.
class path_extraction_step final : public inference_step {
 public:
  std::string_view name() const noexcept override { return "path-extraction"; }
  step_kind kind() const noexcept override { return step_kind::measurement; }
  step_granularity granularity() const noexcept override {
    return step_granularity::cross_ixp;
  }
  std::vector<std::string_view> outputs() const override { return {"paths"}; }
  std::string_view paper_section() const noexcept override { return "sec. 5.1.3"; }

  void run(step_context& ctx) override {
    ctx.result.paths = traix::extract(ctx.traces, ctx.view, ctx.prefix2as,
                                      ctx.pool());
  }
};

// ---------------------------------------------------------------------------
// Decision steps.

/// Step 1: fractional port capacities only exist through resellers.
class port_capacity_step final : public inference_step {
 public:
  std::string_view name() const noexcept override { return "port-capacity"; }
  std::string_view paper_section() const noexcept override { return "sec. 5.1.1"; }

  void run(step_context& ctx) override {
    ctx.result.s1 += run_step1_port_capacity(ctx.view, ctx.batch,
                                             ctx.result.inferences);
  }
};

/// Steps 2+3: feasible-ring interpretation of the campaign RTTs against
/// the colocation footprint.
class rtt_colo_step final : public inference_step {
 public:
  std::string_view name() const noexcept override { return "rtt-colo"; }
  std::vector<std::string_view> inputs() const override { return {"rtt"}; }
  std::string_view paper_section() const noexcept override { return "sec. 5.1.2, 5.2"; }

  void run(step_context& ctx) override {
    ctx.result.s3 += run_step3_colo(ctx.view, ctx.vps, ctx.shared().rtt,
                                    ctx.cfg.step3, ctx.result.inferences, ctx.batch);
  }
};

/// Step 4: label propagation over alias-resolved multi-IXP routers.
class multi_ixp_step final : public inference_step {
 public:
  std::string_view name() const noexcept override { return "multi-ixp"; }
  step_granularity granularity() const noexcept override {
    return step_granularity::cross_ixp;
  }
  std::vector<std::string_view> inputs() const override { return {"paths"}; }
  std::string_view paper_section() const noexcept override { return "sec. 5.1.3"; }

  void run(step_context& ctx) override {
    ctx.result.s4 = run_step4_multi_ixp(ctx.view, ctx.shared().paths, ctx.resolver(),
                                        ctx.scope, ctx.result.inferences);
  }
};

/// Step 5: constrained-facility-search vote over private neighbours.
class private_links_step final : public inference_step {
 public:
  std::string_view name() const noexcept override { return "private-links"; }
  step_granularity granularity() const noexcept override {
    return step_granularity::cross_ixp;
  }
  std::vector<std::string_view> inputs() const override { return {"paths", "rtt"}; }
  std::string_view paper_section() const noexcept override { return "sec. 5.1.4"; }

  void run(step_context& ctx) override {
    ctx.result.s5 = run_step5_private(ctx.view, ctx.shared().paths, ctx.resolver(),
                                      ctx.vps, ctx.shared().rtt, ctx.scope,
                                      ctx.cfg.step5, ctx.result.inferences);
  }
};

/// The Castro et al. 10 ms RTT-threshold baseline, registered as just
/// another step so ablations compose it like the paper steps.
class rtt_threshold_step final : public inference_step {
 public:
  std::string_view name() const noexcept override { return "rtt-threshold"; }
  std::vector<std::string_view> inputs() const override { return {"rtt"}; }
  std::string_view paper_section() const noexcept override { return "sec. 4.1"; }

  void run(step_context& ctx) override {
    run_rtt_baseline(ctx.shared().rtt, ctx.cfg.baseline, ctx.result.inferences,
                     ctx.batch);
  }
};

/// §8 "Beyond Pings": derive member-to-IXP delays from traceroute RTT
/// deltas at IXP crossings and re-run the ring rules on the remaining
/// unknowns via synthetic virtual VPs.
class traceroute_rtt_step final : public inference_step {
 public:
  std::string_view name() const noexcept override { return "traceroute-rtt"; }
  step_granularity granularity() const noexcept override {
    return step_granularity::cross_ixp;
  }
  std::vector<std::string_view> inputs() const override { return {"paths"}; }
  std::string_view paper_section() const noexcept override { return "sec. 8"; }

  void run(step_context& ctx) override {
    ctx.result.beyond_pings = derive_traceroute_rtts(
        ctx.view, ctx.shared().paths, ctx.result.inferences, ctx.cfg.traceroute_rtt);
    step3_config colo_cfg = ctx.cfg.step3;
    colo_cfg.provenance = method_step::traceroute_rtt;
    const auto packed = ctx.result.beyond_pings.as_step2_result();
    ctx.result.s2b = run_step3_colo(ctx.view, ctx.result.beyond_pings.virtual_vps,
                                    packed, colo_cfg, ctx.result.inferences);
  }
};

}  // namespace

void step_registry::add(std::string name, factory make) {
  const auto [it, inserted] = factories_.emplace(std::move(name), std::move(make));
  if (!inserted)
    throw std::invalid_argument("step_registry: duplicate step name '" + it->first +
                                "'");
}

bool step_registry::contains(std::string_view name) const {
  return factories_.find(name) != factories_.end();
}

std::shared_ptr<inference_step> step_registry::make(std::string_view name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end())
    throw std::invalid_argument("step_registry: unknown step '" + std::string{name} +
                                "'");
  return it->second();
}

std::vector<std::string> step_registry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, make] : factories_) out.push_back(name);
  return out;
}

void register_builtin_steps(step_registry& reg) {
  reg.add("ping-campaign", [] { return std::make_shared<ping_campaign_step>(); });
  reg.add("path-extraction", [] { return std::make_shared<path_extraction_step>(); });
  reg.add("port-capacity", [] { return std::make_shared<port_capacity_step>(); });
  reg.add("rtt-colo", [] { return std::make_shared<rtt_colo_step>(); });
  reg.add("multi-ixp", [] { return std::make_shared<multi_ixp_step>(); });
  reg.add("private-links", [] { return std::make_shared<private_links_step>(); });
  reg.add("rtt-threshold", [] { return std::make_shared<rtt_threshold_step>(); });
  reg.add("traceroute-rtt", [] { return std::make_shared<traceroute_rtt_step>(); });
}

step_registry& default_registry() {
  static step_registry reg = [] {
    step_registry r;
    register_builtin_steps(r);
    return r;
  }();
  return reg;
}

}  // namespace opwat::infer
