#include "opwat/infer/step5_private.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "opwat/geo/geodesic.hpp"

namespace opwat::infer {

namespace {

/// Feasible IXP facilities for an interface: union over the usable RTT
/// observations' rings; all known IXP facilities when no RTT is available.
std::vector<world::facility_id> feasible_ixp_facilities(
    const db::merged_view& view, std::span<const measure::vantage_point> vps,
    const step2_result& rtts, const iface_key& key, const geo::speed_fit& fit) {
  const auto& all = view.facilities_of_ixp(key.ixp);
  const auto it = rtts.observations.find(key);
  if (it == rtts.observations.end() || it->second.empty())
    return all;
  std::set<world::facility_id> feasible;
  for (const auto& obs : it->second) {
    const auto outer = geo::feasible_ring(obs.rtt_min_ms, fit);
    const double rtt_dmin = obs.rounded ? std::max(0.0, obs.rtt_min_ms - 1.0)
                                        : obs.rtt_min_ms;
    const auto inner = geo::feasible_ring(rtt_dmin, fit);
    const geo::distance_ring ring{inner.d_min_km, outer.d_max_km};
    for (const auto f : all) {
      const auto loc = view.facility_location(f);
      if (loc && ring.contains(geo::geodesic_km(vps[obs.vp_index].location, *loc)))
        feasible.insert(f);
    }
  }
  return {feasible.begin(), feasible.end()};
}

}  // namespace

step5_stats run_step5_private(const db::merged_view& view,
                              const traix::extraction& paths,
                              const alias::resolver& resolve,
                              std::span<const measure::vantage_point> vps,
                              const step2_result& rtts,
                              std::span<const world::ixp_id> scope,
                              const step5_config& cfg, inference_map& out) {
  step5_stats st;

  // Candidate interface sets per AS: IXP-adjacent + private endpoints.
  std::map<net::asn, std::set<net::ipv4_addr>> cand;
  for (const auto& adj : paths.adjacencies) cand[adj.member_as].insert(adj.member_ip);
  for (const auto& pl : paths.private_links) {
    cand[pl.as_a].insert(pl.ip_a);
    cand[pl.as_b].insert(pl.ip_b);
  }
  // Private neighbours per interface.
  std::map<net::ipv4_addr, std::set<net::asn>> neighbors_of_iface;
  for (const auto& pl : paths.private_links) {
    neighbors_of_iface[pl.ip_a].insert(pl.as_b);
    neighbors_of_iface[pl.ip_b].insert(pl.as_a);
  }

  // Collect the still-unknown interfaces of the scoped IXPs.
  std::vector<std::pair<iface_key, net::asn>> todo;
  for (const auto x : scope)
    for (const auto& e : view.interfaces_of_ixp(x)) {
      const iface_key key{x, e.ip};
      if (out.cls(key) == peering_class::unknown) todo.push_back({key, e.asn});
    }

  for (const auto& [key, asn] : todo) {
    auto it = cand.find(asn);
    if (it == cand.end()) {
      ++st.no_inference;
      continue;
    }
    // Alias-resolve the member's interfaces together with the LAN address
    // under inference, then pick the router carrying that address.
    std::vector<net::ipv4_addr> ifaces{it->second.begin(), it->second.end()};
    if (std::find(ifaces.begin(), ifaces.end(), key.ip) == ifaces.end())
      ifaces.push_back(key.ip);
    const auto groups = resolve.resolve(ifaces);
    const std::vector<net::ipv4_addr>* router_group = nullptr;
    for (const auto& g : groups)
      if (std::find(g.begin(), g.end(), key.ip) != g.end()) router_group = &g;
    if (!router_group) {
      ++st.no_inference;
      continue;
    }

    std::set<net::asn> neighbors;
    for (const auto& ip : *router_group) {
      const auto nit = neighbors_of_iface.find(ip);
      if (nit != neighbors_of_iface.end())
        neighbors.insert(nit->second.begin(), nit->second.end());
    }
    if (neighbors.size() < cfg.min_neighbors) {
      ++st.no_inference;
      continue;
    }

    // Facility vote across the neighbourhood.
    std::map<world::facility_id, std::size_t> votes;
    for (const auto n : neighbors) {
      std::set<world::facility_id> facs;
      for (const auto f : view.facilities_of_as(n)) facs.insert(f);
      for (const auto f : facs) ++votes[f];
    }
    if (votes.empty()) {
      ++st.no_inference;
      continue;
    }
    // F_common: facilities shared by a majority of neighbours; when no
    // facility reaches a majority, fall back to the plurality set.
    const std::size_t majority = neighbors.size() / 2 + 1;
    std::vector<world::facility_id> f_common;
    for (const auto& [f, n] : votes)
      if (n >= majority) f_common.push_back(f);
    if (f_common.empty()) {
      std::size_t best = 0;
      for (const auto& [f, n] : votes) best = std::max(best, n);
      for (const auto& [f, n] : votes)
        if (n == best) f_common.push_back(f);
    }

    const auto f_ixp = feasible_ixp_facilities(view, vps, rtts, key, cfg.fit);
    std::size_t overlap = 0;
    for (const auto f : f_common)
      if (std::find(f_ixp.begin(), f_ixp.end(), f) != f_ixp.end()) ++overlap;

    if (overlap == 1) {
      out.decide(key, peering_class::local, method_step::private_links);
      ++st.decided_local;
    } else {
      out.decide(key, peering_class::remote, method_step::private_links);
      ++st.decided_remote;
    }
  }
  return st;
}

}  // namespace opwat::infer
