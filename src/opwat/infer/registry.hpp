// Registry of named inference steps.
//
// The five paper steps, the Castro et al. RTT-threshold baseline and the
// §8 traceroute-RTT extension all register here uniformly; external
// heuristics (à la traIXroute's pluggable detection rules) can be added
// the same way and then referenced by name from a pipeline_builder.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "opwat/infer/step.hpp"

namespace opwat::infer {

class step_registry {
 public:
  using factory = std::function<std::shared_ptr<inference_step>()>;

  /// Registers a factory under `name`; throws std::invalid_argument on a
  /// duplicate registration.
  void add(std::string name, factory make);

  [[nodiscard]] bool contains(std::string_view name) const;
  /// Instantiates the named step; throws std::invalid_argument when the
  /// name is unknown.
  [[nodiscard]] std::shared_ptr<inference_step> make(std::string_view name) const;
  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, factory, std::less<>> factories_;
};

/// Registers the builtin steps (ping-campaign, path-extraction,
/// port-capacity, rtt-colo, multi-ixp, private-links, rtt-threshold,
/// traceroute-rtt) into `reg`.
void register_builtin_steps(step_registry& reg);

/// The process-wide registry, pre-populated with the builtin steps.
[[nodiscard]] step_registry& default_registry();

}  // namespace opwat::infer
