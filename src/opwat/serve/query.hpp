// Composable query API over the serve catalog — the §9 portal's query
// surface ("by IXP, member and location") as a fluent builder:
//
//   const auto remote_at_x = serve::query(cat)
//                                .epoch("2018-04")
//                                .at_ixp("IXP-7 (Frankfurt)")
//                                .cls(infer::peering_class::remote)
//                                .by_step()
//                                .top(3)
//                                .group_counts();
//
// Filters: IXP (by name or world id), member ASN, member metro, class,
// evidence step, RTT range.  Aggregations: count() (index-accelerated
// when the filter shape allows), group_counts() (group-by IXP / ASN /
// metro / class / step), rtt_ecdf().  Row retrieval: rows() with
// deterministic sort and pagination.
//
// Execution: queries run on the vectorized batch engine
// (opwat/serve/exec.hpp — selection vectors, zone-map block skipping,
// permutation-index member lookups, partial top-k selection) by
// default.  engine(exec::mode::reference) switches to the retained
// row-at-a-time evaluator, which is the byte-identity oracle: both
// engines return identical bytes for every query, pinned by
// tests/test_exec.cpp and the CI bench result-diff gate.
//
// Determinism guarantees (tests/test_serve.cpp pins them):
//   - rows() returns canonical epoch order (IXPs in pipeline-scope
//     order, interfaces in merged-view order) unless sort_by_rtt() is
//     set, which orders by (RTT, canonical index) with unmeasured rows
//     last;
//   - page(o, l) is a pure window over that order, so adjacent pages
//     tile the full result with no gaps or overlaps;
//   - group_counts() orders by (count desc, key asc).
//
// Cross-epoch diffs — the longitudinal §9 view — are a free function:
// diff_epochs(cat, "2018-04", "2018-05") lists appeared / disappeared /
// reclassified interfaces between two snapshots.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "opwat/serve/catalog.hpp"
#include "opwat/serve/exec.hpp"

namespace opwat::serve {

/// One ECDF point: cumulative rows with RTT <= upper_ms.
struct ecdf_point {
  double upper_ms = 0.0;
  std::size_t cum_count = 0;
  double fraction = 0.0;  ///< cum_count / measured rows in the selection
};

class query {
 public:
  explicit query(const catalog& cat) : cat_(&cat) {}

  /// Selects the epoch by label (default: the most recently ingested).
  query& epoch(std::string_view label);
  /// Filters to one IXP, by dictionary name or world id.  Unknown names
  /// and ids throw std::invalid_argument immediately (typo guard).
  query& at_ixp(std::string_view name);
  query& at_ixp(world::ixp_id id);
  /// Filters to one member ASN.
  query& member(net::asn a);
  /// Filters by the member AS's home metro.  Unknown metro names throw.
  query& metro(std::string_view name);
  query& cls(infer::peering_class c);
  /// Filters to decided rows whose evidence is `s`.
  query& step(infer::method_step s);
  /// Keeps measured rows with lo_ms <= RTT <= hi_ms.  NaN bounds throw
  /// std::invalid_argument immediately (typo guard).
  query& rtt_between(double lo_ms, double hi_ms);

  // Group-by shape for group_counts().
  query& by_ixp();
  query& by_asn();
  query& by_metro();
  query& by_class();
  query& by_step();

  /// Orders rows() by RTT (unmeasured rows last, canonical tie-break).
  query& sort_by_rtt(bool ascending = true);
  /// Keeps the first k rows / groups.
  query& top(std::size_t k);
  /// Deterministic pagination window over the sorted row order.
  query& page(std::size_t offset, std::size_t limit);

  /// Selects the execution engine (default: exec::mode::vectorized).
  /// The reference evaluator is the retained row-at-a-time scan — every
  /// result is byte-identical, it is just slower; tests and the CI
  /// bench gate diff the two.
  query& engine(exec::mode m);
  /// Runs scans morsel-parallel on n worker threads (0 = serial, the
  /// default).  Results are byte-identical to the serial engine for any
  /// n — shards merge in canonical morsel order.  Uses the process-wide
  /// exec::morsel_scheduler::shared(n) pool unless scheduler() injects
  /// one.  Vectorized engine only; capped row collections and member()
  /// point lookups keep their serial fast paths.
  query& threads(std::size_t n);
  /// Runs parallel scans on an explicitly owned scheduler (the portal
  /// gives each of its workers a private one).  nullptr reverts to the
  /// threads() behavior.
  query& scheduler(exec::morsel_scheduler* s);
  /// Rows per morsel (tests shrink this to force many morsels; default
  /// exec::k_default_morsel_rows).
  query& morsel_rows(std::size_t n);
  /// Processes morsels in a deterministically shuffled order (tests
  /// only — proves the merge is order-independent; 0 = canonical).
  query& shuffle_morsels(std::uint64_t seed);
  /// Accumulates scan accounting (rows scanned / skipped, blocks
  /// skipped) of subsequent executions into *st.  Vectorized engine
  /// only; pass nullptr to stop collecting.
  query& collect_stats(exec::stats* st);

  /// Matching row count.  Uses the per-(IXP, class) / per-(IXP, step)
  /// epoch indexes when the filter shape allows, scanning otherwise.
  [[nodiscard]] std::size_t count() const;
  /// Matching rows, sorted and paginated as configured.
  [[nodiscard]] std::vector<iface_row> rows() const;
  /// Group-by aggregation (requires one by_*() call).
  [[nodiscard]] std::vector<group_count> group_counts() const;
  /// Equal-width RTT ECDF over the measured rows of the selection.
  [[nodiscard]] std::vector<ecdf_point> rtt_ecdf(std::size_t buckets = 10) const;

 private:
  enum class group_key : std::uint8_t { none, ixp, asn, metro, cls, step };

  [[nodiscard]] const serve::epoch& resolve_epoch() const;
  [[nodiscard]] exec::predicates predicates() const;
  /// The parallel execution plan (null scheduler = serial).
  [[nodiscard]] exec::parallel_spec parallel_plan() const;
  // Retained row-at-a-time reference evaluator (exec::mode::reference).
  [[nodiscard]] bool matches(const serve::epoch& ep, std::size_t i) const;
  /// Row indices of the selection, in canonical / sorted order.
  [[nodiscard]] std::vector<std::size_t> matching(const serve::epoch& ep) const;
  template <typename Fn>
  void for_each_match(const serve::epoch& ep, Fn&& fn) const;
  [[nodiscard]] std::vector<group_count> reference_groups(const serve::epoch& ep) const;

  const catalog* cat_;
  std::optional<std::string> epoch_label_;
  std::optional<ixp_ref> ixp_;
  std::optional<std::uint32_t> asn_;
  std::optional<metro_ref> metro_;
  std::optional<infer::peering_class> cls_;
  std::optional<infer::method_step> step_;
  std::optional<std::pair<double, double>> rtt_range_;
  group_key group_ = group_key::none;
  bool sort_rtt_ = false;
  bool sort_asc_ = true;
  std::size_t offset_ = 0;
  std::optional<std::size_t> limit_;
  exec::mode mode_ = exec::mode::vectorized;
  exec::stats* stats_ = nullptr;
  std::size_t threads_ = 0;  ///< 0 = serial
  exec::morsel_scheduler* sched_ = nullptr;
  std::size_t morsel_rows_ = exec::k_default_morsel_rows;
  std::uint64_t shuffle_seed_ = 0;
};

/// An interface whose class changed between two epochs.
struct reclassification {
  iface_row before;
  iface_row after;
};

/// Cross-epoch diff: the longitudinal view of two snapshots.  Matching
/// is by (world IXP id, interface IP); `appeared` and `reclassified`
/// follow the canonical order of `to`, `disappeared` of `from`.
struct epoch_diff {
  std::string from;
  std::string to;
  std::vector<iface_row> appeared;
  std::vector<iface_row> disappeared;
  std::vector<reclassification> reclassified;
  /// Per-class tally of `appeared`, filled while the diff is built so
  /// appeared_of() is O(1) (the longitudinal study calls it per month
  /// per class).
  std::array<std::size_t, infer::k_n_peering_classes> appeared_by_class{};

  /// Appeared rows carrying class `c` — the per-class join count the
  /// longitudinal study (eval::run_longitudinal_study) aggregates.
  [[nodiscard]] std::size_t appeared_of(infer::peering_class c) const noexcept {
    return appeared_by_class[static_cast<std::size_t>(c)];
  }
};

/// Diffs two ingested epochs with one sort-merge pass per block pair
/// over the (IXP, IP)-sorted permutation indexes; throws
/// std::invalid_argument for unknown labels.
[[nodiscard]] epoch_diff diff_epochs(const catalog& cat, std::string_view from,
                                     std::string_view to);

/// The retained ordered-container reference implementation of
/// diff_epochs — the byte-identity oracle the sort-merge join is
/// pinned against (tests/test_exec.cpp, CI bench result diff).
[[nodiscard]] epoch_diff diff_epochs_reference(const catalog& cat,
                                               std::string_view from,
                                               std::string_view to);

}  // namespace opwat::serve
