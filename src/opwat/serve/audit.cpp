// Deep consistency audits for the serving catalog — epoch::audit and
// catalog::audit (declared in opwat/serve/catalog.hpp).
//
// Every derived structure (count indexes, zone maps, permutation
// indexes, dictionary lookup maps, watermarks) is re-derived from the
// columns with the same rules rebuild_indexes uses and compared field
// by field, so a corrupt snapshot, a broken index rebuild or a bad
// hand-mutation is caught AT the invariant instead of surfacing as a
// subtly wrong query three calls later.  Violations throw store_error
// with store_errc::corrupt and a message naming the epoch, the section
// and the first broken invariant — the same typed error surface the
// snapshot loader uses, so examples/opwatc_fsck reports both framing
// and semantic corruption uniformly.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "opwat/serve/catalog.hpp"
#include "opwat/serve/store.hpp"

namespace opwat::serve {

namespace {

[[noreturn]] void fail(const std::string& where, const std::string& what) {
  throw store_error{store_errc::corrupt, "audit: " + where + ": " + what};
}

}  // namespace

void epoch::audit(const catalog& owner) const {
  const std::string where = "epoch \"" + label_ + "\"";
  const auto n = ip_.size();
  const auto columns_sized = [&](std::size_t size, const char* name) {
    if (size != n)
      fail(where, std::string{"columns: "} + name + " column has " +
                      std::to_string(size) + " entries, expected " +
                      std::to_string(n));
  };
  columns_sized(ixp_.size(), "ixp");
  columns_sized(asn_.size(), "asn");
  columns_sized(metro_.size(), "metro");
  columns_sized(cls_.size(), "class");
  columns_sized(step_.size(), "step");
  columns_sized(rtt_.size(), "rtt");
  columns_sized(feasible_.size(), "feasible");
  columns_sized(port_.size(), "port");

  // --- dictionary refs and watermarks ---------------------------------------
  if (ixp_watermark_ > owner.ixps().size())
    fail(where, "meta: IXP watermark " + std::to_string(ixp_watermark_) +
                    " exceeds dictionary size " +
                    std::to_string(owner.ixps().size()));
  if (metro_watermark_ > owner.metros().size())
    fail(where, "meta: metro watermark " + std::to_string(metro_watermark_) +
                    " exceeds dictionary size " +
                    std::to_string(owner.metros().size()));
  for (std::size_t i = 0; i < n; ++i) {
    if (ixp_[i] >= ixp_watermark_)
      fail(where, "columns: row " + std::to_string(i) + " IXP ref " +
                      std::to_string(ixp_[i]) + " is not below the watermark " +
                      std::to_string(ixp_watermark_));
    if (metro_[i] != k_no_metro && metro_[i] >= metro_watermark_)
      fail(where, "columns: row " + std::to_string(i) + " metro ref " +
                      std::to_string(metro_[i]) +
                      " is not below the watermark " +
                      std::to_string(metro_watermark_));
    if (cls_[i] >= infer::k_n_peering_classes)
      fail(where, "columns: row " + std::to_string(i) + " class value " +
                      std::to_string(cls_[i]) + " is out of range");
    if (step_[i] >= infer::k_n_method_steps)
      fail(where, "columns: row " + std::to_string(i) + " step value " +
                      std::to_string(step_[i]) + " is out of range");
  }

  // --- block framing ---------------------------------------------------------
  std::size_t expect_begin = 0;
  for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
    const auto& b = blocks_[bi];
    if (b.begin != expect_begin)
      fail(where, "blocks: block " + std::to_string(bi) + " begins at row " +
                      std::to_string(b.begin) + ", expected " +
                      std::to_string(expect_begin));
    if (b.end < b.begin)
      fail(where, "blocks: block " + std::to_string(bi) + " ends before it begins");
    expect_begin = b.end;
    if (b.ixp >= ixp_watermark_)
      fail(where, "blocks: block " + std::to_string(bi) + " IXP ref " +
                      std::to_string(b.ixp) + " is not below the watermark");
    for (std::size_t i = b.begin; i < b.end; ++i)
      if (ixp_[i] != b.ixp)
        fail(where, "blocks: row " + std::to_string(i) +
                        " IXP ref disagrees with its block");
    const auto it = block_index_.find(b.ixp);
    if (it == block_index_.end() || it->second != bi)
      fail(where, "blocks: block index does not map IXP ref " +
                      std::to_string(b.ixp) + " to block " + std::to_string(bi));
    const auto wit = world_ids_.find(b.ixp);
    if (wit == world_ids_.end() || wit->second != owner.ixps()[b.ixp].id)
      fail(where, "blocks: world-id cache disagrees with the dictionary for "
                  "IXP ref " +
                      std::to_string(b.ixp));
  }
  if (expect_begin != n)
    fail(where, "blocks: blocks cover " + std::to_string(expect_begin) +
                    " rows, columns hold " + std::to_string(n));
  if (block_index_.size() != blocks_.size())
    fail(where, "blocks: duplicate IXP ref across blocks");
  if (world_ids_.size() != blocks_.size())
    fail(where, "blocks: world-id cache entry count disagrees with blocks");

  // --- count indexes and zone maps -------------------------------------------
  std::array<std::size_t, infer::k_n_peering_classes> totals{};
  for (const auto& b : blocks_) {
    std::array<std::size_t, infer::k_n_peering_classes> by_class{};
    std::array<std::size_t, infer::k_n_method_steps> by_step{};
    block::zone_map z;
    metro_ref metro_hi = 0;
    bool any_metro = false;
    for (std::size_t i = b.begin; i < b.end; ++i) {
      const auto cls = static_cast<std::size_t>(cls_[i]);
      ++by_class[cls];
      ++totals[cls];
      if (static_cast<infer::peering_class>(cls_[i]) != infer::peering_class::unknown) {
        ++by_step[static_cast<std::size_t>(step_[i])];
        z.step_mask |= static_cast<std::uint8_t>(1u << step_[i]);
      }
      z.cls_mask |= static_cast<std::uint8_t>(1u << cls_[i]);
      z.asn_min = std::min(z.asn_min, asn_[i]);
      z.asn_max = std::max(z.asn_max, asn_[i]);
      if (!std::isnan(rtt_[i])) {
        z.any_measured_rtt = true;
        z.rtt_min_ms = std::min(z.rtt_min_ms, rtt_[i]);
        z.rtt_max_ms = std::max(z.rtt_max_ms, rtt_[i]);
      }
      if (metro_[i] == k_no_metro) {
        z.any_unmapped_metro = true;
      } else {
        metro_hi = std::max(metro_hi, metro_[i]);
        any_metro = true;
      }
    }
    if (any_metro) {
      z.metro_bits.assign((metro_hi >> 6) + 1, 0);
      for (std::size_t i = b.begin; i < b.end; ++i)
        if (metro_[i] != k_no_metro)
          z.metro_bits[metro_[i] >> 6] |= std::uint64_t{1} << (metro_[i] & 63u);
    }
    const std::string bwhere =
        where + ", block of IXP ref " + std::to_string(b.ixp);
    if (b.by_class != by_class)
      fail(bwhere, "count index: per-class counts disagree with a recount");
    if (b.by_step != by_step)
      fail(bwhere, "count index: per-step counts disagree with a recount");
    if (b.zone.rtt_min_ms != z.rtt_min_ms || b.zone.rtt_max_ms != z.rtt_max_ms ||
        b.zone.any_measured_rtt != z.any_measured_rtt)
      fail(bwhere, "zone map: RTT bounds disagree with the rtt column");
    if (b.zone.asn_min != z.asn_min || b.zone.asn_max != z.asn_max)
      fail(bwhere, "zone map: ASN bounds disagree with the asn column");
    if (b.zone.cls_mask != z.cls_mask || b.zone.step_mask != z.step_mask)
      fail(bwhere, "zone map: class/step masks disagree with the columns");
    if (b.zone.metro_bits != z.metro_bits ||
        b.zone.any_unmapped_metro != z.any_unmapped_metro)
      fail(bwhere, "zone map: metro bitset disagrees with the metro column");
  }
  if (totals != totals_)
    fail(where, "count index: epoch totals disagree with a recount");

  // --- permutation indexes ----------------------------------------------------
  const auto check_perm = [&](const std::vector<std::uint32_t>& perm,
                              const char* name) {
    if (perm.size() != n)
      fail(where, std::string{name} + ": has " + std::to_string(perm.size()) +
                      " entries, expected " + std::to_string(n));
    std::vector<bool> seen(n, false);
    for (const auto r : perm) {
      if (r >= n || seen[r])
        fail(where, std::string{name} + ": not a permutation of the row indices");
      seen[r] = true;
    }
  };
  check_perm(asn_perm_, "asn permutation index");
  check_perm(ip_perm_, "ip permutation index");
  for (std::size_t i = 1; i < n; ++i) {
    const auto a = asn_perm_[i - 1];
    const auto b = asn_perm_[i];
    if (asn_[a] > asn_[b] || (asn_[a] == asn_[b] && a >= b))
      fail(where, "asn permutation index: not sorted by (ASN, canonical index) at "
                  "position " +
                      std::to_string(i));
  }
  for (const auto& blk : blocks_) {
    for (std::size_t i = blk.begin; i < blk.end; ++i)
      if (ip_perm_[i] < blk.begin || ip_perm_[i] >= blk.end)
        fail(where, "ip permutation index: entry " + std::to_string(i) +
                        " escapes its block's row range");
    for (std::size_t i = blk.begin + 1; i < blk.end; ++i) {
      const auto a = ip_perm_[i - 1];
      const auto b = ip_perm_[i];
      if (ip_[a] > ip_[b] || (ip_[a] == ip_[b] && a >= b))
        fail(where, "ip permutation index: block of IXP ref " +
                        std::to_string(blk.ixp) +
                        " not sorted by (IP, canonical index)");
    }
  }
}

void catalog::audit() const {
  const std::string where = "catalog";

  // --- dictionaries and their lookup maps ------------------------------------
  if (ixp_by_id_.size() != ixps_.size() || ixp_by_name_.size() != ixps_.size())
    fail(where, "IXP dictionary lookup maps disagree with the dictionary size");
  for (std::size_t r = 0; r < ixps_.size(); ++r) {
    const auto it = ixp_by_id_.find(ixps_[r].id);
    if (it == ixp_by_id_.end() || it->second != r)
      fail(where, "IXP dictionary: id lookup does not map entry " +
                      std::to_string(r) + " back to itself");
    const auto nit = ixp_by_name_.find(ixps_[r].name);
    if (nit == ixp_by_name_.end() || nit->second != r)
      fail(where, "IXP dictionary: name lookup does not map \"" + ixps_[r].name +
                      "\" back to entry " + std::to_string(r));
    if (ixps_[r].metro != k_no_metro && ixps_[r].metro >= metros_.size())
      fail(where, "IXP dictionary: entry " + std::to_string(r) +
                      " has an out-of-range metro ref");
  }
  if (metro_by_name_.size() != metros_.size())
    fail(where, "metro dictionary lookup map disagrees with the dictionary size");
  for (std::size_t r = 0; r < metros_.size(); ++r) {
    const auto it = metro_by_name_.find(metros_[r]);
    if (it == metro_by_name_.end() || it->second != r)
      fail(where, "metro dictionary: name lookup does not map \"" + metros_[r] +
                      "\" back to entry " + std::to_string(r));
  }

  // --- epochs: labels unique, watermarks monotone ----------------------------
  if (by_label_.size() != epochs_.size())
    fail(where, "epoch label map size disagrees with the epoch count");
  std::uint32_t prev_ixp_wm = 0;
  std::uint32_t prev_metro_wm = 0;
  for (std::size_t e = 0; e < epochs_.size(); ++e) {
    const auto it = by_label_.find(epochs_[e].label());
    if (it == by_label_.end() || it->second != e)
      fail(where, "epoch label map does not map \"" + epochs_[e].label() +
                      "\" to epoch " + std::to_string(e));
    if (epochs_[e].ixp_watermark() < prev_ixp_wm ||
        epochs_[e].metro_watermark() < prev_metro_wm)
      fail(where, "dictionary watermarks are not monotone at epoch \"" +
                      epochs_[e].label() + "\"");
    prev_ixp_wm = epochs_[e].ixp_watermark();
    prev_metro_wm = epochs_[e].metro_watermark();
    epochs_[e].audit(*this);
  }
}

}  // namespace opwat::serve
