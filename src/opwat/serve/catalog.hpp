// Epoch-versioned catalog of remote-peering inferences — the serving
// side of the paper's "Prototype and Portal" (§9).
//
// The portal publishes monthly snapshots that users query by IXP,
// member and location.  A `catalog` ingests `infer::pipeline_result`s —
// one *epoch* per snapshot label, e.g. "2018-04" — into a compact
// columnar store: IXP and metro names are interned into catalog-wide
// dictionaries, member rows live in per-epoch column vectors sorted by
// (scope position, view order), and every epoch carries per-(IXP,
// class) and per-(IXP, evidence-step) count indexes so the Fig. 10a/10b
// aggregates are O(1) lookups instead of full rescans.
//
// Consumers never touch the pipeline structures again: the portal
// exporter, the longitudinal study, the operator examples and the
// figure benches all render from the catalog (opwat/serve/query.hpp is
// the fluent query layer on top).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "opwat/db/merge.hpp"
#include "opwat/infer/pipeline.hpp"
#include "opwat/world/world.hpp"

namespace opwat::serve {

/// Catalog-level misuse: ingesting an epoch label that is already
/// present, or merging a snapshot file whose labels collide with
/// in-memory epochs.  Derives from std::invalid_argument so pre-typed
/// call sites keep catching it.
struct catalog_error : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

/// Transparent string hashing so label/name lookups take string_views
/// without allocating a temporary std::string per call (epoch
/// resolution is on the query hot path).
struct string_hash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};
template <typename T>
using string_map = std::unordered_map<std::string, T, string_hash, std::equal_to<>>;

/// How catalog::load treats a damaged snapshot.
enum class recovery_policy : std::uint8_t {
  /// Today's contract: any corruption raises the typed store_error.
  strict,
  /// Salvage the longest CRC-valid epoch prefix: a torn/corrupt
  /// *trailing* record (the crash-mid-append signature) is dropped, a
  /// torn header whose records are intact is rolled forward, and the
  /// damage is described in a recovery_report instead of thrown.  Only
  /// real I/O failures (store_errc::io) still throw.
  recover,
};

/// What a recover-mode load (or opwatc_fsck --repair) did to the
/// snapshot.  `recovered == false` means the file was fully intact.
struct recovery_report {
  /// Something was dropped, truncated or repaired.
  bool recovered = false;
  /// Nothing could be salvaged (bad magic, unreadable header, or an
  /// unsupported version): the returned catalog is empty.
  bool unrecoverable = false;
  /// The header CRC was torn mid-publish but every record it was about
  /// to commit is intact — the epoch count was rolled FORWARD to the
  /// record walk (append fsyncs the record before patching the header,
  /// so roll-forward never resurrects unsynced data).
  bool header_repaired = false;
  std::uint32_t epochs_kept = 0;
  /// Committed epochs lost to corruption (quarantined from serving).
  std::uint32_t epochs_dropped = 0;
  /// Bytes past the last valid epoch boundary (partial/uncommitted
  /// trailing record data).
  std::uint64_t bytes_truncated = 0;
  /// Human-readable description of the first problem found ("" when
  /// the file was intact).
  std::string detail;
};

using epoch_id = std::uint32_t;
/// Index into the catalog-wide IXP dictionary (interned across epochs).
using ixp_ref = std::uint32_t;
/// Index into the catalog-wide metro dictionary (interned city names).
using metro_ref = std::uint32_t;

inline constexpr metro_ref k_no_metro = std::numeric_limits<metro_ref>::max();

/// Dictionary entry for one IXP (shared by every epoch that contains it).
struct ixp_entry {
  world::ixp_id id = world::k_invalid;
  std::string name;
  std::string peering_lan;
  double min_physical_capacity_gbps = 0.0;
  /// Metro of the IXP's home city.
  metro_ref metro = k_no_metro;
};

/// A switching-fabric site of an IXP, as the DB view exposed it at
/// ingest time (names come from the ground-truth world, like the
/// portal's labels; location is the view's geo record when present).
struct facility_entry {
  world::facility_id id = world::k_invalid;
  std::string name;
  bool has_name = false;
  bool has_location = false;
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// One member-interface row, materialized from the columns.  Rows cover
/// EVERY interface the merged view attributed to a scoped IXP — decided
/// or not — so unknown totals need no external rescan.
struct iface_row {
  net::ipv4_addr ip;
  world::ixp_id ixp = world::k_invalid;
  net::asn asn{};
  infer::peering_class cls = infer::peering_class::unknown;
  infer::method_step step = infer::method_step::none;
  /// Minimum usable RTT (NaN when unmeasured).
  double rtt_min_ms = std::numeric_limits<double>::quiet_NaN();
  /// Feasible-ring facility count (-1 when not computed).
  int feasible_facilities = -1;
  /// Port capacity from the merged view (NaN when unpublished).
  double port_gbps = std::numeric_limits<double>::quiet_NaN();
  /// Metro of the member AS's headquarters (k_no_metro when unmapped).
  metro_ref metro = k_no_metro;

  [[nodiscard]] infer::iface_key key() const noexcept { return {ixp, ip}; }
};

class catalog;

/// One ingested snapshot: columnar member rows plus per-IXP indexes.
/// Row order is canonical and deterministic — IXPs in pipeline-scope
/// order, interfaces in merged-view order — and every query result is
/// defined in terms of it.
class epoch {
 public:
  /// Per-IXP slice of the epoch: the contiguous row range [begin, end),
  /// the facility list, and the count indexes.
  struct block {
    /// Zone map: per-block min/max bounds and presence bitsets over the
    /// block's rows.  The vectorized engine (opwat/serve/exec.hpp)
    /// consults it to skip whole blocks without touching a single row.
    /// Rebuilt by rebuild_indexes alongside the counters; never
    /// serialized (the .opwatc loader re-derives it from the columns).
    struct zone_map {
      double rtt_min_ms = std::numeric_limits<double>::infinity();
      double rtt_max_ms = -std::numeric_limits<double>::infinity();
      std::uint32_t asn_min = std::numeric_limits<std::uint32_t>::max();
      std::uint32_t asn_max = 0;
      std::uint8_t cls_mask = 0;   ///< bit per peering_class present
      std::uint8_t step_mask = 0;  ///< bit per method_step among DECIDED rows
      bool any_measured_rtt = false;
      bool any_unmapped_metro = false;
      /// Bit per metro_ref present among the block's rows.
      std::vector<std::uint64_t> metro_bits;

      [[nodiscard]] bool metro_present(metro_ref m) const noexcept {
        if (m == k_no_metro) return any_unmapped_metro;
        return (m >> 6) < metro_bits.size() &&
               ((metro_bits[m >> 6] >> (m & 63u)) & 1u) != 0;
      }
    };

    ixp_ref ixp = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::vector<facility_entry> facilities;
    std::array<std::size_t, infer::k_n_peering_classes> by_class{};
    /// Decided rows only, keyed by evidence step (== Fig. 10a bars).
    std::array<std::size_t, infer::k_n_method_steps> by_step{};
    zone_map zone;
  };

  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] std::size_t rows() const noexcept { return ip_.size(); }
  [[nodiscard]] const std::vector<block>& blocks() const noexcept { return blocks_; }
  /// Block of an IXP by dictionary ref; nullptr when the epoch does not
  /// contain it.
  [[nodiscard]] const block* block_of(ixp_ref x) const noexcept;

  /// Epoch-wide row count per class (unknown included) — O(1).
  [[nodiscard]] std::size_t total(infer::peering_class c) const noexcept {
    return totals_[static_cast<std::size_t>(c)];
  }
  /// Rows of one IXP per class — O(1) after the block lookup.
  [[nodiscard]] std::size_t count(ixp_ref x, infer::peering_class c) const noexcept;
  /// Decided rows of one IXP per evidence step (the Fig. 10a number).
  [[nodiscard]] std::size_t contribution(ixp_ref x, infer::method_step s) const noexcept;

  /// Materializes row `i` (canonical order).
  [[nodiscard]] iface_row row(std::size_t i) const;

  // Raw column access for scan-style queries (all vectors have rows()
  // elements, in canonical order).
  [[nodiscard]] const std::vector<std::uint32_t>& ip_col() const noexcept { return ip_; }
  [[nodiscard]] const std::vector<ixp_ref>& ixp_col() const noexcept { return ixp_; }
  [[nodiscard]] const std::vector<std::uint32_t>& asn_col() const noexcept { return asn_; }
  [[nodiscard]] const std::vector<metro_ref>& metro_col() const noexcept { return metro_; }
  [[nodiscard]] const std::vector<std::uint8_t>& cls_col() const noexcept { return cls_; }
  [[nodiscard]] const std::vector<std::uint8_t>& step_col() const noexcept { return step_; }
  [[nodiscard]] const std::vector<double>& rtt_col() const noexcept { return rtt_; }
  [[nodiscard]] const std::vector<std::int32_t>& feasible_col() const noexcept {
    return feasible_;
  }
  [[nodiscard]] const std::vector<double>& port_col() const noexcept { return port_; }

  // Permutation indexes (immutable after rebuild_indexes, like every
  // other index; rows() must fit std::uint32_t, which the ingest and
  // snapshot paths guarantee).
  /// Row indices sorted by (member ASN, canonical index): member()
  /// point lookups binary-search this, and one ASN's rows form a
  /// contiguous run that is already in canonical order.
  [[nodiscard]] const std::vector<std::uint32_t>& asn_perm() const noexcept {
    return asn_perm_;
  }
  /// Row indices where each block's [begin, end) range is sorted by
  /// (interface IP, canonical index).  Rows are block-contiguous by
  /// IXP, so diff_epochs joins two epochs with one sort-merge pass per
  /// block pair instead of ordered containers.
  [[nodiscard]] const std::vector<std::uint32_t>& ip_perm() const noexcept {
    return ip_perm_;
  }

  /// World IXP id of a row's IXP (resolved through the owning catalog's
  /// dictionary at ingest time and cached per block).
  [[nodiscard]] world::ixp_id world_ixp(ixp_ref x) const noexcept;

  /// Sizes of the catalog dictionaries right after this epoch was
  /// ingested.  Entries in [previous epoch's watermark, this watermark)
  /// were interned BY this epoch — the delta the snapshot format
  /// (opwat/serve/store.hpp) serializes per epoch record, which is what
  /// makes `append_epoch` write exactly the same bytes a full `save`
  /// would.
  [[nodiscard]] std::uint32_t ixp_watermark() const noexcept { return ixp_watermark_; }
  [[nodiscard]] std::uint32_t metro_watermark() const noexcept {
    return metro_watermark_;
  }

  /// Deep consistency audit (opwat/serve/audit.cpp): every index must
  /// agree with the columns — block framing contiguous and covering,
  /// count indexes equal to a fresh recount, zone maps equal to a fresh
  /// rebuild, the ASN/IP permutation indexes true permutations sorted
  /// by their declared keys, every ref below this epoch's dictionary
  /// watermark.  `owner` is the catalog the epoch lives in (its
  /// dictionaries resolve the refs).  Throws store_error
  /// (store_errc::corrupt) naming the epoch, the section and the first
  /// violated invariant.  Always compiled; Debug and -DOPWAT_AUDIT=ON
  /// builds also run it automatically after ingest / load / merge.
  void audit(const catalog& owner) const;

 private:
  friend class catalog;
  friend class store;
  friend struct epoch_test_access;  // corruption injection in tests/test_audit.cpp

  std::string label_;
  std::vector<std::uint32_t> ip_;
  std::vector<ixp_ref> ixp_;
  std::vector<std::uint32_t> asn_;
  std::vector<metro_ref> metro_;
  std::vector<std::uint8_t> cls_;
  std::vector<std::uint8_t> step_;
  std::vector<double> rtt_;
  std::vector<std::int32_t> feasible_;
  std::vector<double> port_;
  std::vector<block> blocks_;
  std::unordered_map<ixp_ref, std::size_t> block_index_;
  std::unordered_map<ixp_ref, world::ixp_id> world_ids_;
  std::array<std::size_t, infer::k_n_peering_classes> totals_{};
  std::vector<std::uint32_t> asn_perm_;
  std::vector<std::uint32_t> ip_perm_;
  std::uint32_t ixp_watermark_ = 0;
  std::uint32_t metro_watermark_ = 0;

  /// Rebuilds block_index_, world_ids_, per-block counters, totals_,
  /// zone maps and the ASN/IP permutation indexes from the columns and
  /// block ranges.  The single index-derivation path: ingest,
  /// merge_from and the snapshot loader (which persists only columns +
  /// block shells) all call it, so the indexes can never disagree with
  /// the columns.
  void rebuild_indexes(const std::vector<ixp_entry>& dict);
};

/// The versioned store: one epoch per ingested snapshot label, shared
/// IXP/metro dictionaries across epochs.  Ingest is the ONLY mutation;
/// everything else is read-only and safe to share across query threads.
class catalog {
 public:
  /// Ingests one pipeline run as a new epoch.  `pr.scope` defines the
  /// IXP order; the merged view defines each IXP's member rows (decided
  /// or not) and facility list; the ground-truth world supplies display
  /// names and metro labels exactly as the portal exporter always did.
  /// Throws catalog_error when `label` is already ingested.
  epoch_id ingest(const world::world& w, const db::merged_view& view,
                  const infer::pipeline_result& pr, std::string_view label);

  // --- persistence (implemented in opwat/serve/store.cpp) -------------------
  // The on-disk snapshot format (.opwatc) is versioned, checksummed and
  // columnar; opwat/serve/store.hpp documents the layout and the typed
  // store_error that every malformed input raises.

  /// Writes the whole catalog to `path`, replacing any existing file.
  /// Saving the same catalog twice produces byte-identical files.
  void save(const std::string& path) const;
  /// Same, pinning the on-disk format version (1 = uncompressed legacy
  /// columns, 2 = compressed — the default).  Tests and migration
  /// tooling use this to emulate the old writer; throws store_error
  /// (bad_version) for versions this build cannot write.
  void save(const std::string& path, std::uint32_t version) const;
  /// Reads a catalog back from `path`.  Throws store_error on malformed
  /// input (bad magic/version, truncation, checksum mismatch) and
  /// catalog_error when the file itself carries duplicate epoch labels.
  [[nodiscard]] static catalog load(const std::string& path);
  /// Same, with an explicit recovery policy.  `strict` is the overload
  /// above; `recover` salvages the longest valid epoch prefix and
  /// reports the damage through `*report` (when non-null) instead of
  /// throwing — only store_errc::io still raises.  The file itself is
  /// NOT modified (store_repair / opwatc_fsck --repair do that).
  [[nodiscard]] static catalog load(const std::string& path,
                                    recovery_policy policy,
                                    recovery_report* report = nullptr);
  /// Appends epoch `e` of this catalog to the snapshot at `path` — the
  /// longitudinal extend-one-month-at-a-time path.  The file must
  /// contain exactly this catalog's epochs [0, e) (labels are checked);
  /// the resulting file is byte-identical to a full save() of epochs
  /// [0, e].  Throws store_error on malformed files or prefix mismatch.
  void append_epoch(const std::string& path, epoch_id e) const;
  /// Loads the snapshot at `path` and appends its epochs to this
  /// catalog, re-interning dictionaries (refs are remapped, so the file
  /// may come from an unrelated catalog of the same world).  Throws
  /// catalog_error when any incoming label is already ingested.
  void merge_from(const std::string& path);

  [[nodiscard]] std::size_t epoch_count() const noexcept { return epochs_.size(); }
  /// Epoch by id; throws std::out_of_range.
  [[nodiscard]] const epoch& at(epoch_id e) const { return epochs_.at(e); }
  [[nodiscard]] std::optional<epoch_id> find(std::string_view label) const;
  /// Epoch by label; throws std::invalid_argument for unknown labels.
  [[nodiscard]] const epoch& of(std::string_view label) const;
  /// Ingested labels, in ingest order.
  [[nodiscard]] std::vector<std::string> labels() const;

  [[nodiscard]] const std::vector<ixp_entry>& ixps() const noexcept { return ixps_; }
  [[nodiscard]] const std::vector<std::string>& metros() const noexcept { return metros_; }
  [[nodiscard]] std::optional<ixp_ref> ixp_by_name(std::string_view name) const;
  [[nodiscard]] std::optional<ixp_ref> ixp_by_id(world::ixp_id id) const;
  [[nodiscard]] std::optional<metro_ref> metro_by_name(std::string_view name) const;
  /// Metro display name ("" for k_no_metro).
  [[nodiscard]] std::string_view metro_name(metro_ref m) const noexcept;

  /// Catalog-wide audit (opwat/serve/audit.cpp): dictionary lookup maps
  /// consistent with the dictionaries, epoch labels unique and mapped
  /// to their ids, dictionary watermarks monotone across epochs and
  /// bounded by the dictionary sizes — then every epoch's deep audit.
  /// Throws store_error (store_errc::corrupt) on the first violation.
  void audit() const;

 private:
  friend class store;
  friend struct epoch_test_access;  // corruption injection in tests/test_audit.cpp

  metro_ref intern_metro(std::string_view name);
  ixp_ref intern_ixp(const world::world& w, world::ixp_id id);
  /// Interns a dictionary entry loaded/merged from a snapshot (keyed by
  /// world id like intern_ixp, but the entry's fields come from the
  /// file, not a live world).  `metro` is the entry's metro display
  /// name, resolved in the SOURCE catalog (e.metro is a source ref and
  /// is re-interned here).
  ixp_ref intern_loaded_ixp(const ixp_entry& e, std::string_view metro);

  std::vector<epoch> epochs_;
  string_map<epoch_id> by_label_;
  std::vector<ixp_entry> ixps_;
  std::unordered_map<std::uint32_t, ixp_ref> ixp_by_id_;
  string_map<ixp_ref> ixp_by_name_;
  std::vector<std::string> metros_;
  string_map<metro_ref> metro_by_name_;
};

}  // namespace opwat::serve
