#include "opwat/serve/shared_catalog.hpp"

#include <type_traits>
#include <utility>

#include "opwat/serve/store.hpp"

namespace opwat::serve {

shared_catalog::shared_catalog() : current_(std::make_shared<const catalog>()) {}

shared_catalog::shared_catalog(catalog initial)
    : current_(std::make_shared<const catalog>(std::move(initial))) {}

std::shared_ptr<const catalog> shared_catalog::snapshot() const {
  const util::reader_lock lock{ptr_lock_};
  return current_;
}

void shared_catalog::publish(std::shared_ptr<const catalog> next) {
  {
    const util::writer_lock lock{ptr_lock_};
    current_ = std::move(next);
  }
  // Callers hold writer_, which also guards on_publish_; the hook runs
  // outside ptr_lock_ so it can take snapshots without deadlocking.
  const auto v = version_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (on_publish_) on_publish_(v);
}

void shared_catalog::set_publish_hook(std::function<void(std::uint64_t)> hook) {
  const util::mutex_lock writer{writer_};
  on_publish_ = std::move(hook);
}

template <typename Fn>
auto shared_catalog::update(Fn&& fn) {
  // Writers serialize here; the base snapshot is taken under the writer
  // lock so two concurrent ingests compose instead of losing one, and
  // the (potentially large) catalog copy + mutation happen while
  // readers are completely unimpeded.
  const util::mutex_lock writer{writer_};
  auto next = std::make_shared<catalog>(*snapshot());
  if constexpr (std::is_void_v<decltype(fn(*next))>) {
    fn(*next);
    publish(std::move(next));
  } else {
    auto result = fn(*next);
    publish(std::move(next));
    return result;
  }
}

epoch_id shared_catalog::ingest(const world::world& w, const db::merged_view& view,
                                const infer::pipeline_result& pr,
                                std::string_view label) {
  return update([&](catalog& c) { return c.ingest(w, view, pr, label); });
}

void shared_catalog::load(const std::string& path) {
  // The file is parsed before anything is published: a malformed
  // snapshot throws out of catalog::load and readers keep the old view.
  auto loaded = std::make_shared<const catalog>(catalog::load(path));
  const util::mutex_lock writer{writer_};
  publish(std::move(loaded));
}

recovery_report shared_catalog::load(const std::string& path,
                                     recovery_policy policy) {
  // Parse + salvage happen before any publish, same as plain load():
  // on a throw (strict-mode damage, I/O failure, unrecoverable file)
  // readers keep the old view untouched.
  recovery_report report;
  auto loaded =
      std::make_shared<const catalog>(catalog::load(path, policy, &report));
  if (report.unrecoverable)
    throw store_error{store_errc::corrupt,
                      "refusing to publish an empty catalog for "
                      "unrecoverable file " +
                          path + ": " + report.detail};
  const util::mutex_lock writer{writer_};
  publish(std::move(loaded));
  return report;
}

void shared_catalog::merge_from(const std::string& path) {
  update([&](catalog& c) { c.merge_from(path); });
}

void shared_catalog::save(const std::string& path) const { snapshot()->save(path); }

void shared_catalog::clear() {
  const util::mutex_lock writer{writer_};
  publish(std::make_shared<const catalog>());
}

std::size_t shared_catalog::epoch_count() const { return snapshot()->epoch_count(); }

}  // namespace opwat::serve
