// Durable snapshot format for the serve catalog (.opwatc) — the
// persistence layer behind catalog::save / catalog::load /
// catalog::append_epoch / catalog::merge_from (declared in
// opwat/serve/catalog.hpp, implemented here).
//
// The portal (§9) publishes monthly inference snapshots; a catalog file
// makes those epochs survive process restarts so a longitudinal study
// can extend an existing store one month at a time instead of
// recomputing every epoch from scratch.
//
// Layout (all integers little-endian, fixed width):
//
//   header        magic "OPWATCAT" (8B) | format version u32 |
//                 epoch count u32 | CRC-32 of the preceding 16 bytes
//   epoch record  one per epoch, in ingest order; each record is five
//                 sections, in this order:
//                   1 meta        label, row/block counts, dictionary
//                                 watermarks after this epoch
//                   2 ixp_dict    the IXP dictionary entries this epoch
//                                 interned (delta vs previous epoch)
//                   3 metro_dict  ditto for metro display names
//                   4 blocks      per-IXP row ranges + facility lists
//                   5 columns     the nine column vectors, one after
//                                 another (ip, ixp, asn, metro, class,
//                                 step, rtt, feasible, port)
//
// Columns section, by format version:
//   v1  raw little-endian vectors back to back (rows × 42 bytes).
//   v2  each column is framed as  codec u8 | encoded length u64 |
//       payload.  codec 0 (raw) keeps the column's v1 bytes; codec 1
//       bit-packs u32 columns per block (frame-of-reference), codecs
//       2/3 run-length-encode the u8 / f64 columns per block — see
//       serve/compress.hpp for the chunk wire formats and canonical
//       rules.  The writer picks the encoded form only when it is
//       strictly smaller than raw, a pure function of the column data,
//       so re-saving a loaded file stays byte-identical.
//
// Both versions load; save() writes v2 unless the caller pins v1, and
// append_epoch() encodes in the file's own version so appending never
// rewrites or reinterprets existing records.
//
// Every section is framed as  id u32 | payload length u64 | payload
// CRC-32 u32 | payload  — so a bit flip anywhere is caught by a
// checksum, a truncation by a bounds check, and an oversized length by
// the remaining-bytes check; malformed input always raises the typed
// store_error below, never UB.  Count indexes (per-block class/step
// tallies, epoch totals) are NOT stored: the loader re-derives them
// from the columns, so they can never disagree with the data.
//
// Because each record carries only its dictionary *delta* (the
// watermark trick — see epoch::ixp_watermark), appending epoch N to an
// existing file writes exactly the bytes a full save() of epochs
// [0, N] would, and saving the same catalog twice is byte-identical.
//
// Versioning policy: the format version is bumped on any incompatible
// layout change; load() rejects unknown versions with
// store_errc::bad_version rather than guessing.  There is no
// best-effort migration — snapshots are cheap to regenerate from the
// pipeline, expensive to misread silently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "opwat/serve/catalog.hpp"

namespace opwat::serve {

/// Why a snapshot failed to read/write.
enum class store_errc : std::uint8_t {
  io,                 ///< file could not be opened / read / written
  bad_magic,          ///< not an .opwatc file
  bad_version,        ///< format version this build does not understand
  truncated,          ///< file ends inside a header, section or payload
  checksum_mismatch,  ///< a CRC-32 check failed (bit rot / tampering)
  corrupt,            ///< framing is intact but the data is inconsistent
  mismatch,           ///< append_epoch: file is not this catalog's prefix
};

[[nodiscard]] std::string_view to_string(store_errc e) noexcept;

/// Typed error for every malformed-snapshot condition.  what() carries
/// the kind plus a human-readable location ("epoch 3, columns section").
class store_error : public std::runtime_error {
 public:
  store_error(store_errc kind, const std::string& msg);
  [[nodiscard]] store_errc kind() const noexcept { return kind_; }

 private:
  store_errc kind_;
};

/// Format constants, exposed for tests and tooling.
inline constexpr std::string_view k_store_magic = "OPWATCAT";
inline constexpr std::uint32_t k_store_version = 2;
/// Oldest format version load() still accepts.
inline constexpr std::uint32_t k_store_oldest_version = 1;
/// magic + version + epoch count + header CRC.
inline constexpr std::size_t k_store_header_size = 20;
/// section id + payload length + payload CRC.
inline constexpr std::size_t k_store_section_header_size = 16;

/// Byte offsets of every section header in `bytes`, plus the end
/// offset, walking the framing only (lengths, no checksums).  The
/// corruption-injection tests truncate a valid file at each of these
/// boundaries and assert the loader throws.  Throws store_error when
/// the framing itself is unwalkable.
[[nodiscard]] std::vector<std::size_t> store_section_boundaries(
    std::string_view bytes);

/// Shallow inspection of a snapshot for tooling (opwatc_fsck): the
/// format version, epoch count, and — for v2 files — the codec byte of
/// each of the nine column vectors per epoch record (v1 records report
/// all-raw).  Walks the framing only; throws store_error when the
/// framing is unwalkable.
struct store_file_info {
  std::uint32_t version = 0;
  std::uint32_t epoch_count = 0;
  /// One entry per epoch record: nine codec ids in column order
  /// (ip, ixp, asn, metro, class, step, rtt, feasible, port).
  std::vector<std::vector<std::uint8_t>> column_codecs;
};

[[nodiscard]] store_file_info store_inspect(std::string_view bytes);

/// Repairs a damaged snapshot IN PLACE using the same salvage walk as
/// catalog::load(path, recovery_policy::recover): the file is rewritten
/// (atomically — tmp + fsync + rename) to hold exactly the longest
/// valid epoch prefix, with the header count/CRC patched to match.  A
/// crash-mid-append file comes back byte-identical to the pre-append
/// snapshot (or, for a torn header over intact records, to the
/// completed append).  An intact file is left untouched.  Returns the
/// recovery_report of the salvage walk; throws store_error only for
/// real I/O failures and for unrecoverable files (nothing to write
/// back).  opwatc_fsck --repair is a thin wrapper over this.
recovery_report store_repair(const std::string& path);

}  // namespace opwat::serve
