// .opwatc reader/writer.  See store.hpp for the layout; the invariant
// this file maintains is that EVERY byte of a snapshot is covered by a
// checksum (header CRC or a section CRC), every length is bounds-checked
// before use, and every decoded value is validated against the ranges
// the in-memory catalog guarantees — so a malformed file of any kind
// raises store_error (or catalog_error for label collisions) instead of
// corrupting the process.
#include "opwat/serve/store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <unordered_set>
#include <utility>

#include "opwat/serve/compress.hpp"
#include "opwat/util/checksum.hpp"
#include "opwat/util/contracts.hpp"
#include "opwat/util/failpoint.hpp"

namespace opwat::serve {

std::string_view to_string(store_errc e) noexcept {
  switch (e) {
    case store_errc::io: return "io";
    case store_errc::bad_magic: return "bad_magic";
    case store_errc::bad_version: return "bad_version";
    case store_errc::truncated: return "truncated";
    case store_errc::checksum_mismatch: return "checksum_mismatch";
    case store_errc::corrupt: return "corrupt";
    case store_errc::mismatch: return "mismatch";
  }
  return "unknown";
}

store_error::store_error(store_errc kind, const std::string& msg)
    : std::runtime_error("opwatc [" + std::string{to_string(kind)} + "]: " + msg),
      kind_(kind) {}

namespace {

[[noreturn]] void fail(store_errc k, const std::string& msg) {
  throw store_error(k, msg);
}

// --- section ids (fixed order within every epoch record) ---------------------

constexpr std::uint32_t k_sec_meta = 1;
constexpr std::uint32_t k_sec_ixp_dict = 2;
constexpr std::uint32_t k_sec_metro_dict = 3;
constexpr std::uint32_t k_sec_blocks = 4;
constexpr std::uint32_t k_sec_columns = 5;

constexpr const char* section_name(std::uint32_t id) {
  switch (id) {
    case k_sec_meta: return "meta";
    case k_sec_ixp_dict: return "ixp_dict";
    case k_sec_metro_dict: return "metro_dict";
    case k_sec_blocks: return "blocks";
    case k_sec_columns: return "columns";
  }
  return "?";
}

// --- little-endian encode helpers -------------------------------------------

void put_u8(std::string& b, std::uint8_t v) { b.push_back(static_cast<char>(v)); }

void put_u32(std::string& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_f64(std::string& b, double v) { put_u64(b, std::bit_cast<std::uint64_t>(v)); }

void put_str(std::string& b, std::string_view s) {
  put_u32(b, static_cast<std::uint32_t>(s.size()));
  b.append(s);
}

std::uint32_t get_u32_at(std::string_view b, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= std::uint32_t{static_cast<unsigned char>(b[off + i])} << (8 * i);
  return v;
}

std::uint64_t get_u64_at(std::string_view b, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= std::uint64_t{static_cast<unsigned char>(b[off + i])} << (8 * i);
  return v;
}

/// Bounds-checked decoder over one buffer.  `kind` is what an overrun
/// means here: `truncated` for the file-level walk, `corrupt` for a
/// section payload (its length and CRC already checked out, so running
/// off its end means the encoded data is inconsistent).
class reader {
 public:
  reader(std::string_view bytes, store_errc kind, std::string ctx)
      : bytes_(bytes), kind_(kind), ctx_(std::move(ctx)) {}

  std::uint8_t u8() { return static_cast<unsigned char>(*take(1)); }
  std::uint32_t u32() { return get_u32_at({take(4), 4}, 0); }
  std::uint64_t u64() { return get_u64_at({take(8), 8}, 0); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string_view str() {
    const auto n = u32();
    return {take(n), n};
  }
  std::string_view view(std::size_t n) { return {take(n), n}; }

  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - off_; }
  void expect_exhausted() const {
    if (off_ != bytes_.size()) fail(kind_, ctx_ + ": trailing bytes");
  }

 private:
  const char* take(std::size_t n) {
    if (n > remaining()) fail(kind_, ctx_ + ": data ends early");
    const char* p = bytes_.data() + off_;
    off_ += n;
    return p;
  }

  std::string_view bytes_;
  std::size_t off_ = 0;
  store_errc kind_;
  std::string ctx_;
};

std::string encode_header(std::uint32_t epoch_count, std::uint32_t version) {
  std::string b{k_store_magic};
  put_u32(b, version);
  put_u32(b, epoch_count);
  put_u32(b, util::crc32(b.data(), b.size()));
  return b;
}

// --- crash-safe file I/O (fd-based so fsync ordering is explicit) -----------

/// Closes the held descriptor on scope exit (error paths included).
struct fd_guard {
  int fd = -1;
  ~fd_guard() {
    if (fd >= 0) ::close(fd);
  }
};

/// Writes `bytes` at `off`, retrying EINTR and short kernel writes.
/// `site` names the failpoint covering the write: action `error` fails
/// before any byte lands, `short-write:k` writes exactly the first k
/// bytes and then fails — the byte-offset crash-sweep primitive (one
/// logical write per wrapped call, so a sweep over k covers every
/// offset of the operation).
void checked_pwrite(int fd, std::string_view bytes, std::uint64_t off,
                    const char* site, const std::string& path) {
  std::string_view data = bytes;
  bool injected = false;
  // opwat-lint: allow(failpoint-naming): site is forwarded from literal call sites below
  if (const auto fp = OPWAT_FAILPOINT(site); fp) {
    if (fp.action == util::failpoint_action::error)
      fail(store_errc::io,
           "injected write failure (" + std::string{site} + ") on " + path);
    data = data.substr(
        0, std::min<std::size_t>(static_cast<std::size_t>(fp.arg), data.size()));
    injected = true;
  }
  std::size_t done = 0;
  while (done < data.size()) {
    const auto n = ::pwrite(fd, data.data() + done, data.size() - done,
                            static_cast<off_t>(off + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(store_errc::io,
           "write error on " + path + ": " + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  if (injected)
    fail(store_errc::io,
         "injected short write (" + std::string{site} + ") on " + path);
}

void checked_fsync(int fd, const char* site, const std::string& path) {
  // opwat-lint: allow(failpoint-naming): site is forwarded from literal call sites below
  if (const auto fp = OPWAT_FAILPOINT(site); fp)
    fail(store_errc::io,
         "injected fsync failure (" + std::string{site} + ") on " + path);
  if (::fsync(fd) != 0)
    fail(store_errc::io,
         "fsync error on " + path + ": " + std::strerror(errno));
}

/// Makes a rename in `path`'s directory durable.  Best-effort: some
/// filesystems reject fsync on directories (the data itself is already
/// synced, so a refusal only weakens rename durability, never
/// integrity).
void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const fd_guard d{::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC)};
  if (d.fd >= 0) (void)::fsync(d.fd);
}

/// Atomic whole-file replace: write to `path + ".tmp"`, fsync, rename
/// over `path`, fsync the parent directory.  A crash anywhere before
/// the rename leaves the previous `path` byte-identical (the tmp file
/// may linger; the next save truncates it).
void write_file_atomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  const fd_guard f{
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644)};
  if (f.fd < 0)
    fail(store_errc::io, "cannot open " + tmp + " for writing: " +
                             std::strerror(errno));
  checked_pwrite(f.fd, bytes, 0, "store-save-write", tmp);
  checked_fsync(f.fd, "store-save-fsync", tmp);
  if (const auto fp = OPWAT_FAILPOINT("store-save-rename"); fp)
    fail(store_errc::io, "injected rename failure (store-save-rename) on " + path);
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    fail(store_errc::io,
         "cannot rename " + tmp + " over " + path + ": " + std::strerror(errno));
  fsync_parent_dir(path);
}

struct header_info {
  std::uint32_t version = 0;
  std::uint32_t epoch_count = 0;
};

header_info parse_header(std::string_view bytes) {
  if (bytes.size() < k_store_header_size)
    fail(store_errc::truncated, "file smaller than the header");
  if (bytes.substr(0, k_store_magic.size()) != k_store_magic)
    fail(store_errc::bad_magic, "not an .opwatc snapshot (bad magic)");
  const auto stored_crc = get_u32_at(bytes, 16);
  if (stored_crc != util::crc32(bytes.data(), 16))
    fail(store_errc::checksum_mismatch, "header checksum mismatch");
  const auto version = get_u32_at(bytes, 8);
  if (version < k_store_oldest_version || version > k_store_version)
    fail(store_errc::bad_version,
         "format version " + std::to_string(version) + " (this build reads versions " +
             std::to_string(k_store_oldest_version) + ".." +
             std::to_string(k_store_version) + ")");
  return {version, get_u32_at(bytes, 12)};
}

void append_section(std::string& out, std::uint32_t id, std::string_view payload) {
  put_u32(out, id);
  put_u64(out, payload.size());
  put_u32(out, util::crc32(payload));
  out.append(payload);
}

/// Reads one section's frame at `off`, verifies id / bounds / CRC, and
/// returns the payload view, advancing `off` past it.
std::string_view read_section(std::string_view bytes, std::size_t& off,
                              std::uint32_t expected_id, const std::string& ctx) {
  if (bytes.size() - off < k_store_section_header_size)
    fail(store_errc::truncated, ctx + ": file ends inside a section header");
  const auto id = get_u32_at(bytes, off);
  const auto len = get_u64_at(bytes, off + 4);
  const auto crc = get_u32_at(bytes, off + 12);
  off += k_store_section_header_size;
  if (id != expected_id)
    fail(store_errc::corrupt, ctx + ": expected section " +
                                  std::string{section_name(expected_id)} + ", found id " +
                                  std::to_string(id));
  if (len > bytes.size() - off)
    fail(store_errc::truncated,
         ctx + ": " + section_name(id) + " payload extends past end of file");
  const std::string_view payload = bytes.substr(off, len);
  off += len;
  if (crc != util::crc32(payload))
    fail(store_errc::checksum_mismatch,
         ctx + ": " + section_name(id) + " section checksum mismatch");
  return payload;
}

/// Bytes per row across the nine column vectors (ip, ixp, asn, metro:
/// u32; cls, step: u8; rtt, port: f64; feasible: i32).
constexpr std::size_t k_row_bytes = 4 * 4 + 2 * 1 + 8 + 4 + 8;

std::string read_file(const std::string& path) {
  if (const auto fp = OPWAT_FAILPOINT("store-read"); fp)
    fail(store_errc::io, "injected read failure (store-read) on " + path);
  std::ifstream f{path, std::ios::binary};
  if (!f) fail(store_errc::io, "cannot open " + path);
  std::string bytes{std::istreambuf_iterator<char>{f}, std::istreambuf_iterator<char>{}};
  if (f.bad()) fail(store_errc::io, "read error on " + path);
  return bytes;
}

}  // namespace

// The friend of catalog/epoch that implements the persistence members.
class store {
 public:
  /// Non-empty block row ranges — the chunk boundaries every v2 column
  /// codec encodes and decodes along.
  static std::vector<std::pair<std::size_t, std::size_t>> chunk_ranges(
      const epoch& ep) {
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    ranges.reserve(ep.blocks_.size());
    for (const auto& b : ep.blocks_)
      if (b.end > b.begin) ranges.emplace_back(b.begin, b.end);
    return ranges;
  }

  /// v2 columns payload: nine (codec u8 | length u64 | payload) frames
  /// in column order.  Each codec chunks per non-empty block; the
  /// encoded form is kept only when strictly smaller than the raw v1
  /// bytes, so the choice is a pure function of the column data and
  /// re-saving a loaded catalog is byte-stable.
  static std::string encode_columns_v2(const epoch& ep) {
    const auto ranges = chunk_ranges(ep);
    std::string cols;
    const auto pick = [&cols](std::string_view raw, std::string_view encoded,
                              compress::column_codec codec) {
      const bool keep = encoded.size() < raw.size();
      const auto payload = keep ? encoded : raw;
      put_u8(cols, static_cast<std::uint8_t>(keep ? codec
                                                  : compress::column_codec::raw));
      put_u64(cols, payload.size());
      cols.append(payload);
    };

    const auto u32_col = [&](const std::vector<std::uint32_t>& col) {
      std::string raw;
      raw.reserve(col.size() * 4);
      for (const auto v : col) put_u32(raw, v);
      std::string enc;
      for (const auto& [b, e] : ranges)
        compress::for_encode_chunk(enc, col.data() + b, e - b);
      pick(raw, enc, compress::column_codec::for_bitpack);
    };
    const auto u8_col = [&](const std::vector<std::uint8_t>& col) {
      std::string raw;
      raw.reserve(col.size());
      for (const auto v : col) put_u8(raw, v);
      std::string enc;
      for (const auto& [b, e] : ranges)
        compress::rle8_encode_chunk(enc, col.data() + b, e - b);
      pick(raw, enc, compress::column_codec::rle8);
    };
    const auto f64_col = [&](const std::vector<double>& col) {
      std::string raw;
      raw.reserve(col.size() * 8);
      for (const auto v : col) put_f64(raw, v);
      std::vector<std::uint64_t> pattern;
      pattern.reserve(col.size());
      for (const auto v : col) pattern.push_back(std::bit_cast<std::uint64_t>(v));
      std::string enc;
      for (const auto& [b, e] : ranges)
        compress::rle64_encode_chunk(enc, pattern.data() + b, e - b);
      pick(raw, enc, compress::column_codec::rle64);
    };

    u32_col(ep.ip_);
    u32_col(ep.ixp_);
    u32_col(ep.asn_);
    u32_col(ep.metro_);
    u8_col(ep.cls_);
    u8_col(ep.step_);
    f64_col(ep.rtt_);
    std::vector<std::uint32_t> feasible_bits;
    feasible_bits.reserve(ep.feasible_.size());
    for (const auto v : ep.feasible_)
      feasible_bits.push_back(static_cast<std::uint32_t>(v));
    u32_col(feasible_bits);
    f64_col(ep.port_);
    return cols;
  }

  static std::string encode_record(const catalog& c, const epoch& ep,
                                   std::uint32_t prev_ixp_wm,
                                   std::uint32_t prev_metro_wm,
                                   std::uint32_t version) {
    std::string out;

    std::string meta;
    put_str(meta, ep.label_);
    put_u64(meta, ep.ip_.size());
    put_u64(meta, ep.blocks_.size());
    put_u32(meta, ep.ixp_watermark_);
    put_u32(meta, ep.metro_watermark_);
    append_section(out, k_sec_meta, meta);

    std::string dict;
    for (std::uint32_t r = prev_ixp_wm; r < ep.ixp_watermark_; ++r) {
      const auto& e = c.ixps_[r];
      put_u32(dict, e.id);
      put_str(dict, e.name);
      put_str(dict, e.peering_lan);
      put_f64(dict, e.min_physical_capacity_gbps);
      put_u32(dict, e.metro);
    }
    append_section(out, k_sec_ixp_dict, dict);

    std::string metros;
    for (std::uint32_t m = prev_metro_wm; m < ep.metro_watermark_; ++m)
      put_str(metros, c.metros_[m]);
    append_section(out, k_sec_metro_dict, metros);

    std::string blocks;
    for (const auto& b : ep.blocks_) {
      put_u32(blocks, b.ixp);
      put_u64(blocks, b.begin);
      put_u64(blocks, b.end);
      put_u64(blocks, b.facilities.size());
      for (const auto& fe : b.facilities) {
        put_u32(blocks, fe.id);
        put_u8(blocks, static_cast<std::uint8_t>((fe.has_name ? 1 : 0) |
                                                 (fe.has_location ? 2 : 0)));
        if (fe.has_name) put_str(blocks, fe.name);
        if (fe.has_location) {
          put_f64(blocks, fe.lat_deg);
          put_f64(blocks, fe.lon_deg);
        }
      }
    }
    append_section(out, k_sec_blocks, blocks);

    if (version == 1) {
      std::string cols;
      cols.reserve(ep.ip_.size() * k_row_bytes);
      for (const auto v : ep.ip_) put_u32(cols, v);
      for (const auto v : ep.ixp_) put_u32(cols, v);
      for (const auto v : ep.asn_) put_u32(cols, v);
      for (const auto v : ep.metro_) put_u32(cols, v);
      for (const auto v : ep.cls_) put_u8(cols, v);
      for (const auto v : ep.step_) put_u8(cols, v);
      for (const auto v : ep.rtt_) put_f64(cols, v);
      for (const auto v : ep.feasible_) put_u32(cols, static_cast<std::uint32_t>(v));
      for (const auto v : ep.port_) put_f64(cols, v);
      append_section(out, k_sec_columns, cols);
    } else {
      append_section(out, k_sec_columns, encode_columns_v2(ep));
    }

    return out;
  }

  /// v2 columns decode: the inverse of encode_columns_v2.  Every frame
  /// is validated — codec legality per column, payload chunked exactly
  /// along the block ranges, canonical-form rules inside each chunk
  /// (compress.cpp), and no trailing bytes anywhere.
  static void decode_columns_v2(epoch& ep, std::string_view payload,
                                std::size_t rows, const std::string& ctx) {
    const auto ranges = chunk_ranges(ep);
    reader r{payload, store_errc::corrupt, ctx + " (columns)"};
    constexpr auto k_raw = static_cast<std::uint8_t>(compress::column_codec::raw);
    constexpr auto k_for =
        static_cast<std::uint8_t>(compress::column_codec::for_bitpack);
    constexpr auto k_rle8 = static_cast<std::uint8_t>(compress::column_codec::rle8);
    constexpr auto k_rle64 =
        static_cast<std::uint8_t>(compress::column_codec::rle64);

    const auto frame = [&](const char* name, std::uint8_t allowed) {
      const auto codec = r.u8();
      const auto len = r.u64();
      if (len > r.remaining())
        fail(store_errc::corrupt,
             ctx + " (columns: " + name + "): encoded length exceeds the section");
      const auto body = r.view(static_cast<std::size_t>(len));
      if (codec != k_raw && codec != allowed)
        fail(store_errc::corrupt, ctx + " (columns: " + name +
                                      "): codec id " + std::to_string(codec) +
                                      " is not valid for this column");
      return std::pair<std::uint8_t, std::string_view>{codec, body};
    };
    const auto chunk_walk = [&](std::string_view body, const std::string& cctx,
                                const auto& decode_one) {
      std::size_t off2 = 0;
      for (const auto& [b, e] : ranges) decode_one(body, off2, e - b, cctx);
      if (off2 != body.size())
        fail(store_errc::corrupt, cctx + ": trailing bytes after the last chunk");
    };

    const auto u32_col = [&](std::vector<std::uint32_t>& col, const char* name) {
      const auto [codec, body] = frame(name, k_for);
      const std::string cctx = ctx + " (columns: " + std::string{name} + ")";
      col.clear();
      col.reserve(rows);
      if (codec == k_raw) {
        if (body.size() != rows * 4)
          fail(store_errc::corrupt, cctx + ": raw size does not match the row count");
        for (std::size_t i = 0; i < rows; ++i) col.push_back(get_u32_at(body, i * 4));
      } else {
        chunk_walk(body, cctx,
                   [&col](std::string_view b, std::size_t& o, std::size_t n,
                          const std::string& cc) {
                     compress::for_decode_chunk(b, o, n, col, cc);
                   });
      }
    };
    const auto u8_col = [&](std::vector<std::uint8_t>& col, const char* name) {
      const auto [codec, body] = frame(name, k_rle8);
      const std::string cctx = ctx + " (columns: " + std::string{name} + ")";
      col.clear();
      col.reserve(rows);
      if (codec == k_raw) {
        if (body.size() != rows)
          fail(store_errc::corrupt, cctx + ": raw size does not match the row count");
        for (std::size_t i = 0; i < rows; ++i)
          col.push_back(static_cast<unsigned char>(body[i]));
      } else {
        chunk_walk(body, cctx,
                   [&col](std::string_view b, std::size_t& o, std::size_t n,
                          const std::string& cc) {
                     compress::rle8_decode_chunk(b, o, n, col, cc);
                   });
      }
    };
    const auto f64_col = [&](std::vector<double>& col, const char* name) {
      const auto [codec, body] = frame(name, k_rle64);
      const std::string cctx = ctx + " (columns: " + std::string{name} + ")";
      col.clear();
      col.reserve(rows);
      if (codec == k_raw) {
        if (body.size() != rows * 8)
          fail(store_errc::corrupt, cctx + ": raw size does not match the row count");
        for (std::size_t i = 0; i < rows; ++i)
          col.push_back(std::bit_cast<double>(get_u64_at(body, i * 8)));
      } else {
        std::vector<std::uint64_t> pattern;
        pattern.reserve(rows);
        chunk_walk(body, cctx,
                   [&pattern](std::string_view b, std::size_t& o, std::size_t n,
                              const std::string& cc) {
                     compress::rle64_decode_chunk(b, o, n, pattern, cc);
                   });
        for (const auto v : pattern) col.push_back(std::bit_cast<double>(v));
      }
    };

    u32_col(ep.ip_, "ip");
    u32_col(ep.ixp_, "ixp");
    u32_col(ep.asn_, "asn");
    u32_col(ep.metro_, "metro");
    u8_col(ep.cls_, "class");
    u8_col(ep.step_, "step");
    f64_col(ep.rtt_, "rtt");
    std::vector<std::uint32_t> feasible_bits;
    u32_col(feasible_bits, "feasible");
    ep.feasible_.clear();
    ep.feasible_.reserve(rows);
    for (const auto v : feasible_bits)
      ep.feasible_.push_back(static_cast<std::int32_t>(v));
    f64_col(ep.port_, "port");
    r.expect_exhausted();
  }

  /// Decodes one epoch record at `off`, interning its dictionary deltas
  /// into `c` and validating every ref/enum against them.
  static epoch decode_record(catalog& c, std::string_view bytes, std::size_t& off,
                             std::size_t index, std::uint32_t version) {
    const std::string ctx = "epoch record " + std::to_string(index);
    const auto bad = [&](const std::string& msg) -> void {
      fail(store_errc::corrupt, ctx + ": " + msg);
    };

    epoch ep;
    std::size_t rows = 0;
    std::size_t nblocks = 0;

    // --- meta -----------------------------------------------------------
    {
      reader r{read_section(bytes, off, k_sec_meta, ctx), store_errc::corrupt,
               ctx + " (meta)"};
      ep.label_ = std::string{r.str()};
      const auto rows64 = r.u64();
      const auto nblocks64 = r.u64();
      ep.ixp_watermark_ = r.u32();
      ep.metro_watermark_ = r.u32();
      r.expect_exhausted();
      if (ep.label_.empty()) bad("empty epoch label");
      if (ep.ixp_watermark_ < c.ixps_.size() || ep.metro_watermark_ < c.metros_.size())
        bad("dictionary watermark goes backwards");
      // Anything the file itself could not hold is inconsistent — this
      // also keeps the reserves below from over-allocating on a lying
      // count before the columns section's exact-size check runs.
      if (rows64 > bytes.size() || nblocks64 > bytes.size())
        bad("row/block count larger than the file");
      rows = static_cast<std::size_t>(rows64);
      nblocks = static_cast<std::size_t>(nblocks64);
    }

    // --- dictionary deltas ----------------------------------------------
    {
      reader r{read_section(bytes, off, k_sec_ixp_dict, ctx), store_errc::corrupt,
               ctx + " (ixp_dict)"};
      while (c.ixps_.size() < ep.ixp_watermark_) {
        ixp_entry e;
        e.id = r.u32();
        e.name = std::string{r.str()};
        e.peering_lan = std::string{r.str()};
        e.min_physical_capacity_gbps = r.f64();
        e.metro = r.u32();
        if (e.metro != k_no_metro && e.metro >= ep.metro_watermark_)
          bad("IXP dictionary entry references an unknown metro");
        if (c.ixp_by_id_.count(e.id) != 0) bad("duplicate IXP id in dictionary");
        const auto ref = static_cast<ixp_ref>(c.ixps_.size());
        c.ixp_by_id_.emplace(e.id, ref);
        c.ixps_.push_back(std::move(e));
        c.ixp_by_name_.emplace(c.ixps_.back().name, ref);
      }
      r.expect_exhausted();
    }
    {
      reader r{read_section(bytes, off, k_sec_metro_dict, ctx), store_errc::corrupt,
               ctx + " (metro_dict)"};
      while (c.metros_.size() < ep.metro_watermark_) {
        const auto name = r.str();
        if (name.empty() || c.metro_by_name_.find(name) != c.metro_by_name_.end())
          bad("empty or duplicate metro name in dictionary");
        const auto ref = static_cast<metro_ref>(c.metros_.size());
        c.metros_.emplace_back(name);
        c.metro_by_name_.emplace(c.metros_.back(), ref);
      }
      r.expect_exhausted();
    }

    // --- blocks ---------------------------------------------------------
    {
      reader r{read_section(bytes, off, k_sec_blocks, ctx), store_errc::corrupt,
               ctx + " (blocks)"};
      ep.blocks_.reserve(nblocks);
      std::unordered_set<ixp_ref> seen;
      std::size_t prev_end = 0;
      while (ep.blocks_.size() < nblocks) {
        epoch::block b;
        b.ixp = r.u32();
        b.begin = r.u64();
        b.end = r.u64();
        if (b.ixp >= ep.ixp_watermark_) bad("block references an unknown IXP");
        if (!seen.insert(b.ixp).second) bad("duplicate IXP block");
        if (b.begin != prev_end || b.end < b.begin || b.end > rows)
          bad("block row ranges are not contiguous");
        prev_end = b.end;
        const auto nfac = r.u64();
        for (std::uint64_t i = 0; i < nfac; ++i) {
          facility_entry fe;
          fe.id = r.u32();
          const auto flags = r.u8();
          if ((flags & ~3u) != 0) bad("unknown facility flags");
          fe.has_name = (flags & 1u) != 0;
          fe.has_location = (flags & 2u) != 0;
          if (fe.has_name) fe.name = std::string{r.str()};
          if (fe.has_location) {
            fe.lat_deg = r.f64();
            fe.lon_deg = r.f64();
          }
          b.facilities.push_back(std::move(fe));
        }
        ep.blocks_.push_back(std::move(b));
      }
      r.expect_exhausted();
      if (prev_end != rows) bad("blocks do not cover every row");
    }

    // --- columns --------------------------------------------------------
    {
      const auto payload = read_section(bytes, off, k_sec_columns, ctx);
      if (version == 1) {
        if (payload.size() % k_row_bytes != 0 || payload.size() / k_row_bytes != rows)
          bad("columns section size does not match the row count");
        reader r{payload, store_errc::corrupt, ctx + " (columns)"};
        const auto fill_u32 = [&](std::vector<std::uint32_t>& col) {
          col.resize(rows);
          for (auto& v : col) v = r.u32();
        };
        const auto fill_u8 = [&](std::vector<std::uint8_t>& col) {
          col.resize(rows);
          for (auto& v : col) v = r.u8();
        };
        const auto fill_f64 = [&](std::vector<double>& col) {
          col.resize(rows);
          for (auto& v : col) v = r.f64();
        };
        fill_u32(ep.ip_);
        fill_u32(ep.ixp_);
        fill_u32(ep.asn_);
        fill_u32(ep.metro_);
        fill_u8(ep.cls_);
        fill_u8(ep.step_);
        fill_f64(ep.rtt_);
        ep.feasible_.resize(rows);
        for (auto& v : ep.feasible_) v = static_cast<std::int32_t>(r.u32());
        fill_f64(ep.port_);
        r.expect_exhausted();
      } else {
        decode_columns_v2(ep, payload, rows, ctx);
      }

      for (std::size_t i = 0; i < rows; ++i) {
        if (ep.cls_[i] >= infer::k_n_peering_classes) bad("peering class out of range");
        if (ep.step_[i] >= infer::k_n_method_steps) bad("method step out of range");
        if (ep.metro_[i] != k_no_metro && ep.metro_[i] >= ep.metro_watermark_)
          bad("row references an unknown metro");
      }
      for (const auto& b : ep.blocks_)
        for (std::size_t i = b.begin; i < b.end; ++i)
          if (ep.ixp_[i] != b.ixp) bad("row IXP disagrees with its block");
    }

    // Count indexes, zone maps and the ASN/IP permutation indexes are
    // never serialized: the loader re-derives every index from the
    // columns (same path as ingest/merge_from), so the .opwatc format
    // is unchanged by the vectorized engine and indexes can never
    // disagree with the data.
    ep.rebuild_indexes(c.ixps_);
    return ep;
  }

  static void save(const catalog& c, const std::string& path, std::uint32_t version) {
    if (version < k_store_oldest_version || version > k_store_version)
      fail(store_errc::bad_version,
           "cannot write format version " + std::to_string(version));
    std::string bytes =
        encode_header(static_cast<std::uint32_t>(c.epochs_.size()), version);
    std::uint32_t prev_ixp = 0;
    std::uint32_t prev_metro = 0;
    for (const auto& ep : c.epochs_) {
      bytes += encode_record(c, ep, prev_ixp, prev_metro, version);
      prev_ixp = ep.ixp_watermark_;
      prev_metro = ep.metro_watermark_;
    }
    // Atomic: a crash at ANY byte offset of the write (or before the
    // rename) leaves an existing `path` byte-identical — readers only
    // ever see the old complete file or the new complete file.
    write_file_atomic(path, bytes);
  }

  static catalog load(const std::string& path) {
    const std::string bytes = read_file(path);
    const auto header = parse_header(bytes);
    catalog c;
    std::size_t off = k_store_header_size;
    for (std::uint32_t i = 0; i < header.epoch_count; ++i) {
      epoch ep = decode_record(c, bytes, off, i, header.version);
      if (c.by_label_.find(ep.label_) != c.by_label_.end())
        throw catalog_error("opwatc: duplicate epoch label in snapshot: " + ep.label_);
      c.by_label_.emplace(ep.label_, static_cast<epoch_id>(c.epochs_.size()));
      c.epochs_.push_back(std::move(ep));
    }
    if (off != bytes.size())
      fail(store_errc::corrupt, "trailing bytes after the last epoch record");
#if OPWAT_CONTRACTS_ACTIVE
    // Debug / -DOPWAT_AUDIT=ON builds cross-check every re-derived
    // index against the freshly decoded columns: a loader bug (or a
    // corruption mode the framing checks miss) dies here, not three
    // queries later.
    c.audit();
#endif
    return c;
  }

  static void append(const catalog& c, const std::string& path, epoch_id e) {
    if (e >= c.epochs_.size())
      throw std::out_of_range("append_epoch: catalog has no epoch " + std::to_string(e));
    const std::string bytes = read_file(path);
    const auto header = parse_header(bytes);
    const auto file_epochs = header.epoch_count;
    if (file_epochs != e)
      fail(store_errc::mismatch, "file holds " + std::to_string(file_epochs) +
                                     " epochs; appending epoch " + std::to_string(e) +
                                     " requires exactly that many");

    // The file must be THIS catalog's prefix: labels and dictionary
    // watermarks are cross-checked record by record (payload bytes of
    // the non-meta sections are trusted to their CRCs, which
    // read_section verifies while skipping).
    std::size_t off = k_store_header_size;
    for (std::uint32_t i = 0; i < file_epochs; ++i) {
      const std::string ctx = "epoch record " + std::to_string(i);
      reader r{read_section(bytes, off, k_sec_meta, ctx), store_errc::corrupt,
               ctx + " (meta)"};
      const auto label = r.str();
      r.u64();  // rows
      r.u64();  // blocks
      const auto ixp_wm = r.u32();
      const auto metro_wm = r.u32();
      const auto& ours = c.epochs_[i];
      if (label != ours.label_ || ixp_wm != ours.ixp_watermark_ ||
          metro_wm != ours.metro_watermark_)
        fail(store_errc::mismatch,
             ctx + ": file epoch \"" + std::string{label} +
                 "\" is not this catalog's epoch \"" + ours.label_ + "\"");
      for (const auto id : {k_sec_ixp_dict, k_sec_metro_dict, k_sec_blocks, k_sec_columns})
        read_section(bytes, off, id, ctx);
    }
    if (off != bytes.size())
      fail(store_errc::corrupt, "trailing bytes after the last epoch record");

    // Encode in the FILE's version, not the build default: appending a
    // new epoch to a v1 snapshot keeps it a valid v1 snapshot that a
    // full v1 save() would have produced byte for byte.
    const std::uint32_t prev_ixp = e == 0 ? 0 : c.epochs_[e - 1].ixp_watermark_;
    const std::uint32_t prev_metro = e == 0 ? 0 : c.epochs_[e - 1].metro_watermark_;
    const auto record =
        encode_record(c, c.epochs_[e], prev_ixp, prev_metro, header.version);

    const fd_guard f{::open(path.c_str(), O_RDWR | O_CLOEXEC)};
    if (f.fd < 0)
      fail(store_errc::io,
           "cannot open " + path + " for appending: " + std::strerror(errno));
    // Crash-safe ordering: (1) the record lands past the committed end,
    // (2) it is fsynced, (3) the header's epoch count + CRC are patched
    // (the publish), (4) the publish is fsynced.  A crash before (3)
    // leaves a valid file whose count ignores the partial record —
    // load(strict) reports the trailing bytes, load(recover) truncates
    // them.  A crash INSIDE (3) can only tear the 20-byte header: the
    // record is already durable, so recovery rolls the count forward.
    checked_pwrite(f.fd, record, bytes.size(), "store-append-write", path);
    checked_fsync(f.fd, "store-append-fsync", path);
    const auto published =
        encode_header(static_cast<std::uint32_t>(e) + 1, header.version);
    checked_pwrite(f.fd, published, 0, "store-append-publish", path);
    if (::fsync(f.fd) != 0)
      fail(store_errc::io,
           "fsync error on " + path + ": " + std::strerror(errno));
  }

  /// The recover-mode salvage walk shared by catalog::load(recover) and
  /// store_repair: the longest decodable epoch prefix, the byte
  /// boundary it ends at, and a report of everything dropped.
  struct salvage_result {
    catalog cat;
    recovery_report report;
    std::uint32_t version = 0;
    /// End offset of the valid prefix (header included) in the file.
    std::size_t keep_bytes = 0;
  };

  static salvage_result salvage(std::string_view bytes) {
    salvage_result s;
    const auto give_up = [&s](const std::string& why) {
      s.report.unrecoverable = true;
      s.report.recovered = false;
      s.report.detail = why;
      return s;
    };

    if (bytes.size() < k_store_header_size)
      return give_up("file smaller than the header");
    if (bytes.substr(0, k_store_magic.size()) != k_store_magic)
      return give_up("not an .opwatc snapshot (bad magic)");
    const auto version = get_u32_at(bytes, 8);
    if (version < k_store_oldest_version || version > k_store_version)
      return give_up("unsupported format version " + std::to_string(version));
    s.version = version;
    const bool header_ok =
        get_u32_at(bytes, 16) == util::crc32(bytes.data(), 16);
    // A torn header (magic + version intact, CRC not) is the
    // crash-inside-publish signature: append fsyncs the record BEFORE
    // patching the count, so every complete record present was meant to
    // be committed — the walk below rolls the count forward to them.
    const std::uint32_t committed = header_ok ? get_u32_at(bytes, 12) : 0;

    catalog c;
    std::size_t off = k_store_header_size;
    std::uint32_t kept = 0;
    while (off < bytes.size()) {
      if (header_ok && kept == committed) {
        // Valid records beyond the committed count: an append that
        // crashed after the record fsync but before the publish began.
        // The count is authoritative — truncate the uncommitted tail.
        s.report.recovered = true;
        s.report.bytes_truncated = bytes.size() - off;
        if (s.report.detail.empty())
          s.report.detail = "uncommitted trailing record data (" +
                            std::to_string(s.report.bytes_truncated) +
                            " bytes past epoch " + std::to_string(kept) + ")";
        break;
      }
      // Decode into a CLONE: a record that fails halfway may already
      // have interned dictionary entries, which would taint every later
      // save of the salvaged prefix.
      catalog trial = c;
      std::size_t next = off;
      std::string problem;
      try {
        epoch ep = decode_record(trial, bytes, next, kept, version);
        if (trial.by_label_.find(ep.label_) != trial.by_label_.end())
          throw catalog_error("duplicate epoch label in snapshot: " + ep.label_);
        trial.by_label_.emplace(ep.label_,
                                static_cast<epoch_id>(trial.epochs_.size()));
        trial.epochs_.push_back(std::move(ep));
      } catch (const store_error& e) {
        problem = e.what();
      } catch (const catalog_error& e) {
        problem = e.what();
      }
      if (!problem.empty()) {
        s.report.recovered = true;
        s.report.bytes_truncated = bytes.size() - off;
        s.report.detail = "epoch record " + std::to_string(kept) + " damaged (" +
                          problem + "); truncated " +
                          std::to_string(s.report.bytes_truncated) + " bytes";
        break;
      }
      c = std::move(trial);
      off = next;
      ++kept;
    }

    s.report.epochs_kept = kept;
    if (header_ok && kept < committed)
      s.report.epochs_dropped = committed - kept;
    if (!header_ok) {
      s.report.recovered = true;
      s.report.header_repaired = true;
      if (s.report.detail.empty())
        s.report.detail = "header checksum torn mid-publish; epoch count "
                          "rolled forward to " +
                          std::to_string(kept);
    }
    s.keep_bytes = off;
    s.cat = std::move(c);
#if OPWAT_CONTRACTS_ACTIVE
    // Whatever prefix survived must be as consistent as a strict load —
    // an audit failure here is a salvage-walk bug, not input damage.
    s.cat.audit();
#endif
    return s;
  }

  static catalog load_recover(const std::string& path, recovery_report* report) {
    const std::string bytes = read_file(path);
    auto s = salvage(bytes);
    if (report != nullptr) *report = std::move(s.report);
    return std::move(s.cat);
  }

  static recovery_report repair(const std::string& path) {
    const std::string bytes = read_file(path);
    auto s = salvage(bytes);
    if (s.report.unrecoverable)
      fail(store_errc::corrupt, "cannot repair " + path + ": " + s.report.detail);
    if (!s.report.recovered) return s.report;  // intact: leave the file alone
    // Rebuild the exact bytes a save() of the salvaged prefix would
    // write: patched header + the surviving records, replaced
    // atomically.  For a crash-mid-append file this reproduces the
    // pre-append snapshot byte for byte (or, for a torn header over a
    // durable record, the completed append).
    std::string out = encode_header(s.report.epochs_kept, s.version);
    out.append(bytes, k_store_header_size, s.keep_bytes - k_store_header_size);
    write_file_atomic(path, out);
    return s.report;
  }

  static void merge(catalog& dst, const std::string& path) {
    const catalog src = load(path);
    for (const auto& ep : src.epochs_)
      if (dst.by_label_.find(ep.label_) != dst.by_label_.end())
        throw catalog_error("opwatc: merge would duplicate epoch label: " + ep.label_);

    // Remap refs epoch by epoch so each merged epoch's dictionary
    // watermark stays a valid delta boundary for future saves.
    std::vector<ixp_ref> ixp_map(src.ixps_.size());
    std::vector<metro_ref> metro_map(src.metros_.size());
    std::uint32_t done_ixp = 0;
    std::uint32_t done_metro = 0;
    for (const auto& src_ep : src.epochs_) {
      for (; done_metro < src_ep.metro_watermark_; ++done_metro)
        metro_map[done_metro] = dst.intern_metro(src.metros_[done_metro]);
      for (; done_ixp < src_ep.ixp_watermark_; ++done_ixp)
        ixp_map[done_ixp] =
            dst.intern_loaded_ixp(src.ixps_[done_ixp],
                                  src.metro_name(src.ixps_[done_ixp].metro));

      epoch ep = src_ep;
      const auto remap_metro = [&](metro_ref m) {
        return m == k_no_metro ? k_no_metro : metro_map[m];
      };
      for (auto& x : ep.ixp_) x = ixp_map[x];
      for (auto& m : ep.metro_) m = remap_metro(m);
      for (auto& b : ep.blocks_) b.ixp = ixp_map[b.ixp];
      ep.ixp_watermark_ = static_cast<std::uint32_t>(dst.ixps_.size());
      ep.metro_watermark_ = static_cast<std::uint32_t>(dst.metros_.size());
      ep.rebuild_indexes(dst.ixps_);
      dst.by_label_.emplace(ep.label_, static_cast<epoch_id>(dst.epochs_.size()));
      dst.epochs_.push_back(std::move(ep));
    }
#if OPWAT_CONTRACTS_ACTIVE
    // The re-interned refs and recomputed watermarks must leave the
    // destination catalog as consistent as a from-scratch ingest.
    dst.audit();
#endif
  }
};

void catalog::save(const std::string& path) const {
  store::save(*this, path, k_store_version);
}

void catalog::save(const std::string& path, std::uint32_t version) const {
  store::save(*this, path, version);
}

catalog catalog::load(const std::string& path) { return store::load(path); }

catalog catalog::load(const std::string& path, recovery_policy policy,
                      recovery_report* report) {
  if (policy == recovery_policy::strict) {
    if (report != nullptr) *report = {};
    return store::load(path);
  }
  return store::load_recover(path, report);
}

recovery_report store_repair(const std::string& path) {
  return store::repair(path);
}

void catalog::append_epoch(const std::string& path, epoch_id e) const {
  store::append(*this, path, e);
}

void catalog::merge_from(const std::string& path) { store::merge(*this, path); }

std::vector<std::size_t> store_section_boundaries(std::string_view bytes) {
  parse_header(bytes);
  std::vector<std::size_t> out{k_store_header_size};
  std::size_t off = k_store_header_size;
  while (off < bytes.size()) {
    if (bytes.size() - off < k_store_section_header_size)
      fail(store_errc::truncated, "file ends inside a section header");
    const auto len = get_u64_at(bytes, off + 4);
    if (len > bytes.size() - off - k_store_section_header_size)
      fail(store_errc::truncated, "section payload extends past end of file");
    off += k_store_section_header_size + len;
    out.push_back(off);
  }
  return out;
}

store_file_info store_inspect(std::string_view bytes) {
  const auto header = parse_header(bytes);
  store_file_info info;
  info.version = header.version;
  info.epoch_count = header.epoch_count;
  std::size_t off = k_store_header_size;
  for (std::uint32_t i = 0; i < header.epoch_count; ++i) {
    const std::string ctx = "epoch record " + std::to_string(i);
    for (const auto id : {k_sec_meta, k_sec_ixp_dict, k_sec_metro_dict, k_sec_blocks})
      read_section(bytes, off, id, ctx);
    const auto payload = read_section(bytes, off, k_sec_columns, ctx);
    std::vector<std::uint8_t> codecs;
    if (header.version == 1) {
      codecs.assign(9, static_cast<std::uint8_t>(compress::column_codec::raw));
    } else {
      reader r{payload, store_errc::corrupt, ctx + " (columns)"};
      for (int col = 0; col < 9; ++col) {
        codecs.push_back(r.u8());
        const auto len = r.u64();
        if (len > r.remaining())
          fail(store_errc::corrupt,
               ctx + " (columns): encoded length exceeds the section");
        r.view(static_cast<std::size_t>(len));
      }
    }
    info.column_codecs.push_back(std::move(codecs));
  }
  return info;
}

}  // namespace opwat::serve
