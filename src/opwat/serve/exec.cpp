#include "opwat/serve/exec.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>

#include "opwat/net/ipv4.hpp"

namespace opwat::serve::exec {

namespace {

/// Rows per selection-vector batch.  Large enough to amortize the
/// per-chunk bookkeeping, small enough that the reused index buffer
/// stays cache-resident.
constexpr std::size_t k_chunk = 4096;

/// Fills `out` with the indices of [c0, c1) that satisfy `pred` — the
/// branch-predictable "first active filter" loop (the index is written
/// unconditionally; the cursor advances only on a match).
template <typename Pred>
std::size_t fill_if(std::size_t c0, std::size_t c1, std::uint32_t* out, Pred pred) {
  std::size_t n = 0;
  for (std::size_t i = c0; i < c1; ++i) {
    out[n] = static_cast<std::uint32_t>(i);
    n += pred(i) ? std::size_t{1} : std::size_t{0};
  }
  return n;
}

/// Compacts an existing selection in place, keeping rows that satisfy
/// `pred` — the loop every further active filter runs.
template <typename Pred>
std::size_t keep_if(std::uint32_t* sel, std::size_t n, Pred pred) {
  std::size_t out = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const auto i = sel[k];
    sel[out] = i;
    out += pred(i) ? std::size_t{1} : std::size_t{0};
  }
  return out;
}

/// The single definition of the scan predicates (everything except the
/// IXP block restriction and the ASN equality, which the member path
/// resolves through the permutation index): invokes `apply` once per
/// active filter with its row predicate, in fixed order.  Both the
/// fill-then-compact chunk pipeline and the compact-only candidate
/// path consume this, so the two can never drift apart.
template <typename Apply>
void for_each_scan_predicate(const epoch& ep, const predicates& p, Apply&& apply) {
  constexpr auto k_unknown = static_cast<std::uint8_t>(infer::peering_class::unknown);
  if (p.has_metro) {
    const auto* metro = ep.metro_col().data();
    apply([metro, v = p.metro](std::size_t i) { return metro[i] == v; });
  }
  if (p.has_cls) {
    const auto* cls = ep.cls_col().data();
    apply([cls, v = p.cls](std::size_t i) { return cls[i] == v; });
  }
  if (p.has_step) {
    const auto* cls = ep.cls_col().data();
    const auto* step = ep.step_col().data();
    apply([cls, step, v = p.step](std::size_t i) {
      return cls[i] != k_unknown && step[i] == v;
    });
  }
  if (p.has_rtt) {
    // NaN fails both comparisons, so unmeasured rows drop out with no
    // isnan branch.
    const auto* rtt = ep.rtt_col().data();
    apply([rtt, lo = p.rtt_lo, hi = p.rtt_hi](std::size_t i) {
      return rtt[i] >= lo && rtt[i] <= hi;
    });
  }
}

/// Compacts the candidate rows in `sel[0..n)` through every active
/// scan predicate, in place.
std::size_t apply_rest(const epoch& ep, const predicates& p, std::uint32_t* sel,
                       std::size_t n) {
  for_each_scan_predicate(ep, p, [&](auto pred) { n = keep_if(sel, n, pred); });
  return n;
}

/// One chunk through the predicate pipeline: fills/compacts `buf` with
/// the matching indices of [c0, c1).  `whole == true` means no scan
/// filter was active and the entire chunk matches (buf untouched).
struct chunk_result {
  std::size_t n = 0;
  bool whole = false;
};

chunk_result filter_chunk(const epoch& ep, const predicates& p, std::size_t c0,
                          std::size_t c1, std::uint32_t* buf) {
  std::size_t n = 0;
  bool filled = false;
  const auto apply = [&](auto pred) {
    n = filled ? keep_if(buf, n, pred) : fill_if(c0, c1, buf, pred);
    filled = true;
  };
  if (p.has_asn) {
    const auto* asn = ep.asn_col().data();
    apply([asn, v = p.asn](std::size_t i) { return asn[i] == v; });
  }
  for_each_scan_predicate(ep, p, apply);
  return {n, !filled};
}

}  // namespace

bool zone_skip(const epoch::block& b, const predicates& p) {
  if (b.begin == b.end) return true;
  const auto& z = b.zone;
  if (p.has_asn && (p.asn < z.asn_min || p.asn > z.asn_max)) return true;
  if (p.has_metro && !z.metro_present(p.metro)) return true;
  if (p.has_cls && ((z.cls_mask >> p.cls) & 1u) == 0) return true;
  if (p.has_step && ((z.step_mask >> p.step) & 1u) == 0) return true;
  if (p.has_rtt &&
      (!z.any_measured_rtt || p.rtt_hi < z.rtt_min_ms || p.rtt_lo > z.rtt_max_ms))
    return true;
  return false;
}

std::size_t scan_range(const epoch& ep, std::size_t begin, std::size_t end,
                       const predicates& p, sel_vector& sel, std::size_t cap) {
  std::array<std::uint32_t, k_chunk> buf;  // reused across chunks
  std::size_t examined = 0;
  for (std::size_t c0 = begin; c0 < end && sel.size() < cap; c0 += k_chunk) {
    const std::size_t c1 = std::min(end, c0 + k_chunk);
    examined += c1 - c0;
    const auto r = filter_chunk(ep, p, c0, c1, buf.data());
    if (r.whole) {
      for (std::size_t i = c0; i < c1; ++i) sel.push_back(static_cast<std::uint32_t>(i));
    } else {
      sel.insert(sel.end(), buf.data(), buf.data() + r.n);
    }
  }
  return examined;
}

namespace {

/// The ASN permutation run for `p.asn`, restricted to the at_ixp()
/// block when one is set: [lo, hi) of row indices, ascending (i.e.
/// canonical order).  Empty when the block is absent from the epoch.
std::pair<const std::uint32_t*, const std::uint32_t*> asn_run(const epoch& ep,
                                                              const predicates& p) {
  const auto& perm = ep.asn_perm();
  const auto* asn = ep.asn_col().data();
  auto lo = std::lower_bound(
      perm.begin(), perm.end(), p.asn,
      [&](std::uint32_t r, std::uint32_t v) { return asn[r] < v; });
  auto hi = std::upper_bound(
      lo, perm.end(), p.asn,
      [&](std::uint32_t v, std::uint32_t r) { return v < asn[r]; });
  if (p.has_ixp) {
    const auto* b = ep.block_of(p.ixp);
    if (!b) return {nullptr, nullptr};
    // The run is ascending by row index; restrict it to the block's
    // row range with two more binary searches.
    lo = std::lower_bound(lo, hi, static_cast<std::uint32_t>(b->begin));
    hi = std::lower_bound(lo, hi, static_cast<std::uint32_t>(b->end));
  }
  return {lo == hi ? nullptr : &*lo, lo == hi ? nullptr : &*lo + (hi - lo)};
}

}  // namespace

sel_vector collect(const epoch& ep, const predicates& p, std::size_t cap, stats* st) {
  sel_vector sel;
  if (ep.rows() == 0 || cap == 0) return sel;

  // member() point lookup: the ASN permutation index narrows the
  // candidate set to one contiguous run, already in canonical order.
  if (p.has_asn) {
    const auto [lo, hi] = asn_run(ep, p);
    sel.assign(lo, hi);
    const auto candidates = sel.size();
    sel.resize(apply_rest(ep, p, sel.data(), sel.size()));
    if (st) {
      st->rows_scanned += candidates;
      st->rows_skipped += ep.rows() - candidates;
    }
    return sel;
  }

  // Block-scan path.  Accounting invariant (member path above included):
  // rows_scanned + rows_skipped == ep.rows() per execution — whatever a
  // predicate loop did not touch (zone-map pruned, outside the
  // at_ixp() block, or past an early-exit cap) counts as skipped.
  std::size_t scanned = 0;
  const auto scan_block = [&](const epoch::block& b) {
    if (zone_skip(b, p)) {
      if (st) ++st->blocks_skipped;
      return;
    }
    scanned += scan_range(ep, b.begin, b.end, p, sel, cap);
  };

  if (p.has_ixp) {
    if (const auto* b = ep.block_of(p.ixp)) scan_block(*b);
  } else {
    for (const auto& b : ep.blocks()) {
      scan_block(b);
      if (sel.size() >= cap) break;
    }
  }
  if (st) {
    st->rows_scanned += scanned;
    st->rows_skipped += ep.rows() - scanned;
  }
  return sel;
}

std::size_t count_matches(const epoch& ep, const predicates& p, stats* st) {
  if (ep.rows() == 0) return 0;
  std::array<std::uint32_t, k_chunk> buf;  // reused across chunks

  if (p.has_asn) {
    const auto [lo, hi] = asn_run(ep, p);
    const auto candidates = static_cast<std::size_t>(hi - lo);
    std::size_t n = 0;
    for (const auto* c0 = lo; c0 != hi;) {
      const auto m = std::min<std::size_t>(k_chunk, static_cast<std::size_t>(hi - c0));
      std::copy(c0, c0 + m, buf.data());
      n += apply_rest(ep, p, buf.data(), m);
      c0 += m;
    }
    if (st) {
      st->rows_scanned += candidates;
      st->rows_skipped += ep.rows() - candidates;
    }
    return n;
  }

  std::size_t n = 0;
  std::size_t scanned = 0;
  const auto count_block = [&](const epoch::block& b) {
    if (zone_skip(b, p)) {
      if (st) ++st->blocks_skipped;
      return;
    }
    for (std::size_t c0 = b.begin; c0 < b.end; c0 += k_chunk) {
      const std::size_t c1 = std::min(b.end, c0 + k_chunk);
      scanned += c1 - c0;
      const auto r = filter_chunk(ep, p, c0, c1, buf.data());
      n += r.whole ? c1 - c0 : r.n;
    }
  };
  if (p.has_ixp) {
    if (const auto* b = ep.block_of(p.ixp)) count_block(*b);
  } else {
    for (const auto& b : ep.blocks()) count_block(b);
  }
  if (st) {
    st->rows_scanned += scanned;
    st->rows_skipped += ep.rows() - scanned;
  }
  return n;
}

std::vector<group_count> group_over(const catalog& cat, const epoch& ep,
                                    const sel_vector& sel, group_dim dim) {
  std::vector<group_count> out;

  const auto emit_dense = [&](const auto& acc, auto&& key_of) {
    for (std::size_t r = 0; r < acc.size(); ++r)
      if (acc[r] != 0) out.push_back({key_of(r), acc[r]});
  };

  switch (dim) {
    case group_dim::ixp: {
      std::vector<std::size_t> acc(cat.ixps().size(), 0);
      const auto* col = ep.ixp_col().data();
      for (const auto i : sel) ++acc[col[i]];
      emit_dense(acc, [&](std::size_t r) { return cat.ixps()[r].name; });
      break;
    }
    case group_dim::asn: {
      std::unordered_map<std::uint32_t, std::size_t> acc;
      const auto* col = ep.asn_col().data();
      for (const auto i : sel) ++acc[col[i]];
      out.reserve(acc.size());
      // opwat-lint: allow(unordered-iter): buckets are sorted by key (and
      // key-collisions merged) below before anything is returned
      for (const auto& [v, n] : acc) out.push_back({net::to_string(net::asn{v}), n});
      break;
    }
    case group_dim::metro: {
      // One dense slot per interned metro plus a trailing slot for
      // unmapped rows.
      std::vector<std::size_t> acc(cat.metros().size() + 1, 0);
      const auto unmapped = cat.metros().size();
      const auto* col = ep.metro_col().data();
      for (const auto i : sel) {
        const auto m = col[i];
        ++acc[m == k_no_metro ? unmapped : m];
      }
      // The empty-name guard mirrors the reference's metro_name()
      // fallback; interning never produces an empty metro name, so it
      // is structural parity, not a reachable branch.
      emit_dense(acc, [&](std::size_t r) {
        if (r == unmapped || cat.metros()[r].empty()) return std::string{"(unmapped)"};
        return cat.metros()[r];
      });
      break;
    }
    case group_dim::cls: {
      std::array<std::size_t, infer::k_n_peering_classes> acc{};
      const auto* col = ep.cls_col().data();
      for (const auto i : sel) ++acc[col[i]];
      emit_dense(acc, [](std::size_t r) {
        return std::string{to_string(static_cast<infer::peering_class>(r))};
      });
      break;
    }
    case group_dim::step: {
      std::array<std::size_t, infer::k_n_method_steps> acc{};
      const auto* col = ep.step_col().data();
      for (const auto i : sel) ++acc[col[i]];
      emit_dense(acc, [](std::size_t r) {
        return std::string{to_string(static_cast<infer::method_step>(r))};
      });
      break;
    }
  }

  // Merge buckets whose display keys collide (e.g. two dictionary
  // entries sharing a name) so the result matches a string-keyed
  // accumulator exactly.
  std::sort(out.begin(), out.end(),
            [](const group_count& a, const group_count& b) { return a.key < b.key; });
  std::size_t w = 0;
  for (std::size_t r = 0; r < out.size(); ++r) {
    if (w > 0 && out[w - 1].key == out[r].key) {
      out[w - 1].count += out[r].count;
    } else {
      if (w != r) out[w] = std::move(out[r]);
      ++w;
    }
  }
  out.resize(w);
  return out;
}

void sort_selection_by_rtt(const epoch& ep, sel_vector& sel, bool ascending,
                           std::size_t offset, std::optional<std::size_t> limit) {
  const auto* rtt = ep.rtt_col().data();
  const auto cmp = [&](std::uint32_t a, std::uint32_t b) {
    const double ra = rtt[a], rb = rtt[b];
    const bool ma = !std::isnan(ra), mb = !std::isnan(rb);
    if (ma != mb) return ma;  // unmeasured rows last either way
    if (!ma) return a < b;    // both unmeasured: canonical order
    if (ra != rb) return ascending ? ra < rb : ra > rb;
    return a < b;  // equal RTTs: canonical order
  };
  if (limit) {
    const std::size_t want = std::min(sel.size(), offset + *limit);
    if (want == 0) {
      sel.clear();
      return;
    }
    if (want < sel.size()) {
      // Partition the `want` page-visible rows to the front, then sort
      // only those — rows past the page are never compared again.
      std::nth_element(sel.begin(), sel.begin() + static_cast<std::ptrdiff_t>(want),
                       sel.end(), cmp);
      sel.resize(want);
    }
  }
  std::sort(sel.begin(), sel.end(), cmp);
}

}  // namespace opwat::serve::exec
