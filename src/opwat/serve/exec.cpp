#include "opwat/serve/exec.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <memory>
#include <numeric>
#include <random>
#include <unordered_map>

#include "opwat/net/ipv4.hpp"

namespace opwat::serve::exec {

namespace {

/// Rows per selection-vector batch.  Large enough to amortize the
/// per-chunk bookkeeping, small enough that the reused index buffer
/// stays cache-resident.
constexpr std::size_t k_chunk = 4096;

/// Fills `out` with the indices of [c0, c1) that satisfy `pred` — the
/// branch-predictable "first active filter" loop (the index is written
/// unconditionally; the cursor advances only on a match).
template <typename Pred>
std::size_t fill_if(std::size_t c0, std::size_t c1, std::uint32_t* out, Pred pred) {
  std::size_t n = 0;
  for (std::size_t i = c0; i < c1; ++i) {
    out[n] = static_cast<std::uint32_t>(i);
    n += pred(i) ? std::size_t{1} : std::size_t{0};
  }
  return n;
}

/// Compacts an existing selection in place, keeping rows that satisfy
/// `pred` — the loop every further active filter runs.
template <typename Pred>
std::size_t keep_if(std::uint32_t* sel, std::size_t n, Pred pred) {
  std::size_t out = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const auto i = sel[k];
    sel[out] = i;
    out += pred(i) ? std::size_t{1} : std::size_t{0};
  }
  return out;
}

/// The single definition of the scan predicates (everything except the
/// IXP block restriction and the ASN equality, which the member path
/// resolves through the permutation index): invokes `apply` once per
/// active filter with its row predicate, in fixed order.  Both the
/// fill-then-compact chunk pipeline and the compact-only candidate
/// path consume this, so the two can never drift apart.
template <typename Apply>
void for_each_scan_predicate(const epoch& ep, const predicates& p, Apply&& apply) {
  constexpr auto k_unknown = static_cast<std::uint8_t>(infer::peering_class::unknown);
  if (p.has_metro) {
    const auto* metro = ep.metro_col().data();
    apply([metro, v = p.metro](std::size_t i) { return metro[i] == v; });
  }
  if (p.has_cls) {
    const auto* cls = ep.cls_col().data();
    apply([cls, v = p.cls](std::size_t i) { return cls[i] == v; });
  }
  if (p.has_step) {
    const auto* cls = ep.cls_col().data();
    const auto* step = ep.step_col().data();
    apply([cls, step, v = p.step](std::size_t i) {
      return cls[i] != k_unknown && step[i] == v;
    });
  }
  if (p.has_rtt) {
    // NaN fails both comparisons, so unmeasured rows drop out with no
    // isnan branch.
    const auto* rtt = ep.rtt_col().data();
    apply([rtt, lo = p.rtt_lo, hi = p.rtt_hi](std::size_t i) {
      return rtt[i] >= lo && rtt[i] <= hi;
    });
  }
}

/// Compacts the candidate rows in `sel[0..n)` through every active
/// scan predicate, in place.
std::size_t apply_rest(const epoch& ep, const predicates& p, std::uint32_t* sel,
                       std::size_t n) {
  for_each_scan_predicate(ep, p, [&](auto pred) { n = keep_if(sel, n, pred); });
  return n;
}

/// One chunk through the predicate pipeline: fills/compacts `buf` with
/// the matching indices of [c0, c1).  `whole == true` means no scan
/// filter was active and the entire chunk matches (buf untouched).
struct chunk_result {
  std::size_t n = 0;
  bool whole = false;
};

chunk_result filter_chunk(const epoch& ep, const predicates& p, std::size_t c0,
                          std::size_t c1, std::uint32_t* buf) {
  std::size_t n = 0;
  bool filled = false;
  const auto apply = [&](auto pred) {
    n = filled ? keep_if(buf, n, pred) : fill_if(c0, c1, buf, pred);
    filled = true;
  };
  if (p.has_asn) {
    const auto* asn = ep.asn_col().data();
    apply([asn, v = p.asn](std::size_t i) { return asn[i] == v; });
  }
  for_each_scan_predicate(ep, p, apply);
  return {n, !filled};
}

/// Matching-row count over [begin, end), chunk at a time — the shared
/// kernel behind the serial count_block loop and the per-morsel counts.
std::size_t count_range(const epoch& ep, const predicates& p, std::size_t begin,
                        std::size_t end) {
  std::array<std::uint32_t, k_chunk> buf;  // reused across chunks
  std::size_t n = 0;
  for (std::size_t c0 = begin; c0 < end; c0 += k_chunk) {
    const std::size_t c1 = std::min(end, c0 + k_chunk);
    const auto r = filter_chunk(ep, p, c0, c1, buf.data());
    n += r.whole ? c1 - c0 : r.n;
  }
  return n;
}

}  // namespace

bool zone_skip(const epoch::block& b, const predicates& p) {
  if (b.begin == b.end) return true;
  const auto& z = b.zone;
  if (p.has_asn && (p.asn < z.asn_min || p.asn > z.asn_max)) return true;
  if (p.has_metro && !z.metro_present(p.metro)) return true;
  if (p.has_cls && ((z.cls_mask >> p.cls) & 1u) == 0) return true;
  if (p.has_step && ((z.step_mask >> p.step) & 1u) == 0) return true;
  if (p.has_rtt &&
      (!z.any_measured_rtt || p.rtt_hi < z.rtt_min_ms || p.rtt_lo > z.rtt_max_ms))
    return true;
  return false;
}

std::size_t scan_range(const epoch& ep, std::size_t begin, std::size_t end,
                       const predicates& p, sel_vector& sel, std::size_t cap) {
  std::array<std::uint32_t, k_chunk> buf;  // reused across chunks
  std::size_t examined = 0;
  for (std::size_t c0 = begin; c0 < end && sel.size() < cap; c0 += k_chunk) {
    const std::size_t c1 = std::min(end, c0 + k_chunk);
    examined += c1 - c0;
    const auto r = filter_chunk(ep, p, c0, c1, buf.data());
    if (r.whole) {
      for (std::size_t i = c0; i < c1; ++i) sel.push_back(static_cast<std::uint32_t>(i));
    } else {
      sel.insert(sel.end(), buf.data(), buf.data() + r.n);
    }
  }
  return examined;
}

namespace {

/// The ASN permutation run for `p.asn`, restricted to the at_ixp()
/// block when one is set: [lo, hi) of row indices, ascending (i.e.
/// canonical order).  Empty when the block is absent from the epoch.
std::pair<const std::uint32_t*, const std::uint32_t*> asn_run(const epoch& ep,
                                                              const predicates& p) {
  const auto& perm = ep.asn_perm();
  const auto* asn = ep.asn_col().data();
  auto lo = std::lower_bound(
      perm.begin(), perm.end(), p.asn,
      [&](std::uint32_t r, std::uint32_t v) { return asn[r] < v; });
  auto hi = std::upper_bound(
      lo, perm.end(), p.asn,
      [&](std::uint32_t v, std::uint32_t r) { return v < asn[r]; });
  if (p.has_ixp) {
    const auto* b = ep.block_of(p.ixp);
    if (!b) return {nullptr, nullptr};
    // The run is ascending by row index; restrict it to the block's
    // row range with two more binary searches.
    lo = std::lower_bound(lo, hi, static_cast<std::uint32_t>(b->begin));
    hi = std::lower_bound(lo, hi, static_cast<std::uint32_t>(b->end));
  }
  return {lo == hi ? nullptr : &*lo, lo == hi ? nullptr : &*lo + (hi - lo)};
}

}  // namespace

sel_vector collect(const epoch& ep, const predicates& p, std::size_t cap, stats* st) {
  sel_vector sel;
  if (ep.rows() == 0 || cap == 0) return sel;

  // member() point lookup: the ASN permutation index narrows the
  // candidate set to one contiguous run, already in canonical order.
  if (p.has_asn) {
    const auto [lo, hi] = asn_run(ep, p);
    sel.assign(lo, hi);
    const auto candidates = sel.size();
    sel.resize(apply_rest(ep, p, sel.data(), sel.size()));
    if (st) {
      st->rows_scanned += candidates;
      st->rows_skipped += ep.rows() - candidates;
    }
    return sel;
  }

  // Block-scan path.  Accounting invariant (member path above included):
  // rows_scanned + rows_skipped == ep.rows() per execution — whatever a
  // predicate loop did not touch (zone-map pruned, outside the
  // at_ixp() block, or past an early-exit cap) counts as skipped.
  std::size_t scanned = 0;
  const auto scan_block = [&](const epoch::block& b) {
    if (zone_skip(b, p)) {
      if (st) ++st->blocks_skipped;
      return;
    }
    scanned += scan_range(ep, b.begin, b.end, p, sel, cap);
  };

  if (p.has_ixp) {
    if (const auto* b = ep.block_of(p.ixp)) scan_block(*b);
  } else {
    for (const auto& b : ep.blocks()) {
      scan_block(b);
      if (sel.size() >= cap) break;
    }
  }
  if (st) {
    st->rows_scanned += scanned;
    st->rows_skipped += ep.rows() - scanned;
  }
  return sel;
}

std::size_t count_matches(const epoch& ep, const predicates& p, stats* st) {
  if (ep.rows() == 0) return 0;
  std::array<std::uint32_t, k_chunk> buf;  // reused across chunks

  if (p.has_asn) {
    const auto [lo, hi] = asn_run(ep, p);
    const auto candidates = static_cast<std::size_t>(hi - lo);
    std::size_t n = 0;
    for (const auto* c0 = lo; c0 != hi;) {
      const auto m = std::min<std::size_t>(k_chunk, static_cast<std::size_t>(hi - c0));
      std::copy(c0, c0 + m, buf.data());
      n += apply_rest(ep, p, buf.data(), m);
      c0 += m;
    }
    if (st) {
      st->rows_scanned += candidates;
      st->rows_skipped += ep.rows() - candidates;
    }
    return n;
  }

  std::size_t n = 0;
  std::size_t scanned = 0;
  const auto count_block = [&](const epoch::block& b) {
    if (zone_skip(b, p)) {
      if (st) ++st->blocks_skipped;
      return;
    }
    scanned += b.end - b.begin;
    n += count_range(ep, p, b.begin, b.end);
  };
  if (p.has_ixp) {
    if (const auto* b = ep.block_of(p.ixp)) count_block(*b);
  } else {
    for (const auto& b : ep.blocks()) count_block(b);
  }
  if (st) {
    st->rows_scanned += scanned;
    st->rows_skipped += ep.rows() - scanned;
  }
  return n;
}

namespace {

/// Shard-local group-by state: one dense counter per interned ref for
/// the dictionary dimensions, a hash only for raw ASN values.  Partials
/// merge by addition (worker order is irrelevant), so the fused
/// parallel scan and the serial group_over share accumulate + emit and
/// can never drift apart.
struct group_acc {
  std::vector<std::size_t> dense;
  std::unordered_map<std::uint32_t, std::size_t> hash;
};

group_acc make_acc(const catalog& cat, group_dim dim) {
  group_acc a;
  switch (dim) {
    case group_dim::ixp: a.dense.assign(cat.ixps().size(), 0); break;
    case group_dim::asn: break;
    case group_dim::metro:
      // One dense slot per interned metro plus a trailing slot for
      // unmapped rows.
      a.dense.assign(cat.metros().size() + 1, 0);
      break;
    case group_dim::cls: a.dense.assign(infer::k_n_peering_classes, 0); break;
    case group_dim::step: a.dense.assign(infer::k_n_method_steps, 0); break;
  }
  return a;
}

/// Accumulates the selected rows `idx[0..n)` into `a`.
void accumulate_sel(group_acc& a, const epoch& ep, group_dim dim,
                    const std::uint32_t* idx, std::size_t n) {
  switch (dim) {
    case group_dim::ixp: {
      const auto* col = ep.ixp_col().data();
      for (std::size_t k = 0; k < n; ++k) ++a.dense[col[idx[k]]];
      break;
    }
    case group_dim::asn: {
      const auto* col = ep.asn_col().data();
      for (std::size_t k = 0; k < n; ++k) ++a.hash[col[idx[k]]];
      break;
    }
    case group_dim::metro: {
      const auto unmapped = a.dense.size() - 1;
      const auto* col = ep.metro_col().data();
      for (std::size_t k = 0; k < n; ++k) {
        const auto m = col[idx[k]];
        ++a.dense[m == k_no_metro ? unmapped : m];
      }
      break;
    }
    case group_dim::cls: {
      const auto* col = ep.cls_col().data();
      for (std::size_t k = 0; k < n; ++k) ++a.dense[col[idx[k]]];
      break;
    }
    case group_dim::step: {
      const auto* col = ep.step_col().data();
      for (std::size_t k = 0; k < n; ++k) ++a.dense[col[idx[k]]];
      break;
    }
  }
}

/// Accumulates the whole row range [c0, c1) (an all-matching chunk).
void accumulate_range(group_acc& a, const epoch& ep, group_dim dim,
                      std::size_t c0, std::size_t c1) {
  switch (dim) {
    case group_dim::ixp: {
      const auto* col = ep.ixp_col().data();
      for (std::size_t i = c0; i < c1; ++i) ++a.dense[col[i]];
      break;
    }
    case group_dim::asn: {
      const auto* col = ep.asn_col().data();
      for (std::size_t i = c0; i < c1; ++i) ++a.hash[col[i]];
      break;
    }
    case group_dim::metro: {
      const auto unmapped = a.dense.size() - 1;
      const auto* col = ep.metro_col().data();
      for (std::size_t i = c0; i < c1; ++i) {
        const auto m = col[i];
        ++a.dense[m == k_no_metro ? unmapped : m];
      }
      break;
    }
    case group_dim::cls: {
      const auto* col = ep.cls_col().data();
      for (std::size_t i = c0; i < c1; ++i) ++a.dense[col[i]];
      break;
    }
    case group_dim::step: {
      const auto* col = ep.step_col().data();
      for (std::size_t i = c0; i < c1; ++i) ++a.dense[col[i]];
      break;
    }
  }
}

/// Materializes display keys for the non-empty buckets and merges key
/// collisions — the output-shaping half every engine shares.
std::vector<group_count> emit_groups(const catalog& cat, const group_acc& acc,
                                     group_dim dim) {
  std::vector<group_count> out;

  const auto emit_dense = [&](auto&& key_of) {
    for (std::size_t r = 0; r < acc.dense.size(); ++r)
      if (acc.dense[r] != 0) out.push_back({key_of(r), acc.dense[r]});
  };

  switch (dim) {
    case group_dim::ixp:
      emit_dense([&](std::size_t r) { return cat.ixps()[r].name; });
      break;
    case group_dim::asn:
      out.reserve(acc.hash.size());
      // opwat-lint: allow(unordered-iter): buckets are sorted by key (and
      // key-collisions merged) below before anything is returned
      for (const auto& [v, n] : acc.hash)
        out.push_back({net::to_string(net::asn{v}), n});
      break;
    case group_dim::metro: {
      const auto unmapped = acc.dense.size() - 1;
      // The empty-name guard mirrors the reference's metro_name()
      // fallback; interning never produces an empty metro name, so it
      // is structural parity, not a reachable branch.
      emit_dense([&](std::size_t r) {
        if (r == unmapped || cat.metros()[r].empty()) return std::string{"(unmapped)"};
        return cat.metros()[r];
      });
      break;
    }
    case group_dim::cls:
      emit_dense([](std::size_t r) {
        return std::string{to_string(static_cast<infer::peering_class>(r))};
      });
      break;
    case group_dim::step:
      emit_dense([](std::size_t r) {
        return std::string{to_string(static_cast<infer::method_step>(r))};
      });
      break;
  }

  // Merge buckets whose display keys collide (e.g. two dictionary
  // entries sharing a name) so the result matches a string-keyed
  // accumulator exactly.
  std::sort(out.begin(), out.end(),
            [](const group_count& a, const group_count& b) { return a.key < b.key; });
  std::size_t w = 0;
  for (std::size_t r = 0; r < out.size(); ++r) {
    if (w > 0 && out[w - 1].key == out[r].key) {
      out[w - 1].count += out[r].count;
    } else {
      if (w != r) out[w] = std::move(out[r]);
      ++w;
    }
  }
  out.resize(w);
  return out;
}

}  // namespace

std::vector<group_count> group_over(const catalog& cat, const epoch& ep,
                                    const sel_vector& sel, group_dim dim) {
  auto acc = make_acc(cat, dim);
  accumulate_sel(acc, ep, dim, sel.data(), sel.size());
  return emit_groups(cat, acc, dim);
}

void sort_selection_by_rtt(const epoch& ep, sel_vector& sel, bool ascending,
                           std::size_t offset, std::optional<std::size_t> limit) {
  const auto* rtt = ep.rtt_col().data();
  const auto cmp = [&](std::uint32_t a, std::uint32_t b) {
    const double ra = rtt[a], rb = rtt[b];
    const bool ma = !std::isnan(ra), mb = !std::isnan(rb);
    if (ma != mb) return ma;  // unmeasured rows last either way
    if (!ma) return a < b;    // both unmeasured: canonical order
    if (ra != rb) return ascending ? ra < rb : ra > rb;
    return a < b;  // equal RTTs: canonical order
  };
  if (limit) {
    const std::size_t want = std::min(sel.size(), offset + *limit);
    if (want == 0) {
      sel.clear();
      return;
    }
    if (want < sel.size()) {
      // Partition the `want` page-visible rows to the front, then sort
      // only those — rows past the page are never compared again.
      std::nth_element(sel.begin(), sel.begin() + static_cast<std::ptrdiff_t>(want),
                       sel.end(), cmp);
      sel.resize(want);
    }
  }
  std::sort(sel.begin(), sel.end(), cmp);
}

// --- morsel-parallel scans ---------------------------------------------------

morsel_scheduler::morsel_scheduler(std::size_t threads)
    : pool_(threads == 0 ? 1 : threads) {}

morsel_scheduler& morsel_scheduler::shared(std::size_t threads) {
  struct registry {
    util::annotated_mutex m;
    std::map<std::size_t, std::unique_ptr<morsel_scheduler>> by_threads
        OPWAT_GUARDED_BY(m);
  };
  static registry reg;
  if (threads == 0) threads = 1;
  const util::mutex_lock lock{reg.m};
  auto& slot = reg.by_threads[threads];
  if (!slot) slot = std::make_unique<morsel_scheduler>(threads);
  return *slot;
}

void morsel_scheduler::run(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  // One scan at a time: the pool has a single job slot, so concurrent
  // scans on a shared scheduler queue here instead of corrupting it.
  const util::mutex_lock lock{m_};
  pool_.parallel_for_indexed(n, body);
}

namespace {

/// One contiguous row range of a surviving (not zone-pruned) block.
struct morsel {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Zone-map pruning happens at plan time — exactly the blocks the
/// serial engine skips — so the scan/skip accounting stays identical to
/// serial regardless of the thread count.
std::vector<morsel> plan_morsels(const epoch& ep, const predicates& p,
                                 std::size_t morsel_rows, stats* st) {
  const auto step = morsel_rows == 0 ? std::size_t{1} : morsel_rows;
  std::vector<morsel> out;
  const auto add_block = [&](const epoch::block& b) {
    if (zone_skip(b, p)) {
      if (st) ++st->blocks_skipped;
      return;
    }
    for (std::size_t c0 = b.begin; c0 < b.end; c0 += step)
      out.push_back({c0, std::min(b.end, c0 + step)});
  };
  if (p.has_ixp) {
    if (const auto* b = ep.block_of(p.ixp)) add_block(*b);
  } else {
    for (const auto& b : ep.blocks()) add_block(b);
  }
  return out;
}

/// Ticket -> morsel mapping.  Canonical (identity) by default; a
/// nonzero seed yields a deterministic shuffle, which the parity tests
/// use to prove the merge does not depend on processing order.
std::vector<std::size_t> processing_order(std::size_t n, std::uint64_t seed) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (seed != 0) {
    std::mt19937_64 rng{seed};
    std::shuffle(order.begin(), order.end(), rng);
  }
  return order;
}

std::size_t planned_rows(const std::vector<morsel>& morsels) {
  std::size_t n = 0;
  for (const auto& m : morsels) n += m.end - m.begin;
  return n;
}

void account(stats* st, const epoch& ep, const std::vector<morsel>& morsels) {
  if (!st) return;
  const auto scanned = planned_rows(morsels);
  st->rows_scanned += scanned;
  st->rows_skipped += ep.rows() - scanned;
  st->morsels += morsels.size();
}

}  // namespace

sel_vector collect_parallel(const epoch& ep, const predicates& p,
                            const parallel_spec& ps, stats* st) {
  if (ps.sched == nullptr || p.has_asn) return collect(ep, p, k_no_cap, st);
  sel_vector sel;
  if (ep.rows() == 0) return sel;
  const auto morsels = plan_morsels(ep, p, ps.morsel_rows, st);
  std::vector<sel_vector> slots(morsels.size());
  const auto order = processing_order(morsels.size(), ps.shuffle_seed);
  ps.sched->run(morsels.size(), [&](std::size_t, std::size_t t) {
    const auto& m = morsels[order[t]];
    scan_range(ep, m.begin, m.end, p, slots[order[t]]);
  });
  std::size_t total = 0;
  for (const auto& s : slots) total += s.size();
  sel.reserve(total);
  // Merge in canonical morsel order: each slot holds its morsel's
  // matches ascending, and morsels tile the blocks in canonical order,
  // so the concatenation is byte-identical to the serial collect.
  for (const auto& s : slots) sel.insert(sel.end(), s.begin(), s.end());
  account(st, ep, morsels);
  return sel;
}

std::size_t count_matches_parallel(const epoch& ep, const predicates& p,
                                   const parallel_spec& ps, stats* st) {
  if (ps.sched == nullptr || p.has_asn) return count_matches(ep, p, st);
  if (ep.rows() == 0) return 0;
  const auto morsels = plan_morsels(ep, p, ps.morsel_rows, st);
  std::vector<std::size_t> counts(morsels.size(), 0);
  const auto order = processing_order(morsels.size(), ps.shuffle_seed);
  ps.sched->run(morsels.size(), [&](std::size_t, std::size_t t) {
    const auto& m = morsels[order[t]];
    counts[order[t]] = count_range(ep, p, m.begin, m.end);
  });
  std::size_t n = 0;
  for (const auto c : counts) n += c;
  account(st, ep, morsels);
  return n;
}

std::vector<group_count> group_over_parallel(const catalog& cat, const epoch& ep,
                                             const predicates& p,
                                             const parallel_spec& ps,
                                             group_dim dim, stats* st) {
  if (ps.sched == nullptr || p.has_asn) {
    const auto sel = collect(ep, p, k_no_cap, st);
    return group_over(cat, ep, sel, dim);
  }
  auto merged = make_acc(cat, dim);
  if (ep.rows() == 0) return emit_groups(cat, merged, dim);
  const auto morsels = plan_morsels(ep, p, ps.morsel_rows, st);
  std::vector<group_acc> accs(ps.sched->threads());
  for (auto& a : accs) a = make_acc(cat, dim);
  const auto order = processing_order(morsels.size(), ps.shuffle_seed);
  // Fused scan + group: no selection vector is materialized — each
  // worker folds its morsels' matches straight into its private
  // accumulator.
  ps.sched->run(morsels.size(), [&](std::size_t worker, std::size_t t) {
    const auto& m = morsels[order[t]];
    std::array<std::uint32_t, k_chunk> buf;
    auto& a = accs[worker];
    for (std::size_t c0 = m.begin; c0 < m.end; c0 += k_chunk) {
      const std::size_t c1 = std::min(m.end, c0 + k_chunk);
      const auto r = filter_chunk(ep, p, c0, c1, buf.data());
      if (r.whole) {
        accumulate_range(a, ep, dim, c0, c1);
      } else {
        accumulate_sel(a, ep, dim, buf.data(), r.n);
      }
    }
  });
  // Partials merge by addition, so worker order cannot matter;
  // emit_groups then sorts buckets by key exactly like the serial path.
  for (const auto& a : accs) {
    for (std::size_t r = 0; r < merged.dense.size(); ++r)
      merged.dense[r] += a.dense[r];
    // opwat-lint: allow(unordered-iter): addition is order-independent and
    // emit_groups sorts every bucket by key before returning
    for (const auto& [v, n] : a.hash) merged.hash[v] += n;
  }
  account(st, ep, morsels);
  return emit_groups(cat, merged, dim);
}

}  // namespace opwat::serve::exec
