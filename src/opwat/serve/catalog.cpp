#include "opwat/serve/catalog.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "opwat/util/contracts.hpp"

namespace opwat::serve {

// --- epoch -------------------------------------------------------------------

const epoch::block* epoch::block_of(ixp_ref x) const noexcept {
  const auto it = block_index_.find(x);
  return it == block_index_.end() ? nullptr : &blocks_[it->second];
}

std::size_t epoch::count(ixp_ref x, infer::peering_class c) const noexcept {
  const auto* b = block_of(x);
  return b ? b->by_class[static_cast<std::size_t>(c)] : 0;
}

std::size_t epoch::contribution(ixp_ref x, infer::method_step s) const noexcept {
  const auto* b = block_of(x);
  return b ? b->by_step[static_cast<std::size_t>(s)] : 0;
}

iface_row epoch::row(std::size_t i) const {
  iface_row r;
  r.ip = net::ipv4_addr{ip_[i]};
  r.ixp = world_ixp(ixp_[i]);
  r.asn = net::asn{asn_[i]};
  r.cls = static_cast<infer::peering_class>(cls_[i]);
  r.step = static_cast<infer::method_step>(step_[i]);
  r.rtt_min_ms = rtt_[i];
  r.feasible_facilities = feasible_[i];
  r.port_gbps = port_[i];
  r.metro = metro_[i];
  return r;
}

world::ixp_id epoch::world_ixp(ixp_ref x) const noexcept {
  const auto it = world_ids_.find(x);
  return it == world_ids_.end() ? world::k_invalid : it->second;
}

void epoch::rebuild_indexes(const std::vector<ixp_entry>& dict) {
  block_index_.clear();
  world_ids_.clear();
  totals_ = {};
  for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
    auto& b = blocks_[bi];
    b.by_class = {};
    b.by_step = {};
    b.zone = {};
    auto& z = b.zone;
    metro_ref metro_hi = 0;
    bool any_metro = false;
    for (std::size_t i = b.begin; i < b.end; ++i) {
      const auto cls = static_cast<std::size_t>(cls_[i]);
      ++b.by_class[cls];
      if (static_cast<infer::peering_class>(cls_[i]) != infer::peering_class::unknown) {
        ++b.by_step[static_cast<std::size_t>(step_[i])];
        z.step_mask |= static_cast<std::uint8_t>(1u << step_[i]);
      }
      ++totals_[cls];
      z.cls_mask |= static_cast<std::uint8_t>(1u << cls_[i]);
      z.asn_min = std::min(z.asn_min, asn_[i]);
      z.asn_max = std::max(z.asn_max, asn_[i]);
      const double r = rtt_[i];
      if (!std::isnan(r)) {
        z.any_measured_rtt = true;
        z.rtt_min_ms = std::min(z.rtt_min_ms, r);
        z.rtt_max_ms = std::max(z.rtt_max_ms, r);
      }
      const auto m = metro_[i];
      if (m == k_no_metro) {
        z.any_unmapped_metro = true;
      } else {
        metro_hi = std::max(metro_hi, m);
        any_metro = true;
      }
    }
    if (any_metro) {
      z.metro_bits.assign((metro_hi >> 6) + 1, 0);
      for (std::size_t i = b.begin; i < b.end; ++i)
        if (metro_[i] != k_no_metro)
          z.metro_bits[metro_[i] >> 6] |= std::uint64_t{1} << (metro_[i] & 63u);
    }
    block_index_.emplace(b.ixp, bi);
    world_ids_.emplace(b.ixp, dict[b.ixp].id);
  }

  // Permutation indexes.  Tie-breaking on the canonical index makes
  // both total orders, so one ASN's run (and one IP's run inside a
  // block) is itself in canonical order.
  asn_perm_.resize(ip_.size());
  std::iota(asn_perm_.begin(), asn_perm_.end(), std::uint32_t{0});
  std::sort(asn_perm_.begin(), asn_perm_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return asn_[a] != asn_[b] ? asn_[a] < asn_[b] : a < b;
            });
  ip_perm_.resize(ip_.size());
  std::iota(ip_perm_.begin(), ip_perm_.end(), std::uint32_t{0});
  for (const auto& b : blocks_)
    std::sort(ip_perm_.begin() + static_cast<std::ptrdiff_t>(b.begin),
              ip_perm_.begin() + static_cast<std::ptrdiff_t>(b.end),
              [this](std::uint32_t a, std::uint32_t c) {
                return ip_[a] != ip_[c] ? ip_[a] < ip_[c] : a < c;
              });
}

// --- catalog -----------------------------------------------------------------

metro_ref catalog::intern_metro(std::string_view name) {
  if (name.empty()) return k_no_metro;
  if (const auto it = metro_by_name_.find(name); it != metro_by_name_.end())
    return it->second;
  const auto ref = static_cast<metro_ref>(metros_.size());
  metros_.emplace_back(name);
  metro_by_name_.emplace(metros_.back(), ref);
  return ref;
}

ixp_ref catalog::intern_ixp(const world::world& w, world::ixp_id id) {
  if (const auto it = ixp_by_id_.find(id); it != ixp_by_id_.end()) return it->second;
  const auto& x = w.ixps[id];
  ixp_entry e;
  e.id = id;
  e.name = x.name;
  e.peering_lan = x.peering_lan.to_string();
  e.min_physical_capacity_gbps = x.min_physical_capacity_gbps;
  if (x.home_city < w.cities.size()) e.metro = intern_metro(w.cities[x.home_city].name);
  const auto ref = static_cast<ixp_ref>(ixps_.size());
  ixps_.push_back(std::move(e));
  ixp_by_id_.emplace(id, ref);
  ixp_by_name_.emplace(ixps_.back().name, ref);
  return ref;
}

ixp_ref catalog::intern_loaded_ixp(const ixp_entry& e, std::string_view metro) {
  if (const auto it = ixp_by_id_.find(e.id); it != ixp_by_id_.end()) return it->second;
  const auto ref = static_cast<ixp_ref>(ixps_.size());
  ixps_.push_back(e);
  ixps_.back().metro = intern_metro(metro);
  ixp_by_id_.emplace(e.id, ref);
  ixp_by_name_.emplace(ixps_.back().name, ref);
  return ref;
}

epoch_id catalog::ingest(const world::world& w, const db::merged_view& view,
                         const infer::pipeline_result& pr, std::string_view label) {
  if (by_label_.find(label) != by_label_.end())
    throw catalog_error("catalog: epoch label already ingested: " +
                        std::string{label});

  epoch ep;
  ep.label_ = label;

  // Member-metro labels are per-ASN; resolve each ASN once per ingest.
  std::unordered_map<std::uint32_t, metro_ref> asn_metro;
  const auto metro_of_asn = [&](net::asn a) {
    if (const auto it = asn_metro.find(a.value); it != asn_metro.end()) return it->second;
    metro_ref m = k_no_metro;
    if (const auto as = w.as_by_asn(a)) {
      const auto city = w.ases[*as].hq_city;
      if (city < w.cities.size()) m = intern_metro(w.cities[city].name);
    }
    asn_metro.emplace(a.value, m);
    return m;
  };

  for (const auto x : pr.scope) {
    const auto ref = intern_ixp(w, x);
    epoch::block b;
    b.ixp = ref;
    b.begin = ep.ip_.size();
    for (const auto f : view.facilities_of_ixp(x)) {
      facility_entry fe;
      fe.id = f;
      if (f < w.facilities.size()) {
        fe.name = w.facilities[f].name;
        fe.has_name = true;
      }
      if (const auto loc = view.facility_location(f)) {
        fe.has_location = true;
        fe.lat_deg = loc->lat_deg;
        fe.lon_deg = loc->lon_deg;
      }
      b.facilities.push_back(std::move(fe));
    }
    for (const auto& e : view.interfaces_of_ixp(x)) {
      const infer::iface_key key{x, e.ip};
      const auto* inf = pr.inferences.find(key);
      const auto cls = inf ? inf->cls : infer::peering_class::unknown;
      const auto step = inf ? inf->step : infer::method_step::none;
      ep.ip_.push_back(e.ip.value());
      ep.ixp_.push_back(ref);
      ep.asn_.push_back(e.asn.value);
      ep.metro_.push_back(metro_of_asn(e.asn));
      ep.cls_.push_back(static_cast<std::uint8_t>(cls));
      ep.step_.push_back(static_cast<std::uint8_t>(step));
      ep.rtt_.push_back(pr.inferences.rtt_min_ms(key));
      ep.feasible_.push_back(pr.inferences.feasible_facilities(key));
      const auto port = view.port_capacity(e.asn, x);
      ep.port_.push_back(port ? *port : std::numeric_limits<double>::quiet_NaN());
    }
    b.end = ep.ip_.size();
    ep.blocks_.push_back(std::move(b));
  }

  // One derivation path for every index (counters, zone maps,
  // permutations), shared with the snapshot loader and merge_from.
  ep.rebuild_indexes(ixps_);

  ep.ixp_watermark_ = static_cast<std::uint32_t>(ixps_.size());
  ep.metro_watermark_ = static_cast<std::uint32_t>(metros_.size());

  const auto id = static_cast<epoch_id>(epochs_.size());
  by_label_.emplace(std::string{label}, id);
  epochs_.push_back(std::move(ep));
#if OPWAT_CONTRACTS_ACTIVE
  // Debug / -DOPWAT_AUDIT=ON builds verify every freshly built index
  // against the columns before the epoch becomes queryable.
  epochs_.back().audit(*this);
#endif
  return id;
}

std::optional<epoch_id> catalog::find(std::string_view label) const {
  const auto it = by_label_.find(label);
  if (it == by_label_.end()) return std::nullopt;
  return it->second;
}

const epoch& catalog::of(std::string_view label) const {
  const auto id = find(label);
  if (!id) throw std::invalid_argument("catalog: unknown epoch label: " + std::string{label});
  return epochs_[*id];
}

std::vector<std::string> catalog::labels() const {
  std::vector<std::string> out;
  out.reserve(epochs_.size());
  for (const auto& e : epochs_) out.push_back(e.label_);
  return out;
}

std::optional<ixp_ref> catalog::ixp_by_name(std::string_view name) const {
  const auto it = ixp_by_name_.find(name);
  if (it == ixp_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<ixp_ref> catalog::ixp_by_id(world::ixp_id id) const {
  const auto it = ixp_by_id_.find(id);
  if (it == ixp_by_id_.end()) return std::nullopt;
  return it->second;
}

std::optional<metro_ref> catalog::metro_by_name(std::string_view name) const {
  const auto it = metro_by_name_.find(name);
  if (it == metro_by_name_.end()) return std::nullopt;
  return it->second;
}

std::string_view catalog::metro_name(metro_ref m) const noexcept {
  return m < metros_.size() ? std::string_view{metros_[m]} : std::string_view{};
}

}  // namespace opwat::serve
