// Codec implementations for the .opwatc v2 columns section.  Every
// decoder path is bounds-checked and validates the canonical-form rules
// documented in compress.hpp, so a chunk that passed its section CRC but
// carries inconsistent encoded data still raises the typed store_error
// instead of producing wrong columns.
#include "opwat/serve/compress.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "opwat/serve/store.hpp"

namespace opwat::serve::compress {

std::string_view to_string(column_codec c) noexcept {
  switch (c) {
    case column_codec::raw: return "raw";
    case column_codec::for_bitpack: return "for_bitpack";
    case column_codec::rle8: return "rle8";
    case column_codec::rle64: return "rle64";
  }
  return "?";
}

namespace {

[[noreturn]] void fail(const std::string& ctx, const std::string& msg) {
  throw store_error(store_errc::corrupt, ctx + ": " + msg);
}

void put_u8(std::string& b, std::uint8_t v) { b.push_back(static_cast<char>(v)); }

void put_u32(std::string& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32_at(std::string_view b, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= std::uint32_t{static_cast<unsigned char>(b[off + i])} << (8 * i);
  return v;
}

std::uint64_t get_u64_at(std::string_view b, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= std::uint64_t{static_cast<unsigned char>(b[off + i])} << (8 * i);
  return v;
}

/// Longest run an RLE record can carry; a longer run is split, and the
/// canonical "adjacent runs differ" rule is relaxed exactly at splits.
constexpr std::uint32_t k_max_run = std::numeric_limits<std::uint32_t>::max();

template <typename T, typename PutValue>
void rle_encode(std::string& out, const T* v, std::size_t n, PutValue put_value) {
  std::string runs;
  std::uint64_t nruns = 0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    while (j < n && v[j] == v[i]) ++j;
    for (std::size_t len = j - i; len > 0;) {
      const auto piece = static_cast<std::uint32_t>(std::min<std::size_t>(len, k_max_run));
      put_value(runs, v[i]);
      put_u32(runs, piece);
      ++nruns;
      len -= piece;
    }
    i = j;
  }
  put_u64(out, n);
  put_u64(out, nruns);
  out += runs;
}

rle_chunk_view rle_parse_chunk(std::string_view bytes, std::size_t& off,
                               std::size_t expect, unsigned value_bytes,
                               const std::string& ctx) {
  if (bytes.size() - off < 16) fail(ctx, "RLE chunk header ends early");
  rle_chunk_view c;
  c.value_bytes = value_bytes;
  const auto count = get_u64_at(bytes, off);
  const auto nruns = get_u64_at(bytes, off + 8);
  off += 16;
  if (count != expect)
    fail(ctx, "RLE chunk row count does not match its block");
  const std::size_t rec = value_bytes + 4;
  if (nruns > (bytes.size() - off) / rec)
    fail(ctx, "RLE runs extend past the encoded column");
  c.count = static_cast<std::size_t>(count);
  c.nruns = static_cast<std::size_t>(nruns);
  c.runs = bytes.substr(off, c.nruns * rec);
  off += c.nruns * rec;

  // Canonical-form walk: positive lengths summing to count, adjacent
  // runs differing in value except straight after a split-length run.
  std::uint64_t sum = 0;
  std::uint64_t prev_value = 0;
  std::uint32_t prev_len = 0;
  for (std::size_t r = 0; r < c.nruns; ++r) {
    const std::size_t at = r * rec;
    const std::uint64_t value = value_bytes == 1
        ? static_cast<unsigned char>(c.runs[at])
        : get_u64_at(c.runs, at);
    const auto len = get_u32_at(c.runs, at + value_bytes);
    if (len == 0) fail(ctx, "RLE run with zero length");
    if (r > 0 && value == prev_value && prev_len != k_max_run)
      fail(ctx, "adjacent RLE runs with equal values");
    sum += len;
    if (sum > count) fail(ctx, "RLE run lengths exceed the row count");
    prev_value = value;
    prev_len = len;
  }
  if (sum != count) fail(ctx, "RLE run lengths do not sum to the row count");
  return c;
}

}  // namespace

// --- frame-of-reference / bit-packing ---------------------------------------

void for_encode_chunk(std::string& out, const std::uint32_t* v, std::size_t n) {
  std::uint32_t mn = n > 0 ? v[0] : 0;
  std::uint32_t mx = mn;
  for (std::size_t i = 1; i < n; ++i) {
    mn = std::min(mn, v[i]);
    mx = std::max(mx, v[i]);
  }
  const unsigned width = static_cast<unsigned>(std::bit_width(mx - mn));
  put_u64(out, n);
  put_u32(out, mn);
  put_u32(out, mx);
  put_u8(out, static_cast<std::uint8_t>(width));
  std::uint64_t acc = 0;
  unsigned nbits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc |= std::uint64_t{v[i] - mn} << nbits;
    nbits += width;
    while (nbits >= 8) {
      out.push_back(static_cast<char>(acc & 0xFF));
      acc >>= 8;
      nbits -= 8;
    }
  }
  if (nbits > 0) out.push_back(static_cast<char>(acc & 0xFF));
}

for_chunk_view for_parse_chunk(std::string_view bytes, std::size_t& off,
                               std::size_t expect, const std::string& ctx) {
  if (bytes.size() - off < 17) fail(ctx, "FOR chunk header ends early");
  for_chunk_view c;
  const auto count = get_u64_at(bytes, off);
  c.min = get_u32_at(bytes, off + 8);
  c.max = get_u32_at(bytes, off + 12);
  c.width = static_cast<unsigned char>(bytes[off + 16]);
  off += 17;
  if (count != expect)
    fail(ctx, "FOR chunk row count does not match its block");
  c.count = static_cast<std::size_t>(count);
  if (c.min > c.max) fail(ctx, "FOR chunk min exceeds max");
  if (c.width > 32 ||
      c.width != static_cast<unsigned>(std::bit_width(c.max - c.min)))
    fail(ctx, "invalid bit width for FOR chunk range");
  const std::size_t nbytes = (c.count * c.width + 7) / 8;
  if (bytes.size() - off < nbytes)
    fail(ctx, "FOR packed bits extend past the encoded column");
  c.bits = bytes.substr(off, nbytes);
  off += nbytes;
  // Trailing bits beyond count*width must be zero (canonical form).
  if (const unsigned spare = static_cast<unsigned>(nbytes * 8 - c.count * c.width);
      spare > 0 && nbytes > 0) {
    const auto last = static_cast<unsigned char>(c.bits[nbytes - 1]);
    if ((last >> (8 - spare)) != 0) fail(ctx, "nonzero trailing bits in FOR chunk");
  }
  // The header's min/max must be achieved and every delta must stay in
  // range — otherwise re-encoding would not reproduce these bytes.
  if (c.count > 0) {
    std::uint32_t seen_min = for_value_at(c, 0);
    std::uint32_t seen_max = seen_min;
    for (std::size_t i = 1; i < c.count; ++i) {
      const auto val = for_value_at(c, i);
      seen_min = std::min(seen_min, val);
      seen_max = std::max(seen_max, val);
    }
    if (seen_min != c.min || seen_max != c.max)
      fail(ctx, "FOR chunk min/max not achieved by its values");
  } else if (c.min != 0 || c.max != 0) {
    fail(ctx, "empty FOR chunk with nonzero range");
  }
  return c;
}

std::uint32_t for_value_at(const for_chunk_view& c, std::size_t i) noexcept {
  if (c.width == 0) return c.min;
  const std::size_t bit = i * c.width;
  const std::size_t byte = bit >> 3;
  const unsigned shift = static_cast<unsigned>(bit & 7);
  std::uint64_t window = 0;
  const std::size_t nb = std::min<std::size_t>(8, c.bits.size() - byte);
  for (std::size_t k = 0; k < nb; ++k)
    window |= std::uint64_t{static_cast<unsigned char>(c.bits[byte + k])} << (8 * k);
  const std::uint64_t mask = (std::uint64_t{1} << c.width) - 1;
  return c.min + static_cast<std::uint32_t>((window >> shift) & mask);
}

std::size_t for_count_in_range(const for_chunk_view& c, std::uint32_t lo,
                               std::uint32_t hi) noexcept {
  if (lo > hi || c.count == 0) return 0;
  if (c.max < lo || c.min > hi) return 0;       // zone miss: header only
  if (lo <= c.min && c.max <= hi) return c.count;  // zone hit: header only
  std::size_t n = 0;
  for (std::size_t i = 0; i < c.count; ++i) {
    const auto v = for_value_at(c, i);
    if (v >= lo && v <= hi) ++n;
  }
  return n;
}

void for_decode_chunk(std::string_view bytes, std::size_t& off,
                      std::size_t expect, std::vector<std::uint32_t>& out,
                      const std::string& ctx) {
  const auto c = for_parse_chunk(bytes, off, expect, ctx);
  for (std::size_t i = 0; i < c.count; ++i) out.push_back(for_value_at(c, i));
}

// --- run-length encodings ---------------------------------------------------

void rle8_encode_chunk(std::string& out, const std::uint8_t* v, std::size_t n) {
  rle_encode(out, v, n, [](std::string& b, std::uint8_t value) { put_u8(b, value); });
}

void rle64_encode_chunk(std::string& out, const std::uint64_t* v, std::size_t n) {
  rle_encode(out, v, n, [](std::string& b, std::uint64_t value) { put_u64(b, value); });
}

rle_chunk_view rle8_parse_chunk(std::string_view bytes, std::size_t& off,
                                std::size_t expect, const std::string& ctx) {
  return rle_parse_chunk(bytes, off, expect, 1, ctx);
}

rle_chunk_view rle64_parse_chunk(std::string_view bytes, std::size_t& off,
                                 std::size_t expect, const std::string& ctx) {
  return rle_parse_chunk(bytes, off, expect, 8, ctx);
}

std::size_t rle_count_eq(const rle_chunk_view& c, std::uint64_t value) noexcept {
  const std::size_t rec = c.value_bytes + 4;
  std::size_t n = 0;
  for (std::size_t r = 0; r < c.nruns; ++r) {
    const std::size_t at = r * rec;
    const std::uint64_t run_value = c.value_bytes == 1
        ? static_cast<unsigned char>(c.runs[at])
        : get_u64_at(c.runs, at);
    if (run_value == value) n += get_u32_at(c.runs, at + c.value_bytes);
  }
  return n;
}

void rle8_decode_chunk(std::string_view bytes, std::size_t& off,
                       std::size_t expect, std::vector<std::uint8_t>& out,
                       const std::string& ctx) {
  const auto c = rle8_parse_chunk(bytes, off, expect, ctx);
  for (std::size_t r = 0; r < c.nruns; ++r) {
    const std::size_t at = r * 5;
    const auto value = static_cast<std::uint8_t>(c.runs[at]);
    const auto len = get_u32_at(c.runs, at + 1);
    out.insert(out.end(), len, value);
  }
}

void rle64_decode_chunk(std::string_view bytes, std::size_t& off,
                        std::size_t expect, std::vector<std::uint64_t>& out,
                        const std::string& ctx) {
  const auto c = rle64_parse_chunk(bytes, off, expect, ctx);
  for (std::size_t r = 0; r < c.nruns; ++r) {
    const std::size_t at = r * 12;
    const auto value = get_u64_at(c.runs, at);
    const auto len = get_u32_at(c.runs, at + 8);
    out.insert(out.end(), len, value);
  }
}

}  // namespace opwat::serve::compress
