// Lightweight column codecs for the .opwatc v2 columns section.
//
// Three encodings, all chunked per catalog block so a block can be
// decoded (or predicate-evaluated) independently:
//
//   for_bitpack  frame-of-reference + bit-packing for u32 columns
//                (ip, ixp, asn, metro, feasible).  Chunk wire format:
//                  count u64 | min u32 | max u32 | width u8 |
//                  ceil(count*width/8) packed bytes, LSB-first
//                width MUST equal bit_width(max - min) (canonical), the
//                achieved min/max MUST match the header, and unused
//                trailing bits MUST be zero — so encoding is a pure
//                function of the values and re-saving a loaded file is
//                byte-stable.
//   rle8         run-length encoding for u8 columns (class, step):
//                  count u64 | nruns u64 | (value u8, len u32)*
//   rle64        run-length encoding over raw 64-bit patterns for f64
//                columns (rtt, port) — runs compare bit patterns, so
//                NaN runs compress and round-trip exactly:
//                  count u64 | nruns u64 | (value u64, len u32)*
//                Both RLE forms are canonical: no zero-length run,
//                adjacent runs differ in value, lengths sum to count.
//
// Decoders validate every canonical rule and throw the store's typed
// store_error(store_errc::corrupt) on violation; the section CRC has
// already been checked by the caller, so a malformed chunk here means
// the encoded data itself is inconsistent.
//
// The *_view kernels evaluate predicates on an encoded chunk without
// materializing it: a FOR chunk answers range counts straight from its
// header when [min, max] is entirely inside or outside the probe range,
// and an RLE chunk answers equality counts by summing run lengths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace opwat::serve::compress {

/// Codec ids as stored in the v2 columns section (one byte per column).
enum class column_codec : std::uint8_t {
  raw = 0,          ///< the column's v1 byte layout, unchanged
  for_bitpack = 1,  ///< u32 columns
  rle8 = 2,         ///< u8 columns
  rle64 = 3,        ///< f64 columns (bit patterns)
};

[[nodiscard]] std::string_view to_string(column_codec c) noexcept;

// --- encoders (append one chunk to `out`) -----------------------------------

void for_encode_chunk(std::string& out, const std::uint32_t* v, std::size_t n);
void rle8_encode_chunk(std::string& out, const std::uint8_t* v, std::size_t n);
void rle64_encode_chunk(std::string& out, const std::uint64_t* v, std::size_t n);

// --- decoded-on-demand views + predicate kernels ----------------------------

/// One FOR chunk, header parsed and validated, bits still packed.
struct for_chunk_view {
  std::size_t count = 0;
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  unsigned width = 0;       ///< bits per delta, == bit_width(max - min)
  std::string_view bits;    ///< the packed payload
};

/// Parses (and fully validates) the FOR chunk starting at bytes[off],
/// advancing off past it.  `expect` is the row count of the catalog
/// block this chunk encodes; a disagreeing count is corruption.  Throws
/// store_error(store_errc::corrupt) with `ctx` in the message on any
/// violation: short header, invalid bit width (width !=
/// bit_width(max - min), or > 32), min > max, payload size mismatch,
/// nonzero trailing bits, or header min/max not achieved by the data.
[[nodiscard]] for_chunk_view for_parse_chunk(std::string_view bytes,
                                             std::size_t& off,
                                             std::size_t expect,
                                             const std::string& ctx);

/// Random access into a parsed FOR chunk (no materialization).
[[nodiscard]] std::uint32_t for_value_at(const for_chunk_view& c,
                                         std::size_t i) noexcept;

/// Values in [lo, hi] — answered from the chunk header alone when the
/// chunk's [min, max] lies entirely inside or outside the probe range.
[[nodiscard]] std::size_t for_count_in_range(const for_chunk_view& c,
                                             std::uint32_t lo,
                                             std::uint32_t hi) noexcept;

/// One RLE chunk (8- or 64-bit values), runs validated but not expanded.
struct rle_chunk_view {
  std::size_t count = 0;
  std::size_t nruns = 0;
  std::string_view runs;  ///< nruns × (value, len u32) records
  unsigned value_bytes = 0;  ///< 1 (rle8) or 8 (rle64)
};

[[nodiscard]] rle_chunk_view rle8_parse_chunk(std::string_view bytes,
                                              std::size_t& off,
                                              std::size_t expect,
                                              const std::string& ctx);
[[nodiscard]] rle_chunk_view rle64_parse_chunk(std::string_view bytes,
                                               std::size_t& off,
                                               std::size_t expect,
                                               const std::string& ctx);

/// Rows equal to `value` — sums matching run lengths, never expands.
[[nodiscard]] std::size_t rle_count_eq(const rle_chunk_view& c,
                                       std::uint64_t value) noexcept;

// --- full-chunk decode (append `expect` values to `out`) --------------------

void for_decode_chunk(std::string_view bytes, std::size_t& off,
                      std::size_t expect, std::vector<std::uint32_t>& out,
                      const std::string& ctx);
void rle8_decode_chunk(std::string_view bytes, std::size_t& off,
                       std::size_t expect, std::vector<std::uint8_t>& out,
                       const std::string& ctx);
void rle64_decode_chunk(std::string_view bytes, std::size_t& off,
                        std::size_t expect, std::vector<std::uint64_t>& out,
                        const std::string& ctx);

}  // namespace opwat::serve::compress
