// Snapshot-isolated concurrent access to a serve catalog — the step
// from "one catalog per process" toward serving many portal users while
// new months are being ingested.
//
// Model: read-copy-update over an immutable catalog.
//
//   - Readers call snapshot() and get a `std::shared_ptr<const
//     catalog>`: a fully-published, immutable catalog they can run the
//     fluent queries (opwat/serve/query.hpp) on for as long as they
//     hold the pointer, with no torn state ever — a snapshot either
//     contains an epoch completely or not at all.  Acquiring the
//     snapshot is one brief shared-lock pointer copy; every query after
//     that runs on the immutable snapshot with no locks at all.
//     Immutability also makes morsel-parallel scans (query::threads(n))
//     safe: every scan worker reads the same frozen columns, so the
//     parallel kernels need no synchronization beyond the merge.
//   - The writer (ingest / merge_from / load / clear) copies the
//     current catalog, mutates the private copy OUTSIDE any lock
//     readers touch, and publishes it by swapping the shared pointer
//     under a short exclusive lock.  Writers serialize among
//     themselves; readers are never blocked for the duration of an
//     ingest, only for the pointer swap.
//
// (An std::atomic<std::shared_ptr> publish was the first cut, but
// libstdc++ 12's _Sp_atomic trips TSan's race detector; the shared-
// mutex pointer copy is equivalent here and sanitizer-clean — epochs
// arrive monthly, queries arrive constantly, so the snapshot-acquire
// cost is noise.  bench_catalog_io measures it.)
//
// Cost model: publishing copies the whole catalog (columns are flat
// vectors, so this is a handful of memcpys), which is the right trade
// for the portal workload.
//
// The vectorized query engine's auxiliary structures — zone maps and
// the ASN/IP permutation indexes (opwat/serve/exec.hpp) — are built by
// epoch::rebuild_indexes before an epoch becomes reachable and are
// immutable afterwards, so they ride the published snapshot exactly
// like the columns: readers consult them lock-free while a writer
// prepares the next catalog copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "opwat/serve/catalog.hpp"
#include "opwat/util/annotations.hpp"

namespace opwat::serve {

class shared_catalog {
 public:
  /// Starts with an empty catalog (snapshot() never returns null).
  shared_catalog();
  /// Starts from an already-populated catalog.
  explicit shared_catalog(catalog initial);

  /// The current fully-published snapshot: immutable, and stays valid
  /// for the life of the pointer, unaffected by concurrent ingests.
  [[nodiscard]] std::shared_ptr<const catalog> snapshot() const;

  /// Ingests one pipeline run as a new epoch and publishes the result
  /// (see catalog::ingest).  Throws catalog_error on duplicate labels —
  /// in that case nothing is published.
  epoch_id ingest(const world::world& w, const db::merged_view& view,
                  const infer::pipeline_result& pr, std::string_view label);

  /// Replaces the published catalog with the snapshot file at `path`.
  void load(const std::string& path);
  /// load() with an explicit recovery policy (catalog::load overload).
  /// Under `recover`, a damaged file publishes its longest valid epoch
  /// prefix — the quarantined tail is visible in the returned report so
  /// the server can mark itself degraded.  An UNRECOVERABLE file
  /// (wrong magic/version) throws store_error instead of publishing an
  /// empty catalog: a reload must never silently evict the snapshot
  /// readers already depend on.
  recovery_report load(const std::string& path, recovery_policy policy);
  /// Merges the snapshot file at `path` into the published catalog
  /// (see catalog::merge_from) and publishes the result.
  void merge_from(const std::string& path);
  /// Saves the current snapshot to `path` (readers are not blocked;
  /// concurrent ingests published during the save are not included).
  void save(const std::string& path) const;
  /// Publishes an empty catalog.
  void clear();

  /// Epoch count of the current snapshot (a convenience; like every
  /// read it can be stale by the time the caller acts on it — grab a
  /// snapshot() for consistent multi-step reads).
  [[nodiscard]] std::size_t epoch_count() const;

  /// Monotone publish counter: 0 at construction, incremented by every
  /// successful publish (ingest / load / merge_from / clear).  A cache
  /// keyed on query bytes can tag entries with the version they were
  /// computed against and treat any mismatch as stale — the portal
  /// server's result cache does exactly that.
  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// Registers the hook invoked after every publish with the new
  /// version number (replacing any previous hook; empty to unregister).
  /// The hook runs on the publishing thread AFTER the swap — a
  /// snapshot() taken inside it sees the new catalog — and outside the
  /// pointer lock, so it may take snapshots and locks freely but must
  /// not publish (that would self-deadlock on the writer mutex).
  void set_publish_hook(std::function<void(std::uint64_t)> hook);

 private:
  /// Copy-mutate-publish: runs `fn(catalog&)` on a private copy of the
  /// current catalog under the writer lock, then swaps it in.
  template <typename Fn>
  auto update(Fn&& fn);
  /// Swaps the pointer and runs the publish hook; every caller must be
  /// inside a writer_ critical section (clang-enforced).
  void publish(std::shared_ptr<const catalog> next) OPWAT_REQUIRES(writer_);

  /// Guards ONLY the pointer swap/copy.
  mutable util::annotated_shared_mutex ptr_lock_;
  std::shared_ptr<const catalog> current_ OPWAT_GUARDED_BY(ptr_lock_);
  /// Serializes copy-mutate-publish cycles.
  util::annotated_mutex writer_;
  std::atomic<std::uint64_t> version_{0};
  /// Publish hook; read/written only under writer_ (every publish path
  /// holds it), so no separate synchronization is needed.
  std::function<void(std::uint64_t)> on_publish_ OPWAT_GUARDED_BY(writer_);
};

}  // namespace opwat::serve
