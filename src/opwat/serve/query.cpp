#include "opwat/serve/query.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>

namespace opwat::serve {

// --- builder -----------------------------------------------------------------

query& query::epoch(std::string_view label) {
  epoch_label_ = std::string{label};
  return *this;
}

query& query::at_ixp(std::string_view name) {
  const auto ref = cat_->ixp_by_name(name);
  if (!ref) throw std::invalid_argument("query: unknown IXP name: " + std::string{name});
  ixp_ = *ref;
  return *this;
}

query& query::at_ixp(world::ixp_id id) {
  const auto ref = cat_->ixp_by_id(id);
  if (!ref)
    throw std::invalid_argument("query: IXP id not in catalog: " + std::to_string(id));
  ixp_ = *ref;
  return *this;
}

query& query::member(net::asn a) {
  asn_ = a.value;
  return *this;
}

query& query::metro(std::string_view name) {
  const auto ref = cat_->metro_by_name(name);
  if (!ref) throw std::invalid_argument("query: unknown metro: " + std::string{name});
  metro_ = *ref;
  return *this;
}

query& query::cls(infer::peering_class c) {
  cls_ = c;
  return *this;
}

query& query::step(infer::method_step s) {
  step_ = s;
  return *this;
}

query& query::rtt_between(double lo_ms, double hi_ms) {
  // NaN bounds would mean different things to the two engines' range
  // checks; reject them at the builder like every other typo guard.
  if (std::isnan(lo_ms) || std::isnan(hi_ms))
    throw std::invalid_argument("query: rtt_between bounds must not be NaN");
  rtt_range_ = {lo_ms, hi_ms};
  return *this;
}

query& query::by_ixp() { group_ = group_key::ixp; return *this; }
query& query::by_asn() { group_ = group_key::asn; return *this; }
query& query::by_metro() { group_ = group_key::metro; return *this; }
query& query::by_class() { group_ = group_key::cls; return *this; }
query& query::by_step() { group_ = group_key::step; return *this; }

query& query::sort_by_rtt(bool ascending) {
  sort_rtt_ = true;
  sort_asc_ = ascending;
  return *this;
}

query& query::top(std::size_t k) {
  limit_ = k;
  return *this;
}

query& query::page(std::size_t offset, std::size_t limit) {
  offset_ = offset;
  limit_ = limit;
  return *this;
}

query& query::engine(exec::mode m) {
  mode_ = m;
  return *this;
}

query& query::collect_stats(exec::stats* st) {
  stats_ = st;
  return *this;
}

query& query::threads(std::size_t n) {
  threads_ = n;
  return *this;
}

query& query::scheduler(exec::morsel_scheduler* s) {
  sched_ = s;
  return *this;
}

query& query::morsel_rows(std::size_t n) {
  morsel_rows_ = n;
  return *this;
}

query& query::shuffle_morsels(std::uint64_t seed) {
  shuffle_seed_ = seed;
  return *this;
}

// --- shared execution helpers ------------------------------------------------

namespace {

/// Final group ordering + pagination, shared by both engines:
/// (count desc, key asc), then the offset/limit window.  Keys are
/// unique by the time this runs, so plain sort is deterministic.
std::vector<group_count> finalize_groups(std::vector<group_count> out,
                                         std::size_t offset,
                                         const std::optional<std::size_t>& limit) {
  std::stable_sort(out.begin(), out.end(),
                   [](const group_count& a, const group_count& b) {
                     if (a.count != b.count) return a.count > b.count;
                     return a.key < b.key;
                   });
  if (offset || limit) {
    const auto begin = std::min(offset, out.size());
    const auto end = limit ? std::min(out.size(), begin + *limit) : out.size();
    out = {out.begin() + static_cast<std::ptrdiff_t>(begin),
           out.begin() + static_cast<std::ptrdiff_t>(end)};
  }
  return out;
}

/// Equal-width ECDF binning over the gathered measured RTTs, shared by
/// both engines (identical bytes by construction).
std::vector<ecdf_point> ecdf_from(std::vector<double> rtts, std::size_t buckets) {
  std::vector<ecdf_point> out;
  if (rtts.empty()) return out;
  std::sort(rtts.begin(), rtts.end());
  const double lo = rtts.front(), hi = rtts.back();
  const double width = (hi - lo) / static_cast<double>(buckets);
  out.reserve(buckets);
  for (std::size_t b = 1; b <= buckets; ++b) {
    const double upper = b == buckets ? hi : lo + width * static_cast<double>(b);
    const auto cum = static_cast<std::size_t>(
        std::upper_bound(rtts.begin(), rtts.end(), upper) - rtts.begin());
    out.push_back({upper, cum,
                   static_cast<double>(cum) / static_cast<double>(rtts.size())});
  }
  out.back().cum_count = rtts.size();  // closed upper edge
  out.back().fraction = 1.0;
  return out;
}

}  // namespace

const serve::epoch& query::resolve_epoch() const {
  if (epoch_label_) return cat_->of(*epoch_label_);
  if (cat_->epoch_count() == 0) throw std::logic_error("query: catalog has no epochs");
  return cat_->at(static_cast<epoch_id>(cat_->epoch_count() - 1));
}

exec::parallel_spec query::parallel_plan() const {
  exec::parallel_spec ps;
  if (sched_ != nullptr) {
    ps.sched = sched_;
  } else if (threads_ > 0) {
    ps.sched = &exec::morsel_scheduler::shared(threads_);
  }
  ps.morsel_rows = morsel_rows_;
  ps.shuffle_seed = shuffle_seed_;
  return ps;
}

exec::predicates query::predicates() const {
  exec::predicates p;
  if (ixp_) {
    p.has_ixp = true;
    p.ixp = *ixp_;
  }
  if (asn_) {
    p.has_asn = true;
    p.asn = *asn_;
  }
  if (metro_) {
    p.has_metro = true;
    p.metro = *metro_;
  }
  if (cls_) {
    p.has_cls = true;
    p.cls = static_cast<std::uint8_t>(*cls_);
  }
  if (step_) {
    p.has_step = true;
    p.step = static_cast<std::uint8_t>(*step_);
  }
  if (rtt_range_) {
    p.has_rtt = true;
    p.rtt_lo = rtt_range_->first;
    p.rtt_hi = rtt_range_->second;
  }
  return p;
}

// --- reference engine (retained row-at-a-time evaluator) ---------------------

bool query::matches(const serve::epoch& ep, std::size_t i) const {
  if (ixp_ && ep.ixp_col()[i] != *ixp_) return false;
  if (asn_ && ep.asn_col()[i] != *asn_) return false;
  if (metro_ && ep.metro_col()[i] != *metro_) return false;
  if (cls_ && ep.cls_col()[i] != static_cast<std::uint8_t>(*cls_)) return false;
  if (step_) {
    if (ep.cls_col()[i] == static_cast<std::uint8_t>(infer::peering_class::unknown))
      return false;
    if (ep.step_col()[i] != static_cast<std::uint8_t>(*step_)) return false;
  }
  if (rtt_range_) {
    const double rtt = ep.rtt_col()[i];
    if (std::isnan(rtt) || rtt < rtt_range_->first || rtt > rtt_range_->second)
      return false;
  }
  return true;
}

template <typename Fn>
void query::for_each_match(const serve::epoch& ep, Fn&& fn) const {
  std::size_t begin = 0, end = ep.rows();
  if (ixp_) {
    const auto* b = ep.block_of(*ixp_);
    if (!b) return;
    begin = b->begin;
    end = b->end;
  }
  for (std::size_t i = begin; i < end; ++i)
    if (matches(ep, i)) fn(i);
}

std::vector<std::size_t> query::matching(const serve::epoch& ep) const {
  std::vector<std::size_t> idx;
  for_each_match(ep, [&](std::size_t i) { idx.push_back(i); });
  if (sort_rtt_) {
    const auto& rtt = ep.rtt_col();
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      const double ra = rtt[a], rb = rtt[b];
      const bool ma = !std::isnan(ra), mb = !std::isnan(rb);
      if (ma != mb) return ma;  // unmeasured rows last either way
      if (!ma) return false;    // both unmeasured: keep canonical order
      if (ra != rb) return sort_asc_ ? ra < rb : ra > rb;
      return false;  // equal RTTs: keep canonical order
    });
  }
  return idx;
}

std::vector<group_count> query::reference_groups(const serve::epoch& ep) const {
  const auto key_of = [&](std::size_t i) -> std::string {
    switch (group_) {
      case group_key::ixp: return cat_->ixps()[ep.ixp_col()[i]].name;
      case group_key::asn: return net::to_string(net::asn{ep.asn_col()[i]});
      case group_key::metro: {
        const auto m = ep.metro_col()[i];
        const auto name = cat_->metro_name(m);
        return name.empty() ? std::string{"(unmapped)"} : std::string{name};
      }
      case group_key::cls:
        return std::string{
            to_string(static_cast<infer::peering_class>(ep.cls_col()[i]))};
      case group_key::step:
        return std::string{
            to_string(static_cast<infer::method_step>(ep.step_col()[i]))};
      case group_key::none: break;
    }
    return {};
  };

  std::map<std::string, std::size_t> acc;
  for_each_match(ep, [&](std::size_t i) { ++acc[key_of(i)]; });

  std::vector<group_count> out;
  out.reserve(acc.size());
  for (auto& [key, n] : acc) out.push_back({key, n});
  return out;
}

// --- execution ---------------------------------------------------------------

std::size_t query::count() const {
  const auto& ep = resolve_epoch();

  if (mode_ == exec::mode::reference) {
    std::size_t n = 0;
    for_each_match(ep, [&](std::size_t) { ++n; });
    return n;
  }

  // Index fast paths: the shapes the per-block counters answer exactly.
  const bool scan_filters = asn_ || metro_ || rtt_range_;
  if (!scan_filters && !step_ && cls_) {
    if (ixp_) return ep.count(*ixp_, *cls_);
    return ep.total(*cls_);
  }
  if (!scan_filters && step_ && !cls_) {
    if (ixp_) return ep.contribution(*ixp_, *step_);
    std::size_t n = 0;
    for (const auto& b : ep.blocks()) n += b.by_step[static_cast<std::size_t>(*step_)];
    return n;
  }
  if (!scan_filters && !step_ && !cls_) {
    if (ixp_) {
      const auto* b = ep.block_of(*ixp_);
      return b ? b->end - b->begin : 0;
    }
    return ep.rows();
  }

  if (const auto ps = parallel_plan(); ps.sched != nullptr)
    return exec::count_matches_parallel(ep, predicates(), ps, stats_);
  return exec::count_matches(ep, predicates(), stats_);
}

std::vector<iface_row> query::rows() const {
  const auto& ep = resolve_epoch();
  std::vector<iface_row> out;

  const auto window = [&](const auto& idx) {
    if (offset_ >= idx.size()) return;
    const auto end = limit_ ? std::min(idx.size(), offset_ + *limit_) : idx.size();
    out.reserve(end - offset_);
    for (std::size_t i = offset_; i < end; ++i) out.push_back(ep.row(idx[i]));
  };

  if (mode_ == exec::mode::reference) {
    window(matching(ep));
    return out;
  }

  // Without an RTT sort the result is a canonical-order prefix window,
  // so collection short-circuits once offset + limit matches are found.
  // That early exit is inherently sequential, so capped collections
  // keep the serial path; uncapped ones fan out over morsels.
  const auto cap =
      !sort_rtt_ && limit_ ? offset_ + *limit_ : exec::k_no_cap;
  const auto ps = parallel_plan();
  auto sel = cap == exec::k_no_cap && ps.sched != nullptr
                 ? exec::collect_parallel(ep, predicates(), ps, stats_)
                 : exec::collect(ep, predicates(), cap, stats_);
  if (sort_rtt_) exec::sort_selection_by_rtt(ep, sel, sort_asc_, offset_, limit_);
  window(sel);
  return out;
}

std::vector<group_count> query::group_counts() const {
  if (group_ == group_key::none)
    throw std::logic_error("query: group_counts() requires by_ixp/by_asn/by_metro/"
                           "by_class/by_step");
  const auto& ep = resolve_epoch();

  if (mode_ == exec::mode::reference)
    return finalize_groups(reference_groups(ep), offset_, limit_);

  const auto dim = [&] {
    switch (group_) {
      case group_key::ixp: return exec::group_dim::ixp;
      case group_key::asn: return exec::group_dim::asn;
      case group_key::metro: return exec::group_dim::metro;
      case group_key::cls: return exec::group_dim::cls;
      case group_key::step: break;
      case group_key::none: break;
    }
    return exec::group_dim::step;
  }();
  if (const auto ps = parallel_plan(); ps.sched != nullptr)
    return finalize_groups(
        exec::group_over_parallel(*cat_, ep, predicates(), ps, dim, stats_),
        offset_, limit_);
  const auto sel = exec::collect(ep, predicates(), exec::k_no_cap, stats_);
  return finalize_groups(exec::group_over(*cat_, ep, sel, dim), offset_, limit_);
}

std::vector<ecdf_point> query::rtt_ecdf(std::size_t buckets) const {
  if (buckets == 0) throw std::invalid_argument("query: rtt_ecdf needs >= 1 bucket");
  const auto& ep = resolve_epoch();
  std::vector<double> rtts;
  if (mode_ == exec::mode::reference) {
    for_each_match(ep, [&](std::size_t i) {
      const double r = ep.rtt_col()[i];
      if (!std::isnan(r)) rtts.push_back(r);
    });
  } else {
    const auto ps = parallel_plan();
    const auto sel = ps.sched != nullptr
                         ? exec::collect_parallel(ep, predicates(), ps, stats_)
                         : exec::collect(ep, predicates(), exec::k_no_cap, stats_);
    const auto* rtt = ep.rtt_col().data();
    rtts.reserve(sel.size());
    for (const auto i : sel)
      if (!std::isnan(rtt[i])) rtts.push_back(rtt[i]);
  }
  return ecdf_from(std::move(rtts), buckets);
}

// --- diff --------------------------------------------------------------------

namespace {

void count_appeared(epoch_diff& d) {
  d.appeared_by_class = {};
  for (const auto& r : d.appeared)
    ++d.appeared_by_class[static_cast<std::size_t>(r.cls)];
}

}  // namespace

epoch_diff diff_epochs(const catalog& cat, std::string_view from, std::string_view to) {
  const auto& a = cat.of(from);
  const auto& b = cat.of(to);

  epoch_diff d;
  d.from = a.label();
  d.to = b.label();

  // Sort-merge join per block pair over the (IP, canonical)-sorted
  // permutation indexes.  Refs are interned per world IXP id at the
  // catalog level, so matching blocks by ixp_ref IS matching by
  // (world IXP id); within an equal-IP run the first permuted entry is
  // the lowest canonical row, reproducing the ordered-map semantics of
  // the reference implementation for duplicate keys.
  constexpr auto k_nomatch = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> b_match(b.rows(), k_nomatch);
  std::vector<std::uint8_t> a_present(a.rows(), 0);
  const auto& pa = a.ip_perm();
  const auto& pb = b.ip_perm();
  for (const auto& bb : b.blocks()) {
    const auto* ab = a.block_of(bb.ixp);
    if (!ab) continue;
    std::size_t i = ab->begin, j = bb.begin;
    while (i < ab->end && j < bb.end) {
      const auto va = a.ip_col()[pa[i]];
      const auto vb = b.ip_col()[pb[j]];
      if (va < vb) {
        ++i;
      } else if (vb < va) {
        ++j;
      } else {
        const auto a_first = pa[i];
        for (; i < ab->end && a.ip_col()[pa[i]] == va; ++i) a_present[pa[i]] = 1;
        for (; j < bb.end && b.ip_col()[pb[j]] == va; ++j) b_match[pb[j]] = a_first;
      }
    }
  }

  // Canonical-order output passes (appeared / reclassified follow `to`,
  // disappeared follows `from` — identical to the reference).
  for (const auto& bb : b.blocks()) {
    for (std::size_t r = bb.begin; r < bb.end; ++r) {
      const auto m = b_match[r];
      if (m == k_nomatch) {
        d.appeared.push_back(b.row(r));
      } else if (a.cls_col()[m] != b.cls_col()[r]) {
        d.reclassified.push_back({a.row(m), b.row(r)});
      }
    }
  }
  for (const auto& aa : a.blocks())
    for (std::size_t r = aa.begin; r < aa.end; ++r)
      if (!a_present[r]) d.disappeared.push_back(a.row(r));

  count_appeared(d);
  return d;
}

epoch_diff diff_epochs_reference(const catalog& cat, std::string_view from,
                                 std::string_view to) {
  const auto& a = cat.of(from);
  const auto& b = cat.of(to);

  // (world ixp id, ip) -> canonical row index for `from` (the diff needs
  // the row to compare classes); a plain membership set suffices for `to`.
  std::map<infer::iface_key, std::size_t> ia;
  for (const auto& blk : a.blocks()) {
    const auto ixp = a.world_ixp(blk.ixp);
    for (std::size_t i = blk.begin; i < blk.end; ++i)
      ia.emplace(infer::iface_key{ixp, net::ipv4_addr{a.ip_col()[i]}}, i);
  }
  std::set<infer::iface_key> ib;
  for (const auto& blk : b.blocks()) {
    const auto ixp = b.world_ixp(blk.ixp);
    for (std::size_t i = blk.begin; i < blk.end; ++i)
      ib.emplace(ixp, net::ipv4_addr{b.ip_col()[i]});
  }

  epoch_diff d;
  d.from = a.label();
  d.to = b.label();
  for (const auto& blk : b.blocks()) {
    const auto ixp = b.world_ixp(blk.ixp);
    for (std::size_t i = blk.begin; i < blk.end; ++i) {
      const auto it = ia.find({ixp, net::ipv4_addr{b.ip_col()[i]}});
      if (it == ia.end()) {
        d.appeared.push_back(b.row(i));
      } else if (a.cls_col()[it->second] != b.cls_col()[i]) {
        d.reclassified.push_back({a.row(it->second), b.row(i)});
      }
    }
  }
  for (const auto& blk : a.blocks()) {
    const auto ixp = a.world_ixp(blk.ixp);
    for (std::size_t i = blk.begin; i < blk.end; ++i)
      if (!ib.contains({ixp, net::ipv4_addr{a.ip_col()[i]}}))
        d.disappeared.push_back(a.row(i));
  }
  count_appeared(d);
  return d;
}

}  // namespace opwat::serve
