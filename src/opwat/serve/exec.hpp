// Vectorized, batch-at-a-time execution kernels for the serve query
// layer — the hot path behind the §9 portal's interactive lookups.
//
// Design (opwat/serve/query.hpp is the fluent surface on top):
//
//   - Predicates evaluate over column chunks into reusable *selection
//     vectors*: one tight, branch-predictable loop per active filter
//     instead of a fused branchy per-row `matches()` with optional
//     checks.  The first active filter fills the chunk buffer from the
//     row range; each further filter compacts it in place.
//   - *Zone maps* (epoch::block::zone_map: min/max RTT and ASN, class
//     and evidence-step masks, a metro bitset) prove for many blocks
//     that no row can match, so `rtt_between`/`member`/`metro`/`cls`
//     scans skip whole IXP blocks without touching rows.
//   - `member()` point lookups binary-search the per-epoch ASN
//     permutation index: one ASN's rows are a contiguous run that is
//     already in canonical order, so the lookup is sub-linear.
//   - Group-by accumulates into dense integer-keyed arrays over
//     interned refs (ixp/metro/class/step) and a hash on raw ASN
//     values; display strings materialize per output GROUP, never per
//     row.
//   - `sort_by_rtt().top(k)` / `page()` run std::nth_element-based
//     partial selection with the canonical-order tie-break — rows that
//     cannot appear in the requested page are never sorted.
//
// Everything here is a free function over an immutable epoch — no
// state, no locks — so the kernels run unsynchronized on
// shared_catalog snapshots.  Every result is byte-identical to the
// row-at-a-time reference evaluator retained in query.cpp
// (exec::mode::reference); tests/test_exec.cpp pins the equivalence
// across randomized filter x group-by x sort x pagination specs.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "opwat/serve/catalog.hpp"

namespace opwat::serve {

/// One group-by bucket: display key and row count.
struct group_count {
  std::string key;
  std::size_t count = 0;
};

namespace exec {

/// Execution engine selector for serve::query: the vectorized kernels
/// (default) or the retained row-at-a-time reference evaluator — the
/// byte-identity oracle the tests and the CI bench gate compare
/// against.
enum class mode : std::uint8_t { vectorized, reference };

/// Scan accounting for one query execution (bench_catalog_query
/// reports rows scanned vs rows skipped per query shape).  Invariant:
/// rows_scanned + rows_skipped == the epoch's row count per execution
/// — every row a predicate loop did not touch (zone-map pruned,
/// outside the permutation-index run or the at_ixp() block, past an
/// early-exit cap) counts as skipped, whichever index pruned it.
struct stats {
  /// Rows a predicate loop actually touched.
  std::size_t rows_scanned = 0;
  /// Rows pruned without being touched.
  std::size_t rows_skipped = 0;
  /// Whole blocks pruned by zone maps specifically.
  std::size_t blocks_skipped = 0;
};

/// Decoded filter set — plain flags and values, no optionals on the
/// hot path.
struct predicates {
  bool has_ixp = false;
  ixp_ref ixp = 0;
  bool has_asn = false;
  std::uint32_t asn = 0;
  bool has_metro = false;
  metro_ref metro = 0;
  bool has_cls = false;
  std::uint8_t cls = 0;
  bool has_step = false;
  std::uint8_t step = 0;
  bool has_rtt = false;
  double rtt_lo = 0.0;
  double rtt_hi = 0.0;
};

/// Selection vector: matching row indices in canonical (ascending)
/// order.
using sel_vector = std::vector<std::uint32_t>;

inline constexpr std::size_t k_no_cap = std::numeric_limits<std::size_t>::max();

/// True when the block's zone map proves no row in it can match `p`.
[[nodiscard]] bool zone_skip(const epoch::block& b, const predicates& p);

/// Appends the matching rows of [begin, end) to `sel`, chunk at a
/// time.  Stops after the first chunk that brings `sel` to `cap`
/// selected rows (the collected prefix is exact).  Returns the number
/// of rows examined.
std::size_t scan_range(const epoch& ep, std::size_t begin, std::size_t end,
                       const predicates& p, sel_vector& sel,
                       std::size_t cap = k_no_cap);

/// Full selection for `p` over `ep`: zone-map block skipping, the ASN
/// permutation fast path for member() lookups, and early exit once
/// `cap` rows are collected (the prefix is exact canonical order).
[[nodiscard]] sel_vector collect(const epoch& ep, const predicates& p,
                                 std::size_t cap = k_no_cap, stats* st = nullptr);

/// collect(...).size() without materializing a selection vector — the
/// count() hot path runs the same kernels over the reused chunk buffer
/// and accumulates only the integer.
[[nodiscard]] std::size_t count_matches(const epoch& ep, const predicates& p,
                                        stats* st = nullptr);

/// Group-by dimension (mirrors query's by_*() calls).
enum class group_dim : std::uint8_t { ixp, asn, metro, cls, step };

/// Accumulates the selection into dense integer-keyed counters (hash
/// only for raw ASNs) and materializes display keys for the non-empty
/// buckets.  Buckets with identical display keys are merged (two
/// dictionary entries can share a name).  The result is keyed and
/// summed but NOT in final order — the caller applies the
/// (count desc, key asc) ordering and pagination.
[[nodiscard]] std::vector<group_count> group_over(const catalog& cat, const epoch& ep,
                                                  const sel_vector& sel, group_dim dim);

/// Orders `sel` by (RTT, canonical index) with unmeasured rows last —
/// a strict total order, so partial selection reproduces the stable
/// sort exactly.  When offset+limit bounds the page below the
/// selection size, an nth_element partition drops every row that
/// cannot appear in the page before anything is sorted.
void sort_selection_by_rtt(const epoch& ep, sel_vector& sel, bool ascending,
                           std::size_t offset, std::optional<std::size_t> limit);

}  // namespace exec

}  // namespace opwat::serve
