// Vectorized, batch-at-a-time execution kernels for the serve query
// layer — the hot path behind the §9 portal's interactive lookups.
//
// Design (opwat/serve/query.hpp is the fluent surface on top):
//
//   - Predicates evaluate over column chunks into reusable *selection
//     vectors*: one tight, branch-predictable loop per active filter
//     instead of a fused branchy per-row `matches()` with optional
//     checks.  The first active filter fills the chunk buffer from the
//     row range; each further filter compacts it in place.
//   - *Zone maps* (epoch::block::zone_map: min/max RTT and ASN, class
//     and evidence-step masks, a metro bitset) prove for many blocks
//     that no row can match, so `rtt_between`/`member`/`metro`/`cls`
//     scans skip whole IXP blocks without touching rows.
//   - `member()` point lookups binary-search the per-epoch ASN
//     permutation index: one ASN's rows are a contiguous run that is
//     already in canonical order, so the lookup is sub-linear.
//   - Group-by accumulates into dense integer-keyed arrays over
//     interned refs (ixp/metro/class/step) and a hash on raw ASN
//     values; display strings materialize per output GROUP, never per
//     row.
//   - `sort_by_rtt().top(k)` / `page()` run std::nth_element-based
//     partial selection with the canonical-order tie-break — rows that
//     cannot appear in the requested page are never sorted.
//
// Everything here is a free function over an immutable epoch — no
// state, no locks — so the kernels run unsynchronized on
// shared_catalog snapshots.  Every result is byte-identical to the
// row-at-a-time reference evaluator retained in query.cpp
// (exec::mode::reference); tests/test_exec.cpp pins the equivalence
// across randomized filter x group-by x sort x pagination specs.
//
// Morsel parallelism (the PR 2 shard recipe, applied to reads): a scan
// over the surviving blocks is split into fixed-size row-range morsels
// handed to a `morsel_scheduler`'s thread pool.  Each worker evaluates
// the same predicate kernels over its morsels into shard-local state
// (a per-morsel selection slot, a per-morsel count, or a per-worker
// group accumulator), and the shards are merged in canonical morsel
// order — so the result is byte-identical to the serial engine for any
// thread count and any morsel processing order.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "opwat/serve/catalog.hpp"
#include "opwat/util/annotations.hpp"
#include "opwat/util/thread_pool.hpp"

namespace opwat::serve {

/// One group-by bucket: display key and row count.
struct group_count {
  std::string key;
  std::size_t count = 0;
};

namespace exec {

/// Execution engine selector for serve::query: the vectorized kernels
/// (default) or the retained row-at-a-time reference evaluator — the
/// byte-identity oracle the tests and the CI bench gate compare
/// against.
enum class mode : std::uint8_t { vectorized, reference };

/// Scan accounting for one query execution (bench_catalog_query
/// reports rows scanned vs rows skipped per query shape).  Invariant:
/// rows_scanned + rows_skipped == the epoch's row count per execution
/// — every row a predicate loop did not touch (zone-map pruned,
/// outside the permutation-index run or the at_ixp() block, past an
/// early-exit cap) counts as skipped, whichever index pruned it.
struct stats {
  /// Rows a predicate loop actually touched.
  std::size_t rows_scanned = 0;
  /// Rows pruned without being touched.
  std::size_t rows_skipped = 0;
  /// Whole blocks pruned by zone maps specifically.
  std::size_t blocks_skipped = 0;
  /// Morsels executed by parallel scans (0 for serial executions).
  std::size_t morsels = 0;
};

/// Decoded filter set — plain flags and values, no optionals on the
/// hot path.
struct predicates {
  bool has_ixp = false;
  ixp_ref ixp = 0;
  bool has_asn = false;
  std::uint32_t asn = 0;
  bool has_metro = false;
  metro_ref metro = 0;
  bool has_cls = false;
  std::uint8_t cls = 0;
  bool has_step = false;
  std::uint8_t step = 0;
  bool has_rtt = false;
  double rtt_lo = 0.0;
  double rtt_hi = 0.0;
};

/// Selection vector: matching row indices in canonical (ascending)
/// order.
using sel_vector = std::vector<std::uint32_t>;

inline constexpr std::size_t k_no_cap = std::numeric_limits<std::size_t>::max();

/// True when the block's zone map proves no row in it can match `p`.
[[nodiscard]] bool zone_skip(const epoch::block& b, const predicates& p);

/// Appends the matching rows of [begin, end) to `sel`, chunk at a
/// time.  Stops after the first chunk that brings `sel` to `cap`
/// selected rows (the collected prefix is exact).  Returns the number
/// of rows examined.
std::size_t scan_range(const epoch& ep, std::size_t begin, std::size_t end,
                       const predicates& p, sel_vector& sel,
                       std::size_t cap = k_no_cap);

/// Full selection for `p` over `ep`: zone-map block skipping, the ASN
/// permutation fast path for member() lookups, and early exit once
/// `cap` rows are collected (the prefix is exact canonical order).
[[nodiscard]] sel_vector collect(const epoch& ep, const predicates& p,
                                 std::size_t cap = k_no_cap, stats* st = nullptr);

/// collect(...).size() without materializing a selection vector — the
/// count() hot path runs the same kernels over the reused chunk buffer
/// and accumulates only the integer.
[[nodiscard]] std::size_t count_matches(const epoch& ep, const predicates& p,
                                        stats* st = nullptr);

/// Group-by dimension (mirrors query's by_*() calls).
enum class group_dim : std::uint8_t { ixp, asn, metro, cls, step };

/// Accumulates the selection into dense integer-keyed counters (hash
/// only for raw ASNs) and materializes display keys for the non-empty
/// buckets.  Buckets with identical display keys are merged (two
/// dictionary entries can share a name).  The result is keyed and
/// summed but NOT in final order — the caller applies the
/// (count desc, key asc) ordering and pagination.
[[nodiscard]] std::vector<group_count> group_over(const catalog& cat, const epoch& ep,
                                                  const sel_vector& sel, group_dim dim);

/// Orders `sel` by (RTT, canonical index) with unmeasured rows last —
/// a strict total order, so partial selection reproduces the stable
/// sort exactly.  When offset+limit bounds the page below the
/// selection size, an nth_element partition drops every row that
/// cannot appear in the page before anything is sorted.
void sort_selection_by_rtt(const epoch& ep, sel_vector& sel, bool ascending,
                           std::size_t offset, std::optional<std::size_t> limit);

// --- morsel-parallel scans ---------------------------------------------------

/// Owns the worker pool parallel scans run on.  One scheduler executes
/// one scan at a time (the pool has a single job slot); concurrent
/// callers serialize on the internal mutex, so a scheduler can be
/// shared — but the portal gives each of its workers a private one to
/// keep independent queries from queueing behind each other.
class morsel_scheduler {
 public:
  /// Starts `threads` workers (>= 1; 0 is clamped to 1).
  explicit morsel_scheduler(std::size_t threads);

  morsel_scheduler(const morsel_scheduler&) = delete;
  morsel_scheduler& operator=(const morsel_scheduler&) = delete;

  [[nodiscard]] std::size_t threads() const noexcept { return pool_.size(); }

  /// Process-wide scheduler per thread count, created on first use —
  /// what query::threads(n) resolves to, so ad-hoc callers do not spawn
  /// a pool per query.
  [[nodiscard]] static morsel_scheduler& shared(std::size_t threads);

  /// Runs body(worker, idx) for idx in [0, n) on the pool; `worker` is
  /// the stable id of the executing worker in [0, threads()).  Blocks
  /// until done; serializes whole scans against other callers.
  void run(std::size_t n,
           const std::function<void(std::size_t, std::size_t)>& body)
      OPWAT_EXCLUDES(m_);

 private:
  util::thread_pool pool_;
  util::annotated_mutex m_;
};

/// Default rows per morsel: big enough that scheduling overhead
/// disappears, small enough that a paper-scale epoch still splits into
/// an order of magnitude more morsels than workers.
inline constexpr std::size_t k_default_morsel_rows = 32768;

/// How to parallelize one scan.  A null scheduler means serial; the
/// shuffle seed (tests only) processes morsels in a deterministic
/// shuffled order to prove the merge is order-independent — results
/// are byte-identical either way, because shards merge in canonical
/// morsel order regardless of processing order.
struct parallel_spec {
  morsel_scheduler* sched = nullptr;
  std::size_t morsel_rows = k_default_morsel_rows;
  std::uint64_t shuffle_seed = 0;  ///< 0 = canonical processing order
};

/// collect(ep, p, k_no_cap) on the scheduler: zone-map pruning at plan
/// time, per-morsel selection slots concatenated in canonical order —
/// byte-identical to the serial collect.  member() point lookups
/// (p.has_asn) fall back to the serial permutation-index path, which is
/// already sub-linear.
[[nodiscard]] sel_vector collect_parallel(const epoch& ep, const predicates& p,
                                          const parallel_spec& ps,
                                          stats* st = nullptr);

/// count_matches on the scheduler: per-morsel counts summed in
/// canonical order.
[[nodiscard]] std::size_t count_matches_parallel(const epoch& ep,
                                                 const predicates& p,
                                                 const parallel_spec& ps,
                                                 stats* st = nullptr);

/// Fused scan + group-by on the scheduler: each worker accumulates its
/// morsels' matches into a private accumulator; the per-worker partials
/// merge by addition and emit through the same path as the serial
/// group_over, so the buckets are byte-identical.
[[nodiscard]] std::vector<group_count> group_over_parallel(
    const catalog& cat, const epoch& ep, const predicates& p,
    const parallel_spec& ps, group_dim dim, stats* st = nullptr);

}  // namespace exec

}  // namespace opwat::serve
