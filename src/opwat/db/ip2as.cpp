#include "opwat/db/ip2as.hpp"

namespace opwat::db {

ip2as ip2as::build(const world::world& w) {
  ip2as m;
  for (const auto& as : w.ases) {
    m.table_.insert(as.backbone, as.asn);
    for (const auto& p : as.routed_prefixes) m.table_.insert(p, as.asn);
  }
  return m;
}

}  // namespace opwat::db
