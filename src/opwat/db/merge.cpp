#include "opwat/db/merge.hpp"

#include <algorithm>
#include <set>

namespace opwat::db {

const std::vector<world::facility_id> merged_view::empty_facs_{};
const std::vector<iface_entry> merged_view::empty_ifaces_{};

merged_view merged_view::build(std::span<const snapshot> snapshots,
                               std::vector<source_kind> order) {
  merged_view v;

  const auto find_snapshot = [&](source_kind k) -> const snapshot* {
    for (const auto& s : snapshots)
      if (s.kind == k) return &s;
    return nullptr;
  };

  // --- prefixes and interfaces with preference + conflict accounting ------
  // Key ownership: the first (most preferred) source to define a key wins.
  std::map<std::uint32_t, std::pair<world::ixp_id, source_kind>> prefix_owner;
  std::unordered_map<net::ipv4_addr, std::pair<net::asn, source_kind>> iface_owner;
  std::unordered_map<net::ipv4_addr, world::ixp_id> iface_ixp;
  // Which sources saw each key (for uniqueness accounting).
  std::map<std::uint32_t, std::set<source_kind>> prefix_seen;
  std::unordered_map<net::ipv4_addr, std::set<source_kind>> iface_seen;

  std::map<source_kind, source_stats> stats;

  for (const auto kind : order) {
    const auto* s = find_snapshot(kind);
    if (!s) continue;
    auto& st = stats[kind];
    st.kind = kind;
    for (const auto& p : s->prefixes) {
      ++st.prefixes_total;
      prefix_seen[p.pfx.network().value()].insert(kind);
      const auto [it, inserted] =
          prefix_owner.try_emplace(p.pfx.network().value(), p.ixp, kind);
      if (inserted) {
        v.prefix_lookup_.insert(p.pfx, p.ixp);
      } else if (it->second.first != p.ixp) {
        ++st.prefixes_conflicts;
      }
    }
    for (const auto& i : s->interfaces) {
      ++st.interfaces_total;
      iface_seen[i.ip].insert(kind);
      const auto [it, inserted] = iface_owner.try_emplace(i.ip, i.asn, kind);
      if (inserted) {
        iface_ixp[i.ip] = i.ixp;
      } else if (it->second.first != i.asn) {
        ++st.interfaces_conflicts;
      }
    }
  }

  for (const auto& [key, seen] : prefix_seen)
    if (seen.size() == 1) ++stats[*seen.begin()].prefixes_unique;
  // opwat-lint: allow(unordered-iter): pure per-source counter increments —
  // commutative, so visit order cannot reach the merged view
  for (const auto& [key, seen] : iface_seen)
    if (seen.size() == 1) ++stats[*seen.begin()].interfaces_unique;

  // opwat-lint: allow(unordered-iter): writes land in keyed maps/sets and
  // ifaces_by_ixp_ is sorted by IP right below, erasing the visit order
  for (const auto& [ip, owner] : iface_owner) {
    v.iface_to_asn_[ip] = owner.first;
    v.ifaces_by_ixp_[iface_ixp[ip]].push_back({ip, owner.first});
    v.members_by_ixp_[iface_ixp[ip]].insert(owner.first);
  }
  for (auto& [x, ifaces] : v.ifaces_by_ixp_)
    std::sort(ifaces.begin(), ifaces.end(),
              [](const iface_entry& a, const iface_entry& b) { return a.ip < b.ip; });

  v.n_prefixes_ = prefix_owner.size();
  v.n_interfaces_ = iface_owner.size();

  // --- facilities, geo, ports, meta: union with preference overwrite ------
  // Iterate least-preferred first so better sources overwrite.
  std::vector<source_kind> reversed{order.rbegin(), order.rend()};
  for (const auto kind : reversed) {
    const auto* s = find_snapshot(kind);
    if (!s) continue;
    for (const auto& r : s->ixp_facilities) {
      auto& facs = v.ixp_facs_[r.ixp];
      if (std::find(facs.begin(), facs.end(), r.fac) == facs.end()) facs.push_back(r.fac);
    }
    for (const auto& r : s->as_facilities) {
      auto& facs = v.as_facs_[r.asn.value];
      if (std::find(facs.begin(), facs.end(), r.fac) == facs.end()) facs.push_back(r.fac);
    }
    for (const auto& r : s->facility_geos) v.fac_geo_[r.fac] = r.location;
    for (const auto& r : s->ports) v.ports_[{r.asn.value, r.ixp}] = r.capacity_gbps;
    for (const auto& r : s->ixp_meta) v.meta_[r.ixp] = r;
  }
  // Inflect overrides coordinates for its verified subset regardless of the
  // preference order (the paper uses it to correct PDB geodata).
  if (const auto* inflect = find_snapshot(source_kind::inflect))
    for (const auto& r : inflect->facility_geos) v.fac_geo_[r.fac] = r.location;

  for (auto& [kind, st] : stats) v.stats_.push_back(st);
  // Order stats like `order`.
  std::sort(v.stats_.begin(), v.stats_.end(), [&](const auto& a, const auto& b) {
    const auto idx = [&](source_kind k) {
      return std::find(order.begin(), order.end(), k) - order.begin();
    };
    return idx(a.kind) < idx(b.kind);
  });
  return v;
}

std::optional<world::ixp_id> merged_view::ixp_of_address(net::ipv4_addr a) const {
  return prefix_lookup_.lookup(a);
}

std::optional<net::asn> merged_view::member_of_interface(net::ipv4_addr a) const {
  const auto it = iface_to_asn_.find(a);
  if (it == iface_to_asn_.end()) return std::nullopt;
  return it->second;
}

const std::vector<iface_entry>& merged_view::interfaces_of_ixp(world::ixp_id x) const {
  const auto it = ifaces_by_ixp_.find(x);
  return it == ifaces_by_ixp_.end() ? empty_ifaces_ : it->second;
}

bool merged_view::is_member(world::ixp_id x, net::asn a) const {
  const auto it = members_by_ixp_.find(x);
  return it != members_by_ixp_.end() && it->second.contains(a);
}

std::vector<net::asn> merged_view::members_of_ixp(world::ixp_id x) const {
  std::set<net::asn> uniq;
  for (const auto& e : interfaces_of_ixp(x)) uniq.insert(e.asn);
  return {uniq.begin(), uniq.end()};
}

const std::vector<world::facility_id>& merged_view::facilities_of_ixp(world::ixp_id x) const {
  const auto it = ixp_facs_.find(x);
  return it == ixp_facs_.end() ? empty_facs_ : it->second;
}

const std::vector<world::facility_id>& merged_view::facilities_of_as(net::asn a) const {
  const auto it = as_facs_.find(a.value);
  return it == as_facs_.end() ? empty_facs_ : it->second;
}

std::optional<geo::geo_point> merged_view::facility_location(world::facility_id f) const {
  const auto it = fac_geo_.find(f);
  if (it == fac_geo_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> merged_view::port_capacity(net::asn a, world::ixp_id x) const {
  const auto it = ports_.find({a.value, x});
  if (it == ports_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> merged_view::min_physical_capacity(world::ixp_id x) const {
  const auto it = meta_.find(x);
  if (it == meta_.end()) return std::nullopt;
  return it->second.min_physical_capacity_gbps;
}

std::optional<std::string> merged_view::ixp_name(world::ixp_id x) const {
  const auto it = meta_.find(x);
  if (it == meta_.end()) return std::nullopt;
  return it->second.name;
}

std::vector<world::ixp_id> merged_view::known_ixps() const {
  std::set<world::ixp_id> ids;
  for (const auto& [x, _] : ifaces_by_ixp_) ids.insert(x);
  for (const auto& [x, _] : meta_) ids.insert(x);
  return {ids.begin(), ids.end()};
}

}  // namespace opwat::db
