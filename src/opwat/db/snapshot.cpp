#include "opwat/db/snapshot.hpp"

#include <algorithm>
#include <unordered_map>

namespace opwat::db {

std::string_view to_string(source_kind k) noexcept {
  switch (k) {
    case source_kind::website: return "Websites";
    case source_kind::he: return "HE";
    case source_kind::pdb: return "PDB";
    case source_kind::pch: return "PCH";
    case source_kind::inflect: return "Inflect";
  }
  return "?";
}

noise_config default_noise(source_kind k) noexcept {
  noise_config n;
  switch (k) {
    case source_kind::website:
      // Authoritative but only for IXPs that publish machine-readable data;
      // facility lists manually extracted for the 50 largest IXPs (§3.4).
      n.respect_publication_flags = true;
      n.facility_top_n = 50;
      n.drop_as_facility = 1.0;  // member colocation is not on IXP websites
      break;
    case source_kind::he:
      n.drop_prefix = 0.04;
      n.drop_interface = 0.06;
      n.conflict_interface = 0.0027;  // Table 1: 0.27%
      n.drop_ixp_facility = 1.0;      // HE has no facility data
      n.drop_as_facility = 1.0;
      n.drop_port = 1.0;
      break;
    case source_kind::pdb:
      n.drop_prefix = 0.10;
      n.drop_interface = 0.18;
      n.conflict_interface = 0.0028;  // Table 1: 0.28%
      n.drop_ixp_facility = 0.12;
      n.drop_as_facility = 0.18;  // Fig. 5: no data for 18% of remote peers
      n.spurious_reseller_facility = 0.04;
      n.drop_port = 0.25;
      n.stale_port = 0.03;
      n.coord_error_fraction = 0.06;
      n.coord_error_km = 20.0;
      break;
    case source_kind::pch:
      n.drop_prefix = 0.35;
      n.drop_interface = 0.72;
      n.conflict_interface = 0.0037;  // Table 1: 0.37%
      n.drop_ixp_facility = 1.0;
      n.drop_as_facility = 1.0;
      n.drop_port = 1.0;
      break;
    case source_kind::inflect:
      // Geo verification only: corrected coordinates for a facility subset.
      n.drop_prefix = 1.0;
      n.drop_interface = 1.0;
      n.drop_ixp_facility = 1.0;
      n.drop_as_facility = 1.0;
      n.drop_port = 1.0;
      n.coord_error_fraction = 0.0;
      break;
  }
  return n;
}

snapshot make_snapshot(const world::world& w, source_kind kind,
                       const noise_config& noise, util::rng rng) {
  snapshot s;
  s.kind = kind;

  const auto published = [&](const world::ixp& x) {
    return !noise.respect_publication_flags || x.publishes_member_list;
  };

  // IXP meta + prefixes.
  for (const auto& x : w.ixps) {
    if (!published(x)) continue;
    if (!rng.bernoulli(noise.drop_prefix))
      s.prefixes.push_back({x.peering_lan, x.id});
    s.ixp_meta.push_back({x.id, x.name, x.min_physical_capacity_gbps, x.supports_resellers});
  }

  // Member interfaces (IP -> ASN on the peering LAN).
  for (const auto& m : w.memberships) {
    const auto& x = w.ixps[m.ixp];
    if (!published(x)) continue;
    if (rng.bernoulli(noise.drop_interface)) continue;
    net::asn asn = w.ases[m.member].asn;
    if (rng.bernoulli(noise.conflict_interface)) {
      // Wrong-ASN conflict: attribute the interface to another member.
      const auto victim = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(w.ases.size()) - 1));
      asn = w.ases[victim].asn;
    }
    s.interfaces.push_back({m.interface_ip, asn, m.ixp});
  }

  // IXP facility lists.
  if (noise.drop_ixp_facility < 1.0) {
    for (const auto& x : w.ixps) {
      if (noise.respect_publication_flags && x.id >= noise.facility_top_n) continue;
      for (const auto f : x.facilities)
        if (!rng.bernoulli(noise.drop_ixp_facility)) s.ixp_facilities.push_back({x.id, f});
    }
  }

  // AS colocation records.
  if (noise.drop_as_facility < 1.0) {
    for (const auto& as : w.ases) {
      for (const auto f : as.facilities)
        if (!rng.bernoulli(noise.drop_as_facility)) s.as_facilities.push_back({as.asn, f});
    }
    // Fig. 5 artifact: reseller customers listing the handoff facility.
    if (noise.spurious_reseller_facility > 0.0) {
      for (const auto& m : w.memberships) {
        if (m.how != world::attachment::reseller || m.attach_facility == world::k_invalid)
          continue;
        if (rng.bernoulli(noise.spurious_reseller_facility))
          s.as_facilities.push_back({w.ases[m.member].asn, m.attach_facility});
      }
    }
  }

  // Facility coordinates.
  if (kind == source_kind::inflect) {
    // Exact coordinates for a verified subset (~30%).
    for (const auto& f : w.facilities)
      if (rng.bernoulli(0.30)) s.facility_geos.push_back({f.id, f.location});
  } else if (noise.drop_ixp_facility < 1.0 || noise.drop_as_facility < 1.0) {
    for (const auto& f : w.facilities) {
      geo::geo_point loc = f.location;
      if (rng.bernoulli(noise.coord_error_fraction))
        loc = geo::offset_km(loc, rng.uniform(0.0, 360.0),
                             rng.uniform(5.0, noise.coord_error_km));
      s.facility_geos.push_back({f.id, loc});
    }
  }

  // Port capacities.
  if (noise.drop_port < 1.0) {
    for (const auto& m : w.memberships) {
      const auto& x = w.ixps[m.ixp];
      if (!published(x)) continue;
      if (rng.bernoulli(noise.drop_port)) continue;
      double cap = m.port_capacity_gbps;
      if (rng.bernoulli(noise.stale_port))
        cap = rng.bernoulli(0.5) ? x.min_physical_capacity_gbps : cap * 10.0;
      s.ports.push_back({w.ases[m.member].asn, m.ixp, cap});
    }
  }

  return s;
}

std::vector<snapshot> make_standard_snapshots(const world::world& w, std::uint64_t seed) {
  util::rng base{seed};
  std::vector<snapshot> out;
  for (const auto kind : {source_kind::website, source_kind::he, source_kind::pdb,
                          source_kind::pch, source_kind::inflect})
    out.push_back(make_snapshot(w, kind, default_noise(kind),
                                base.fork(static_cast<std::uint64_t>(kind))));
  return out;
}

}  // namespace opwat::db
