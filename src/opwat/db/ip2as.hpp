// IP-to-AS mapping for non-IXP address space — the analogue of the CAIDA
// Routeviews prefix2as dataset the paper uses for traceroute AS
// attribution (§5.2, Step 5).  Built from the routed and backbone prefixes
// of every simulated AS.
#pragma once

#include <optional>

#include "opwat/net/ipv4.hpp"
#include "opwat/world/world.hpp"

namespace opwat::db {

class ip2as {
 public:
  [[nodiscard]] static ip2as build(const world::world& w);

  /// Longest-prefix-match AS attribution.
  [[nodiscard]] std::optional<net::asn> lookup(net::ipv4_addr a) const {
    return table_.lookup(a);
  }

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }

 private:
  net::lpm_table<net::asn> table_;
};

}  // namespace opwat::db
