// Noisy database views of the ground-truth world.
//
// The paper's pipeline consumes four IXP data sources (IXP websites,
// Hurricane Electric, PeeringDB, Packet Clearing House) plus Inflect for
// facility geolocation.  Each source is incomplete, occasionally stale and
// occasionally wrong; Table 1 quantifies the conflicts and §3.4/Fig. 5 the
// colocation gaps.  `make_snapshot` derives the equivalent noisy view from
// the simulated world:
//   - records are dropped per-source (incompleteness),
//   - interface records flip to a wrong ASN at the per-source conflict
//     rates of Table 1 (~0.27-0.37%),
//   - AS-facility records are missing for ~18% of members and sometimes
//     list the *reseller's* handoff facility instead (the Fig. 5 artifact),
//   - port capacities can be stale,
//   - PDB facility coordinates carry occasional errors that the Inflect
//     view corrects (§3.4).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "opwat/geo/geodesic.hpp"
#include "opwat/net/ipv4.hpp"
#include "opwat/util/rng.hpp"
#include "opwat/world/world.hpp"

namespace opwat::db {

enum class source_kind : std::uint8_t { website, he, pdb, pch, inflect };

[[nodiscard]] std::string_view to_string(source_kind k) noexcept;

struct prefix_record {
  net::prefix pfx;
  world::ixp_id ixp = world::k_invalid;
};

struct interface_record {
  net::ipv4_addr ip;
  net::asn asn;  // may be wrong (conflict noise)
  world::ixp_id ixp = world::k_invalid;
};

struct ixp_facility_record {
  world::ixp_id ixp = world::k_invalid;
  world::facility_id fac = world::k_invalid;
};

struct as_facility_record {
  net::asn asn;
  world::facility_id fac = world::k_invalid;
};

struct facility_geo_record {
  world::facility_id fac = world::k_invalid;
  geo::geo_point location;  // possibly offset from the truth
};

struct port_record {
  net::asn asn;
  world::ixp_id ixp = world::k_invalid;
  double capacity_gbps = 0.0;  // possibly stale
};

struct ixp_meta_record {
  world::ixp_id ixp = world::k_invalid;
  std::string name;
  double min_physical_capacity_gbps = 1.0;  // the pricing-page Cmin
  bool supports_resellers = true;
};

struct snapshot {
  source_kind kind = source_kind::pdb;
  std::vector<prefix_record> prefixes;
  std::vector<interface_record> interfaces;
  std::vector<ixp_facility_record> ixp_facilities;
  std::vector<as_facility_record> as_facilities;
  std::vector<facility_geo_record> facility_geos;
  std::vector<port_record> ports;
  std::vector<ixp_meta_record> ixp_meta;
};

/// Per-source noise parameters.
struct noise_config {
  double drop_prefix = 0.0;
  double drop_interface = 0.0;
  double conflict_interface = 0.0;  // wrong-ASN probability
  double drop_ixp_facility = 0.0;
  double drop_as_facility = 0.0;
  double spurious_reseller_facility = 0.0;  // customer lists the handoff site
  double drop_port = 0.0;
  double stale_port = 0.0;  // capacity replaced by an outdated value
  double coord_error_fraction = 0.0;
  double coord_error_km = 0.0;
  /// Only IXPs that publish machine-readable data appear (website source).
  bool respect_publication_flags = false;
  /// Facility lists only for the N largest IXPs (manual website extraction).
  std::size_t facility_top_n = SIZE_MAX;
};

/// The calibrated default noise for each source (see Table 1 / §3.4).
[[nodiscard]] noise_config default_noise(source_kind k) noexcept;

/// Derives one noisy view of the world.
[[nodiscard]] snapshot make_snapshot(const world::world& w, source_kind kind,
                                     const noise_config& noise, util::rng rng);

/// Convenience: the standard 5-source stack with default noise, seeded off
/// a single base seed.
[[nodiscard]] std::vector<snapshot> make_standard_snapshots(const world::world& w,
                                                            std::uint64_t seed);

}  // namespace opwat::db
