// Multi-source merging with the paper's preference order (§3.2):
//
//     IXP websites > HE > PDB > PCH
//
// Conflicting entries (same key, different value) are resolved in favour of
// the higher-preference source, and counted per source to reproduce
// Table 1.  The merged view is the ONLY IXP metadata interface the
// inference pipeline sees.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "opwat/db/snapshot.hpp"

namespace opwat::db {

/// Table 1 accounting per source.
struct source_stats {
  source_kind kind = source_kind::pdb;
  std::size_t prefixes_total = 0, prefixes_unique = 0, prefixes_conflicts = 0;
  std::size_t interfaces_total = 0, interfaces_unique = 0, interfaces_conflicts = 0;
};

/// An interface on an IXP peering LAN, attributed to a member ASN.
struct iface_entry {
  net::ipv4_addr ip;
  net::asn asn;
};

class merged_view {
 public:
  /// Merges snapshots; `order` lists sources from most to least preferred.
  /// Snapshots whose kind is absent from `order` contribute geo data only.
  [[nodiscard]] static merged_view build(
      std::span<const snapshot> snapshots,
      std::vector<source_kind> order = {source_kind::website, source_kind::he,
                                        source_kind::pdb, source_kind::pch});

  // --- pipeline-facing queries ---------------------------------------------

  [[nodiscard]] std::optional<world::ixp_id> ixp_of_address(net::ipv4_addr a) const;
  [[nodiscard]] std::optional<net::asn> member_of_interface(net::ipv4_addr a) const;
  [[nodiscard]] const std::vector<iface_entry>& interfaces_of_ixp(world::ixp_id x) const;
  [[nodiscard]] bool is_member(world::ixp_id x, net::asn a) const;
  [[nodiscard]] std::vector<net::asn> members_of_ixp(world::ixp_id x) const;

  [[nodiscard]] const std::vector<world::facility_id>& facilities_of_ixp(world::ixp_id x) const;
  [[nodiscard]] const std::vector<world::facility_id>& facilities_of_as(net::asn a) const;
  [[nodiscard]] std::optional<geo::geo_point> facility_location(world::facility_id f) const;

  [[nodiscard]] std::optional<double> port_capacity(net::asn a, world::ixp_id x) const;
  [[nodiscard]] std::optional<double> min_physical_capacity(world::ixp_id x) const;
  [[nodiscard]] std::optional<std::string> ixp_name(world::ixp_id x) const;

  [[nodiscard]] std::vector<world::ixp_id> known_ixps() const;
  [[nodiscard]] std::size_t prefix_count() const noexcept { return n_prefixes_; }
  [[nodiscard]] std::size_t interface_count() const noexcept { return n_interfaces_; }

  [[nodiscard]] const std::vector<source_stats>& stats() const noexcept { return stats_; }

 private:
  net::lpm_table<world::ixp_id> prefix_lookup_;
  std::unordered_map<net::ipv4_addr, net::asn> iface_to_asn_;
  std::map<world::ixp_id, std::vector<iface_entry>> ifaces_by_ixp_;
  std::map<world::ixp_id, std::set<net::asn>> members_by_ixp_;
  std::map<world::ixp_id, std::vector<world::facility_id>> ixp_facs_;
  std::unordered_map<std::uint32_t, std::vector<world::facility_id>> as_facs_;
  std::unordered_map<std::uint32_t, geo::geo_point> fac_geo_;
  std::map<std::pair<std::uint32_t, world::ixp_id>, double> ports_;
  std::map<world::ixp_id, ixp_meta_record> meta_;
  std::size_t n_prefixes_ = 0;
  std::size_t n_interfaces_ = 0;
  std::vector<source_stats> stats_;
  static const std::vector<world::facility_id> empty_facs_;
  static const std::vector<iface_entry> empty_ifaces_;
};

}  // namespace opwat::db
