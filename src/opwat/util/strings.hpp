// Small string helpers used across the library (no std::format on GCC 12).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace opwat::util {

/// Split `s` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Join items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view sep);

[[nodiscard]] std::string to_lower(std::string_view s);

/// printf-style double formatting with fixed decimals.
[[nodiscard]] std::string fmt_double(double v, int decimals);

/// "12.3%"-style percentage from a ratio in [0,1].
[[nodiscard]] std::string fmt_percent(double ratio, int decimals = 1);

/// Thousands-separated integer, e.g. 31690 -> "31,690".
[[nodiscard]] std::string fmt_count(long long v);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;

}  // namespace opwat::util
