// The single registry of failpoint site names (see
// opwat/util/failpoint.hpp).  Every OPWAT_FAILPOINT(...) call site in
// the tree must name one of these — failpoint_registry::configure
// rejects unknown names so a typo in OPWAT_FAILPOINTS fails loudly
// instead of silently never firing, and the opwat_lint
// `failpoint-naming` rule statically checks call sites against this
// list (names must be unique and kebab-case, and this header is the
// one place they may be declared).
//
// Naming convention: `<module>-<operation>[-<variant>]`, kebab-case.
// The `-partial` variants inject short I/O (a truncated read/write that
// is NOT an error at the syscall level); the bare names inject hard
// failures.
#pragma once

#include <array>
#include <string_view>

namespace opwat::util {

inline constexpr std::array<std::string_view, 13> k_failpoint_sites{
    "net-accept",            // accept_conn: injected accept failure
    "net-connect",           // connect_tcp: injected connect failure
    "net-recv",              // recv_some: injected receive error
    "net-recv-partial",      // recv_some: cap one read at N bytes
    "net-send",              // send_all: connection dies mid-send
    "net-send-partial",      // send_all: N bytes leave, then the peer is gone
    "store-append-fsync",    // append_epoch: crash before the record fsync
    "store-append-publish",  // append_epoch: crash inside the header patch
    "store-append-write",    // append_epoch: crash inside the record write
    "store-read",            // read_file: injected read failure
    "store-save-fsync",      // save: crash before the tmp-file fsync
    "store-save-rename",     // save: crash before the tmp -> target rename
    "store-save-write",      // save: crash inside the tmp-file write
};

/// Whether `name` is a registered failpoint site.
[[nodiscard]] constexpr bool is_failpoint_site(std::string_view name) noexcept {
  for (const auto s : k_failpoint_sites)
    if (s == name) return true;
  return false;
}

}  // namespace opwat::util
