// A bounded multi-producer / multi-consumer queue with explicit
// close-and-drain semantics — the admission buffer between the portal
// server's network acceptor and its worker pool.
//
// The server's overload contract (opwat/portal/server.hpp) is built on
// try_push: when the queue is full the acceptor does NOT block the
// event loop and does NOT drop the request silently — try_push fails
// immediately and the caller sheds load with a typed `overloaded`
// response.  Consumers block in pop() until an item arrives or the
// queue is closed; after close() every item still queued is drained
// before pop() starts returning nullopt, which is exactly the graceful
// shutdown story ("finish what was admitted, admit nothing new").
//
// All mutable state is guarded by the annotated mutex (checked by the
// clang thread-safety lane; see util/annotations.hpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "opwat/util/annotations.hpp"

namespace opwat::util {

template <typename T>
class bounded_queue {
 public:
  /// A queue admitting at most `capacity` queued items (capacity 0 is
  /// legal and sheds every try_push — the degenerate test configuration).
  explicit bounded_queue(std::size_t capacity) : capacity_(capacity) {}

  bounded_queue(const bounded_queue&) = delete;
  bounded_queue& operator=(const bounded_queue&) = delete;

  /// Enqueues without blocking.  Returns false — and leaves `v` moved-from
  /// only on success — when the queue is full or closed.
  [[nodiscard]] bool try_push(T v) {
    {
      const mutex_lock lock{m_};
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(v));
    }
    ready_.notify_one();
    return true;
  }

  /// Dequeues one item, blocking while the queue is open and empty.
  /// After close(), remaining items are still handed out in FIFO order;
  /// nullopt means closed AND fully drained (the consumer's exit signal).
  [[nodiscard]] std::optional<T> pop() {
    mutex_lock lock{m_};
    while (!closed_ && items_.empty()) ready_.wait(lock);
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  /// Non-blocking dequeue; nullopt when nothing is queued right now.
  [[nodiscard]] std::optional<T> try_pop() {
    const mutex_lock lock{m_};
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  /// Rejects all future pushes and wakes every blocked consumer.  Items
  /// already queued stay poppable (close-and-drain).
  void close() {
    {
      const mutex_lock lock{m_};
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const mutex_lock lock{m_};
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const mutex_lock lock{m_};
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable annotated_mutex m_;
  std::condition_variable_any ready_;
  std::deque<T> items_ OPWAT_GUARDED_BY(m_);
  bool closed_ OPWAT_GUARDED_BY(m_) = false;
};

}  // namespace opwat::util
