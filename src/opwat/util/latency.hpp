// Log-bucketed latency histogram (HDR-style) for the portal load
// harness: constant-size, allocation-free record(), mergeable across
// threads, with p50/p99/p999 extraction.
//
// Values are nanoseconds bucketed at 32 sub-buckets per octave
// (~3% relative resolution), covering 1 ns to ~18 minutes — plenty for
// request latencies while keeping the whole recorder a flat array a
// per-client thread can own privately and merge at the end (no atomics
// on the record path, no locks, no samples retained).
//
// Quantiles are deterministic: nearest-rank over the bucket sequence,
// reporting the bucket's representative (lower-edge) value, so the same
// recorded multiset always yields the same quantile bytes regardless of
// record or merge order.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace opwat::util {

class latency_recorder {
 public:
  /// Records one latency sample (values above the tracked range clamp
  /// into the top bucket; the exact maximum is tracked separately).
  void record_ns(std::uint64_t ns) noexcept;

  /// Folds another recorder's samples into this one.
  void merge(const latency_recorder& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t max_ns() const noexcept { return max_; }
  [[nodiscard]] double mean_ns() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Nearest-rank quantile, q in [0, 1]; 0 for an empty recorder.
  /// quantile_ns(1.0) reports the exact tracked maximum.
  [[nodiscard]] std::uint64_t quantile_ns(double q) const noexcept;

  [[nodiscard]] std::uint64_t p50_ns() const noexcept { return quantile_ns(0.50); }
  [[nodiscard]] std::uint64_t p99_ns() const noexcept { return quantile_ns(0.99); }
  [[nodiscard]] std::uint64_t p999_ns() const noexcept { return quantile_ns(0.999); }

 private:
  // 32 linear buckets for [0, 32), then 32 sub-buckets per octave.
  static constexpr int k_sub_bits = 5;
  static constexpr std::size_t k_sub = std::size_t{1} << k_sub_bits;
  static constexpr std::size_t k_octaves = 35;  // top edge ~2^40 ns
  static constexpr std::size_t k_buckets = k_sub * (k_octaves + 1);

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t ns) noexcept;
  /// Representative (lower-edge) value of bucket `i`.
  [[nodiscard]] static std::uint64_t bucket_floor_ns(std::size_t i) noexcept;

  std::array<std::uint64_t, k_buckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace opwat::util
