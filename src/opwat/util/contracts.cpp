#include "opwat/util/contracts.hpp"

namespace opwat::util {

void contract_fail(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::string what;
  what.reserve(64 + msg.size());
  what += file;
  what += ':';
  what += std::to_string(line);
  what += ": ";
  what += kind;
  what += " failed: ";
  what += expr;
  if (!msg.empty()) {
    what += " — ";
    what += msg;
  }
  throw contract_violation{what};
}

}  // namespace opwat::util
