#include "opwat/util/checksum.hpp"

#include <array>

namespace opwat::util {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1u) ? 0xEDB88320u : 0u);
    t[i] = c;
  }
  return t;
}

constexpr auto k_table = make_crc32_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  for (std::size_t i = 0; i < len; ++i) c = k_table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return ~c;
}

}  // namespace opwat::util
