#include "opwat/util/latency.hpp"

#include <algorithm>
#include <bit>

namespace opwat::util {

std::size_t latency_recorder::bucket_of(std::uint64_t ns) noexcept {
  if (ns < k_sub) return static_cast<std::size_t>(ns);
  // Keep the top (k_sub_bits + 1) significant bits: octave = position of
  // the leading bit beyond the linear range, sub-bucket = the next
  // k_sub_bits bits below it.
  const int width = std::bit_width(ns);  // >= k_sub_bits + 1 here
  const int shift = width - (k_sub_bits + 1);
  const auto octave = static_cast<std::size_t>(shift);
  const std::size_t sub = static_cast<std::size_t>(ns >> shift) - k_sub;
  const std::size_t idx = (octave + 1) * k_sub + sub;
  return std::min(idx, k_buckets - 1);
}

std::uint64_t latency_recorder::bucket_floor_ns(std::size_t i) noexcept {
  if (i < k_sub) return i;
  const std::size_t octave = i / k_sub - 1;
  const std::size_t sub = i % k_sub;
  return (k_sub + sub) << octave;
}

void latency_recorder::record_ns(std::uint64_t ns) noexcept {
  counts_[bucket_of(ns)] += 1;
  count_ += 1;
  sum_ += ns;
  max_ = std::max(max_, ns);
}

void latency_recorder::merge(const latency_recorder& other) noexcept {
  for (std::size_t i = 0; i < k_buckets; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

std::uint64_t latency_recorder::quantile_ns(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * count), with rank 0 mapped to the first occupied bucket.
  const double target = q * static_cast<double>(count_);
  auto rank = static_cast<std::uint64_t>(target);
  if (static_cast<double>(rank) < target) rank += 1;
  if (rank == 0) rank = 1;
  if (rank >= count_) return max_;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < k_buckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) return bucket_floor_ns(i);
  }
  return max_;
}

}  // namespace opwat::util
