#include "opwat/util/failpoint.hpp"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <utility>

#include "opwat/util/failpoint_sites.hpp"

namespace opwat::util {

namespace {

[[noreturn]] void bad_spec(std::string_view spec, const std::string& why) {
  throw std::invalid_argument("failpoint spec \"" + std::string{spec} +
                              "\": " + why);
}

/// Parses a decimal u64; throws via bad_spec on anything else.
std::uint64_t parse_u64(std::string_view spec, std::string_view token,
                        const char* what) {
  if (token.empty()) bad_spec(spec, std::string{what} + " is empty");
  std::uint64_t v = 0;
  for (const char c : token) {
    if (c < '0' || c > '9')
      bad_spec(spec, std::string{what} + " \"" + std::string{token} +
                         "\" is not a number");
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

failpoint_registry& failpoint_registry::instance() {
  static failpoint_registry r;
  return r;
}

void failpoint_registry::configure(std::string_view spec, std::uint64_t seed) {
  std::vector<site_state> parsed;
  const rng root{seed};

  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto end = std::min(spec.find(';', pos), spec.size());
    const std::string_view one = spec.substr(pos, end - pos);
    pos = end + 1;
    if (one.empty()) continue;

    const auto eq = one.find('=');
    if (eq == std::string_view::npos) bad_spec(one, "missing '='");
    const std::string_view site = one.substr(0, eq);
    if (!is_failpoint_site(site))
      bad_spec(one, "\"" + std::string{site} +
                        "\" is not a registered site (see "
                        "opwat/util/failpoint_sites.hpp)");
    for (const auto& s : parsed)
      if (s.name == site) bad_spec(one, "site configured twice");

    // policy:action[:arg] — split on ':'.
    std::vector<std::string_view> parts;
    std::string_view rest = one.substr(eq + 1);
    while (true) {
      const auto colon = rest.find(':');
      if (colon == std::string_view::npos) {
        parts.push_back(rest);
        break;
      }
      parts.push_back(rest.substr(0, colon));
      rest = rest.substr(colon + 1);
    }
    if (parts.size() < 2) bad_spec(one, "want <policy>:<action>[:<arg>]");

    site_state st;
    st.name = std::string{site};
    const std::string_view pol = parts[0];
    if (pol == "always") {
      st.pol = policy::always;
    } else if (pol.starts_with("one-in-")) {
      st.pol = policy::one_in;
      st.pol_n = parse_u64(one, pol.substr(7), "one-in-N count");
      if (st.pol_n == 0) bad_spec(one, "one-in-0 never fires");
    } else if (pol.starts_with("after-")) {
      st.pol = policy::after;
      st.pol_n = parse_u64(one, pol.substr(6), "after-K count");
    } else if (pol.ends_with("-times")) {
      st.pol = policy::times;
      st.pol_n = parse_u64(one, pol.substr(0, pol.size() - 6), "K-times count");
    } else {
      bad_spec(one, "unknown policy \"" + std::string{pol} + "\"");
    }

    const std::string_view act = parts[1];
    const bool has_arg = parts.size() >= 3;
    if (parts.size() > 3) bad_spec(one, "too many ':' fields");
    if (act == "error") {
      st.act = action::error;
      if (has_arg) bad_spec(one, "error takes no argument");
    } else if (act == "short-write") {
      st.act = action::short_write;
      if (!has_arg) bad_spec(one, "short-write wants a byte cap");
      st.arg = parse_u64(one, parts[2], "short-write byte cap");
    } else if (act == "delay-ms") {
      st.act = action::delay_ms;
      if (!has_arg) bad_spec(one, "delay-ms wants a duration");
      st.arg = parse_u64(one, parts[2], "delay-ms duration");
    } else if (act == "abort") {
      st.act = action::abort_process;
      if (has_arg) bad_spec(one, "abort takes no argument");
    } else {
      bad_spec(one, "unknown action \"" + std::string{act} + "\"");
    }

    // Decision stream keyed on (seed, site): the one-in-N schedule is a
    // pure function of the configure() seed and the site's hit sequence.
    st.decide = root.stream(st.name, 0);
    parsed.push_back(std::move(st));
  }

  const mutex_lock lock{mu_};
  sites_ = std::move(parsed);
  armed_.store(!sites_.empty(), std::memory_order_relaxed);
}

void failpoint_registry::configure_from_env() {
  const char* spec = std::getenv("OPWAT_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return;
  std::uint64_t seed = 0x5eed;
  if (const char* s = std::getenv("OPWAT_FAILPOINTS_SEED"))
    seed = std::strtoull(s, nullptr, 10);
  configure(spec, seed);
}

void failpoint_registry::clear() {
  const mutex_lock lock{mu_};
  sites_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

failpoint_fire failpoint_registry::evaluate(std::string_view site) {
  std::uint64_t delay = 0;
  failpoint_fire out;
  bool abort_now = false;
  {
    const mutex_lock lock{mu_};
    site_state* st = nullptr;
    for (auto& s : sites_)
      if (s.name == site) {
        st = &s;
        break;
      }
    if (st == nullptr) return {};

    const auto hit = ++st->hit_count;
    bool fire = false;
    switch (st->pol) {
      case policy::always: fire = true; break;
      case policy::one_in: fire = st->decide.next() % st->pol_n == 0; break;
      case policy::after: fire = hit > st->pol_n; break;
      case policy::times: fire = hit <= st->pol_n; break;
    }
    if (!fire) return {};
    ++st->fire_count;

    switch (st->act) {
      case action::error: out.action = failpoint_action::error; break;
      case action::short_write:
        out.action = failpoint_action::short_write;
        out.arg = st->arg;
        break;
      case action::delay_ms: delay = st->arg; break;
      case action::abort_process: abort_now = true; break;
    }
  }
  // Side effects run outside the lock so a long delay never serializes
  // unrelated sites.
  if (abort_now) std::abort();
  if (delay > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds{delay});
  return out;
}

std::uint64_t failpoint_registry::hits(std::string_view site) const {
  const mutex_lock lock{mu_};
  for (const auto& s : sites_)
    if (s.name == site) return s.hit_count;
  return 0;
}

std::uint64_t failpoint_registry::fires(std::string_view site) const {
  const mutex_lock lock{mu_};
  for (const auto& s : sites_)
    if (s.name == site) return s.fire_count;
  return 0;
}

}  // namespace opwat::util
