// Clang thread-safety capability annotations, plus the annotated lock
// types the rest of the tree is required to use (tools/opwat_lint's
// raw-lock rule bans manual .lock()/.unlock() everywhere else).
//
// The macros wrap the attributes documented in
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html and expand to
// nothing under compilers without the analysis (gcc), so annotations
// cost nothing outside the clang `-Wthread-safety -Werror` CI lane.
//
// Conventions:
//   - every mutex-guarded member is declared `T x_ OPWAT_GUARDED_BY(m_);`
//   - functions that must be entered with a capability held say
//     `OPWAT_REQUIRES(m_)` on the declaration,
//   - locks are only ever taken through the scoped guards below
//     (util::mutex_lock / util::writer_lock / util::reader_lock);
//     condition-variable waits go through std::condition_variable_any
//     waiting on the guard itself, so the capability is never released
//     behind the analysis's back by a raw unlock.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define OPWAT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef OPWAT_THREAD_ANNOTATION
#define OPWAT_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define OPWAT_CAPABILITY(x) OPWAT_THREAD_ANNOTATION(capability(x))
#define OPWAT_SCOPED_CAPABILITY OPWAT_THREAD_ANNOTATION(scoped_lockable)
#define OPWAT_GUARDED_BY(x) OPWAT_THREAD_ANNOTATION(guarded_by(x))
#define OPWAT_PT_GUARDED_BY(x) OPWAT_THREAD_ANNOTATION(pt_guarded_by(x))
#define OPWAT_REQUIRES(...) \
  OPWAT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define OPWAT_REQUIRES_SHARED(...) \
  OPWAT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define OPWAT_ACQUIRE(...) \
  OPWAT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define OPWAT_ACQUIRE_SHARED(...) \
  OPWAT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define OPWAT_RELEASE(...) \
  OPWAT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define OPWAT_RELEASE_SHARED(...) \
  OPWAT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define OPWAT_RELEASE_GENERIC(...) \
  OPWAT_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define OPWAT_TRY_ACQUIRE(...) \
  OPWAT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define OPWAT_EXCLUDES(...) OPWAT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define OPWAT_RETURN_CAPABILITY(x) OPWAT_THREAD_ANNOTATION(lock_returned(x))
#define OPWAT_NO_THREAD_SAFETY_ANALYSIS \
  OPWAT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace opwat::util {

/// std::mutex with the `capability` attribute so clang can track who
/// holds it.  Lock only via util::mutex_lock.
class OPWAT_CAPABILITY("mutex") annotated_mutex {
 public:
  annotated_mutex() = default;
  annotated_mutex(const annotated_mutex&) = delete;
  annotated_mutex& operator=(const annotated_mutex&) = delete;

  // The wrapper IS the RAII boundary; these three forward to the std
  // type and exist only so the scoped guards (and clang) can see the
  // acquisition.
  void lock() OPWAT_ACQUIRE() { m_.lock(); }        // opwat-lint: allow(raw-lock): the annotated wrapper itself forwards to std::mutex
  void unlock() OPWAT_RELEASE() { m_.unlock(); }    // opwat-lint: allow(raw-lock): the annotated wrapper itself forwards to std::mutex
  [[nodiscard]] bool try_lock() OPWAT_TRY_ACQUIRE(true) {
    return m_.try_lock();  // opwat-lint: allow(raw-lock): the annotated wrapper itself forwards to std::mutex
  }

 private:
  std::mutex m_;
};

/// std::shared_mutex with the `capability` attribute.  Lock only via
/// util::writer_lock / util::reader_lock.
class OPWAT_CAPABILITY("shared_mutex") annotated_shared_mutex {
 public:
  annotated_shared_mutex() = default;
  annotated_shared_mutex(const annotated_shared_mutex&) = delete;
  annotated_shared_mutex& operator=(const annotated_shared_mutex&) = delete;

  void lock() OPWAT_ACQUIRE() { m_.lock(); }      // opwat-lint: allow(raw-lock): the annotated wrapper itself forwards to std::shared_mutex
  void unlock() OPWAT_RELEASE() { m_.unlock(); }  // opwat-lint: allow(raw-lock): the annotated wrapper itself forwards to std::shared_mutex
  void lock_shared() OPWAT_ACQUIRE_SHARED() {
    m_.lock_shared();  // opwat-lint: allow(raw-lock): the annotated wrapper itself forwards to std::shared_mutex
  }
  void unlock_shared() OPWAT_RELEASE_SHARED() {
    m_.unlock_shared();  // opwat-lint: allow(raw-lock): the annotated wrapper itself forwards to std::shared_mutex
  }

 private:
  std::shared_mutex m_;
};

/// Scoped exclusive lock over annotated_mutex (the tree's only way to
/// hold one).  Models BasicLockable so std::condition_variable_any can
/// wait on the guard itself: `cv.wait(lock)` releases and reacquires
/// through the annotated mutex, which keeps clang's view of the held
/// capability consistent across the wait.
class OPWAT_SCOPED_CAPABILITY mutex_lock {
 public:
  explicit mutex_lock(annotated_mutex& m) OPWAT_ACQUIRE(m) : m_(m) {
    m_.lock();  // opwat-lint: allow(raw-lock): scoped-guard implementation
  }
  ~mutex_lock() OPWAT_RELEASE() {
    m_.unlock();  // opwat-lint: allow(raw-lock): scoped-guard implementation
  }

  mutex_lock(const mutex_lock&) = delete;
  mutex_lock& operator=(const mutex_lock&) = delete;

  // BasicLockable, for std::condition_variable_any::wait(*this) only.
  // The cv releases and reacquires around the sleep; from the analysis's
  // point of view the capability is held throughout the wait, which is
  // exactly the guarantee the post-wait code relies on.
  void lock() OPWAT_NO_THREAD_SAFETY_ANALYSIS {
    m_.lock();  // opwat-lint: allow(raw-lock): condition_variable_any reacquire path
  }
  void unlock() OPWAT_NO_THREAD_SAFETY_ANALYSIS {
    m_.unlock();  // opwat-lint: allow(raw-lock): condition_variable_any release path
  }

 private:
  annotated_mutex& m_;
};

/// Scoped exclusive lock over annotated_shared_mutex.
class OPWAT_SCOPED_CAPABILITY writer_lock {
 public:
  explicit writer_lock(annotated_shared_mutex& m) OPWAT_ACQUIRE(m) : m_(m) {
    m_.lock();  // opwat-lint: allow(raw-lock): scoped-guard implementation
  }
  ~writer_lock() OPWAT_RELEASE() {
    m_.unlock();  // opwat-lint: allow(raw-lock): scoped-guard implementation
  }

  writer_lock(const writer_lock&) = delete;
  writer_lock& operator=(const writer_lock&) = delete;

 private:
  annotated_shared_mutex& m_;
};

/// Scoped shared (reader) lock over annotated_shared_mutex.
class OPWAT_SCOPED_CAPABILITY reader_lock {
 public:
  explicit reader_lock(annotated_shared_mutex& m) OPWAT_ACQUIRE_SHARED(m)
      : m_(m) {
    m_.lock_shared();  // opwat-lint: allow(raw-lock): scoped-guard implementation
  }
  // Generic release: the scoped object acquired shared, and clang's
  // scoped-capability destructor check wants the kind-agnostic form.
  ~reader_lock() OPWAT_RELEASE_GENERIC() {
    m_.unlock_shared();  // opwat-lint: allow(raw-lock): scoped-guard implementation
  }

  reader_lock(const reader_lock&) = delete;
  reader_lock& operator=(const reader_lock&) = delete;

 private:
  annotated_shared_mutex& m_;
};

}  // namespace opwat::util
