// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-section
// integrity check of the serve-catalog snapshot format (opwat/serve/
// store.hpp).  A bit flip anywhere in a checksummed payload changes the
// CRC, so a corrupted snapshot fails loudly instead of materializing
// garbage rows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace opwat::util {

/// CRC-32 of `len` bytes starting at `data`, seeded by `seed` (pass a
/// previous result to checksum data in chunks).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len,
                                  std::uint32_t seed = 0) noexcept;

[[nodiscard]] inline std::uint32_t crc32(std::string_view bytes,
                                         std::uint32_t seed = 0) noexcept {
  return crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace opwat::util
