#include "opwat/util/csv.hpp"

#include <ostream>

namespace opwat::util {

namespace {
bool needs_quotes(std::string_view f) {
  return f.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string quote(std::string_view f) {
  std::string out = "\"";
  for (const char c : f) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void csv_writer::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) os_ << ',';
    if (needs_quotes(fields[i]))
      os_ << quote(fields[i]);
    else
      os_ << fields[i];
  }
  os_ << '\n';
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(std::move(cur));
  return out;
}

}  // namespace opwat::util
