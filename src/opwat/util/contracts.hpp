// Project-wide contract macros — the machine-checked replacement for
// bare `assert(...)`, which silently compiles out in Release and gives
// corruption three more queries to propagate before anything notices.
//
//   OPWAT_ASSERT(cond, msg)      precondition / call-contract check
//   OPWAT_INVARIANT(cond, msg)   internal data-structure consistency
//   OPWAT_UNREACHABLE(msg)       marks a branch that must never run
//
// Activation: OPWAT_ASSERT and OPWAT_INVARIANT are compiled in when
// NDEBUG is off (any Debug build) OR when the build defines OPWAT_AUDIT
// (the `-DOPWAT_AUDIT=ON` CMake option used by the CI Debug/sanitizer
// lanes).  In plain Release builds they expand to `((void)0)` and the
// condition is NOT evaluated, so checks may be arbitrarily deep as long
// as they are side-effect-free.  OPWAT_UNREACHABLE is active in every
// build: reaching it is a bug by definition, and throwing beats UB.
//
// A violated contract throws util::contract_violation carrying the
// failed expression, the message and the file:line — tests assert on
// it, and production code never catches it (it is a programming error,
// not an input error; malformed *input* raises the typed errors in
// opwat/serve/store.hpp instead).
//
// The in-tree linter (tools/opwat_lint) bans bare `assert(` in src/ so
// new code cannot regress to checks that vanish in Release.
#pragma once

#include <stdexcept>
#include <string>

namespace opwat::util {

/// A failed OPWAT_ASSERT / OPWAT_INVARIANT / OPWAT_UNREACHABLE.
/// Derives std::logic_error: contract violations are programming
/// errors, distinct from the runtime_error hierarchy used for bad
/// input.
class contract_violation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Builds the "file:line: <kind> failed: <expr> — <msg>" diagnostic and
/// throws contract_violation.  Out-of-line so the macro expansion at
/// every check site stays one call.
[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const char* file, int line,
                                const std::string& msg);

}  // namespace opwat::util

#if !defined(NDEBUG) || defined(OPWAT_AUDIT)
#define OPWAT_CONTRACTS_ACTIVE 1
#else
#define OPWAT_CONTRACTS_ACTIVE 0
#endif

#if OPWAT_CONTRACTS_ACTIVE
#define OPWAT_ASSERT(cond, msg)                                              \
  ((cond) ? static_cast<void>(0)                                             \
          : ::opwat::util::contract_fail("assertion", #cond, __FILE__,       \
                                         __LINE__, (msg)))
#define OPWAT_INVARIANT(cond, msg)                                           \
  ((cond) ? static_cast<void>(0)                                             \
          : ::opwat::util::contract_fail("invariant", #cond, __FILE__,       \
                                         __LINE__, (msg)))
#else
// Inactive builds do not evaluate the condition or the message, so a
// deep check (a whole recount lambda) costs nothing in Release.
#define OPWAT_ASSERT(cond, msg) static_cast<void>(0)
#define OPWAT_INVARIANT(cond, msg) static_cast<void>(0)
#endif

// Active in EVERY build type: a reached "unreachable" is never safe to
// optimize away, and throwing keeps it defined behavior.
#define OPWAT_UNREACHABLE(msg)                                               \
  ::opwat::util::contract_fail("unreachable branch", "OPWAT_UNREACHABLE",    \
                               __FILE__, __LINE__, (msg))
