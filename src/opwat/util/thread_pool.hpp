// A small fixed-size worker pool for data-parallel fan-out.
//
// Deliberately work-stealing-free: the only primitive is parallel_for,
// which hands out indices from a shared atomic counter.  That is exactly
// what the inference engine's shard executor needs — shards are
// independent and similar in cost, so a ticket counter beats per-worker
// deques in both simplicity and determinism of the memory-order story
// (claim via fetch_add, publish via the completion latch).
//
// Workers are started once and reused across parallel_for calls; the
// caller blocks until every index has been processed and every worker has
// checked back in, so shard state written inside the body is safely
// visible to the caller afterwards (release on the latch, acquire on the
// wait).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace opwat::util {

class thread_pool {
 public:
  /// Starts `threads` workers (0 = std::thread::hardware_concurrency()).
  explicit thread_pool(std::size_t threads = 0);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs body(i) for every i in [0, n), distributed over the workers.
  /// Blocks until all n indices completed.  If any invocation throws, the
  /// first exception is rethrown here after the loop has drained (the
  /// remaining indices still run).  Reentrant calls from inside a body
  /// are not supported.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;

  std::mutex m_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;

  // Current job: published under m_, indices then claimed lock-free.
  std::uint64_t epoch_ = 0;  ///< bumped per parallel_for; workers wait on it
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t workers_done_ = 0;
  std::exception_ptr error_;
};

}  // namespace opwat::util
