// A small fixed-size worker pool for data-parallel fan-out.
//
// Deliberately work-stealing-free: the only primitive is parallel_for,
// which hands out indices from a shared atomic counter.  That is exactly
// what the inference engine's shard executor needs — shards are
// independent and similar in cost, so a ticket counter beats per-worker
// deques in both simplicity and determinism of the memory-order story
// (claim via fetch_add, publish via the completion latch).
//
// Workers are started once and reused across parallel_for calls; the
// caller blocks until every index has been processed and every worker has
// checked back in, so shard state written inside the body is safely
// visible to the caller afterwards (release on the latch, acquire on the
// wait).
//
// All shared state is guarded by the annotated mutex below and checked
// by clang's thread-safety analysis (util/annotations.hpp); workers copy
// the job pointer out under the lock before running it, so nothing
// guarded is ever touched outside m_.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "opwat/util/annotations.hpp"

namespace opwat::util {

class thread_pool {
 public:
  /// Starts `threads` workers (0 = std::thread::hardware_concurrency()).
  explicit thread_pool(std::size_t threads = 0);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs body(i) for every i in [0, n), distributed over the workers.
  /// Blocks until all n indices completed.  If any invocation throws, the
  /// first exception is rethrown here after the loop has drained (the
  /// remaining indices still run).  Reentrant calls from inside a body
  /// are not supported.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body)
      OPWAT_EXCLUDES(m_);

  /// Like parallel_for, but body(worker, i) also receives the stable id of
  /// the worker thread running it (in [0, size())).  Workers keep their id
  /// for the whole drain, so shard-local state indexed by `worker` is never
  /// written concurrently.  A distinct name, not an overload: both shapes
  /// would otherwise be viable implicit conversions for a generic lambda.
  void parallel_for_indexed(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& body)
      OPWAT_EXCLUDES(m_);

 private:
  void worker_loop(std::size_t worker);

  std::vector<std::thread> workers_;

  annotated_mutex m_;
  std::condition_variable_any start_cv_;
  std::condition_variable_any done_cv_;
  bool stop_ OPWAT_GUARDED_BY(m_) = false;

  // Current job: published under m_ (workers copy body_/n_ out while
  // holding the lock), indices then claimed lock-free via next_.
  std::uint64_t epoch_ OPWAT_GUARDED_BY(m_) = 0;  ///< bumped per parallel_for
  const std::function<void(std::size_t)>* body_ OPWAT_GUARDED_BY(m_) = nullptr;
  const std::function<void(std::size_t, std::size_t)>* indexed_body_
      OPWAT_GUARDED_BY(m_) = nullptr;
  std::size_t n_ OPWAT_GUARDED_BY(m_) = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t workers_done_ OPWAT_GUARDED_BY(m_) = 0;
  std::exception_ptr error_ OPWAT_GUARDED_BY(m_);
};

}  // namespace opwat::util
