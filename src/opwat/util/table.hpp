// ASCII table / chart rendering for the benchmark harnesses.  Every bench
// binary reproduces one table or figure of the paper and prints it with
// these helpers so the output is directly comparable to the publication.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace opwat::util {

/// Column-aligned ASCII table with a title, header row and optional footer.
class text_table {
 public:
  explicit text_table(std::string title = {});

  text_table& header(std::vector<std::string> cols);
  text_table& row(std::vector<std::string> cols);
  text_table& footer(std::string note);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> footers_;
};

/// Horizontal ASCII bar chart: label, value, bar scaled to the max value.
class bar_chart {
 public:
  explicit bar_chart(std::string title = {}, int width = 50);
  bar_chart& bar(std::string label, double value, std::string annotation = {});
  void print(std::ostream& os) const;

 private:
  struct entry {
    std::string label;
    double value;
    std::string annotation;
  };
  std::string title_;
  int width_;
  std::vector<entry> entries_;
};

/// Prints an (x, y) series as a compact fixed-step listing, for ECDF-style
/// figures: the series is sampled at the requested x probe points.
void print_series(std::ostream& os, const std::string& name,
                  const std::vector<std::pair<double, double>>& xy,
                  const std::vector<double>& probe_points);

}  // namespace opwat::util
