#include "opwat/util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace opwat::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmt_percent(double ratio, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, ratio * 100.0);
  return buf;
}

std::string fmt_count(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  std::string digits = buf;
  std::string sign;
  if (!digits.empty() && digits[0] == '-') {
    sign = "-";
    digits.erase(0, 1);
  }
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return sign + out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.substr(0, prefix.size()) == prefix;
}

}  // namespace opwat::util
