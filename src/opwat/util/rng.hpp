// Deterministic random number generation for the opwat simulator.
//
// Everything stochastic in the library flows through `rng`, a small
// xoshiro256++ engine seeded explicitly.  Hierarchical determinism is
// provided by `fork(tag)`: a child stream whose sequence depends only on
// the parent seed and the tag, never on how many draws the parent made.
// This keeps experiments reproducible when modules are reordered.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace opwat::util {

/// SplitMix64 step; used for seeding and for stable hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stable (process-independent) hash combiner.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t v) noexcept {
  return splitmix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

/// Stable hash of a string (FNV-1a folded through splitmix64).
[[nodiscard]] std::uint64_t stable_hash(std::string_view s) noexcept;

/// Stable hash of an unordered pair; hash(a,b) == hash(b,a).
[[nodiscard]] constexpr std::uint64_t pair_hash_unordered(std::uint64_t a,
                                                          std::uint64_t b) noexcept {
  const std::uint64_t lo = a < b ? a : b;
  const std::uint64_t hi = a < b ? b : a;
  return hash_combine(splitmix64(lo), hi);
}

/// xoshiro256++ engine.  Satisfies UniformRandomBitGenerator.
class rng {
 public:
  using result_type = std::uint64_t;

  explicit rng(std::uint64_t seed = 0x5eed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Child stream derived from (parent seed, tag); independent of draw count.
  [[nodiscard]] rng fork(std::uint64_t tag) const noexcept;
  [[nodiscard]] rng fork(std::string_view tag) const noexcept;

  /// Named stream family: a child keyed by (parent seed, name, index),
  /// equal to fork(name).fork(index).  This is the per-shard primitive of
  /// the parallel executor — stream("ping", shard_key) yields the same
  /// bits for a shard no matter which thread runs it, how many shards
  /// exist, or in what order they execute.
  [[nodiscard]] rng stream(std::string_view name, std::uint64_t index) const noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Bernoulli trial.
  bool bernoulli(double p) noexcept;
  /// Exponential with the given mean (mean <= 0 returns 0).
  double exponential(double mean) noexcept;
  /// Standard normal via Box-Muller.
  double normal(double mu, double sigma) noexcept;
  /// Pareto (power-law) sample with minimum x_m and shape alpha.
  double pareto(double x_m, double alpha) noexcept;
  /// Zipf-like integer in [1, n] with exponent s (approximate, via rejection).
  std::int64_t zipf(std::int64_t n, double s) noexcept;

  /// Pick an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(std::span<const double> weights) noexcept;

  template <typename T>
  const T& pick(std::span<const T> items) noexcept {
    return items[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k >= n returns all of them).
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) noexcept;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_ = 0;
};

}  // namespace opwat::util
