// Descriptive statistics used by the measurement and evaluation modules:
// empirical CDFs, quantiles, histograms and simple summaries.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace opwat::util {

/// Empirical cumulative distribution function over double samples.
class ecdf {
 public:
  ecdf() = default;
  explicit ecdf(std::vector<double> samples);

  void add(double v);

  /// Fraction of samples <= x.  Empty ECDF evaluates to 0.
  [[nodiscard]] double at(double x) const;

  /// q-th quantile, q in [0,1] (nearest-rank).  Requires non-empty.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_ ? values_.size() : values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// (x, F(x)) pairs evaluated at each distinct sample; for plotting/printing.
  [[nodiscard]] std::vector<std::pair<double, double>> curve() const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

/// min / max / mean / median / p90 / p99 of a sample set.
struct summary {
  std::size_t count = 0;
  double min = 0, max = 0, mean = 0, median = 0, p90 = 0, p99 = 0;
};
[[nodiscard]] summary summarize(std::span<const double> samples);

/// Median of a sample set (0 for empty input).
[[nodiscard]] double median(std::span<const double> samples);

/// Fixed-width histogram over [lo, hi) with `bins` buckets;
/// out-of-range samples clamp to the edge buckets.
class histogram {
 public:
  histogram(double lo, double hi, std::size_t bins);
  void add(double v);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Counter over string categories, printable in sorted order.
class category_counter {
 public:
  void add(const std::string& key, std::size_t n = 1) { counts_[key] += n; total_ += n; }
  [[nodiscard]] std::size_t count(const std::string& key) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double fraction(const std::string& key) const;
  [[nodiscard]] const std::map<std::string, std::size_t>& items() const noexcept { return counts_; }

 private:
  std::map<std::string, std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace opwat::util
