// Deterministic fault injection: named failpoints compiled into the
// I/O paths of the store (opwat/serve/store.cpp) and the socket
// wrappers (opwat/net/tcp.cpp), armed at runtime from the
// OPWAT_FAILPOINTS environment variable or the programmatic API.
//
// A site is zero-cost when nothing is configured: OPWAT_FAILPOINT(site)
// compiles to one relaxed atomic load of the global "armed" flag, and
// only an armed registry takes the lock to evaluate trigger policies.
//
// Spec syntax (one spec per site, ';'-separated):
//
//   OPWAT_FAILPOINTS="<site>=<policy>:<action>[:<arg>][;...]"
//
//   policy    always       fire on every hit
//             one-in-N     fire each hit with probability 1/N, decided
//                          by a util::rng stream keyed on (seed, site,
//                          hit index) — the schedule is a pure function
//                          of the seed, so chaos runs replay exactly
//             after-K      fire on every hit after the first K
//             K-times      fire on the first K hits, then never again
//                          (faults that clear by themselves — the chaos
//                          lane's recovery phases rely on this)
//   action    error        the wrapped operation fails the way its real
//                          failure mode does (typed store_error io /
//                          net::socket_error / errno, per site)
//             short-write  only the first <arg> bytes of the operation
//                          happen, then it fails — the crash-mid-write
//                          primitive behind the byte-offset sweep tests
//             delay-ms     sleep <arg> milliseconds, then proceed
//             abort        std::abort() — a real crash, for tests that
//                          kill the writer process
//
// Site names must be registered in opwat/util/failpoint_sites.hpp;
// configure() rejects unknown names (and the opwat_lint
// `failpoint-naming` rule checks call sites statically).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "opwat/util/annotations.hpp"
#include "opwat/util/rng.hpp"

namespace opwat::util {

/// What an armed site told the call site to do.  `delay-ms` and `abort`
/// are handled inside evaluate() (the caller never sees them), so call
/// sites only branch on error / short_write.
enum class failpoint_action : std::uint8_t {
  off,          ///< proceed normally
  error,        ///< fail the operation the way its real failure would
  short_write,  ///< perform only the first `arg` bytes, then fail
};

struct failpoint_fire {
  failpoint_action action = failpoint_action::off;
  /// short_write: the byte cap.
  std::uint64_t arg = 0;

  [[nodiscard]] explicit operator bool() const noexcept {
    return action != failpoint_action::off;
  }
};

/// Process-wide registry of armed failpoints.  Thread-safe: evaluate()
/// may race with configure()/clear() from other threads (the chaos
/// harness re-arms sites while the server is serving).
class failpoint_registry {
 public:
  /// The process-wide instance every OPWAT_FAILPOINT site consults.
  [[nodiscard]] static failpoint_registry& instance();

  /// Parses a spec string (syntax above) and replaces the armed set.
  /// `seed` keys the one-in-N decision streams.  Throws
  /// std::invalid_argument naming the offending token on syntax errors
  /// or unregistered site names; on throw the previous configuration is
  /// kept.
  void configure(std::string_view spec, std::uint64_t seed = 0x5eed);

  /// configure() from $OPWAT_FAILPOINTS (seed from
  /// $OPWAT_FAILPOINTS_SEED when set).  Unset/empty is a no-op.
  void configure_from_env();

  /// Disarms every site (counters reset too).
  void clear();

  /// Fast-path check: false means no site is armed and evaluate() must
  /// not be called (OPWAT_FAILPOINT does this; call sites never need to).
  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Records a hit on `site` and returns what the call site must do.
  /// delay-ms sleeps here; abort aborts here.
  [[nodiscard]] failpoint_fire evaluate(std::string_view site);

  /// Diagnostics: hits (times the site was reached while armed) and
  /// fires (times the policy triggered) since the last configure/clear.
  [[nodiscard]] std::uint64_t hits(std::string_view site) const;
  [[nodiscard]] std::uint64_t fires(std::string_view site) const;

 private:
  enum class policy : std::uint8_t { always, one_in, after, times };
  enum class action : std::uint8_t { error, short_write, delay_ms, abort_process };

  struct site_state {
    std::string name;
    policy pol = policy::always;
    std::uint64_t pol_n = 0;  ///< N of one-in-N / K of after-K / K-times
    action act = action::error;
    std::uint64_t arg = 0;  ///< short-write byte cap / delay ms
    rng decide{0};          ///< one-in-N decision stream (per site)
    std::uint64_t hit_count = 0;
    std::uint64_t fire_count = 0;
  };

  mutable annotated_mutex mu_;
  std::vector<site_state> sites_ OPWAT_GUARDED_BY(mu_);
  std::atomic<bool> armed_{false};
};

/// The injection-site macro.  Usage:
///
///   if (const auto fp = OPWAT_FAILPOINT("store-save-write"); fp) { ... }
///
/// Disarmed cost: one relaxed atomic load.  The argument must be a
/// string literal naming a site from failpoint_sites.hpp (statically
/// linted).
#define OPWAT_FAILPOINT(site)                                    \
  (::opwat::util::failpoint_registry::instance().armed()         \
       ? ::opwat::util::failpoint_registry::instance().evaluate( \
             (site))                                             \
       : ::opwat::util::failpoint_fire{})

}  // namespace opwat::util
