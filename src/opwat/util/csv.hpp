// Minimal CSV reader/writer (RFC-4180-style quoting).  Used to dump the
// simulator's datasets and bench results to disk for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace opwat::util {

/// Writes rows of string fields, quoting when required.
class csv_writer {
 public:
  explicit csv_writer(std::ostream& os) : os_(os) {}
  void row(const std::vector<std::string>& fields);

 private:
  std::ostream& os_;
};

/// Parses one CSV line into fields, honouring quotes and escaped quotes.
[[nodiscard]] std::vector<std::string> parse_csv_line(std::string_view line);

}  // namespace opwat::util
