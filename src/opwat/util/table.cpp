#include "opwat/util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "opwat/util/strings.hpp"

namespace opwat::util {

text_table::text_table(std::string title) : title_(std::move(title)) {}

text_table& text_table::header(std::vector<std::string> cols) {
  header_ = std::move(cols);
  return *this;
}

text_table& text_table::row(std::vector<std::string> cols) {
  rows_.push_back(std::move(cols));
  return *this;
}

text_table& text_table::footer(std::string note) {
  footers_.push_back(std::move(note));
  return *this;
}

void text_table::print(std::ostream& os) const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> widths(ncols, 0);
  const auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::size_t total = 0;
  for (const auto w : widths) total += w + 3;
  const std::string rule(total > 1 ? total - 1 : 1, '-');

  if (!title_.empty()) os << title_ << '\n';
  os << rule << '\n';
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << c << std::string(widths[i] - c.size(), ' ');
      if (i + 1 < ncols) os << " | ";
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    os << rule << '\n';
  }
  for (const auto& r : rows_) emit(r);
  os << rule << '\n';
  for (const auto& f : footers_) os << f << '\n';
}

std::string text_table::str() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

bar_chart::bar_chart(std::string title, int width)
    : title_(std::move(title)), width_(width > 0 ? width : 50) {}

bar_chart& bar_chart::bar(std::string label, double value, std::string annotation) {
  entries_.push_back({std::move(label), value, std::move(annotation)});
  return *this;
}

void bar_chart::print(std::ostream& os) const {
  if (!title_.empty()) os << title_ << '\n';
  double vmax = 0;
  std::size_t lmax = 0;
  for (const auto& e : entries_) {
    vmax = std::max(vmax, e.value);
    lmax = std::max(lmax, e.label.size());
  }
  for (const auto& e : entries_) {
    const int n = vmax > 0 ? static_cast<int>(e.value / vmax * width_ + 0.5) : 0;
    os << e.label << std::string(lmax - e.label.size(), ' ') << " | "
       << std::string(static_cast<std::size_t>(n), '#');
    os << ' ' << fmt_double(e.value, 2);
    if (!e.annotation.empty()) os << "  (" << e.annotation << ')';
    os << '\n';
  }
}

void print_series(std::ostream& os, const std::string& name,
                  const std::vector<std::pair<double, double>>& xy,
                  const std::vector<double>& probe_points) {
  os << name << ":\n";
  for (const double x : probe_points) {
    // Step interpolation: last y with sample x' <= x.
    double y = 0.0;
    for (const auto& [px, py] : xy) {
      if (px <= x)
        y = py;
      else
        break;
    }
    os << "  x=" << fmt_double(x, 2) << "  y=" << fmt_double(y, 4) << '\n';
  }
}

}  // namespace opwat::util
