// Minimal streaming JSON writer (RFC 8259 escaping), used by the portal
// snapshot exporter.  Write-only by design: the library never parses
// untrusted JSON.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace opwat::util {

/// Escapes a string for inclusion in a JSON document (without quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Composable JSON value builder.
//
//  json_writer w;
//  w.begin_object();
//  w.key("name").value("AMS-IX");
//  w.key("members").begin_array();
//  w.value(42).value(43);
//  w.end_array();
//  w.end_object();
//  std::string doc = w.str();
//
// Misuse can only ever produce invalid JSON, so it throws
// std::logic_error instead of emitting garbage silently:
//   - key() outside an object, or while another key is pending;
//   - a value (or nested container) inside an object without a key();
//   - end_object()/end_array() mismatched with the open container, or
//     with a dangling key();
//   - any write after the top-level value closed the document.
class json_writer {
 public:
  json_writer& begin_object();
  json_writer& end_object();
  json_writer& begin_array();
  json_writer& end_array();
  json_writer& key(std::string_view k);
  json_writer& value(std::string_view v);
  json_writer& value(const char* v) { return value(std::string_view{v}); }
  json_writer& value(double v);
  json_writer& value(std::int64_t v);
  json_writer& value(std::uint64_t v);
  json_writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  json_writer& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  json_writer& value(bool v);
  json_writer& null();

  /// The finished document.  Valid once all containers are closed.
  [[nodiscard]] const std::string& str() const noexcept { return out_; }
  [[nodiscard]] bool complete() const noexcept { return depth_.empty() && !out_.empty(); }

 private:
  /// Comma/has-element bookkeeping shared by key() and values.
  void element_separator();
  /// element_separator() plus the value-position misuse checks.
  void prepare_for_value();
  [[noreturn]] static void fail(const char* what);

  std::string out_;
  // Per level: whether at least one element was emitted.
  std::vector<bool> has_element_;
  std::vector<char> depth_;  // '{' or '['
  bool pending_key_ = false;
};

}  // namespace opwat::util
