#include "opwat/util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace opwat::util {

std::uint64_t stable_hash(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

rng::rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x++);
}

std::uint64_t rng::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

rng rng::fork(std::uint64_t tag) const noexcept {
  return rng{hash_combine(seed_, tag)};
}

rng rng::fork(std::string_view tag) const noexcept {
  return fork(stable_hash(tag));
}

rng rng::stream(std::string_view name, std::uint64_t index) const noexcept {
  return fork(stable_hash(name)).fork(index);
}

double rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::int64_t rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection-free Lemire-style bounded draw is overkill here; modulo bias is
  // negligible for the ranges the simulator uses, but avoid it anyway.
  const std::uint64_t threshold = (~range + 1) % range;  // (2^64 - range) % range
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % range);
  }
}

bool rng::bernoulli(double p) noexcept { return uniform01() < p; }

double rng::exponential(double mean) noexcept {
  if (mean <= 0.0) return 0.0;
  return -mean * std::log1p(-uniform01());
}

double rng::normal(double mu, double sigma) noexcept {
  const double u1 = 1.0 - uniform01();
  const double u2 = uniform01();
  return mu + sigma * std::sqrt(-2.0 * std::log(u1)) *
                  std::cos(2.0 * std::numbers::pi * u2);
}

double rng::pareto(double x_m, double alpha) noexcept {
  return x_m / std::pow(1.0 - uniform01(), 1.0 / alpha);
}

std::int64_t rng::zipf(std::int64_t n, double s) noexcept {
  if (n <= 1) return 1;
  // Inverse-CDF on a discretized power law; fine for simulation purposes.
  const double u = uniform01();
  const double x = std::pow(static_cast<double>(n), 1.0 - s);
  const double v = std::pow(u * (x - 1.0) + 1.0, 1.0 / (1.0 - s));
  const auto k = static_cast<std::int64_t>(v);
  return std::clamp<std::int64_t>(k, 1, n);
}

std::size_t rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += w > 0 ? w : 0;
  if (total <= 0.0) return 0;
  double r = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> rng::sample_indices(std::size_t n, std::size_t k) noexcept {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  if (k >= n) return idx;
  // Partial Fisher-Yates.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace opwat::util
