#include "opwat/util/thread_pool.hpp"

#include <algorithm>

namespace opwat::util {

thread_pool::thread_pool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

thread_pool::~thread_pool() {
  {
    const mutex_lock lock{m_};
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void thread_pool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    // Copy the job out under the lock; the epoch protocol guarantees
    // the caller cannot republish body_/n_ until every worker has
    // checked back in below, so the copies stay valid for the drain.
    const std::function<void(std::size_t)>* body = nullptr;
    const std::function<void(std::size_t, std::size_t)>* indexed_body = nullptr;
    std::size_t n = 0;
    {
      mutex_lock lock{m_};
      while (!stop_ && epoch_ == seen) start_cv_.wait(lock);
      if (stop_) return;
      seen = epoch_;
      body = body_;
      indexed_body = indexed_body_;
      n = n_;
    }
    // Drain the ticket counter.  Every worker runs until no indices are
    // left, then checks in; the caller resumes only after all check-ins,
    // so no worker can still be touching job state when the next
    // parallel_for republishes it.
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        if (indexed_body)
          (*indexed_body)(worker, i);
        else
          (*body)(i);
      } catch (...) {
        const mutex_lock lock{m_};
        if (!error_) error_ = std::current_exception();
      }
    }
    {
      const mutex_lock lock{m_};
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void thread_pool::parallel_for(std::size_t n,
                               const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  {
    const mutex_lock lock{m_};
    body_ = &body;
    indexed_body_ = nullptr;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    workers_done_ = 0;
    error_ = nullptr;
    ++epoch_;
  }
  start_cv_.notify_all();

  std::exception_ptr err;
  {
    mutex_lock lock{m_};
    while (workers_done_ != workers_.size()) done_cv_.wait(lock);
    body_ = nullptr;
    err = error_;
  }
  if (err) std::rethrow_exception(err);
}

void thread_pool::parallel_for_indexed(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  {
    const mutex_lock lock{m_};
    body_ = nullptr;
    indexed_body_ = &body;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    workers_done_ = 0;
    error_ = nullptr;
    ++epoch_;
  }
  start_cv_.notify_all();

  std::exception_ptr err;
  {
    mutex_lock lock{m_};
    while (workers_done_ != workers_.size()) done_cv_.wait(lock);
    indexed_body_ = nullptr;
    err = error_;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace opwat::util
