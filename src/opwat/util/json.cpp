#include "opwat/util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace opwat::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void json_writer::fail(const char* what) {
  throw std::logic_error(std::string{"json_writer: "} + what);
}

void json_writer::element_separator() {
  if (!depth_.empty() && has_element_.back()) out_ += ',';
  if (!has_element_.empty()) has_element_.back() = true;
}

void json_writer::prepare_for_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!depth_.empty() && depth_.back() == '{')
    fail("value inside an object requires a key()");
  if (depth_.empty() && !out_.empty()) fail("document is already complete");
  element_separator();
}

json_writer& json_writer::begin_object() {
  prepare_for_value();
  out_ += '{';
  depth_.push_back('{');
  has_element_.push_back(false);
  return *this;
}

json_writer& json_writer::end_object() {
  if (pending_key_) fail("end_object() with a dangling key()");
  if (depth_.empty() || depth_.back() != '{')
    fail("end_object() without an open object");
  out_ += '}';
  depth_.pop_back();
  has_element_.pop_back();
  return *this;
}

json_writer& json_writer::begin_array() {
  prepare_for_value();
  out_ += '[';
  depth_.push_back('[');
  has_element_.push_back(false);
  return *this;
}

json_writer& json_writer::end_array() {
  if (pending_key_) fail("end_array() with a dangling key()");
  if (depth_.empty() || depth_.back() != '[')
    fail("end_array() without an open array");
  out_ += ']';
  depth_.pop_back();
  has_element_.pop_back();
  return *this;
}

json_writer& json_writer::key(std::string_view k) {
  if (pending_key_) fail("key() while another key is pending");
  if (depth_.empty() || depth_.back() != '{') fail("key() outside an object");
  element_separator();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

json_writer& json_writer::value(std::string_view v) {
  prepare_for_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

json_writer& json_writer::value(double v) {
  prepare_for_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out_ += buf;
  return *this;
}

json_writer& json_writer::value(std::int64_t v) {
  prepare_for_value();
  out_ += std::to_string(v);
  return *this;
}

json_writer& json_writer::value(std::uint64_t v) {
  prepare_for_value();
  out_ += std::to_string(v);
  return *this;
}

json_writer& json_writer::value(bool v) {
  prepare_for_value();
  out_ += v ? "true" : "false";
  return *this;
}

json_writer& json_writer::null() {
  prepare_for_value();
  out_ += "null";
  return *this;
}

}  // namespace opwat::util
