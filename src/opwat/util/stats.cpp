#include "opwat/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace opwat::util {

ecdf::ecdf(std::vector<double> samples) : values_(std::move(samples)), sorted_(false) {
  ensure_sorted();
}

void ecdf::add(double v) {
  values_.push_back(v);
  sorted_ = false;
}

void ecdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double ecdf::at(double x) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) / static_cast<double>(values_.size());
}

double ecdf::quantile(double q) const {
  if (values_.empty()) throw std::invalid_argument{"ecdf::quantile on empty ECDF"};
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = std::max(1.0, std::ceil(q * static_cast<double>(values_.size())));
  const auto idx = static_cast<std::size_t>(rank) - 1;
  return values_[std::min(idx, values_.size() - 1)];
}

double ecdf::min() const {
  ensure_sorted();
  return values_.empty() ? 0.0 : values_.front();
}

double ecdf::max() const {
  ensure_sorted();
  return values_.empty() ? 0.0 : values_.back();
}

std::vector<std::pair<double, double>> ecdf::curve() const {
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  const double n = static_cast<double>(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i + 1 < values_.size() && values_[i + 1] == values_[i]) continue;
    out.emplace_back(values_[i], static_cast<double>(i + 1) / n);
  }
  return out;
}

summary summarize(std::span<const double> samples) {
  summary s;
  if (samples.empty()) return s;
  std::vector<double> v(samples.begin(), samples.end());
  std::sort(v.begin(), v.end());
  s.count = v.size();
  s.min = v.front();
  s.max = v.back();
  double sum = 0;
  for (const double x : v) sum += x;
  s.mean = sum / static_cast<double>(v.size());
  const auto q = [&](double p) {
    const auto idx = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(v.size())) - 1);
    return v[std::min(idx, v.size() - 1)];
  };
  s.median = q(0.5);
  s.p90 = q(0.9);
  s.p99 = q(0.99);
  return s;
}

double median(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  std::vector<double> v(samples.begin(), samples.end());
  const auto mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lo + hi) / 2.0;
}

histogram::histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) throw std::invalid_argument{"histogram: bad range"};
}

void histogram::add(double v) {
  const double t = (v - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double histogram::bin_hi(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(counts_.size());
}

std::size_t category_counter::count(const std::string& key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

double category_counter::fraction(const std::string& key) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(key)) / static_cast<double>(total_);
}

}  // namespace opwat::util
