// Temporal dimension of the ecosystem (§6.3 / Fig. 12a).
//
// The generator can stamp every membership with a join month and an
// optional leave month so that monthly snapshots reproduce the paper's
// findings: remote peers join roughly twice as fast as local peers
// (in absolute new-member counts), churn ~25% more, and a handful of
// members switch from a remote to a local interconnection.
#pragma once

#include <functional>
#include <vector>

#include "opwat/util/rng.hpp"
#include "opwat/world/world.hpp"

namespace opwat::world {

struct gen_config;  // from generator.hpp

/// Stamps join/leave months onto the memberships of `w` (months taken from
/// cfg.months).  Also materializes remote->local switches as a leave plus a
/// colocated re-join of the same AS at the same IXP.
void assign_membership_history(world& w, const gen_config& cfg, util::rng& r);

struct monthly_counts {
  int month = 0;
  std::size_t local_active = 0, remote_active = 0;
  std::size_t local_joins = 0, remote_joins = 0;
  std::size_t local_leaves = 0, remote_leaves = 0;
};

/// Builds the per-month series using the caller's labelling function
/// (ground truth or pipeline inference), so measured and true growth can
/// be compared like the paper compares inference vs. operator reports.
[[nodiscard]] std::vector<monthly_counts> timeline(
    const world& w, int months,
    const std::function<bool(const membership&)>& is_remote_fn);

/// Count of memberships that left as remote and re-joined as local in the
/// same month (the paper found 18 such switches).
[[nodiscard]] std::size_t count_remote_to_local_switches(const world& w);

}  // namespace opwat::world
