// Embedded table of real-world cities used to place facilities, IXPs and
// AS headquarters.  Weights reflect rough interconnection-hub importance
// (Amsterdam/Frankfurt/London-class hubs host the largest IXPs), so the
// generated ecosystem has the same geographic skew the paper measures.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

#include "opwat/geo/geodesic.hpp"

namespace opwat::world {

struct city_info {
  std::string_view name;
  std::string_view country;  // ISO-3166 alpha-2
  geo::geo_point location;
  double hub_weight;  // relative probability mass for hosting infrastructure
};

/// The full embedded city table (sorted by descending hub weight).
[[nodiscard]] std::span<const city_info> city_table() noexcept;

/// Lookup by name; nullptr when absent.
[[nodiscard]] const city_info* find_city(std::string_view name) noexcept;

}  // namespace opwat::world
