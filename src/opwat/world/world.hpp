// Ground-truth model of the simulated interconnection ecosystem: cities,
// colocation facilities, IXPs (including wide-area IXPs and federations),
// autonomous systems, port resellers, border routers, IXP memberships and
// private interconnects.
//
// The inference pipeline NEVER reads this structure directly; it consumes
// the noisy database views (opwat::db) and the measurement engines
// (opwat::measure), exactly as the paper's methodology consumes PeeringDB,
// IXP websites, pings and traceroutes.  The ground truth is used only for
// (a) driving the simulators and (b) scoring inferences.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "opwat/geo/geodesic.hpp"
#include "opwat/net/ipv4.hpp"

namespace opwat::world {

using city_id = std::uint32_t;
using facility_id = std::uint32_t;
using ixp_id = std::uint32_t;
using as_id = std::uint32_t;
using reseller_id = std::uint32_t;
using router_id = std::uint32_t;
using membership_id = std::uint32_t;
using federation_id = std::uint32_t;

inline constexpr std::uint32_t k_invalid = std::numeric_limits<std::uint32_t>::max();

struct city {
  city_id id = k_invalid;
  std::string name;
  std::string country;
  geo::geo_point location;
  double hub_weight = 1.0;
};

struct facility {
  facility_id id = k_invalid;
  std::string name;
  city_id city = k_invalid;
  geo::geo_point location;
};

/// How a member's port reaches the IXP switching fabric.
enum class attachment : std::uint8_t {
  colocated,   // router in an IXP facility, physical port  -> local
  reseller,    // virtual port through a port reseller      -> remote
  long_cable,  // own/carrier L2 circuit into the IXP       -> remote
  federation,  // access via a federated sister IXP         -> remote
};

[[nodiscard]] constexpr bool is_remote(attachment a) noexcept {
  return a != attachment::colocated;
}

[[nodiscard]] std::string_view to_string(attachment a) noexcept;

enum class port_kind : std::uint8_t { physical, virtual_reseller };

struct reseller {
  reseller_id id = k_invalid;
  std::string name;
  net::asn asn;
  std::vector<ixp_id> ixps;               // where it sells ports
  std::vector<facility_id> handoff_facs;  // one handoff facility per IXP (parallel)
};

struct ixp {
  ixp_id id = k_invalid;
  std::string name;
  city_id home_city = k_invalid;
  std::vector<facility_id> facilities;  // switching-fabric sites
  net::prefix peering_lan;
  net::ipv4_addr route_server_ip;
  double min_physical_capacity_gbps = 1.0;  // Cmin from the pricing page
  std::vector<double> port_options_gbps;    // physical port menu
  bool supports_resellers = true;
  std::optional<federation_id> federation;
  bool has_looking_glass = false;
  bool publishes_member_list = false;  // machine-readable Euro-IX export
  bool publishes_port_types = false;   // physical-vs-virtual visible on website
};

struct autonomous_system {
  as_id id = k_invalid;
  net::asn asn;
  std::string name;
  city_id hq_city = k_invalid;
  std::string country;
  std::vector<facility_id> facilities;  // true colocation presence
  std::vector<net::prefix> routed_prefixes;
  net::prefix backbone;  // internal addressing used on router interfaces
  int customer_cone = 1;
  double traffic_gbps = 0.1;
  std::int64_t user_population = 0;
};

/// A border router.  `facility` is set when the router sits in a known
/// colocation facility; otherwise the router is at the AS's premises in
/// `city` (typical for reseller customers).
struct router {
  router_id id = k_invalid;
  as_id owner = k_invalid;
  std::optional<facility_id> facility;
  city_id city = k_invalid;
  std::vector<net::ipv4_addr> interfaces;  // all non-IXP-LAN interfaces
};

struct membership {
  membership_id id = k_invalid;
  as_id member = k_invalid;
  ixp_id ixp = k_invalid;
  router_id router = k_invalid;
  net::ipv4_addr interface_ip;  // address on the IXP peering LAN
  double port_capacity_gbps = 1.0;
  port_kind port = port_kind::physical;
  attachment how = attachment::colocated;
  std::optional<reseller_id> via;
  /// Facility where the member's circuit lands on the IXP fabric.
  facility_id attach_facility = k_invalid;
  /// Month index when the member joined (0 = start of the simulation).
  int joined_month = 0;
  /// Month index when the member left, or -1 while active.
  int left_month = -1;
};

/// A private (non-IXP) interconnection between two routers colocated in
/// the same facility (or tethered across nearby facilities).
struct private_link {
  as_id a = k_invalid, b = k_invalid;
  router_id router_a = k_invalid, router_b = k_invalid;
  facility_id fac = k_invalid;
  net::ipv4_addr ip_a, ip_b;  // the /31 endpoints, from each AS's backbone
  bool tethered = false;      // true when the ends are in different facilities
};

class world {
 public:
  std::vector<city> cities;
  std::vector<facility> facilities;
  std::vector<ixp> ixps;
  std::vector<autonomous_system> ases;
  std::vector<reseller> resellers;
  std::vector<router> routers;
  std::vector<membership> memberships;
  std::vector<private_link> private_links;

  /// Rebuilds all lookup indices; must be called after structural changes.
  void finalize();

  // --- ground-truth queries -------------------------------------------------

  /// Definition 1: remote iff not colocated or via a reseller.
  [[nodiscard]] bool truly_remote(const membership& m) const noexcept {
    return is_remote(m.how);
  }

  /// Geographic position of the member's router for this membership.
  [[nodiscard]] geo::geo_point member_router_location(const membership& m) const;

  /// Geographic position of a router.
  [[nodiscard]] geo::geo_point router_location(const router& r) const;

  /// Facility coordinates of an IXP's switching sites.
  [[nodiscard]] std::vector<geo::geo_point> ixp_facility_points(ixp_id id) const;

  /// Facility coordinates of an AS's colocation presence.
  [[nodiscard]] std::vector<geo::geo_point> as_facility_points(as_id id) const;

  // --- indices ---------------------------------------------------------------

  [[nodiscard]] const std::vector<membership_id>& memberships_of_ixp(ixp_id id) const;
  [[nodiscard]] const std::vector<membership_id>& memberships_of_as(as_id id) const;
  [[nodiscard]] std::optional<as_id> as_by_asn(net::asn a) const;
  [[nodiscard]] std::optional<membership_id> membership_by_interface(net::ipv4_addr ip) const;
  [[nodiscard]] std::optional<router_id> router_by_interface(net::ipv4_addr ip) const;
  [[nodiscard]] std::optional<ixp_id> ixp_of_lan_address(net::ipv4_addr ip) const;

  /// Memberships active at the given month (joined <= month, not yet left).
  [[nodiscard]] bool active_at(const membership& m, int month) const noexcept {
    return m.joined_month <= month && (m.left_month < 0 || m.left_month > month);
  }

 private:
  std::vector<std::vector<membership_id>> by_ixp_;
  std::vector<std::vector<membership_id>> by_as_;
  std::unordered_map<std::uint32_t, as_id> asn_index_;
  std::unordered_map<net::ipv4_addr, membership_id> iface_index_;
  std::unordered_map<net::ipv4_addr, router_id> router_iface_index_;
  net::lpm_table<ixp_id> lan_lookup_;
  static const std::vector<membership_id> empty_;
};

}  // namespace opwat::world
