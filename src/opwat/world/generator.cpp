#include "opwat/world/generator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "opwat/geo/metro.hpp"
#include "opwat/net/ip_alloc.hpp"
#include "opwat/util/rng.hpp"
#include "opwat/world/cities.hpp"
#include "opwat/world/evolution.hpp"

namespace opwat::world {

namespace {

using util::rng;

struct gen_state {
  const gen_config& cfg;
  world w;
  rng root;
  net::address_plan plan;

  std::vector<std::vector<facility_id>> city_facilities;  // per city
  std::vector<std::vector<as_id>> city_ases;              // hq index
  std::vector<std::vector<double>> city_dist;             // pairwise km
  // Facilities an AS must never acquire (footprints of IXPs where the AS
  // peers over a long cable or a federation; acquiring one would flip the
  // ground-truth label).
  std::vector<std::set<facility_id>> as_forbidden_facs;
  // Backbone interface allocation cursor per AS.
  std::vector<std::uint64_t> as_iface_cursor;
  // Members already attached per IXP (to avoid duplicates).
  std::vector<std::unordered_set<as_id>> ixp_members;
  // Resellers serving each IXP.
  std::vector<std::vector<reseller_id>> ixp_resellers;
  // Per-IXP next free LAN host index.
  std::vector<std::uint64_t> lan_cursor;

  explicit gen_state(const gen_config& c) : cfg(c), root(c.seed) {}
};

double geodesic_between_cities(const gen_state& st, city_id a, city_id b) {
  return st.city_dist[a][b];
}

net::ipv4_addr next_backbone_iface(gen_state& st, as_id as) {
  auto& cur = st.as_iface_cursor[as];
  const auto& bb = st.w.ases[as].backbone;
  if (cur >= bb.size()) throw std::runtime_error{"generator: AS backbone exhausted"};
  return bb.at(cur++);
}

void make_cities(gen_state& st) {
  const auto table = city_table();
  const std::size_t n = std::min(st.cfg.n_cities, table.size());
  if (n == 0) throw std::runtime_error{"generator: need at least one city"};
  st.w.cities.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    city c;
    c.id = static_cast<city_id>(i);
    c.name = std::string{table[i].name};
    c.country = std::string{table[i].country};
    c.location = table[i].location;
    c.hub_weight = table[i].hub_weight;
    st.w.cities.push_back(std::move(c));
  }
  st.city_dist.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = geo::geodesic_km(st.w.cities[i].location, st.w.cities[j].location);
      st.city_dist[i][j] = st.city_dist[j][i] = d;
    }
}

void make_facilities(gen_state& st) {
  auto r = st.root.fork("facilities");
  st.city_facilities.assign(st.w.cities.size(), {});
  for (const auto& c : st.w.cities) {
    const double expected = std::max(1.0, c.hub_weight * st.cfg.facilities_per_hub_weight);
    const auto count = static_cast<std::size_t>(
        std::max<std::int64_t>(1, r.uniform_int(static_cast<std::int64_t>(expected * 0.6),
                                                static_cast<std::int64_t>(expected * 1.4) + 1)));
    for (std::size_t k = 0; k < count; ++k) {
      facility f;
      f.id = static_cast<facility_id>(st.w.facilities.size());
      f.name = c.name + " DC" + std::to_string(k + 1);
      f.city = c.id;
      f.location = geo::offset_km(c.location, r.uniform(0.0, 360.0), r.uniform(1.0, 22.0));
      st.city_facilities[c.id].push_back(f.id);
      st.w.facilities.push_back(std::move(f));
    }
  }
}

city_id pick_city_weighted(gen_state& st, rng& r) {
  std::vector<double> w(st.w.cities.size());
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = st.w.cities[i].hub_weight;
  return static_cast<city_id>(r.weighted_index(w));
}

std::vector<std::size_t> ixp_member_targets(const gen_state& st, rng& r) {
  std::vector<std::size_t> targets(st.cfg.n_ixps);
  for (std::size_t rank = 0; rank < st.cfg.n_ixps; ++rank) {
    const double base = static_cast<double>(st.cfg.largest_ixp_members) *
                        std::pow(static_cast<double>(rank + 1), -st.cfg.zipf_exponent);
    const double noisy = base * r.uniform(0.85, 1.15);
    targets[rank] = std::max<std::size_t>(st.cfg.smallest_ixp_members,
                                          static_cast<std::size_t>(noisy));
  }
  return targets;
}

void make_ixps(gen_state& st, const std::vector<std::size_t>& member_targets) {
  auto r = st.root.fork("ixps");
  st.lan_cursor.assign(st.cfg.n_ixps, 10);  // .1 reserved for the route server
  std::map<std::string, int> per_city_count;

  for (std::size_t rank = 0; rank < st.cfg.n_ixps; ++rank) {
    ixp x;
    x.id = static_cast<ixp_id>(rank);
    x.home_city = pick_city_weighted(st, r);
    const auto& hc = st.w.cities[x.home_city];
    const int nth = ++per_city_count[hc.name];
    x.name = "IX-" + hc.name + (nth > 1 ? "-" + std::to_string(nth) : "");

    // Home-city facilities: more for bigger IXPs.
    const auto& home_facs = st.city_facilities[x.home_city];
    const std::size_t n_home = std::min<std::size_t>(
        home_facs.size(),
        1 + static_cast<std::size_t>(r.uniform_int(0, rank < 10 ? 3 : 1)));
    for (const auto idx : r.sample_indices(home_facs.size(), n_home))
      x.facilities.push_back(home_facs[idx]);

    // Wide-area IXPs extend to facilities in other cities.
    if (r.bernoulli(st.cfg.wide_area_fraction)) {
      std::vector<city_id> reachable;
      for (const auto& c : st.w.cities)
        if (c.id != x.home_city &&
            geodesic_between_cities(st, x.home_city, c.id) < st.cfg.wide_area_reach_km)
          reachable.push_back(c.id);
      r.shuffle(reachable);
      const std::size_t extra = std::min<std::size_t>(
          reachable.size(),
          2 + static_cast<std::size_t>(
                  r.uniform_int(0, static_cast<std::int64_t>(st.cfg.wide_area_extra_cities_max) - 2)));
      for (std::size_t i = 0; i < extra; ++i) {
        const auto& cf = st.city_facilities[reachable[i]];
        x.facilities.push_back(cf[static_cast<std::size_t>(
            r.uniform_int(0, static_cast<std::int64_t>(cf.size()) - 1))]);
      }
    }

    // Peering LAN sized to the expected member count.
    const std::size_t target = member_targets[rank];
    const int lan_len = target <= 220 ? 24 : (target <= 480 ? 23 : 22);
    x.peering_lan = st.plan.ixp_lans.allocate(lan_len);
    x.route_server_ip = x.peering_lan.at(1);

    x.min_physical_capacity_gbps = r.bernoulli(st.cfg.ten_gig_min_capacity_fraction) ? 10.0 : 1.0;
    if (x.min_physical_capacity_gbps >= 10.0)
      x.port_options_gbps = {10.0, 40.0, 100.0};
    else
      x.port_options_gbps = {1.0, 10.0, 40.0, 100.0};

    x.supports_resellers = r.bernoulli(st.cfg.reseller_support_fraction);
    x.has_looking_glass = r.bernoulli(st.cfg.looking_glass_fraction);
    x.publishes_member_list = r.bernoulli(st.cfg.publishes_member_list_fraction);
    x.publishes_port_types = r.bernoulli(st.cfg.publishes_port_types_fraction);
    st.w.ixps.push_back(std::move(x));
  }

  // Federations: pair distinct IXPs in different metro areas ("DE-CIX
  // Frankfurt / DE-CIX New York" style).  Each pair shares a federation id.
  federation_id next_fed = 0;
  const auto n_pairs = static_cast<std::size_t>(
      st.cfg.federation_pair_fraction * static_cast<double>(st.cfg.n_ixps) / 2.0);
  for (std::size_t p = 0; p < n_pairs; ++p) {
    const auto a = static_cast<std::size_t>(r.uniform_int(0, static_cast<std::int64_t>(st.cfg.n_ixps) - 1));
    const auto b = static_cast<std::size_t>(r.uniform_int(0, static_cast<std::int64_t>(st.cfg.n_ixps) - 1));
    if (a == b) continue;
    auto& xa = st.w.ixps[a];
    auto& xb = st.w.ixps[b];
    if (xa.federation || xb.federation) continue;
    if (geodesic_between_cities(st, xa.home_city, xb.home_city) < 200.0) continue;
    xa.federation = next_fed;
    xb.federation = next_fed;
    ++next_fed;
  }
}

void make_resellers(gen_state& st) {
  auto r = st.root.fork("resellers");
  st.ixp_resellers.assign(st.w.ixps.size(), {});
  for (std::size_t k = 0; k < st.cfg.n_resellers; ++k) {
    reseller rs;
    rs.id = static_cast<reseller_id>(k);
    rs.name = "Reseller-" + std::to_string(k + 1);
    rs.asn = net::asn{static_cast<std::uint32_t>(900000 + k)};
    // Serve 2..6 IXPs, weighted toward the big (low-rank) ones that allow
    // reselling.
    std::vector<double> weights(st.w.ixps.size(), 0.0);
    for (const auto& x : st.w.ixps)
      if (x.supports_resellers)
        weights[x.id] = 1.0 / std::sqrt(static_cast<double>(x.id) + 1.0);
    const auto n_served = static_cast<std::size_t>(r.uniform_int(2, 6));
    for (std::size_t i = 0; i < n_served; ++i) {
      const auto pick = static_cast<ixp_id>(r.weighted_index(weights));
      // opwat-lint: allow(float-compare): exact sentinel check — the only
      // zero weights are the 0.0 literals assigned right below
      if (weights[pick] == 0.0) continue;
      weights[pick] = 0.0;  // no duplicates
      const auto& facs = st.w.ixps[pick].facilities;
      rs.ixps.push_back(pick);
      rs.handoff_facs.push_back(
          facs[static_cast<std::size_t>(r.uniform_int(0, static_cast<std::int64_t>(facs.size()) - 1))]);
      st.ixp_resellers[pick].push_back(rs.id);
    }
    st.w.resellers.push_back(std::move(rs));
  }
}

void make_ases(gen_state& st) {
  auto r = st.root.fork("ases");
  st.city_ases.assign(st.w.cities.size(), {});
  st.as_forbidden_facs.assign(st.cfg.n_ases, {});
  st.as_iface_cursor.assign(st.cfg.n_ases, 0);
  st.w.ases.reserve(st.cfg.n_ases);
  for (std::size_t i = 0; i < st.cfg.n_ases; ++i) {
    autonomous_system as;
    as.id = static_cast<as_id>(i);
    as.asn = net::asn{static_cast<std::uint32_t>(1000 + i)};
    as.name = "AS-" + std::to_string(as.asn.value);
    as.hq_city = pick_city_weighted(st, r);
    as.country = st.w.cities[as.hq_city].country;
    as.customer_cone = static_cast<int>(std::min(50000.0, r.pareto(1.0, 1.05)));
    as.traffic_gbps = std::min(50000.0, std::exp(r.normal(0.0, 2.2)));
    as.user_population =
        static_cast<std::int64_t>(std::min(3.0e8, as.customer_cone * std::exp(r.normal(9.0, 1.5))));
    as.backbone = st.plan.backbone.allocate(20);
    const auto n_routed = static_cast<std::size_t>(r.uniform_int(1, 5));
    for (std::size_t p = 0; p < n_routed; ++p)
      as.routed_prefixes.push_back(st.plan.routed.allocate(23));
    // Colocation presence: ~60% single facility (their home market).
    const auto& home_facs = st.city_facilities[as.hq_city];
    const auto home_fac =
        home_facs[static_cast<std::size_t>(r.uniform_int(0, static_cast<std::int64_t>(home_facs.size()) - 1))];
    as.facilities.push_back(home_fac);
    if (!r.bernoulli(st.cfg.single_facility_as_fraction)) {
      const auto extra =
          static_cast<std::size_t>(std::min(29.0, r.pareto(1.0, 1.2)));
      for (std::size_t e = 0; e < extra; ++e) {
        const auto cid = pick_city_weighted(st, r);
        const auto& cf = st.city_facilities[cid];
        const auto fac =
            cf[static_cast<std::size_t>(r.uniform_int(0, static_cast<std::int64_t>(cf.size()) - 1))];
        if (std::find(as.facilities.begin(), as.facilities.end(), fac) == as.facilities.end())
          as.facilities.push_back(fac);
      }
    }
    st.city_ases[as.hq_city].push_back(as.id);
    st.w.ases.push_back(std::move(as));
  }
}

bool as_colocated_with_ixp(const gen_state& st, as_id as, const ixp& x) {
  const auto& facs = st.w.ases[as].facilities;
  for (const auto f : x.facilities)
    if (std::find(facs.begin(), facs.end(), f) != facs.end()) return true;
  return false;
}

/// Samples a local port capacity from the IXP's physical menu.
double local_port_capacity(const gen_state& st, const ixp& x, as_id as, rng& r) {
  const double traffic = st.w.ases[as].traffic_gbps;
  std::vector<double> weights;
  for (const double c : x.port_options_gbps) {
    double wgt = c <= x.min_physical_capacity_gbps ? 0.50 : (c <= 10.0 ? 0.33 : (c <= 40.0 ? 0.10 : 0.07));
    if (c >= 100.0 && traffic < 50.0) wgt *= 0.05;  // 100GE only for heavy hitters
    weights.push_back(wgt);
  }
  return x.port_options_gbps[r.weighted_index(weights)];
}

membership_id add_membership(gen_state& st, ixp_id ixp, as_id as, attachment how,
                             std::optional<reseller_id> via, double capacity,
                             port_kind port, facility_id attach_fac) {
  auto& x = st.w.ixps[ixp];
  membership m;
  m.id = static_cast<membership_id>(st.w.memberships.size());
  m.member = as;
  m.ixp = ixp;
  m.how = how;
  m.via = via;
  m.port_capacity_gbps = capacity;
  m.port = port;
  m.attach_facility = attach_fac;
  auto& cursor = st.lan_cursor[ixp];
  if (cursor >= x.peering_lan.size() - 1)
    throw std::runtime_error{"generator: peering LAN exhausted for " + x.name};
  m.interface_ip = x.peering_lan.at(cursor++);
  st.ixp_members[ixp].insert(as);
  st.w.memberships.push_back(m);
  return m.id;
}

/// Picks an AS headquartered roughly `lo..hi` km from the IXP's home city.
/// Cities inside the band are weighted toward the near edge (peering
/// catchments thin out with distance) and weighted by their AS supply.
/// When the band's pool is exhausted it widens outward, so big IXPs can
/// always fill their member targets.
std::optional<as_id> pick_as_in_band(gen_state& st, rng& r, const ixp& x, double lo,
                                     double hi, int max_tries = 24) {
  for (int widen = 0; widen < 4; ++widen) {
    std::vector<city_id> band;
    std::vector<double> weights;
    for (const auto& c : st.w.cities) {
      const double d =
          c.id == x.home_city ? 0.0 : geodesic_between_cities(st, x.home_city, c.id);
      if (d < lo || d > hi || st.city_ases[c.id].empty()) continue;
      band.push_back(c.id);
      const double span = std::max(1.0, hi - lo);
      const double near_edge = 1.0 / (1.0 + 3.0 * (d - lo) / span);
      weights.push_back(near_edge * static_cast<double>(st.city_ases[c.id].size()));
    }
    for (int t = 0; !band.empty() && t < max_tries; ++t) {
      const auto cid = band[r.weighted_index(weights)];
      const auto& pool = st.city_ases[cid];
      const auto as = pool[static_cast<std::size_t>(
          r.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
      if (!st.ixp_members[x.id].contains(as)) return as;
    }
    hi = hi * 2.5 + 150.0;  // widen the catchment and retry
  }
  return std::nullopt;
}

void make_local_membership(gen_state& st, rng& r, const ixp& x, as_id as) {
  // Choose (or create) the member's presence at one of the IXP's sites,
  // honouring the long-cable consistency constraint.
  std::vector<facility_id> candidates;
  for (const auto f : x.facilities)
    if (!st.as_forbidden_facs[as].contains(f)) candidates.push_back(f);
  if (candidates.empty()) return;  // cannot be made local consistently
  // Prefer a facility the AS already occupies.
  facility_id chosen = k_invalid;
  for (const auto f : candidates)
    if (std::find(st.w.ases[as].facilities.begin(), st.w.ases[as].facilities.end(), f) !=
        st.w.ases[as].facilities.end()) {
      chosen = f;
      break;
    }
  if (chosen == k_invalid) {
    // Members concentrate at the IXP's main (home-city) sites; satellite
    // sites of wide-area IXPs host a minority.
    std::vector<double> weights;
    for (const auto f : candidates)
      weights.push_back(st.w.facilities[f].city == x.home_city ? 6.0 : 1.0);
    chosen = candidates[r.weighted_index(weights)];
  }
  auto& as_facs = st.w.ases[as].facilities;
  if (std::find(as_facs.begin(), as_facs.end(), chosen) == as_facs.end())
    as_facs.push_back(chosen);
  add_membership(st, x.id, as, attachment::colocated, std::nullopt,
                 local_port_capacity(st, x, as, r), port_kind::physical, chosen);
}

void make_remote_membership(gen_state& st, rng& r, const ixp& x, as_id as) {
  // Attachment type mix.
  const bool reseller_possible = x.supports_resellers && !st.ixp_resellers[x.id].empty();
  const bool federation_possible = x.federation.has_value();
  double p_res = reseller_possible ? st.cfg.reseller_share_among_remote : 0.0;
  double p_cable = st.cfg.long_cable_share_among_remote;
  double p_fed = federation_possible
                     ? 1.0 - st.cfg.reseller_share_among_remote - st.cfg.long_cable_share_among_remote
                     : 0.0;
  if (p_res + p_cable + p_fed <= 0.0) p_cable = 1.0;
  const double roll = r.uniform01() * (p_res + p_cable + p_fed);

  if (roll < p_res) {
    // Reseller customer: virtual port at the reseller's handoff facility.
    const auto& pool = st.ixp_resellers[x.id];
    const auto rs_id = pool[static_cast<std::size_t>(
        r.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
    const auto& rs = st.w.resellers[rs_id];
    facility_id handoff = k_invalid;
    for (std::size_t i = 0; i < rs.ixps.size(); ++i)
      if (rs.ixps[i] == x.id) handoff = rs.handoff_facs[i];
    double cap;
    if (r.bernoulli(st.cfg.fractional_port_share)) {
      static constexpr double kFractions[] = {0.1, 0.2, 0.5};
      cap = x.min_physical_capacity_gbps *
            kFractions[static_cast<std::size_t>(r.uniform_int(0, 2))];
    } else {
      cap = r.bernoulli(0.8) ? x.min_physical_capacity_gbps : 10.0;
    }
    const auto mid = add_membership(st, x.id, as, attachment::reseller, rs_id, cap,
                                    port_kind::virtual_reseller, handoff);
    // Fig. 5 artifact: a few reseller customers are colocated with the IXP
    // anyway (they buy virtual ports for the discount).
    if (r.bernoulli(st.cfg.colocated_reseller_fraction)) {
      auto& as_facs = st.w.ases[as].facilities;
      const auto f = x.facilities[static_cast<std::size_t>(
          r.uniform_int(0, static_cast<std::int64_t>(x.facilities.size()) - 1))];
      if (!st.as_forbidden_facs[as].contains(f) &&
          std::find(as_facs.begin(), as_facs.end(), f) == as_facs.end())
        as_facs.push_back(f);
    }
    (void)mid;
  } else if (roll < p_res + p_cable) {
    // Long cable: physical port, but the AS keeps no presence at the IXP.
    if (as_colocated_with_ixp(st, as, x)) return;  // would flip the label
    for (const auto f : x.facilities) st.as_forbidden_facs[as].insert(f);
    const double cap = r.bernoulli(0.7) ? x.min_physical_capacity_gbps : 10.0;
    const auto f = x.facilities[static_cast<std::size_t>(
        r.uniform_int(0, static_cast<std::int64_t>(x.facilities.size()) - 1))];
    add_membership(st, x.id, as, attachment::long_cable, std::nullopt, cap,
                   port_kind::physical, f);
  } else {
    // Federation: reached over the sister IXP's fabric.
    if (as_colocated_with_ixp(st, as, x)) return;
    for (const auto f : x.facilities) st.as_forbidden_facs[as].insert(f);
    const double cap = x.min_physical_capacity_gbps;
    const auto f = x.facilities[static_cast<std::size_t>(
        r.uniform_int(0, static_cast<std::int64_t>(x.facilities.size()) - 1))];
    add_membership(st, x.id, as, attachment::federation, std::nullopt, cap,
                   port_kind::physical, f);
  }
}

void make_memberships(gen_state& st, const std::vector<std::size_t>& member_targets) {
  auto r = st.root.fork("memberships");
  st.ixp_members.assign(st.w.ixps.size(), {});

  for (const auto& x : st.w.ixps) {
    const std::size_t target = member_targets[x.id];
    // Remote share rises with IXP size (rank 0 = largest).
    const double t = st.cfg.n_ixps > 1
                         ? static_cast<double>(x.id) / static_cast<double>(st.cfg.n_ixps - 1)
                         : 0.0;
    const double remote_share =
        st.cfg.remote_share_largest + (st.cfg.remote_share_smallest - st.cfg.remote_share_largest) * t;
    const auto n_remote = static_cast<std::size_t>(remote_share * static_cast<double>(target));
    const std::size_t n_local = target - n_remote;

    // Remote members are picked FIRST so that the same-metro remote class
    // (the paper's <1 ms remotes, Fig. 1b) can still find headquarters in
    // the IXP's home city before local members drain the pool.
    for (std::size_t i = 0; i < n_remote; ++i) {
      const double roll = r.uniform01();
      double lo = 0, hi = 90;  // same metro / next city (the <1 ms class)
      if (roll > st.cfg.remote_same_metro_fraction) {
        lo = 100;
        hi = 1300;
      }
      if (roll > st.cfg.remote_same_metro_fraction + st.cfg.remote_regional_fraction) {
        lo = 1300;
        hi = 9000;
      }
      // Remote peers are, with few exceptions, networks NOT housed in any
      // of the IXP's facilities (Fig. 5: 95% share no facility).  Retry
      // the pick when it lands on a colocated AS; the rare colocated
      // reseller customers are injected separately below.
      std::optional<as_id> as;
      for (int attempt = 0; attempt < 6; ++attempt) {
        as = pick_as_in_band(st, r, x, lo, hi);
        if (!as || !as_colocated_with_ixp(st, *as, x)) break;
        as.reset();
      }
      if (!as) continue;
      make_remote_membership(st, r, x, *as);
    }
    for (std::size_t i = 0; i < n_local; ++i) {
      // Locals: mostly regional, with some global players at big IXPs.
      const double roll = r.uniform01();
      double lo = 0, hi = 60;  // same metro
      if (roll > 0.55) {
        lo = 60;
        hi = 1500;
      }
      if (roll > 0.85) {
        lo = 1500;
        hi = 20000;
      }
      const auto as = pick_as_in_band(st, r, x, lo, hi);
      if (!as) continue;
      make_local_membership(st, r, x, *as);
    }
  }
}

void make_remote_collectors(gen_state& st) {
  auto r = st.root.fork("collectors");
  if (st.cfg.remote_collector_count == 0) return;
  // IXPs that can actually be reached through a reseller.
  std::vector<ixp_id> sellable;
  for (const auto& x : st.w.ixps)
    if (x.supports_resellers && !st.ixp_resellers[x.id].empty())
      sellable.push_back(x.id);
  if (sellable.empty()) return;

  for (std::size_t k = 0; k < st.cfg.remote_collector_count; ++k) {
    const auto as = static_cast<as_id>(
        r.uniform_int(0, static_cast<std::int64_t>(st.w.ases.size()) - 1));
    // Cap against the pool so collectors never blanket every sellable IXP
    // (which would flatten the size-dependent remote share in small worlds).
    const auto target = std::min<std::size_t>(
        static_cast<std::size_t>(
            r.uniform_int(static_cast<std::int64_t>(st.cfg.collector_min_ixps),
                          static_cast<std::int64_t>(st.cfg.collector_max_ixps))),
        std::max<std::size_t>(st.cfg.collector_min_ixps, sellable.size() / 2));
    // Collectors chase the big member bases: weight toward low-rank
    // (large) IXPs like reseller programs do, so small IXPs keep their
    // size-dependent remote share.
    std::vector<ixp_id> order;
    {
      auto pool = sellable;
      std::vector<double> weights;
      for (const auto xid : pool)
        weights.push_back(1.0 / (1.0 + static_cast<double>(xid)));
      while (!pool.empty()) {
        const auto idx = r.weighted_index(weights);
        order.push_back(pool[idx]);
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
        weights.erase(weights.begin() + static_cast<std::ptrdiff_t>(idx));
      }
    }
    std::size_t joined = 0;
    for (const auto xid : order) {
      if (joined >= target) break;
      const auto& x = st.w.ixps[xid];
      if (st.ixp_members[xid].contains(as)) continue;
      if (as_colocated_with_ixp(st, as, x)) continue;
      const auto& pool = st.ixp_resellers[xid];
      const auto rs_id = pool[static_cast<std::size_t>(
          r.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
      const auto& rs = st.w.resellers[rs_id];
      facility_id handoff = k_invalid;
      for (std::size_t i = 0; i < rs.ixps.size(); ++i)
        if (rs.ixps[i] == xid) handoff = rs.handoff_facs[i];
      // Collectors buy whatever tier is cheap at each IXP: often but not
      // always fractional.
      double cap = x.min_physical_capacity_gbps;
      if (r.bernoulli(0.6)) {
        static constexpr double kFractions[] = {0.1, 0.2, 0.5};
        cap *= kFractions[static_cast<std::size_t>(r.uniform_int(0, 2))];
      }
      add_membership(st, xid, as, attachment::reseller, rs_id, cap,
                     port_kind::virtual_reseller, handoff);
      ++joined;
    }
  }
}

void make_routers(gen_state& st) {
  auto r = st.root.fork("routers");
  // Group membership ids per AS.
  std::vector<std::vector<membership_id>> per_as(st.w.ases.size());
  for (const auto& m : st.w.memberships) per_as[m.member].push_back(m.id);

  for (const auto& as : st.w.ases) {
    const auto& mm = per_as[as.id];
    if (mm.empty()) continue;
    auto ar = r.fork(as.id);

    // Local memberships (and colocated reseller customers) get routers in
    // the facility where the AS is present.
    std::map<facility_id, router_id> fac_router;
    std::vector<membership_id> remote_pending;

    const auto router_at_facility = [&](facility_id f) -> router_id {
      const auto it = fac_router.find(f);
      if (it != fac_router.end()) return it->second;
      router rt;
      rt.id = static_cast<router_id>(st.w.routers.size());
      rt.owner = as.id;
      rt.facility = f;
      rt.city = st.w.facilities[f].city;
      rt.interfaces.push_back(next_backbone_iface(st, as.id));
      rt.interfaces.push_back(next_backbone_iface(st, as.id));
      st.w.routers.push_back(rt);
      fac_router[f] = rt.id;
      return rt.id;
    };

    for (const auto mid : mm) {
      auto& m = st.w.memberships[mid];
      if (m.how == attachment::colocated) {
        m.router = router_at_facility(m.attach_facility);
      } else if (m.how == attachment::reseller) {
        // Colocated reseller customers place their router at the shared
        // facility; the rest connect from their premises.
        facility_id shared = k_invalid;
        for (const auto f : st.w.ixps[m.ixp].facilities)
          if (std::find(as.facilities.begin(), as.facilities.end(), f) != as.facilities.end()) {
            shared = f;
            break;
          }
        if (shared != k_invalid)
          m.router = router_at_facility(shared);
        else
          remote_pending.push_back(mid);
      } else {
        remote_pending.push_back(mid);
      }
    }

    if (!remote_pending.empty()) {
      // Hybrid multi-IXP router (Fig. 3c): remote memberships ride on an
      // existing local router when allowed.
      router_id hybrid = k_invalid;
      if (!fac_router.empty() && ar.bernoulli(st.cfg.hybrid_router_prob))
        hybrid = fac_router.begin()->second;

      router_id shared_hq = k_invalid;
      const bool consolidate = ar.bernoulli(st.cfg.multi_ixp_same_router_prob);

      for (const auto mid : remote_pending) {
        auto& m = st.w.memberships[mid];
        if (hybrid != k_invalid) {
          const auto hf = st.w.routers[hybrid].facility;
          const auto& xf = st.w.ixps[m.ixp].facilities;
          const bool conflict =
              hf && std::find(xf.begin(), xf.end(), *hf) != xf.end() &&
              m.how != attachment::reseller;
          if (!conflict) {
            m.router = hybrid;
            continue;
          }
        }
        if (consolidate) {
          if (shared_hq == k_invalid) {
            router rt;
            rt.id = static_cast<router_id>(st.w.routers.size());
            rt.owner = as.id;
            rt.city = as.hq_city;
            rt.interfaces.push_back(next_backbone_iface(st, as.id));
            rt.interfaces.push_back(next_backbone_iface(st, as.id));
            st.w.routers.push_back(rt);
            shared_hq = rt.id;
          }
          m.router = shared_hq;
        } else {
          router rt;
          rt.id = static_cast<router_id>(st.w.routers.size());
          rt.owner = as.id;
          rt.city = as.hq_city;
          rt.interfaces.push_back(next_backbone_iface(st, as.id));
          rt.interfaces.push_back(next_backbone_iface(st, as.id));
          st.w.routers.push_back(rt);
          m.router = rt.id;
        }
      }
    }
  }
}

void make_private_links(gen_state& st) {
  auto r = st.root.fork("private-links");
  // Routers per facility.
  std::unordered_map<facility_id, std::vector<router_id>> per_fac;
  for (const auto& rt : st.w.routers)
    if (rt.facility) per_fac[*rt.facility].push_back(rt.id);

  // Deterministic facility order.
  std::vector<facility_id> facs;
  facs.reserve(per_fac.size());
  // opwat-lint: allow(unordered-iter): keys are sorted immediately below,
  // so the visit order never reaches the generated world
  for (const auto& [f, _] : per_fac) facs.push_back(f);
  std::sort(facs.begin(), facs.end());

  for (const auto f : facs) {
    const auto& routers_here = per_fac[f];
    const std::size_t k = routers_here.size();
    if (k < 2) continue;
    const std::size_t all_pairs = k * (k - 1) / 2;
    const auto expected = static_cast<std::size_t>(
        st.cfg.private_link_prob * static_cast<double>(all_pairs));
    const std::size_t n_links =
        std::min(st.cfg.max_private_links_per_facility, std::max<std::size_t>(expected, k >= 4 ? 2 : 0));
    std::set<std::pair<router_id, router_id>> made;
    for (std::size_t t = 0; t < n_links * 3 && made.size() < n_links; ++t) {
      auto i = static_cast<std::size_t>(r.uniform_int(0, static_cast<std::int64_t>(k) - 1));
      auto j = static_cast<std::size_t>(r.uniform_int(0, static_cast<std::int64_t>(k) - 1));
      if (i == j) continue;
      auto ra = routers_here[std::min(i, j)];
      auto rb = routers_here[std::max(i, j)];
      const auto as_a = st.w.routers[ra].owner;
      const auto as_b = st.w.routers[rb].owner;
      if (as_a == as_b) continue;
      if (!made.insert({ra, rb}).second) continue;
      private_link pl;
      pl.a = as_a;
      pl.b = as_b;
      pl.router_a = ra;
      pl.router_b = rb;
      pl.fac = f;
      pl.ip_a = next_backbone_iface(st, as_a);
      pl.ip_b = next_backbone_iface(st, as_b);
      pl.tethered = r.bernoulli(st.cfg.tethered_private_fraction);
      st.w.routers[ra].interfaces.push_back(pl.ip_a);
      st.w.routers[rb].interfaces.push_back(pl.ip_b);
      st.w.private_links.push_back(pl);
    }
  }
}

}  // namespace

world generate(const gen_config& cfg) {
  if (cfg.n_ixps == 0 || cfg.n_ases == 0)
    throw std::runtime_error{"generator: need at least one IXP and one AS"};
  gen_state st{cfg};
  make_cities(st);
  make_facilities(st);
  auto sizes_rng = st.root.fork("sizes");
  const auto targets = ixp_member_targets(st, sizes_rng);
  make_ixps(st, targets);
  make_resellers(st);
  make_ases(st);
  make_memberships(st, targets);
  make_remote_collectors(st);
  make_routers(st);
  make_private_links(st);
  if (cfg.months > 0) {
    auto er = st.root.fork("evolution");
    assign_membership_history(st.w, cfg, er);
  }
  st.w.finalize();
  return std::move(st.w);
}

gen_config tiny_config(std::uint64_t seed) {
  gen_config cfg;
  cfg.seed = seed;
  cfg.n_cities = 40;
  cfg.n_ixps = 8;
  cfg.n_ases = 260;
  cfg.n_resellers = 4;
  cfg.largest_ixp_members = 90;
  cfg.smallest_ixp_members = 12;
  cfg.remote_collector_count = 3;
  cfg.collector_min_ixps = 3;
  cfg.collector_max_ixps = 5;
  return cfg;
}

}  // namespace opwat::world
