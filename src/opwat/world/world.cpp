#include "opwat/world/world.hpp"

#include <stdexcept>

namespace opwat::world {

const std::vector<membership_id> world::empty_{};

std::string_view to_string(attachment a) noexcept {
  switch (a) {
    case attachment::colocated: return "colocated";
    case attachment::reseller: return "reseller";
    case attachment::long_cable: return "long-cable";
    case attachment::federation: return "federation";
  }
  return "?";
}

void world::finalize() {
  by_ixp_.assign(ixps.size(), {});
  by_as_.assign(ases.size(), {});
  asn_index_.clear();
  iface_index_.clear();
  router_iface_index_.clear();
  lan_lookup_ = {};

  for (const auto& as : ases) asn_index_[as.asn.value] = as.id;
  for (const auto& m : memberships) {
    if (m.ixp >= ixps.size() || m.member >= ases.size())
      throw std::logic_error{"world::finalize: membership references unknown entity"};
    by_ixp_[m.ixp].push_back(m.id);
    by_as_[m.member].push_back(m.id);
    iface_index_[m.interface_ip] = m.id;
  }
  for (const auto& x : ixps) lan_lookup_.insert(x.peering_lan, x.id);
  for (const auto& r : routers)
    for (const auto& ip : r.interfaces) router_iface_index_[ip] = r.id;
  // IXP LAN interfaces also live on the member's router.
  for (const auto& m : memberships) router_iface_index_[m.interface_ip] = m.router;
}

geo::geo_point world::router_location(const router& r) const {
  if (r.facility) return facilities.at(*r.facility).location;
  return cities.at(r.city).location;
}

geo::geo_point world::member_router_location(const membership& m) const {
  return router_location(routers.at(m.router));
}

std::vector<geo::geo_point> world::ixp_facility_points(ixp_id id) const {
  std::vector<geo::geo_point> pts;
  for (const auto f : ixps.at(id).facilities) pts.push_back(facilities.at(f).location);
  return pts;
}

std::vector<geo::geo_point> world::as_facility_points(as_id id) const {
  std::vector<geo::geo_point> pts;
  for (const auto f : ases.at(id).facilities) pts.push_back(facilities.at(f).location);
  return pts;
}

const std::vector<membership_id>& world::memberships_of_ixp(ixp_id id) const {
  if (id >= by_ixp_.size()) return empty_;
  return by_ixp_[id];
}

const std::vector<membership_id>& world::memberships_of_as(as_id id) const {
  if (id >= by_as_.size()) return empty_;
  return by_as_[id];
}

std::optional<as_id> world::as_by_asn(net::asn a) const {
  const auto it = asn_index_.find(a.value);
  if (it == asn_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<membership_id> world::membership_by_interface(net::ipv4_addr ip) const {
  const auto it = iface_index_.find(ip);
  if (it == iface_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<router_id> world::router_by_interface(net::ipv4_addr ip) const {
  const auto it = router_iface_index_.find(ip);
  if (it == router_iface_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<ixp_id> world::ixp_of_lan_address(net::ipv4_addr ip) const {
  return lan_lookup_.lookup(ip);
}

}  // namespace opwat::world
