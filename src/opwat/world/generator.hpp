// Seeded generator of the synthetic interconnection ecosystem.
//
// The generator is calibrated against every distribution the paper
// publishes, so that the inference problem is statistically as hard as the
// real one:
//   - IXP member counts follow a Zipf-like law (largest ~ 800 members,
//     matching Table 2 / §1);
//   - ~14.4% of IXPs are wide-area (two facilities > 50 km apart, §4.2);
//   - ~60% of ASes are present in a single facility (Fig. 1a);
//   - the global remote share targets ~28%, rising to ~40% at the largest
//     IXPs (Fig. 10b);
//   - ~27% of remote peers buy fractional (sub-1GE) reseller ports while
//     no local peer is below the IXP's minimum physical capacity (Fig. 4);
//   - ~5% of reseller customers are nevertheless colocated with the IXP
//     (the Fig. 5 artifact class), and a small share of remote peers sit
//     within 1 ms of the IXP (Fig. 1b);
//   - a configurable share of ASes consolidates multiple IXP memberships
//     onto a single border router (multi-IXP routers, Fig. 3 / Fig. 9d).
#pragma once

#include <cstdint>

#include "opwat/world/world.hpp"

namespace opwat::world {

struct gen_config {
  std::uint64_t seed = 42;

  std::size_t n_cities = 140;  // drawn from the embedded table (max 140)
  std::size_t n_ixps = 60;
  std::size_t n_ases = 3200;
  std::size_t n_resellers = 14;

  // Facilities per city scale with the city's hub weight.
  double facilities_per_hub_weight = 0.8;

  // IXP size distribution: members(rank r) ~ largest * r^-zipf_exponent.
  std::size_t largest_ixp_members = 800;
  std::size_t smallest_ixp_members = 30;
  double zipf_exponent = 0.9;

  double wide_area_fraction = 0.144;
  std::size_t wide_area_extra_cities_max = 6;
  double wide_area_reach_km = 2500.0;

  double federation_pair_fraction = 0.08;
  double reseller_support_fraction = 0.8;
  double looking_glass_fraction = 0.55;
  double publishes_member_list_fraction = 0.7;
  double publishes_port_types_fraction = 0.45;
  double ten_gig_min_capacity_fraction = 0.15;  // IXPs whose Cmin is 10GE

  // Remote-share calibration (global target ~0.28 including collector
  // networks; big IXPs ~0.40).
  double remote_share_smallest = 0.08;
  double remote_share_largest = 0.30;

  // Split of remote memberships by attachment type.
  double reseller_share_among_remote = 0.62;
  double long_cable_share_among_remote = 0.26;  // remainder: federation

  // Of reseller customers: colocated-with-IXP anyway (Fig. 5 artifact).
  double colocated_reseller_fraction = 0.05;
  // Of reseller customers: fractional (sub-1GE) port (drives Fig. 4 and
  // Step 1's coverage).
  double fractional_port_share = 0.38;

  // Remote member distance mix (drives Fig. 1b's 18% < 1 ms).
  double remote_same_metro_fraction = 0.20;
  double remote_regional_fraction = 0.36;  // 100..1300 km
  // remainder: long-haul.

  double single_facility_as_fraction = 0.60;

  // Router consolidation.
  double multi_ixp_same_router_prob = 0.65;
  double hybrid_router_prob = 0.18;

  // "Collector" networks: reseller customers that buy virtual ports at
  // many IXPs and reach them all through one border router — the Fig. 9d
  // tail (routers with >10 next-hop IXPs) and the §7 resilience concern.
  std::size_t remote_collector_count = 24;
  std::size_t collector_min_ixps = 8;
  std::size_t collector_max_ixps = 18;

  // Private interconnection density.
  double private_link_prob = 0.10;
  std::size_t max_private_links_per_facility = 500;
  double tethered_private_fraction = 0.04;

  // Temporal dimension (for the Fig. 12a evolution study): months of
  // history; when 0 every membership exists for the whole simulation.
  int months = 0;
  double monthly_local_join_rate = 0.005;  // per existing local member
  // Calibrated so that ABSOLUTE remote joins are ~2x local joins despite
  // the ~28/72 remote/local split (Fig. 12a): 2 * (0.72/0.28) * local rate.
  double monthly_remote_join_rate = 0.026;
  double monthly_local_leave_rate = 0.0028;
  double monthly_remote_leave_rate = 0.0035;  // +25% churn (§6.3)
  double monthly_remote_to_local_rate = 0.002;
};

/// Builds a fully consistent world; throws std::runtime_error when the
/// configuration cannot be satisfied (e.g. more IXPs than address space).
[[nodiscard]] world generate(const gen_config& cfg);

/// A small configuration for unit tests: a handful of IXPs, fast to build.
[[nodiscard]] gen_config tiny_config(std::uint64_t seed = 7);

}  // namespace opwat::world
