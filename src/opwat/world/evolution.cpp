#include "opwat/world/evolution.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "opwat/world/generator.hpp"

namespace opwat::world {

namespace {

/// Next unused host index on the IXP's peering LAN.
std::uint64_t next_lan_host(const world& w, ixp_id ixp) {
  const auto& lan = w.ixps[ixp].peering_lan;
  std::uint64_t max_idx = 9;  // hosts below .10 are reserved (route server etc.)
  for (const auto& m : w.memberships) {
    if (m.ixp != ixp) continue;
    const std::uint64_t idx = m.interface_ip.value() - lan.network().value();
    max_idx = std::max(max_idx, idx);
  }
  return max_idx + 1;
}

}  // namespace

void assign_membership_history(world& w, const gen_config& cfg, util::rng& r) {
  const int months = cfg.months;
  if (months <= 0) return;

  // Fraction of the final member base that joined during the observation
  // window, per peering type.  Joins are spread uniformly over the window.
  const double f_local = std::min(0.5, cfg.monthly_local_join_rate * months);
  const double f_remote = std::min(0.8, cfg.monthly_remote_join_rate * months);
  const double l_local = std::min(0.4, cfg.monthly_local_leave_rate * months);
  const double l_remote = std::min(0.5, cfg.monthly_remote_leave_rate * months);

  std::vector<membership_id> switch_candidates;

  for (auto& m : w.memberships) {
    const bool remote = w.truly_remote(m);
    const double f_join = remote ? f_remote : f_local;
    const double f_leave = remote ? l_remote : l_local;
    if (r.bernoulli(f_join))
      m.joined_month = static_cast<int>(r.uniform_int(1, months));
    else
      m.joined_month = 0;
    if (r.bernoulli(f_leave)) {
      const int lm = static_cast<int>(r.uniform_int(m.joined_month + 1, months + 1));
      m.left_month = lm;
    }
    if (remote && m.left_month < 0 && m.how == attachment::reseller &&
        r.bernoulli(cfg.monthly_remote_to_local_rate * months))
      switch_candidates.push_back(m.id);
  }

  // Remote -> local switches: the remote membership ends and a colocated
  // one begins the same month, on a router at the IXP.
  for (const auto mid : switch_candidates) {
    auto& old_m = w.memberships[mid];
    const int sw_month = static_cast<int>(
        r.uniform_int(std::max(1, old_m.joined_month + 1), months));
    old_m.left_month = sw_month;

    const auto& x = w.ixps[old_m.ixp];
    const auto fac = x.facilities[static_cast<std::size_t>(
        r.uniform_int(0, static_cast<std::int64_t>(x.facilities.size()) - 1))];

    // New router colocated at the IXP facility.
    router rt;
    rt.id = static_cast<router_id>(w.routers.size());
    rt.owner = old_m.member;
    rt.facility = fac;
    rt.city = w.facilities[fac].city;
    w.routers.push_back(rt);

    auto& as_facs = w.ases[old_m.member].facilities;
    if (std::find(as_facs.begin(), as_facs.end(), fac) == as_facs.end())
      as_facs.push_back(fac);

    membership nm;
    nm.id = static_cast<membership_id>(w.memberships.size());
    nm.member = old_m.member;
    nm.ixp = old_m.ixp;
    nm.router = rt.id;
    nm.interface_ip = x.peering_lan.at(next_lan_host(w, old_m.ixp));
    nm.port_capacity_gbps = x.min_physical_capacity_gbps;
    nm.port = port_kind::physical;
    nm.how = attachment::colocated;
    nm.attach_facility = fac;
    nm.joined_month = sw_month;
    w.memberships.push_back(nm);
  }
}

std::vector<monthly_counts> timeline(
    const world& w, int months,
    const std::function<bool(const membership&)>& is_remote_fn) {
  std::vector<monthly_counts> out;
  out.reserve(static_cast<std::size_t>(months) + 1);
  for (int month = 0; month <= months; ++month) {
    monthly_counts mc;
    mc.month = month;
    for (const auto& m : w.memberships) {
      const bool remote = is_remote_fn(m);
      if (w.active_at(m, month)) (remote ? mc.remote_active : mc.local_active)++;
      if (m.joined_month == month && month > 0)
        (remote ? mc.remote_joins : mc.local_joins)++;
      if (m.left_month == month) (remote ? mc.remote_leaves : mc.local_leaves)++;
    }
    out.push_back(mc);
  }
  return out;
}

std::size_t count_remote_to_local_switches(const world& w) {
  // A switch is a (member, ixp) pair with a remote membership ending at
  // month t and a colocated membership starting at month t.
  std::map<std::pair<as_id, ixp_id>, std::vector<const membership*>> groups;
  for (const auto& m : w.memberships) groups[{m.member, m.ixp}].push_back(&m);
  std::size_t switches = 0;
  for (const auto& [key, mm] : groups) {
    for (const auto* a : mm)
      for (const auto* b : mm)
        if (a != b && is_remote(a->how) && !is_remote(b->how) &&
            a->left_month >= 0 && a->left_month == b->joined_month)
          ++switches;
  }
  return switches;
}

}  // namespace opwat::world
