#include "opwat/net/ipv4.hpp"

#include <cstdio>
#include <stdexcept>

#include "opwat/util/strings.hpp"

namespace opwat::net {

std::optional<ipv4_addr> ipv4_addr::parse(std::string_view s) noexcept {
  std::uint32_t acc = 0;
  int octets = 0;
  std::uint32_t cur = 0;
  bool have_digit = false;
  for (const char c : s) {
    if (c >= '0' && c <= '9') {
      cur = cur * 10 + static_cast<std::uint32_t>(c - '0');
      if (cur > 255) return std::nullopt;
      have_digit = true;
    } else if (c == '.') {
      if (!have_digit || octets >= 3) return std::nullopt;
      acc = (acc << 8) | cur;
      cur = 0;
      have_digit = false;
      ++octets;
    } else {
      return std::nullopt;
    }
  }
  if (!have_digit || octets != 3) return std::nullopt;
  acc = (acc << 8) | cur;
  return ipv4_addr{acc};
}

std::string ipv4_addr::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

prefix::prefix(ipv4_addr addr, int length) : length_(length) {
  if (length < 0 || length > 32) throw std::invalid_argument{"prefix length out of range"};
  const std::uint32_t m = length == 0 ? 0 : (~std::uint32_t{0} << (32 - length));
  network_ = ipv4_addr{addr.value() & m};
}

std::optional<prefix> prefix::parse(std::string_view cidr) noexcept {
  const auto slash = cidr.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = ipv4_addr::parse(cidr.substr(0, slash));
  if (!addr) return std::nullopt;
  int len = 0;
  const auto len_str = cidr.substr(slash + 1);
  if (len_str.empty() || len_str.size() > 2) return std::nullopt;
  for (const char c : len_str) {
    if (c < '0' || c > '9') return std::nullopt;
    len = len * 10 + (c - '0');
  }
  if (len > 32) return std::nullopt;
  return prefix{*addr, len};
}

std::uint32_t prefix::mask() const noexcept {
  return length_ == 0 ? 0 : (~std::uint32_t{0} << (32 - length_));
}

bool prefix::contains(ipv4_addr a) const noexcept {
  return (a.value() & mask()) == network_.value();
}

bool prefix::contains(const prefix& other) const noexcept {
  return other.length() >= length_ && contains(other.network());
}

std::uint64_t prefix::size() const noexcept {
  return std::uint64_t{1} << (32 - length_);
}

ipv4_addr prefix::at(std::uint64_t i) const {
  if (i >= size()) throw std::out_of_range{"prefix::at: index beyond prefix size"};
  return ipv4_addr{network_.value() + static_cast<std::uint32_t>(i)};
}

std::string prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

std::string to_string(asn a) { return "AS" + std::to_string(a.value); }

}  // namespace opwat::net
