// Thin RAII layer over POSIX TCP sockets and epoll — just enough
// plumbing for the portal server (opwat/portal/server.hpp) and its
// loopback clients, kept separate so no networking syscall appears
// inline in server logic.
//
// Everything here is mechanism, not policy: descriptors close
// themselves, errors become typed net::socket_error (errno captured in
// the message), and the epoll wrapper is a literal add/del/wait veneer.
// Nothing in this header owns threads or buffers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace opwat::net {

/// A socket / epoll syscall failed; what() carries the call name and
/// strerror(errno) text.
struct socket_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Owning file descriptor (close-on-destroy, move-only).
class unique_fd {
 public:
  unique_fd() noexcept = default;
  explicit unique_fd(int fd) noexcept : fd_(fd) {}
  ~unique_fd() { reset(); }

  unique_fd(unique_fd&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  unique_fd& operator=(unique_fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }
  unique_fd(const unique_fd&) = delete;
  unique_fd& operator=(const unique_fd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  /// Closes the held descriptor (idempotent).
  void reset() noexcept;
  /// Releases ownership without closing.
  [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }

 private:
  int fd_ = -1;
};

/// Creates a listening TCP socket bound to `addr:port` (dotted-quad
/// only; port 0 picks an ephemeral port — read it back with
/// local_port).  SO_REUSEADDR is set so a restart can rebind
/// immediately.  Throws socket_error on any failure.
[[nodiscard]] unique_fd listen_tcp(const std::string& addr, std::uint16_t port,
                                   int backlog = 128);

/// Blocking TCP connect to `addr:port` (dotted-quad).  Throws
/// socket_error on failure.  A signal landing mid-connect (EINTR) does
/// NOT fail the call: the connection attempt keeps running in the
/// kernel, so this waits for writability and reads SO_ERROR back —
/// retrying connect() itself would misreport EALREADY as a failure.
[[nodiscard]] unique_fd connect_tcp(const std::string& addr, std::uint16_t port);

/// accept4(SOCK_NONBLOCK | SOCK_CLOEXEC) with EINTR retried.  Returns
/// an invalid fd — with errno preserved for the caller's triage
/// (EAGAIN, EMFILE, ECONNABORTED...) — instead of throwing: the
/// acceptor loop must keep running through every accept failure mode.
[[nodiscard]] unique_fd accept_conn(int listen_fd) noexcept;

/// The locally bound port of a socket (the answer to "which ephemeral
/// port did listen_tcp(_, 0) get?").
[[nodiscard]] std::uint16_t local_port(int fd);

/// Switches O_NONBLOCK on or off.
void set_nonblocking(int fd, bool nonblocking);
/// Disables Nagle (TCP_NODELAY) — small request/response frames must
/// not wait for ACK coalescing.
void set_nodelay(int fd);

/// Writes the whole buffer, retrying short writes and EINTR, and
/// poll()-waiting for writability on EAGAIN (works on blocking and
/// nonblocking descriptors alike).  timeout_ms bounds the TOTAL time
/// spent stalled across all waits (-1 = wait forever).  Returns false —
/// never throws — when the connection is unusable: peer gone (EPIPE /
/// ECONNRESET / poll hangup), any other send error (ETIMEDOUT,
/// EHOSTUNREACH, ...), or the write stalled past the deadline.
bool send_all(int fd, std::string_view data, int timeout_ms = -1);

/// Reads up to `buf.size()` bytes once.  Returns the byte count, 0 on
/// orderly EOF, -1 when the read would block (EAGAIN on a nonblocking
/// descriptor); throws socket_error on any other failure, with
/// ECONNRESET mapped to EOF rather than an error.
[[nodiscard]] std::ptrdiff_t recv_some(int fd, std::span<char> buf);

/// Blocks until exactly `buf.size()` bytes arrived.  Returns false on
/// EOF before the buffer filled.
[[nodiscard]] bool recv_exact(int fd, std::span<char> buf);

/// One readiness event from epoll_io::wait.
struct io_event {
  int fd = -1;
  bool readable = false;
  bool hangup = false;  ///< EPOLLHUP / EPOLLERR / EPOLLRDHUP
};

/// Level-triggered epoll instance (read-interest only — the portal
/// serializes writes per connection instead of registering write
/// interest).
class epoll_io {
 public:
  epoll_io();

  void add(int fd);
  void del(int fd);

  /// Waits up to timeout_ms (-1 = forever) and returns the ready set.
  [[nodiscard]] std::vector<io_event> wait(int timeout_ms);

 private:
  unique_fd ep_;
};

/// An eventfd used as a wakeup doorbell for an epoll loop: signal()
/// makes the descriptor readable, drain() resets it.
class wakeup_pipe {
 public:
  wakeup_pipe();
  [[nodiscard]] int fd() const noexcept { return efd_.get(); }
  void signal();
  void drain();

 private:
  unique_fd efd_;
};

}  // namespace opwat::net
