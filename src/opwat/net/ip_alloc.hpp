// Sequential allocator of synthetic IPv4 space for the generated world.
//
// IXP peering LANs come out of 193.0.0.0/8-style "public" space, member
// backbone/private interconnects out of other blocks, so that address
// classes never collide and prefix lookups behave like the real datasets.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "opwat/net/ipv4.hpp"

namespace opwat::net {

/// Hands out consecutive, non-overlapping prefixes from a parent block.
class prefix_allocator {
 public:
  explicit prefix_allocator(prefix pool) : pool_(pool), cursor_(pool.network().value()) {}

  /// Allocates the next /len prefix; throws std::length_error on exhaustion.
  [[nodiscard]] prefix allocate(int len);

  [[nodiscard]] const prefix& pool() const noexcept { return pool_; }

 private:
  prefix pool_;
  std::uint64_t cursor_;
};

/// The standard pools used by the world generator.
struct address_plan {
  prefix_allocator ixp_lans{prefix{ipv4_addr{193, 0, 0, 0}, 8}};
  prefix_allocator backbone{prefix{ipv4_addr{10, 0, 0, 0}, 8}};
  prefix_allocator interconnect{prefix{ipv4_addr{172, 16, 0, 0}, 12}};
  prefix_allocator routed{prefix{ipv4_addr{41, 0, 0, 0}, 8}};
};

}  // namespace opwat::net
