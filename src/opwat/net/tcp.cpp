#include "opwat/net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>

#include "opwat/util/failpoint.hpp"

namespace opwat::net {

namespace {

[[noreturn]] void fail(const char* call) {
  throw socket_error{std::string{call} + ": " + std::strerror(errno)};
}

sockaddr_in make_addr(const std::string& addr, std::uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1)
    throw socket_error{"inet_pton: not a dotted-quad address: " + addr};
  return sa;
}

}  // namespace

void unique_fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

unique_fd listen_tcp(const std::string& addr, std::uint16_t port, int backlog) {
  unique_fd fd{::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0)};
  if (!fd.valid()) fail("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) != 0)
    fail("setsockopt(SO_REUSEADDR)");
  const sockaddr_in sa = make_addr(addr, port);
  // opwat-lint: allow(wire-safety): sockaddr_in -> sockaddr is the POSIX-mandated cast at the kernel API boundary, not wire decoding
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0)
    fail("bind");
  if (::listen(fd.get(), backlog) != 0) fail("listen");
  return fd;
}

unique_fd connect_tcp(const std::string& addr, std::uint16_t port) {
  if (OPWAT_FAILPOINT("net-connect")) {
    errno = ECONNREFUSED;
    fail("connect");
  }
  unique_fd fd{::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0)};
  if (!fd.valid()) fail("socket");
  const sockaddr_in sa = make_addr(addr, port);
  // opwat-lint: allow(wire-safety): sockaddr_in -> sockaddr is the POSIX-mandated cast at the kernel API boundary, not wire decoding
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
    // EINTR does not abort a connect: the attempt keeps running in the
    // kernel, and calling connect() again would fail with EALREADY.
    // The portable completion protocol is poll-for-writable, then read
    // the final status out of SO_ERROR.
    if (errno != EINTR) fail("connect");
    while (true) {
      pollfd pfd{fd.get(), POLLOUT, 0};
      const int pr = ::poll(&pfd, 1, -1);
      if (pr > 0) break;
      if (pr < 0 && errno != EINTR) fail("poll(connect)");
    }
    int soerr = 0;
    socklen_t len = sizeof soerr;
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &soerr, &len) != 0)
      fail("getsockopt(SO_ERROR)");
    if (soerr != 0) {
      errno = soerr;
      fail("connect");
    }
  }
  set_nodelay(fd.get());
  return fd;
}

unique_fd accept_conn(int listen_fd) noexcept {
  if (OPWAT_FAILPOINT("net-accept")) {
    // ECONNABORTED is the benign per-connection accept failure — the
    // acceptor logs it and moves on, which is exactly the path chaos
    // testing wants exercised.
    errno = ECONNABORTED;
    return unique_fd{};
  }
  while (true) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) return unique_fd{fd};
    if (errno != EINTR) return unique_fd{};
  }
}

std::uint16_t local_port(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  // opwat-lint: allow(wire-safety): sockaddr out-parameter for the kernel, length checked by getsockname itself
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0)
    fail("getsockname");
  return ntohs(sa.sin_port);
}

void set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) fail("fcntl(F_GETFL)");
  const int next = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) != 0) fail("fcntl(F_SETFL)");
}

void set_nodelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) != 0)
    fail("setsockopt(TCP_NODELAY)");
}

bool send_all(int fd, std::string_view data, int timeout_ms) {
  if (const auto fp = OPWAT_FAILPOINT("net-send")) {
    (void)fp;
    return false;  // injected: connection dead before any byte left
  }
  if (const auto fp = OPWAT_FAILPOINT("net-send-partial")) {
    // Injected torn write: push a prefix onto the wire so the peer sees
    // a truncated frame, then report the connection dead.
    const auto cap = std::min<std::size_t>(fp.arg, data.size());
    std::size_t sent = 0;
    while (sent < cap) {
      const auto chunk = data.substr(sent, cap - sent);
      const auto n = ::send(fd, chunk.data(), chunk.size(), MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    return false;
  }
  namespace ch = std::chrono;
  const auto deadline =
      timeout_ms >= 0 ? ch::steady_clock::now() + ch::milliseconds{timeout_ms}
                      : ch::steady_clock::time_point::max();
  std::size_t off = 0;
  while (off < data.size()) {
    // opwat-lint: allow(wire-safety): resume cursor into the caller's buffer; off < data.size() by the loop condition
    const auto n = ::send(fd, data.data() + off, data.size() - off,
                          MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      int wait_ms = -1;
      if (timeout_ms >= 0) {
        const auto left =
            ch::ceil<ch::milliseconds>(deadline - ch::steady_clock::now())
                .count();
        if (left <= 0) return false;  // stalled past the write budget
        wait_ms = static_cast<int>(std::min<long long>(
            left, std::numeric_limits<int>::max()));
      }
      pollfd pfd{fd, POLLOUT, 0};
      const int pr = ::poll(&pfd, 1, wait_ms);
      if (pr == 0) return false;  // stalled past the write budget
      if (pr < 0 && errno != EINTR) return false;
      if (pr > 0 && (pfd.revents & (POLLERR | POLLHUP)) != 0) return false;
      continue;
    }
    // ETIMEDOUT, EHOSTUNREACH, ENETDOWN, ... — every remaining send
    // errno means the connection is dead to us, same as EPIPE.  Callers
    // hold sockets for remote peers who can vanish at any time; that
    // must never surface as an exception.
    return false;
  }
  return true;
}

std::ptrdiff_t recv_some(int fd, std::span<char> buf) {
  if (OPWAT_FAILPOINT("net-recv")) {
    errno = EIO;
    fail("recv");
  }
  if (const auto fp = OPWAT_FAILPOINT("net-recv-partial")) {
    // Injected short read: deliver at most fp.arg bytes this call.  The
    // caller's reassembly loop must cope, exactly as with real TCP
    // segmentation.
    if (fp.arg > 0 && fp.arg < buf.size())
      buf = buf.first(static_cast<std::size_t>(fp.arg));
  }
  while (true) {
    const auto n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    if (errno == ECONNRESET) return 0;  // peer vanished == EOF for us
    fail("recv");
  }
}

bool recv_exact(int fd, std::span<char> buf) {
  std::size_t off = 0;
  while (off < buf.size()) {
    const auto n = recv_some(fd, buf.subspan(off));
    if (n == 0) return false;
    if (n < 0) {
      pollfd pfd{fd, POLLIN, 0};
      if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) fail("poll");
      continue;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

epoll_io::epoll_io() : ep_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (!ep_.valid()) fail("epoll_create1");
}

void epoll_io::add(int fd) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP;
  ev.data.fd = fd;
  if (::epoll_ctl(ep_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) fail("epoll_ctl(ADD)");
}

void epoll_io::del(int fd) {
  if (::epoll_ctl(ep_.get(), EPOLL_CTL_DEL, fd, nullptr) != 0) fail("epoll_ctl(DEL)");
}

std::vector<io_event> epoll_io::wait(int timeout_ms) {
  std::array<epoll_event, 64> evs{};
  const int n = ::epoll_wait(ep_.get(), evs.data(), static_cast<int>(evs.size()),
                             timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return {};
    fail("epoll_wait");
  }
  std::vector<io_event> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    io_event e;
    e.fd = evs[static_cast<std::size_t>(i)].data.fd;
    const auto bits = evs[static_cast<std::size_t>(i)].events;
    e.readable = (bits & EPOLLIN) != 0;
    e.hangup = (bits & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0;
    out.push_back(e);
  }
  return out;
}

wakeup_pipe::wakeup_pipe() : efd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
  if (!efd_.valid()) fail("eventfd");
}

void wakeup_pipe::signal() {
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the waiter; EAGAIN is fine.
  if (::write(efd_.get(), &one, sizeof one) < 0 && errno != EAGAIN) fail("write(eventfd)");
}

void wakeup_pipe::drain() {
  std::uint64_t v = 0;
  while (::read(efd_.get(), &v, sizeof v) > 0) {
  }
}

}  // namespace opwat::net
