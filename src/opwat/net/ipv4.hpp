// IPv4 addresses, CIDR prefixes and a longest-prefix-match table.
//
// The simulator assigns synthetic address space to IXP peering LANs,
// member routers and private interconnects; the inference pipeline only
// ever sees these addresses (never ground-truth object identities), the
// same way the paper's pipeline sees raw IPs from traceroute/ping.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace opwat::net {

/// An IPv4 address (host byte order internally).
class ipv4_addr {
 public:
  constexpr ipv4_addr() = default;
  constexpr explicit ipv4_addr(std::uint32_t value) noexcept : value_(value) {}
  constexpr ipv4_addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  /// Parses dotted-quad notation; std::nullopt on malformed input.
  [[nodiscard]] static std::optional<ipv4_addr> parse(std::string_view s) noexcept;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }

  constexpr auto operator<=>(const ipv4_addr&) const noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix.  Invariant: address bits below the mask are zero.
class prefix {
 public:
  constexpr prefix() = default;
  /// Normalizes the address to the network address of the prefix.
  prefix(ipv4_addr addr, int length);

  [[nodiscard]] static std::optional<prefix> parse(std::string_view cidr) noexcept;

  [[nodiscard]] bool contains(ipv4_addr a) const noexcept;
  [[nodiscard]] bool contains(const prefix& other) const noexcept;
  [[nodiscard]] ipv4_addr network() const noexcept { return network_; }
  [[nodiscard]] int length() const noexcept { return length_; }
  /// Number of addresses covered (2^(32-len)).
  [[nodiscard]] std::uint64_t size() const noexcept;
  /// i-th host address in the prefix (0 = network address).
  [[nodiscard]] ipv4_addr at(std::uint64_t i) const;
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::uint32_t mask() const noexcept;

  auto operator<=>(const prefix&) const noexcept = default;

 private:
  ipv4_addr network_{};
  int length_ = 0;
};

/// Longest-prefix-match table mapping prefixes to values of type T.
/// Insertions with an equal prefix overwrite.  Lookup walks from /32
/// down to /0 over per-length exact-match maps.
template <typename T>
class lpm_table {
 public:
  void insert(const prefix& p, T value) {
    tables_[p.length()][p.network().value()] = std::move(value);
    if (p.length() < min_len_) min_len_ = p.length();
    if (p.length() > max_len_) max_len_ = p.length();
    ++count_;
  }

  [[nodiscard]] std::optional<T> lookup(ipv4_addr a) const {
    for (int len = max_len_; len >= min_len_; --len) {
      const auto& t = tables_[len];
      if (t.empty()) continue;
      const std::uint32_t key =
          len == 0 ? 0u : (a.value() & (~std::uint32_t{0} << (32 - len)));
      const auto it = t.find(key);
      if (it != t.end()) return it->second;
    }
    return std::nullopt;
  }

  /// Exact-prefix lookup.
  [[nodiscard]] std::optional<T> exact(const prefix& p) const {
    const auto& t = tables_[p.length()];
    const auto it = t.find(p.network().value());
    if (it != t.end()) return it->second;
    return std::nullopt;
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

 private:
  std::map<std::uint32_t, T> tables_[33];
  int min_len_ = 32;
  int max_len_ = 0;
  std::size_t count_ = 0;
};

/// Autonomous System number: a strong type so ASNs, ids and counts cannot
/// be mixed up silently.
struct asn {
  std::uint32_t value = 0;
  constexpr auto operator<=>(const asn&) const noexcept = default;
};

[[nodiscard]] std::string to_string(asn a);

}  // namespace opwat::net

template <>
struct std::hash<opwat::net::ipv4_addr> {
  std::size_t operator()(const opwat::net::ipv4_addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<opwat::net::asn> {
  std::size_t operator()(const opwat::net::asn& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value);
  }
};
