#include "opwat/net/ip_alloc.hpp"

namespace opwat::net {

prefix prefix_allocator::allocate(int len) {
  if (len < pool_.length() || len > 32)
    throw std::invalid_argument{"prefix_allocator: requested length outside pool"};
  const std::uint64_t block = std::uint64_t{1} << (32 - len);
  // Align the cursor up to the block size.
  std::uint64_t start = (cursor_ + block - 1) & ~(block - 1);
  const std::uint64_t pool_end =
      static_cast<std::uint64_t>(pool_.network().value()) + pool_.size();
  if (start + block > pool_end)
    throw std::length_error{"prefix_allocator: pool exhausted"};
  cursor_ = start + block;
  return prefix{ipv4_addr{static_cast<std::uint32_t>(start)}, len};
}

}  // namespace opwat::net
