#include "opwat/portal/client.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <thread>

#include "opwat/util/rng.hpp"

namespace opwat::portal {

namespace {

/// Transient server states worth retrying; everything else is a verdict
/// on the request itself and retrying cannot change it.
bool retryable_status(portal_errc s) noexcept {
  return s == portal_errc::overloaded || s == portal_errc::shutting_down;
}

}  // namespace

client::client(const std::string& addr, std::uint16_t port)
    : addr_(addr), port_(port), fd_(net::connect_tcp(addr, port)) {
  net::set_nonblocking(fd_.get(), true);
}

void client::reconnect() {
  fd_.reset();
  inbuf_.clear();
  fd_ = net::connect_tcp(addr_, port_);
  net::set_nonblocking(fd_.get(), true);
  ++rstats_.reconnects;
}

void client::send(const request& r) {
  if (!net::send_all(fd_.get(), encode_request(r)))
    throw net::socket_error{"portal client: connection closed while sending"};
}

std::optional<response> client::extract() {
  const auto total = frame_size(inbuf_);  // may throw oversized
  if (!total || inbuf_.size() < *total) return std::nullopt;
  // opwat-lint: allow(wire-safety): skips the length prefix frame_size just validated; inbuf_.size() >= *total >= prefix here
  const std::string_view payload{inbuf_.data() + k_frame_prefix_bytes,
                                 *total - k_frame_prefix_bytes};
  response r = decode_response(payload);
  inbuf_.erase(0, *total);
  return r;
}

std::optional<response> client::receive(int timeout_ms) {
  namespace ch = std::chrono;
  // A fixed deadline, not a per-poll timeout: a peer trickling partial
  // frames must not stretch a bounded call past timeout_ms.
  const auto deadline =
      timeout_ms >= 0 ? ch::steady_clock::now() + ch::milliseconds{timeout_ms}
                      : ch::steady_clock::time_point::max();
  std::array<char, 64 * 1024> buf;
  while (true) {
    if (auto r = extract()) return r;
    const auto n = net::recv_some(fd_.get(), buf);
    if (n > 0) {
      inbuf_.append(buf.data(), static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0)
      throw net::socket_error{"portal client: connection closed by server"};
    int wait_ms = -1;
    if (timeout_ms >= 0) {
      const auto left =
          ch::ceil<ch::milliseconds>(deadline - ch::steady_clock::now())
              .count();
      if (left <= 0) return std::nullopt;  // deadline passed
      wait_ms = static_cast<int>(
          std::min<long long>(left, std::numeric_limits<int>::max()));
    }
    pollfd pfd{fd_.get(), POLLIN, 0};
    const int pr = ::poll(&pfd, 1, wait_ms);
    if (pr == 0) return std::nullopt;  // timeout
    if (pr < 0 && errno != EINTR)
      throw net::socket_error{std::string{"poll: "} + std::strerror(errno)};
  }
}

std::optional<response> client::try_receive() {
  if (auto r = extract()) return r;
  std::array<char, 64 * 1024> buf;
  const auto n = net::recv_some(fd_.get(), buf);
  if (n > 0) {
    inbuf_.append(buf.data(), static_cast<std::size_t>(n));
    return extract();
  }
  if (n == 0)
    throw net::socket_error{"portal client: connection closed by server"};
  return std::nullopt;  // would block
}

response client::call(const request& r) {
  send(r);
  auto resp = receive(-1);
  // receive(-1) only returns without a value on timeout, which cannot
  // happen with an infinite timeout.
  return std::move(*resp);
}

response client::call_retry(const request& r, const retry_config& cfg) {
  namespace ch = std::chrono;
  const auto deadline = cfg.deadline_ms >= 0
                            ? ch::steady_clock::now() +
                                  ch::milliseconds{cfg.deadline_ms}
                            : ch::steady_clock::time_point::max();
  // Remaining whole milliseconds of the call budget; 0 = spent, -1 =
  // unbounded.
  const auto left_ms = [&]() -> long long {
    if (cfg.deadline_ms < 0) return -1;
    const auto left =
        ch::floor<ch::milliseconds>(deadline - ch::steady_clock::now()).count();
    return std::max<long long>(left, 0);
  };

  // Per-call jitter stream: replaying a seed replays the exact backoff
  // schedule, which is what deterministic chaos tests need.
  util::rng jitter{cfg.jitter_seed};
  std::optional<response> last_transient;
  const std::uint32_t attempts = std::max<std::uint32_t>(cfg.max_attempts, 1);

  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++rstats_.retries;
      // Exponential backoff, capped, plus jitter in [0, backoff/2] so
      // concurrent clients spread out — but never sleep past the
      // deadline.
      const std::uint64_t shift = std::min<std::uint32_t>(attempt - 1, 20);
      std::uint64_t backoff = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(cfg.base_backoff_ms) << shift,
          cfg.max_backoff_ms);
      backoff += jitter.next() % (backoff / 2 + 1);
      if (const auto left = left_ms(); left >= 0)
        backoff = std::min<std::uint64_t>(backoff,
                                          static_cast<std::uint64_t>(left));
      if (backoff > 0)
        std::this_thread::sleep_for(ch::milliseconds{backoff});
    }
    if (const auto left = left_ms(); left == 0 && attempt > 0) break;

    ++rstats_.attempts;
    try {
      if (!fd_.valid()) reconnect();
      send(r);
      const auto left = left_ms();
      auto resp = receive(left < 0 ? -1 : static_cast<int>(std::min<long long>(
                                              left, std::numeric_limits<int>::max())));
      if (!resp) break;  // deadline expired mid-receive
      if (!retryable_status(resp->status)) return std::move(*resp);
      ++rstats_.transient_errors;
      last_transient = std::move(*resp);
    } catch (const net::socket_error&) {
      // Connection-level failure: drop the socket so the next attempt
      // redials, and remember nothing typed came back.
      ++rstats_.transient_errors;
      fd_.reset();
      inbuf_.clear();
      if (attempt + 1 == attempts && !last_transient) {
        ++rstats_.giveups;
        throw;
      }
    }
  }

  ++rstats_.giveups;
  if (last_transient) return std::move(*last_transient);
  throw net::socket_error{"portal client: retry budget exhausted before any "
                          "typed response arrived"};
}

void client::shutdown_write() { ::shutdown(fd_.get(), SHUT_WR); }

}  // namespace opwat::portal
