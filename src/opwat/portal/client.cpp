#include "opwat/portal/client.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>

namespace opwat::portal {

client::client(const std::string& addr, std::uint16_t port)
    : fd_(net::connect_tcp(addr, port)) {
  net::set_nonblocking(fd_.get(), true);
}

void client::send(const request& r) {
  if (!net::send_all(fd_.get(), encode_request(r)))
    throw net::socket_error{"portal client: connection closed while sending"};
}

std::optional<response> client::extract() {
  const auto total = frame_size(inbuf_);  // may throw oversized
  if (!total || inbuf_.size() < *total) return std::nullopt;
  // opwat-lint: allow(wire-safety): skips the length prefix frame_size just validated; inbuf_.size() >= *total >= prefix here
  const std::string_view payload{inbuf_.data() + k_frame_prefix_bytes,
                                 *total - k_frame_prefix_bytes};
  response r = decode_response(payload);
  inbuf_.erase(0, *total);
  return r;
}

std::optional<response> client::receive(int timeout_ms) {
  namespace ch = std::chrono;
  // A fixed deadline, not a per-poll timeout: a peer trickling partial
  // frames must not stretch a bounded call past timeout_ms.
  const auto deadline =
      timeout_ms >= 0 ? ch::steady_clock::now() + ch::milliseconds{timeout_ms}
                      : ch::steady_clock::time_point::max();
  std::array<char, 64 * 1024> buf;
  while (true) {
    if (auto r = extract()) return r;
    const auto n = net::recv_some(fd_.get(), buf);
    if (n > 0) {
      inbuf_.append(buf.data(), static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0)
      throw net::socket_error{"portal client: connection closed by server"};
    int wait_ms = -1;
    if (timeout_ms >= 0) {
      const auto left =
          ch::ceil<ch::milliseconds>(deadline - ch::steady_clock::now())
              .count();
      if (left <= 0) return std::nullopt;  // deadline passed
      wait_ms = static_cast<int>(
          std::min<long long>(left, std::numeric_limits<int>::max()));
    }
    pollfd pfd{fd_.get(), POLLIN, 0};
    const int pr = ::poll(&pfd, 1, wait_ms);
    if (pr == 0) return std::nullopt;  // timeout
    if (pr < 0 && errno != EINTR)
      throw net::socket_error{std::string{"poll: "} + std::strerror(errno)};
  }
}

std::optional<response> client::try_receive() {
  if (auto r = extract()) return r;
  std::array<char, 64 * 1024> buf;
  const auto n = net::recv_some(fd_.get(), buf);
  if (n > 0) {
    inbuf_.append(buf.data(), static_cast<std::size_t>(n));
    return extract();
  }
  if (n == 0)
    throw net::socket_error{"portal client: connection closed by server"};
  return std::nullopt;  // would block
}

response client::call(const request& r) {
  send(r);
  auto resp = receive(-1);
  // receive(-1) only returns without a value on timeout, which cannot
  // happen with an infinite timeout.
  return std::move(*resp);
}

void client::shutdown_write() { ::shutdown(fd_.get(), SHUT_WR); }

}  // namespace opwat::portal
