// Wire protocol of the opwat portal (§9): a small length-prefixed
// binary framing carrying typed query requests and responses between
// `opwat_query` / the load harness and `opwatd` (opwat/portal/server.hpp).
//
// Frame:    payload_len u32 (little-endian) | payload
// Payload:  wire version u8 | message kind u8 (request / response) |
//           request id u32 | fixed field block (+ two length-prefixed
//           strings) — the exact layouts are in the encode/decode
//           functions below; every multi-byte integer is little-endian
//           and floats travel as IEEE-754 bit patterns.
//
// Error philosophy mirrors the snapshot store (opwat/serve/store.hpp):
// every malformed input raises the typed `protocol_error` below — a
// truncated payload, an oversized length prefix, an unknown opcode or
// enum value are all distinct `portal_errc` kinds, never UB and never a
// silent best-effort parse.  The server turns decode failures into
// error responses carrying the same errc, so a misbehaving client sees
// *what* it sent wrong; `overloaded` and `shutting_down` are ordinary
// typed responses, which is what makes load-shedding observable (and
// testable) instead of a hang.
//
// Requests are a closed set of portal query shapes over the catalog
// (member lookup, RTT band, group-by, epoch diff) plus introspection
// (ping, server stats, epoch labels).  One struct carries every shape;
// fields irrelevant to an op are ignored by the executor and zeroed by
// cache_key(), which produces the canonical bytes used as the server's
// result-cache key ("normalized query").
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace opwat::portal {

/// Why a frame / payload could not be handled.  Values are wire-stable:
/// they travel as the response status byte.
enum class portal_errc : std::uint8_t {
  ok = 0,
  bad_version,    ///< wire version this build does not speak
  bad_frame,      ///< payload malformed (unknown kind / opcode / enum)
  truncated,      ///< payload ends inside a field
  oversized,      ///< length prefix exceeds k_max_payload_bytes
  bad_request,    ///< fields valid but semantically impossible (NaN band…)
  unknown_epoch,  ///< epoch label not in the served catalog
  unknown_ixp,    ///< IXP id not in the served catalog
  overloaded,     ///< admission control shed this request (retry later)
  shutting_down,  ///< server is draining; connection closes after this
  internal,       ///< unexpected server-side failure
};

[[nodiscard]] std::string_view to_string(portal_errc e) noexcept;

/// Typed decode error; kind() is the errc the server echoes back.
class protocol_error : public std::runtime_error {
 public:
  protocol_error(portal_errc kind, const std::string& msg);
  [[nodiscard]] portal_errc kind() const noexcept { return kind_; }

 private:
  portal_errc kind_;
};

inline constexpr std::uint8_t k_wire_version = 1;
/// Hard cap on a frame payload; a length prefix beyond this is
/// `oversized` (it also cleanly rejects accidental HTTP/TLS bytes).
inline constexpr std::size_t k_max_payload_bytes = std::size_t{1} << 20;
inline constexpr std::size_t k_frame_prefix_bytes = 4;

/// The portal query shapes.
enum class op_code : std::uint8_t {
  ping = 0,      ///< liveness no-op, echoes the id
  member = 1,    ///< rows of one member ASN (optionally at one IXP)
  rtt_band = 2,  ///< rows with lo <= RTT <= hi, RTT-sorted
  group_by = 3,  ///< group counts by `dim` (optional class filter)
  diff = 4,      ///< appeared/disappeared/reclassified between two epochs
  stats = 5,     ///< server counters as key/value groups
  epochs = 6,    ///< served epoch labels
};
inline constexpr std::uint8_t k_n_op_codes = 7;

/// Group-by dimension for op_code::group_by.
enum class group_dim : std::uint8_t { ixp = 0, asn = 1, metro = 2, cls = 3, step = 4 };
inline constexpr std::uint8_t k_n_group_dims = 5;

inline constexpr std::uint32_t k_no_ixp_filter = 0xffffffffu;
inline constexpr std::uint8_t k_no_cls_filter = 0xff;

/// One request; fields beyond an op's shape are ignored (and zeroed in
/// the cache key).  `epoch` empty selects the latest published epoch.
struct request {
  op_code op = op_code::ping;
  std::uint32_t id = 0;
  std::string epoch;     ///< "" = latest
  std::string epoch_to;  ///< diff only
  std::uint32_t ixp_id = k_no_ixp_filter;  ///< world IXP id filter
  std::uint32_t asn = 0;                   ///< member op
  double rtt_lo_ms = 0.0;                  ///< rtt_band op
  double rtt_hi_ms = 0.0;
  group_dim dim = group_dim::ixp;               ///< group_by op
  std::uint8_t cls_filter = k_no_cls_filter;    ///< group_by op
  std::uint32_t limit = 100;                    ///< row / group cap

  [[nodiscard]] bool operator==(const request&) const = default;
};

/// One materialized member row on the wire.
struct row_record {
  std::uint32_t ip = 0;       ///< IPv4, host byte order
  std::uint32_t ixp = 0;      ///< world IXP id
  std::uint32_t asn = 0;
  std::uint8_t cls = 0;       ///< infer::peering_class
  std::uint8_t step = 0;      ///< infer::method_step
  double rtt_ms = 0.0;        ///< NaN when unmeasured

  [[nodiscard]] bool operator==(const row_record&) const = default;
};

/// One group-count (also reused as the stats op's key/value pair).
struct group_record {
  std::string key;
  std::uint64_t count = 0;

  [[nodiscard]] bool operator==(const group_record&) const = default;
};

/// One response; which payload fields are populated depends on the op —
/// unpopulated ones encode as empty/zero.
struct response {
  portal_errc status = portal_errc::ok;
  std::uint32_t id = 0;
  bool cache_hit = false;
  std::string epoch;    ///< resolved epoch label ("" for ping/stats)
  std::string message;  ///< error detail when status != ok
  std::uint64_t total = 0;  ///< matching count before `limit`
  std::vector<row_record> rows;
  std::vector<group_record> groups;
  std::uint64_t appeared = 0;  ///< diff op
  std::uint64_t disappeared = 0;
  std::uint64_t reclassified = 0;
  std::vector<std::string> labels;  ///< epochs op

  [[nodiscard]] bool operator==(const response&) const = default;
};

/// Encodes a full frame (length prefix included).
[[nodiscard]] std::string encode_request(const request& r);
[[nodiscard]] std::string encode_response(const response& r);

/// Decodes a frame payload (the bytes AFTER the length prefix).  Throws
/// protocol_error on any malformation; trailing garbage is bad_frame.
[[nodiscard]] request decode_request(std::string_view payload);
[[nodiscard]] response decode_response(std::string_view payload);

/// Total frame size (prefix + payload) once the length prefix is
/// readable; std::nullopt while fewer than 4 bytes are buffered.
/// Throws protocol_error{oversized} when the prefix exceeds
/// k_max_payload_bytes.
[[nodiscard]] std::optional<std::size_t> frame_size(std::string_view buffered);

/// Canonical cache-key bytes of a request: id zeroed, fields outside
/// the op's shape reset to defaults.  Two requests that must return the
/// same payload produce identical keys.  The server keys its result
/// cache on this AFTER resolving an empty epoch to the concrete latest
/// label, so "latest" entries invalidate naturally on publish.
[[nodiscard]] std::string cache_key(const request& r);

namespace wire {

// Little-endian primitive append/read helpers, exposed so tests can
// build malformed payloads surgically.
void put_u8(std::string& out, std::uint8_t v);
void put_u16(std::string& out, std::uint16_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_f64(std::string& out, double v);
/// u16 length + bytes; throws protocol_error{bad_frame} beyond 65535.
void put_str(std::string& out, std::string_view s);

/// Checked sequential reader over a payload; every get throws
/// protocol_error{truncated} when the remaining bytes are short.
class reader {
 public:
  explicit reader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint16_t get_u16();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] double get_f64();
  [[nodiscard]] std::string get_str();
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  [[nodiscard]] const char* take(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace wire

}  // namespace opwat::portal
