#include "opwat/portal/protocol.hpp"

#include <bit>
#include <cstring>

namespace opwat::portal {

std::string_view to_string(portal_errc e) noexcept {
  switch (e) {
    case portal_errc::ok: return "ok";
    case portal_errc::bad_version: return "bad-version";
    case portal_errc::bad_frame: return "bad-frame";
    case portal_errc::truncated: return "truncated";
    case portal_errc::oversized: return "oversized";
    case portal_errc::bad_request: return "bad-request";
    case portal_errc::unknown_epoch: return "unknown-epoch";
    case portal_errc::unknown_ixp: return "unknown-ixp";
    case portal_errc::overloaded: return "overloaded";
    case portal_errc::shutting_down: return "shutting-down";
    case portal_errc::internal: return "internal";
  }
  return "?";
}

protocol_error::protocol_error(portal_errc kind, const std::string& msg)
    : std::runtime_error("portal protocol error (" + std::string{to_string(kind)} +
                         "): " + msg),
      kind_(kind) {}

namespace wire {

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u16(std::string& out, std::uint16_t v) {
  put_u8(out, static_cast<std::uint8_t>(v & 0xff));
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::string& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_f64(std::string& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

void put_str(std::string& out, std::string_view s) {
  if (s.size() > 0xffff)
    throw protocol_error{portal_errc::bad_frame,
                         "string field exceeds 65535 bytes"};
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out.append(s);
}

const char* reader::take(std::size_t n) {
  if (remaining() < n)
    throw protocol_error{portal_errc::truncated,
                         "payload ends inside a field"};
  // opwat-lint: allow(wire-safety): this IS the checked reader core — the remaining() guard above bounds pos_ + n
  const char* p = data_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t reader::get_u8() {
  return static_cast<std::uint8_t>(*take(1));
}

std::uint16_t reader::get_u16() {
  const char* p = take(2);
  return static_cast<std::uint16_t>(static_cast<std::uint8_t>(p[0]) |
                                    (std::uint16_t{static_cast<std::uint8_t>(p[1])}
                                     << 8));
}

std::uint32_t reader::get_u32() {
  const char* p = take(4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  return v;
}

std::uint64_t reader::get_u64() {
  const char* p = take(8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  return v;
}

double reader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::string reader::get_str() {
  const std::size_t n = get_u16();
  const char* p = take(n);
  return std::string{p, n};
}

}  // namespace wire

namespace {

enum class msg_kind : std::uint8_t { request = 0, response = 1 };

/// Prepends the length prefix once the payload is assembled.
std::string frame(std::string payload) {
  if (payload.size() > k_max_payload_bytes)
    throw protocol_error{portal_errc::oversized, "payload exceeds frame cap"};
  std::string out;
  out.reserve(k_frame_prefix_bytes + payload.size());
  wire::put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

void check_header(wire::reader& rd, msg_kind want) {
  const auto version = rd.get_u8();
  if (version != k_wire_version)
    throw protocol_error{portal_errc::bad_version,
                         "wire version " + std::to_string(version) +
                             " (this build speaks " +
                             std::to_string(k_wire_version) + ")"};
  const auto kind = rd.get_u8();
  if (kind != static_cast<std::uint8_t>(want))
    throw protocol_error{portal_errc::bad_frame,
                         "unexpected message kind " + std::to_string(kind)};
}

void check_drained(const wire::reader& rd) {
  if (rd.remaining() != 0)
    throw protocol_error{portal_errc::bad_frame,
                         std::to_string(rd.remaining()) +
                             " trailing payload bytes"};
}

}  // namespace

std::string encode_request(const request& r) {
  std::string p;
  wire::put_u8(p, k_wire_version);
  wire::put_u8(p, static_cast<std::uint8_t>(msg_kind::request));
  wire::put_u32(p, r.id);
  wire::put_u8(p, static_cast<std::uint8_t>(r.op));
  wire::put_str(p, r.epoch);
  wire::put_str(p, r.epoch_to);
  wire::put_u32(p, r.ixp_id);
  wire::put_u32(p, r.asn);
  wire::put_f64(p, r.rtt_lo_ms);
  wire::put_f64(p, r.rtt_hi_ms);
  wire::put_u8(p, static_cast<std::uint8_t>(r.dim));
  wire::put_u8(p, r.cls_filter);
  wire::put_u32(p, r.limit);
  return frame(std::move(p));
}

request decode_request(std::string_view payload) {
  wire::reader rd{payload};
  check_header(rd, msg_kind::request);
  request r;
  r.id = rd.get_u32();
  const auto op = rd.get_u8();
  if (op >= k_n_op_codes)
    throw protocol_error{portal_errc::bad_frame,
                         "unknown opcode " + std::to_string(op)};
  r.op = static_cast<op_code>(op);
  r.epoch = rd.get_str();
  r.epoch_to = rd.get_str();
  r.ixp_id = rd.get_u32();
  r.asn = rd.get_u32();
  r.rtt_lo_ms = rd.get_f64();
  r.rtt_hi_ms = rd.get_f64();
  const auto dim = rd.get_u8();
  if (dim >= k_n_group_dims)
    throw protocol_error{portal_errc::bad_frame,
                         "unknown group dimension " + std::to_string(dim)};
  r.dim = static_cast<group_dim>(dim);
  r.cls_filter = rd.get_u8();
  r.limit = rd.get_u32();
  check_drained(rd);
  return r;
}

std::string encode_response(const response& r) {
  std::string p;
  wire::put_u8(p, k_wire_version);
  wire::put_u8(p, static_cast<std::uint8_t>(msg_kind::response));
  wire::put_u32(p, r.id);
  wire::put_u8(p, static_cast<std::uint8_t>(r.status));
  wire::put_u8(p, r.cache_hit ? 1 : 0);
  wire::put_str(p, r.epoch);
  wire::put_str(p, r.message);
  wire::put_u64(p, r.total);
  wire::put_u32(p, static_cast<std::uint32_t>(r.rows.size()));
  for (const auto& row : r.rows) {
    wire::put_u32(p, row.ip);
    wire::put_u32(p, row.ixp);
    wire::put_u32(p, row.asn);
    wire::put_u8(p, row.cls);
    wire::put_u8(p, row.step);
    wire::put_f64(p, row.rtt_ms);
  }
  wire::put_u32(p, static_cast<std::uint32_t>(r.groups.size()));
  for (const auto& g : r.groups) {
    wire::put_str(p, g.key);
    wire::put_u64(p, g.count);
  }
  wire::put_u64(p, r.appeared);
  wire::put_u64(p, r.disappeared);
  wire::put_u64(p, r.reclassified);
  wire::put_u32(p, static_cast<std::uint32_t>(r.labels.size()));
  for (const auto& l : r.labels) wire::put_str(p, l);
  return frame(std::move(p));
}

response decode_response(std::string_view payload) {
  wire::reader rd{payload};
  check_header(rd, msg_kind::response);
  response r;
  r.id = rd.get_u32();
  const auto status = rd.get_u8();
  if (status > static_cast<std::uint8_t>(portal_errc::internal))
    throw protocol_error{portal_errc::bad_frame,
                         "unknown status " + std::to_string(status)};
  r.status = static_cast<portal_errc>(status);
  r.cache_hit = rd.get_u8() != 0;
  r.epoch = rd.get_str();
  r.message = rd.get_str();
  r.total = rd.get_u64();
  const auto n_rows = rd.get_u32();
  // A count field larger than the bytes that could back it is caught
  // here instead of by a giant allocation.
  if (std::size_t{n_rows} * 22 > rd.remaining())
    throw protocol_error{portal_errc::truncated, "row count exceeds payload"};
  r.rows.reserve(n_rows);
  for (std::uint32_t i = 0; i < n_rows; ++i) {
    row_record row;
    row.ip = rd.get_u32();
    row.ixp = rd.get_u32();
    row.asn = rd.get_u32();
    row.cls = rd.get_u8();
    row.step = rd.get_u8();
    row.rtt_ms = rd.get_f64();
    r.rows.push_back(row);
  }
  const auto n_groups = rd.get_u32();
  if (std::size_t{n_groups} * 10 > rd.remaining())
    throw protocol_error{portal_errc::truncated, "group count exceeds payload"};
  r.groups.reserve(n_groups);
  for (std::uint32_t i = 0; i < n_groups; ++i) {
    group_record g;
    g.key = rd.get_str();
    g.count = rd.get_u64();
    r.groups.push_back(std::move(g));
  }
  r.appeared = rd.get_u64();
  r.disappeared = rd.get_u64();
  r.reclassified = rd.get_u64();
  const auto n_labels = rd.get_u32();
  if (std::size_t{n_labels} * 2 > rd.remaining())
    throw protocol_error{portal_errc::truncated, "label count exceeds payload"};
  r.labels.reserve(n_labels);
  for (std::uint32_t i = 0; i < n_labels; ++i) r.labels.push_back(rd.get_str());
  check_drained(rd);
  return r;
}

std::optional<std::size_t> frame_size(std::string_view buffered) {
  if (buffered.size() < k_frame_prefix_bytes) return std::nullopt;
  wire::reader rd{buffered};
  const auto len = rd.get_u32();
  if (len > k_max_payload_bytes)
    throw protocol_error{portal_errc::oversized,
                         "frame payload of " + std::to_string(len) +
                             " bytes exceeds the " +
                             std::to_string(k_max_payload_bytes) + "-byte cap"};
  return k_frame_prefix_bytes + len;
}

std::string cache_key(const request& r) {
  // Normalize: keep exactly the fields the op's executor reads, reset
  // the rest, zero the id — two requests with identical semantics yield
  // identical bytes.
  request n;
  n.op = r.op;
  n.limit = r.limit;
  switch (r.op) {
    case op_code::ping:
    case op_code::stats:
      n.limit = 0;
      break;
    case op_code::epochs:
      n.limit = 0;
      break;
    case op_code::member:
      n.epoch = r.epoch;
      n.ixp_id = r.ixp_id;
      n.asn = r.asn;
      break;
    case op_code::rtt_band:
      n.epoch = r.epoch;
      n.ixp_id = r.ixp_id;
      n.rtt_lo_ms = r.rtt_lo_ms;
      n.rtt_hi_ms = r.rtt_hi_ms;
      break;
    case op_code::group_by:
      n.epoch = r.epoch;
      n.ixp_id = r.ixp_id;
      n.dim = r.dim;
      n.cls_filter = r.cls_filter;
      break;
    case op_code::diff:
      n.epoch = r.epoch;
      n.epoch_to = r.epoch_to;
      n.limit = 0;
      break;
  }
  // The frame prefix is constant-length, so the framed bytes are as
  // canonical as the payload; reuse the encoder directly.
  return encode_request(n);
}

}  // namespace opwat::portal
