// Deterministic synthetic portal workload — the "millions of users"
// stand-in the load harness (bench/bench_portal_load.cpp) replays
// against opwatd.
//
// Modeled on the synthetic netflow generators of the SAM streaming
// analytics repo (SNIPPETS.md Snippet 2), with the project's
// determinism discipline instead of libc rand(): every request is
// derived from util::rng streams keyed by (seed, request index), so
// request i has the same bytes no matter which thread generates it, in
// what order, or how many exist — the property the workload-determinism
// test pins (same seed ⇒ byte-identical request stream).
//
// Shape mix: member lookups, RTT-band scans, group-bys and epoch diffs
// in configurable proportions.  IXP popularity is zipfian over a
// seed-shuffled rank order (a handful of IXPs absorb most queries, like
// real portal traffic), epochs skew to the latest snapshot, and member
// ASNs are drawn from the catalog's own dictionary so most queries hit
// real rows.
//
// Arrival process (open loop): inter-arrival gaps are exponential at a
// per-block modulated rate — each block of 64 requests draws a
// log-normal intensity multiplier, so traffic arrives in bursts rather
// than a perfectly smooth Poisson stream.  gap_s(i) is deterministic
// per index; closed-loop harnesses simply ignore it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "opwat/portal/protocol.hpp"
#include "opwat/serve/catalog.hpp"
#include "opwat/util/rng.hpp"

namespace opwat::portal {

struct workload_config {
  std::uint64_t seed = 1;
  /// Relative shape mix (need not sum to 1).
  double member_weight = 0.45;
  double rtt_band_weight = 0.25;
  double group_by_weight = 0.20;
  double diff_weight = 0.10;
  /// Zipf exponent of IXP popularity (higher = more skew).
  double zipf_s = 1.1;
  /// Probability a query names an explicit (non-latest) epoch.
  double old_epoch_p = 0.2;
  /// Row / group cap each request asks for.
  std::uint32_t limit = 50;
  /// Open-loop target arrival rate and burstiness (log-normal sigma of
  /// the per-block intensity multiplier; 0 = smooth Poisson).
  double target_qps = 10000.0;
  double burstiness = 0.7;
};

class workload {
 public:
  /// Captures the catalog's shape (IXP ids, ASN pool, epoch labels).
  /// The catalog is only read during construction — a snapshot from
  /// shared_catalog works and need not outlive the workload.
  workload(const serve::catalog& cat, workload_config cfg);

  /// The i-th request of the stream (deterministic, thread-safe).
  [[nodiscard]] request nth(std::uint64_t i) const;

  /// Open-loop inter-arrival gap before request i, in seconds
  /// (deterministic, thread-safe).  Sum gaps for the absolute schedule.
  [[nodiscard]] double gap_s(std::uint64_t i) const;

  [[nodiscard]] const workload_config& config() const noexcept { return cfg_; }

 private:
  workload_config cfg_;
  util::rng root_;
  std::vector<std::uint32_t> ixps_by_popularity_;  ///< world ids, rank order
  std::vector<std::uint32_t> asn_pool_;
  std::vector<std::string> labels_;
};

}  // namespace opwat::portal
