// The opwat portal server: a network-facing query front end over
// serve::shared_catalog — the piece that turns the catalog library into
// the paper's §9 public portal ("serve heavy traffic from millions of
// users" is the ROADMAP's north star; this is the serving tier).
//
// Architecture (one process, fixed thread count):
//
//   acceptor thread        epoll loop owning the listen socket and
//                          every connection's read side: accepts,
//                          assembles length-prefixed frames, decodes
//                          requests, applies ADMISSION CONTROL, and
//                          hands admitted jobs to the worker queue.
//                          Never executes a query; its writes (shed /
//                          protocol-error frames, HTTP debug replies)
//                          are bounded by cfg.write_timeout_ms, so a
//                          slow client can stall it only briefly, never
//                          forever.
//   worker pool            cfg.workers threads on a util::thread_pool,
//                          each looping pop → execute → respond.  Every
//                          query runs lock-free against a
//                          shared_catalog::snapshot() (RCU) — a writer
//                          publishing a new epoch never blocks serving.
//   bounded job queue      util::bounded_queue between the two; when it
//                          is full the acceptor sheds the request with
//                          a typed `overloaded` response immediately —
//                          under overload the portal degrades to fast
//                          rejections, never to a hang.
//
// Admission control, in order: connection cap (excess accepts get one
// `overloaded` frame and a close), per-connection in-flight cap
// (pipelining beyond cfg.max_pipeline sheds), queue capacity (full
// queue sheds).  Every shed is counted and visible in the stats op.
//
// Write policy: response frames are written inline under a
// per-connection mutex with a bounded budget (cfg.write_timeout_ms).  A
// peer that stalls a write past the budget — or errors the socket in
// any way — is marked dead: the connection is shut down so the epoll
// loop reaps it, later responses to it are dropped, and no acceptor or
// worker thread ever blocks indefinitely on a slow client.
//
// Result cache: responses of the pure query ops are cached under their
// canonical request bytes (protocol.hpp cache_key) with the epoch label
// resolved, tagged with the shared_catalog publish version.  A publish
// both bumps the version (making stale entries unreachable) and clears
// the cache via the publish hook, so readers never see pre-publish
// results for post-publish queries.
//
// Debug mode: a connection whose first bytes are "GET " is served as
// one HTTP/1.0 JSON exchange (GET /stats, /epochs, /healthz) and
// closed — enough to poke a live server with curl; the binary protocol
// is the real surface.
//
// Shutdown (stop(), also the destructor): stop accepting, close the
// listen socket, let workers DRAIN every admitted request and write its
// response, then join all threads and close every connection.  A
// request admitted before stop() always gets its response; frames still
// buffered but not yet admitted are dropped with the connection.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "opwat/net/tcp.hpp"
#include "opwat/portal/protocol.hpp"
#include "opwat/serve/exec.hpp"
#include "opwat/serve/shared_catalog.hpp"
#include "opwat/util/annotations.hpp"
#include "opwat/util/bounded_queue.hpp"
#include "opwat/util/thread_pool.hpp"

namespace opwat::portal {

struct server_config {
  std::string bind_addr = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with port().
  std::uint16_t port = 0;
  std::size_t workers = 2;
  std::size_t max_connections = 1024;
  /// Bounded job queue between acceptor and workers; a full queue sheds
  /// with `overloaded`.
  std::size_t queue_capacity = 4096;
  /// In-flight requests one connection may pipeline before shedding.
  std::size_t max_pipeline = 128;
  /// Result-cache entry cap (whole cache is cleared when exceeded and
  /// on every epoch publish); 0 disables caching.
  std::size_t cache_entries = 8192;
  /// Rows/groups per response are clamped to this, bounding frames well
  /// below the protocol's 1 MiB payload cap.
  std::uint32_t max_limit = 10000;
  /// Budget for writing one response frame; a peer that stalls a write
  /// longer than this is dropped.  Keeps every server thread's writes
  /// bounded — -1 (wait forever) is only sane for trusted loopback
  /// peers.
  int write_timeout_ms = 5000;
  /// Test instrumentation: when set, workers call this before executing
  /// each admitted request (tests block it to make overload and
  /// admission-limit behavior deterministic).  Leave empty in
  /// production.
  std::function<void()> before_execute;
  /// Scan threads per worker: when > 0, each worker gets a private
  /// exec::morsel_scheduler with this many threads and runs its scans
  /// morsel-parallel (results stay byte-identical to serial).  Private
  /// per worker so independent queries never queue behind each other on
  /// a shared pool.  0 = serial scans (the default — right for small
  /// catalogs, where morsel overhead exceeds the win).
  std::size_t scan_threads = 0;
};

/// Counter snapshot (stats() and the `stats` op / GET /stats).
struct server_stats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_refused = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t requests_admitted = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t responses_error = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_pipeline = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t accept_errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t http_requests = 0;
  /// Queries executed with morsel-parallel scans (0 unless
  /// cfg.scan_threads > 0).
  std::uint64_t parallel_scans = 0;
  /// Total morsels those parallel scans executed.
  std::uint64_t morsels_executed = 0;
  std::uint64_t catalog_version = 0;
  /// Health mirror (set_health): 1 when the served snapshot is not the
  /// full intact store — epochs were quarantined by a recover-mode load,
  /// or a reload was rejected and the previous snapshot is still up.
  std::uint64_t degraded = 0;
  /// Epoch records a recover-mode load dropped (corrupt / torn tail).
  std::uint64_t quarantined_epochs = 0;
  /// Bytes the salvage walk discarded from the store file's tail.
  std::uint64_t bytes_truncated = 0;
  /// Reloads (SIGHUP) rejected while the server kept the old snapshot.
  std::uint64_t reload_failures = 0;
};

/// What the operator of a self-healing portal needs to see: is the
/// served catalog the whole intact store, or did recovery/quarantine
/// shrink it?  Owned by whoever loads the store (opwatd, tests) and
/// pushed into the server with set_health(); surfaced through
/// GET /healthz ("degraded"), GET /stats and the binary stats op.
struct health_status {
  bool degraded = false;
  std::uint64_t quarantined_epochs = 0;
  std::uint64_t bytes_truncated = 0;
  std::uint64_t reload_failures = 0;
};

class server {
 public:
  /// Binds nothing yet; start() does.  The shared_catalog must outlive
  /// the server.  The server registers itself as the catalog's publish
  /// hook for cache invalidation (one server per shared_catalog).
  explicit server(serve::shared_catalog& cat, server_config cfg = {});
  /// stop()s if still running.
  ~server();

  server(const server&) = delete;
  server& operator=(const server&) = delete;

  /// Binds, listens and launches the acceptor + worker threads.  Call
  /// once; throws net::socket_error on bind failure.
  void start();
  /// Graceful shutdown: stops accepting, drains every admitted request,
  /// joins all threads, closes every descriptor.  Idempotent.
  void stop();

  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] server_stats stats() const;

  /// Replaces the published health mirror (thread-safe; callable before
  /// start() and while serving — opwatd updates it after every load and
  /// SIGHUP reload attempt).
  void set_health(const health_status& h);
  [[nodiscard]] health_status health() const;

 private:
  struct counters;
  struct connection;
  struct job;
  class result_cache;

  void acceptor_loop();
  void on_accept(net::epoll_io& ep);
  /// Reads, frames and admits from one connection; returns false when
  /// the connection should be dropped from the event loop.
  bool on_readable(const std::shared_ptr<connection>& conn, bool hangup);
  void admit(const std::shared_ptr<connection>& conn, request req);
  void handle_http(const std::shared_ptr<connection>& conn);

  void worker_loop(std::size_t w);
  void process(job& j, std::size_t w);
  [[nodiscard]] response execute(const request& req, const serve::catalog& snap,
                                 std::size_t w) const;
  /// Serializes and writes one response frame (thread-safe per conn).
  void respond(const std::shared_ptr<connection>& conn, const response& r);

  serve::shared_catalog& cat_;
  server_config cfg_;
  std::uint16_t port_ = 0;

  net::unique_fd listen_fd_;
  net::wakeup_pipe wake_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;

  std::unique_ptr<util::bounded_queue<job>> queue_;
  std::unique_ptr<util::thread_pool> pool_;
  std::thread acceptor_;
  std::thread dispatcher_;  ///< runs pool_->parallel_for over worker loops

  /// One private morsel scheduler per worker when cfg.scan_threads > 0
  /// (empty otherwise).  Created in start() before the workers launch,
  /// destroyed after they join — workers index it by their stable id
  /// without synchronization.
  std::vector<std::unique_ptr<serve::exec::morsel_scheduler>> scan_scheds_;

  /// Live connections; acceptor-thread-only between start and join.
  std::unordered_map<int, std::shared_ptr<connection>> conns_;

  /// Accept-backoff state (acceptor thread only): under fd exhaustion
  /// (EMFILE/ENFILE) the listen fd is parked out of epoll until
  /// rearm_listen_at_, else level-triggered epoll would busy-spin on
  /// the still-readable listen socket.
  bool listen_parked_ = false;
  std::chrono::steady_clock::time_point rearm_listen_at_{};

  std::unique_ptr<counters> stats_;
  std::unique_ptr<result_cache> cache_;

  mutable util::annotated_mutex health_mu_;
  health_status health_ OPWAT_GUARDED_BY(health_mu_);
};

}  // namespace opwat::portal
