#include "opwat/portal/server.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <optional>
#include <utility>

#include "opwat/serve/query.hpp"
#include "opwat/util/annotations.hpp"
#include "opwat/util/contracts.hpp"
#include "opwat/util/json.hpp"

namespace opwat::portal {

namespace {

/// Ops whose ok-responses are pure functions of (request, snapshot) —
/// the cacheable set.
bool cacheable_op(op_code op) noexcept {
  switch (op) {
    case op_code::member:
    case op_code::rtt_band:
    case op_code::group_by:
    case op_code::diff:
    case op_code::epochs:
      return true;
    case op_code::ping:
    case op_code::stats:
      return false;
  }
  return false;
}

response error_response(portal_errc status, std::string msg) {
  response r;
  r.status = status;
  r.message = std::move(msg);
  return r;
}

/// How long the listen fd stays parked out of epoll after accept4 hit
/// descriptor exhaustion (effective granularity is the acceptor's
/// 200 ms epoll tick).
constexpr auto k_accept_backoff = std::chrono::milliseconds{100};

row_record to_record(const serve::iface_row& row) {
  row_record rec;
  rec.ip = row.ip.value();
  rec.ixp = row.ixp;
  rec.asn = row.asn.value;
  rec.cls = static_cast<std::uint8_t>(row.cls);
  rec.step = static_cast<std::uint8_t>(row.step);
  rec.rtt_ms = row.rtt_min_ms;
  return rec;
}

}  // namespace

// --- internal pieces ---------------------------------------------------------

struct server::counters {
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> refused{0};
  std::atomic<std::uint64_t> active{0};
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> responses_ok{0};
  std::atomic<std::uint64_t> responses_error{0};
  std::atomic<std::uint64_t> shed_queue_full{0};
  std::atomic<std::uint64_t> shed_pipeline{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> accept_errors{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> http_requests{0};
  std::atomic<std::uint64_t> parallel_scans{0};
  std::atomic<std::uint64_t> morsels_executed{0};
};

struct server::connection {
  explicit connection(net::unique_fd f) : fd(std::move(f)) {}

  net::unique_fd fd;
  /// Read-side state; acceptor thread only.
  std::string inbuf;
  bool http = false;
  /// Response frames from workers and acceptor interleave here.
  util::annotated_mutex write_mu;
  std::atomic<std::size_t> in_flight{0};
  /// Set once a write failed or stalled past the budget: later
  /// responses are dropped instead of written to a socket known bad.
  std::atomic<bool> dead{false};
};

struct server::job {
  std::shared_ptr<connection> conn;
  request req;
};

/// Version-tagged result cache keyed on canonical request bytes.  A
/// lookup only hits when the entry was computed against the current
/// publish version, so stale results are unreachable even between the
/// publish and the invalidation hook that clears them out.
class server::result_cache {
 public:
  explicit result_cache(std::size_t cap) : cap_(cap) {}

  [[nodiscard]] std::optional<response> find(const std::string& key,
                                             std::uint64_t version) const {
    const util::reader_lock lock{mu_};
    const auto it = map_.find(key);
    if (it == map_.end() || it->second.version != version) return std::nullopt;
    return it->second.resp;
  }

  void insert(std::string key, std::uint64_t version, const response& resp) {
    const util::writer_lock lock{mu_};
    if (map_.size() >= cap_) map_.clear();  // coarse but bounded
    map_.insert_or_assign(std::move(key), entry{version, resp});
  }

  void clear() {
    const util::writer_lock lock{mu_};
    map_.clear();
  }

 private:
  struct entry {
    std::uint64_t version = 0;
    response resp;
  };

  const std::size_t cap_;
  mutable util::annotated_shared_mutex mu_;
  std::unordered_map<std::string, entry> map_ OPWAT_GUARDED_BY(mu_);
};

// --- lifecycle ---------------------------------------------------------------

server::server(serve::shared_catalog& cat, server_config cfg)
    : cat_(cat),
      cfg_(std::move(cfg)),
      stats_(std::make_unique<counters>()),
      cache_(cfg_.cache_entries > 0
                 ? std::make_unique<result_cache>(cfg_.cache_entries)
                 : nullptr) {
  OPWAT_ASSERT(cfg_.workers > 0, "portal server needs at least one worker");
}

server::~server() { stop(); }

void server::start() {
  OPWAT_ASSERT(!started_, "portal server is single-use: construct a new one");
  started_ = true;

  listen_fd_ = net::listen_tcp(cfg_.bind_addr, cfg_.port);
  net::set_nonblocking(listen_fd_.get(), true);
  port_ = net::local_port(listen_fd_.get());

  queue_ = std::make_unique<util::bounded_queue<job>>(cfg_.queue_capacity);
  pool_ = std::make_unique<util::thread_pool>(cfg_.workers);
  if (cfg_.scan_threads > 0) {
    scan_scheds_.reserve(cfg_.workers);
    for (std::size_t w = 0; w < cfg_.workers; ++w)
      scan_scheds_.push_back(
          std::make_unique<serve::exec::morsel_scheduler>(cfg_.scan_threads));
  }

  if (cache_) {
    cat_.set_publish_hook([this](std::uint64_t) { cache_->clear(); });
  }

  acceptor_ = std::thread{[this] { acceptor_loop(); }};
  dispatcher_ = std::thread{[this] {
    pool_->parallel_for(cfg_.workers, [this](std::size_t w) { worker_loop(w); });
  }};
}

void server::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;

  stopping_.store(true, std::memory_order_release);
  wake_.signal();
  // The joins and queue are guarded: a start() that threw (bind
  // failure) leaves started_ set with no threads launched, and the
  // destructor still runs this path.
  if (acceptor_.joinable()) acceptor_.join();
  // Admitted jobs drain: close() lets pop() hand out the backlog, then
  // return nullopt to every worker.
  if (queue_) queue_->close();
  if (dispatcher_.joinable()) dispatcher_.join();
  // All threads are gone; destroying the connections closes their fds.
  conns_.clear();
  listen_fd_.reset();
  cat_.set_publish_hook({});
}

server_stats server::stats() const {
  server_stats s;
  s.connections_accepted = stats_->accepted.load(std::memory_order_relaxed);
  s.connections_refused = stats_->refused.load(std::memory_order_relaxed);
  s.connections_active = stats_->active.load(std::memory_order_relaxed);
  s.requests_admitted = stats_->admitted.load(std::memory_order_relaxed);
  s.responses_ok = stats_->responses_ok.load(std::memory_order_relaxed);
  s.responses_error = stats_->responses_error.load(std::memory_order_relaxed);
  s.shed_queue_full = stats_->shed_queue_full.load(std::memory_order_relaxed);
  s.shed_pipeline = stats_->shed_pipeline.load(std::memory_order_relaxed);
  s.protocol_errors = stats_->protocol_errors.load(std::memory_order_relaxed);
  s.accept_errors = stats_->accept_errors.load(std::memory_order_relaxed);
  s.cache_hits = stats_->cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = stats_->cache_misses.load(std::memory_order_relaxed);
  s.http_requests = stats_->http_requests.load(std::memory_order_relaxed);
  s.parallel_scans = stats_->parallel_scans.load(std::memory_order_relaxed);
  s.morsels_executed = stats_->morsels_executed.load(std::memory_order_relaxed);
  s.catalog_version = cat_.version();
  const auto h = health();
  s.degraded = h.degraded ? 1 : 0;
  s.quarantined_epochs = h.quarantined_epochs;
  s.bytes_truncated = h.bytes_truncated;
  s.reload_failures = h.reload_failures;
  return s;
}

void server::set_health(const health_status& h) {
  const util::mutex_lock lock{health_mu_};
  health_ = h;
}

health_status server::health() const {
  const util::mutex_lock lock{health_mu_};
  return health_;
}

// --- acceptor ----------------------------------------------------------------

void server::acceptor_loop() {
  net::epoll_io ep;
  ep.add(listen_fd_.get());
  ep.add(wake_.fd());

  while (!stopping_.load(std::memory_order_acquire)) {
    if (listen_parked_ &&
        std::chrono::steady_clock::now() >= rearm_listen_at_) {
      ep.add(listen_fd_.get());
      listen_parked_ = false;
    }
    const auto events = ep.wait(200);
    for (const auto& e : events) {
      if (e.fd == wake_.fd()) {
        wake_.drain();
        continue;  // loop condition re-checks stopping_
      }
      if (e.fd == listen_fd_.get()) {
        on_accept(ep);
        continue;
      }
      const auto it = conns_.find(e.fd);
      if (it == conns_.end()) continue;  // already dropped this sweep
      if (!on_readable(it->second, e.hangup)) {
        ep.del(e.fd);
        stats_->active.fetch_sub(1, std::memory_order_relaxed);
        conns_.erase(it);  // fd closes when the last in-flight job drops it
      }
    }
  }
}

// opwat-lint: region(nonblocking): acceptor-thread event handlers — a blocked
// acceptor stalls every connection, so only bounded net::send_all/recv_some
// calls may touch the network here (enforced by the blocking-in-handler rule).
void server::on_accept(net::epoll_io& ep) {
  while (true) {
    net::unique_fd fd = net::accept_conn(listen_fd_.get());
    if (!fd.valid()) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      stats_->accept_errors.fetch_add(1, std::memory_order_relaxed);
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Descriptor/buffer exhaustion: the listen fd stays readable, so
        // a plain return would make level-triggered epoll spin at 100%
        // CPU.  Park it; acceptor_loop re-arms after the backoff.
        ep.del(listen_fd_.get());
        listen_parked_ = true;
        rearm_listen_at_ = std::chrono::steady_clock::now() + k_accept_backoff;
        return;
      }
      continue;  // ECONNABORTED etc.: that connection only, keep accepting
    }
    if (conns_.size() >= cfg_.max_connections) {
      // One typed refusal, then close: the client learns WHY instantly
      // instead of timing out against a silent drop.
      stats_->refused.fetch_add(1, std::memory_order_relaxed);
      response r = error_response(portal_errc::overloaded,
                                  "connection limit reached");
      (void)net::send_all(fd.get(), encode_response(r), cfg_.write_timeout_ms);
      continue;
    }
    net::set_nodelay(fd.get());
    stats_->accepted.fetch_add(1, std::memory_order_relaxed);
    stats_->active.fetch_add(1, std::memory_order_relaxed);
    const int raw = fd.get();
    conns_.emplace(raw, std::make_shared<connection>(std::move(fd)));
    ep.add(raw);
  }
}

bool server::on_readable(const std::shared_ptr<connection>& conn, bool hangup) {
  std::array<char, 64 * 1024> buf;
  bool saw_eof = false;
  try {
    while (true) {
      const auto n = net::recv_some(conn->fd.get(), buf);
      if (n > 0) {
        conn->inbuf.append(buf.data(), static_cast<std::size_t>(n));
        if (static_cast<std::size_t>(n) < buf.size()) break;
        continue;
      }
      if (n == 0) saw_eof = true;
      break;  // EOF or EAGAIN
    }
  } catch (const net::socket_error&) {
    // A hard recv error (EIO, ENOTCONN, injected net-recv fault...) is
    // fatal to this connection only; escaping here would take down the
    // whole acceptor thread.  Treat it as EOF: already-admitted requests
    // still get their responses, the read side is reaped now.
    saw_eof = true;
  }

  // HTTP debug mode: a connection opening with "GET " is one JSON
  // exchange, then closed.
  if (!conn->http && conn->inbuf.size() >= 4 &&
      conn->inbuf.compare(0, 4, "GET ") == 0)
    conn->http = true;
  if (conn->http) {
    if (conn->inbuf.find("\r\n\r\n") != std::string::npos) {
      handle_http(conn);
      return false;
    }
    if (saw_eof || hangup || conn->inbuf.size() > 8 * 1024) return false;
    return true;
  }

  // Binary framing: admit every complete frame buffered so far.  One
  // cursor and one erase at the end — erasing per frame would make
  // draining a deeply pipelined buffer quadratic in its size.
  std::size_t consumed = 0;
  while (true) {
    // opwat-lint: allow(wire-safety): cursor over the connection buffer; consumed <= inbuf.size() by construction and all decoding below goes through frame_size/wire::reader
    const std::string_view rest{conn->inbuf.data() + consumed,
                                conn->inbuf.size() - consumed};
    std::optional<std::size_t> total;
    try {
      total = frame_size(rest);
    } catch (const protocol_error& e) {
      // The stream itself is unsynchronized after a bad prefix: answer
      // once, then drop the connection.
      stats_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      respond(conn, error_response(e.kind(), e.what()));
      return false;
    }
    if (!total || rest.size() < *total) break;
    const std::string_view payload =
        rest.substr(k_frame_prefix_bytes, *total - k_frame_prefix_bytes);
    try {
      request req = decode_request(payload);
      admit(conn, std::move(req));
    } catch (const protocol_error& e) {
      // Framing is intact, the payload is not: typed error, connection
      // keeps going.  Best-effort id echo so the client can correlate.
      stats_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      response r = error_response(e.kind(), e.what());
      if (payload.size() >= 6) {
        wire::reader rd{payload.substr(2, 4)};
        r.id = rd.get_u32();
      }
      respond(conn, r);
    }
    consumed += *total;
  }
  conn->inbuf.erase(0, consumed);

  if (saw_eof || hangup) {
    // Keep serving what was already admitted (workers hold the
    // connection alive and may still write on a half-closed socket) but
    // drop the read side.
    return false;
  }
  return true;
}

void server::admit(const std::shared_ptr<connection>& conn, request req) {
  if (stopping_.load(std::memory_order_acquire)) {
    response r = error_response(portal_errc::shutting_down, "server is draining");
    r.id = req.id;
    respond(conn, r);
    return;
  }
  if (conn->in_flight.load(std::memory_order_relaxed) >= cfg_.max_pipeline) {
    stats_->shed_pipeline.fetch_add(1, std::memory_order_relaxed);
    response r = error_response(portal_errc::overloaded,
                                "per-connection pipeline limit reached");
    r.id = req.id;
    respond(conn, r);
    return;
  }
  const std::uint32_t id = req.id;
  conn->in_flight.fetch_add(1, std::memory_order_relaxed);
  if (!queue_->try_push(job{conn, std::move(req)})) {
    conn->in_flight.fetch_sub(1, std::memory_order_relaxed);
    stats_->shed_queue_full.fetch_add(1, std::memory_order_relaxed);
    response r = error_response(portal_errc::overloaded, "request queue full");
    r.id = id;
    respond(conn, r);
    return;
  }
  stats_->admitted.fetch_add(1, std::memory_order_relaxed);
}

void server::handle_http(const std::shared_ptr<connection>& conn) {
  stats_->http_requests.fetch_add(1, std::memory_order_relaxed);
  // Request line: "GET <path> HTTP/1.x".
  const auto line_end = conn->inbuf.find("\r\n");
  const std::string line = conn->inbuf.substr(0, line_end);
  std::string path = "/";
  const auto sp1 = line.find(' ');
  const auto sp2 = line.find(' ', sp1 + 1);
  if (sp1 != std::string::npos && sp2 != std::string::npos)
    path = line.substr(sp1 + 1, sp2 - sp1 - 1);

  util::json_writer w;
  const char* http_status = "200 OK";
  if (path == "/healthz") {
    const auto h = health();
    w.begin_object();
    w.key("ok").value(true);
    w.key("degraded").value(h.degraded);
    w.end_object();
  } else if (path == "/stats") {
    const auto s = stats();
    w.begin_object();
    w.key("connections_accepted").value(s.connections_accepted);
    w.key("connections_refused").value(s.connections_refused);
    w.key("connections_active").value(s.connections_active);
    w.key("requests_admitted").value(s.requests_admitted);
    w.key("responses_ok").value(s.responses_ok);
    w.key("responses_error").value(s.responses_error);
    w.key("shed_queue_full").value(s.shed_queue_full);
    w.key("shed_pipeline").value(s.shed_pipeline);
    w.key("protocol_errors").value(s.protocol_errors);
    w.key("accept_errors").value(s.accept_errors);
    w.key("cache_hits").value(s.cache_hits);
    w.key("cache_misses").value(s.cache_misses);
    w.key("http_requests").value(s.http_requests);
    w.key("parallel_scans").value(s.parallel_scans);
    w.key("morsels_executed").value(s.morsels_executed);
    w.key("catalog_version").value(s.catalog_version);
    w.key("degraded").value(s.degraded);
    w.key("quarantined_epochs").value(s.quarantined_epochs);
    w.key("bytes_truncated").value(s.bytes_truncated);
    w.key("reload_failures").value(s.reload_failures);
    w.end_object();
  } else if (path == "/epochs") {
    const auto snap = cat_.snapshot();
    const auto labels = snap->labels();
    w.begin_object();
    w.key("epochs").begin_array();
    for (const auto& l : labels) w.value(l);
    w.end_array();
    w.end_object();
  } else {
    http_status = "404 Not Found";
    w.begin_object();
    w.key("error").value("unknown path; try /healthz /stats /epochs");
    w.end_object();
  }

  const std::string& body = w.str();
  std::string head = "HTTP/1.0 " + std::string{http_status} +
                     "\r\nContent-Type: application/json\r\nContent-Length: " +
                     std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
  const util::mutex_lock lock{conn->write_mu};
  (void)net::send_all(conn->fd.get(), head + body, cfg_.write_timeout_ms);
}
// opwat-lint: endregion(nonblocking)

// --- workers -----------------------------------------------------------------

void server::worker_loop(std::size_t w) {
  // Absolute backstop: a worker must never die (an escaped exception
  // would shrink the pool for good and terminate the process at stop()),
  // so the error-response attempt itself may not throw, and in_flight
  // must come back down no matter what.
  const auto backstop = [this](job& j, const char* what) noexcept {
    try {
      response r = error_response(portal_errc::internal, what);
      r.id = j.req.id;
      respond(j.conn, r);
    } catch (...) {
    }
    j.conn->in_flight.fetch_sub(1, std::memory_order_relaxed);
  };
  while (auto j = queue_->pop()) {
    try {
      process(*j, w);
    } catch (const std::exception& e) {
      backstop(*j, e.what());
    } catch (...) {
      backstop(*j, "unknown internal error");
    }
  }
}

// opwat-lint: region(nonblocking): worker request path — workers must drain
// the admitted backlog even under shutdown, so everything from dequeue to the
// response write is bounded (send_all carries cfg_.write_timeout_ms).
void server::process(job& j, std::size_t w) {
  if (cfg_.before_execute) cfg_.before_execute();

  // Version BEFORE snapshot: if a publish lands in between, results
  // computed on the newer snapshot are tagged with the older version
  // and simply miss later — stale data is never served, only a cache
  // opportunity is lost.
  const std::uint64_t version = cat_.version();
  const auto snap = cat_.snapshot();

  request req = j.req;
  req.limit = std::min(req.limit, cfg_.max_limit);
  response resp;
  bool done = false;

  // Resolve the epoch label(s) up front so the cache key is canonical
  // ("latest" and its concrete label share an entry).
  const bool needs_epoch = req.op == op_code::member ||
                           req.op == op_code::rtt_band ||
                           req.op == op_code::group_by || req.op == op_code::diff;
  if (needs_epoch) {
    if (snap->epoch_count() == 0) {
      resp = error_response(portal_errc::unknown_epoch, "catalog holds no epochs");
      done = true;
    } else {
      const auto latest =
          snap->at(static_cast<serve::epoch_id>(snap->epoch_count() - 1)).label();
      if (req.epoch.empty()) req.epoch = latest;
      if (req.op == op_code::diff && req.epoch_to.empty()) req.epoch_to = latest;
      if (!snap->find(req.epoch)) {
        resp = error_response(portal_errc::unknown_epoch,
                              "unknown epoch label: " + req.epoch);
        done = true;
      } else if (req.op == op_code::diff && !snap->find(req.epoch_to)) {
        resp = error_response(portal_errc::unknown_epoch,
                              "unknown epoch label: " + req.epoch_to);
        done = true;
      }
    }
  }

  const bool cacheable = !done && cache_ && cacheable_op(req.op);
  std::string key;
  if (cacheable) {
    key = cache_key(req);
    if (auto hit = cache_->find(key, version)) {
      stats_->cache_hits.fetch_add(1, std::memory_order_relaxed);
      resp = std::move(*hit);
      resp.cache_hit = true;
      done = true;
    } else {
      stats_->cache_misses.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (!done) {
    resp = execute(req, *snap, w);
    if (cacheable && resp.status == portal_errc::ok)
      cache_->insert(std::move(key), version, resp);
  }

  resp.id = j.req.id;
  respond(j.conn, resp);
  j.conn->in_flight.fetch_sub(1, std::memory_order_relaxed);
}

response server::execute(const request& req, const serve::catalog& snap,
                         std::size_t w) const {
  response resp;
  // The worker's private scheduler (null = serial scans).  Injected into
  // every query this op builds; byte-identical results either way, so
  // callers cannot observe the difference except through the stats op.
  serve::exec::morsel_scheduler* sched =
      scan_scheds_.empty() ? nullptr : scan_scheds_[w].get();
  serve::exec::stats scan_st;
  try {
    switch (req.op) {
      case op_code::ping:
        break;

      case op_code::member: {
        serve::query q{snap};
        q.scheduler(sched).collect_stats(&scan_st);
        q.epoch(req.epoch);
        resp.epoch = req.epoch;
        if (req.ixp_id != k_no_ixp_filter) {
          if (!snap.ixp_by_id(req.ixp_id))
            return error_response(portal_errc::unknown_ixp,
                                  "unknown IXP id: " + std::to_string(req.ixp_id));
          q.at_ixp(world::ixp_id{req.ixp_id});
        }
        q.member(net::asn{req.asn});
        resp.total = q.count();
        q.page(0, req.limit);
        const auto rows = q.rows();
        resp.rows.reserve(rows.size());
        for (const auto& row : rows) resp.rows.push_back(to_record(row));
        break;
      }

      case op_code::rtt_band: {
        if (std::isnan(req.rtt_lo_ms) || std::isnan(req.rtt_hi_ms) ||
            req.rtt_lo_ms > req.rtt_hi_ms)
          return error_response(portal_errc::bad_request,
                                "rtt_band needs lo <= hi, both numbers");
        serve::query q{snap};
        q.scheduler(sched).collect_stats(&scan_st);
        q.epoch(req.epoch);
        resp.epoch = req.epoch;
        if (req.ixp_id != k_no_ixp_filter) {
          if (!snap.ixp_by_id(req.ixp_id))
            return error_response(portal_errc::unknown_ixp,
                                  "unknown IXP id: " + std::to_string(req.ixp_id));
          q.at_ixp(world::ixp_id{req.ixp_id});
        }
        q.rtt_between(req.rtt_lo_ms, req.rtt_hi_ms);
        resp.total = q.count();
        q.sort_by_rtt().page(0, req.limit);
        const auto rows = q.rows();
        resp.rows.reserve(rows.size());
        for (const auto& row : rows) resp.rows.push_back(to_record(row));
        break;
      }

      case op_code::group_by: {
        serve::query q{snap};
        q.scheduler(sched).collect_stats(&scan_st);
        q.epoch(req.epoch);
        resp.epoch = req.epoch;
        if (req.ixp_id != k_no_ixp_filter) {
          if (!snap.ixp_by_id(req.ixp_id))
            return error_response(portal_errc::unknown_ixp,
                                  "unknown IXP id: " + std::to_string(req.ixp_id));
          q.at_ixp(world::ixp_id{req.ixp_id});
        }
        if (req.cls_filter != k_no_cls_filter) {
          if (req.cls_filter >= infer::k_n_peering_classes)
            return error_response(portal_errc::bad_request,
                                  "unknown peering class " +
                                      std::to_string(req.cls_filter));
          q.cls(static_cast<infer::peering_class>(req.cls_filter));
        }
        switch (req.dim) {
          case group_dim::ixp: q.by_ixp(); break;
          case group_dim::asn: q.by_asn(); break;
          case group_dim::metro: q.by_metro(); break;
          case group_dim::cls: q.by_class(); break;
          case group_dim::step: q.by_step(); break;
        }
        // total is the FULL group count, the response window is
        // limit-capped — same split member/rtt_band get from count() +
        // page().
        const auto groups = q.group_counts();
        resp.total = groups.size();
        const std::size_t n_groups =
            std::min<std::size_t>(groups.size(), req.limit);
        resp.groups.reserve(n_groups);
        for (std::size_t i = 0; i < n_groups; ++i)
          resp.groups.push_back(group_record{groups[i].key, groups[i].count});
        break;
      }

      case op_code::diff: {
        const auto d = serve::diff_epochs(snap, req.epoch, req.epoch_to);
        resp.epoch = req.epoch;
        resp.labels = {req.epoch, req.epoch_to};
        resp.appeared = d.appeared.size();
        resp.disappeared = d.disappeared.size();
        resp.reclassified = d.reclassified.size();
        resp.total = d.appeared.size() + d.disappeared.size() +
                     d.reclassified.size();
        break;
      }

      case op_code::epochs:
        resp.labels = snap.labels();
        resp.total = resp.labels.size();
        break;

      case op_code::stats: {
        const auto s = stats();
        const auto put = [&resp](std::string_view k, std::uint64_t v) {
          resp.groups.push_back(group_record{std::string{k}, v});
        };
        put("connections_accepted", s.connections_accepted);
        put("connections_refused", s.connections_refused);
        put("connections_active", s.connections_active);
        put("requests_admitted", s.requests_admitted);
        put("responses_ok", s.responses_ok);
        put("responses_error", s.responses_error);
        put("shed_queue_full", s.shed_queue_full);
        put("shed_pipeline", s.shed_pipeline);
        put("protocol_errors", s.protocol_errors);
        put("accept_errors", s.accept_errors);
        put("cache_hits", s.cache_hits);
        put("cache_misses", s.cache_misses);
        put("http_requests", s.http_requests);
        put("parallel_scans", s.parallel_scans);
        put("morsels_executed", s.morsels_executed);
        put("catalog_version", s.catalog_version);
        put("degraded", s.degraded);
        put("quarantined_epochs", s.quarantined_epochs);
        put("bytes_truncated", s.bytes_truncated);
        put("reload_failures", s.reload_failures);
        break;
      }
    }
  } catch (const std::invalid_argument& e) {
    return error_response(portal_errc::bad_request, e.what());
  }
  // A query that ran at least one morsel went through the parallel path.
  if (sched != nullptr && scan_st.morsels > 0) {
    stats_->parallel_scans.fetch_add(1, std::memory_order_relaxed);
    stats_->morsels_executed.fetch_add(scan_st.morsels,
                                       std::memory_order_relaxed);
  }
  return resp;
}

void server::respond(const std::shared_ptr<connection>& conn, const response& r) {
  if (r.status == portal_errc::ok)
    stats_->responses_ok.fetch_add(1, std::memory_order_relaxed);
  else
    stats_->responses_error.fetch_add(1, std::memory_order_relaxed);
  if (conn->dead.load(std::memory_order_acquire)) return;
  const std::string frame = encode_response(r);
  const util::mutex_lock lock{conn->write_mu};
  if (conn->dead.load(std::memory_order_relaxed)) return;
  if (!net::send_all(conn->fd.get(), frame, cfg_.write_timeout_ms)) {
    // Peer gone or stalled past the write budget.  Mark the connection
    // dead so no thread writes (or waits) on it again, and shut the
    // socket down so the acceptor's epoll sees EOF and reaps it.
    conn->dead.store(true, std::memory_order_release);
    ::shutdown(conn->fd.get(), SHUT_RDWR);
  }
}
// opwat-lint: endregion(nonblocking)

}  // namespace opwat::portal
