#include "opwat/portal/workload.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace opwat::portal {

workload::workload(const serve::catalog& cat, workload_config cfg)
    : cfg_(cfg), root_(cfg.seed) {
  // IXP popularity ranks: the dictionary order shuffled by the seed, so
  // different seeds make different IXPs "hot" while one seed is stable.
  ixps_by_popularity_.reserve(cat.ixps().size());
  for (const auto& e : cat.ixps()) ixps_by_popularity_.push_back(e.id);
  auto shuffle_rng = root_.fork("ixp-popularity");
  shuffle_rng.shuffle(ixps_by_popularity_);

  labels_ = cat.labels();

  // ASN pool: every distinct member ASN of the latest epoch (capped by
  // stride-sampling, not truncation, so the pool spans the whole
  // range).  Queries for these mostly hit real rows; a small slice of
  // misses is added by nth() itself.
  if (cat.epoch_count() > 0) {
    const auto& ep = cat.at(static_cast<serve::epoch_id>(cat.epoch_count() - 1));
    std::vector<std::uint32_t> asns = ep.asn_col();
    std::sort(asns.begin(), asns.end());
    asns.erase(std::unique(asns.begin(), asns.end()), asns.end());
    constexpr std::size_t k_pool_cap = 4096;
    const std::size_t stride = std::max<std::size_t>(1, asns.size() / k_pool_cap);
    for (std::size_t i = 0; i < asns.size(); i += stride)
      asn_pool_.push_back(asns[i]);
  }
}

request workload::nth(std::uint64_t i) const {
  auto r = root_.stream("req", i);
  request q;
  q.id = static_cast<std::uint32_t>(i);
  q.limit = cfg_.limit;

  // Epoch: mostly the latest (sent as "", the protocol's latest
  // selector, so the stream stays valid as new epochs publish), with a
  // configurable tail of explicit historical labels.
  const bool old_epoch = !labels_.empty() && r.bernoulli(cfg_.old_epoch_p);
  if (old_epoch) {
    const auto j = static_cast<std::size_t>(
        r.uniform_int(0, static_cast<std::int64_t>(labels_.size()) - 1));
    q.epoch = labels_[j];
  }

  const auto pick_ixp = [&]() -> std::uint32_t {
    if (ixps_by_popularity_.empty()) return k_no_ixp_filter;
    const auto rank = static_cast<std::size_t>(
        r.zipf(static_cast<std::int64_t>(ixps_by_popularity_.size()), cfg_.zipf_s));
    return ixps_by_popularity_[rank - 1];  // zipf is 1-based
  };

  const std::array<double, 4> weights{cfg_.member_weight, cfg_.rtt_band_weight,
                                      cfg_.group_by_weight, cfg_.diff_weight};
  switch (r.weighted_index(weights)) {
    case 0: {  // member
      q.op = op_code::member;
      if (!asn_pool_.empty() && r.bernoulli(0.95)) {
        const auto j = static_cast<std::size_t>(
            r.uniform_int(0, static_cast<std::int64_t>(asn_pool_.size()) - 1));
        q.asn = asn_pool_[j];
      } else {
        // A miss slice: ASNs beyond the simulated range return empty.
        q.asn = static_cast<std::uint32_t>(r.uniform_int(900000, 999999));
      }
      if (r.bernoulli(0.5)) q.ixp_id = pick_ixp();
      break;
    }
    case 1: {  // rtt_band
      q.op = op_code::rtt_band;
      q.rtt_lo_ms = r.uniform(0.0, 40.0);
      q.rtt_hi_ms = q.rtt_lo_ms + r.uniform(1.0, 20.0);
      if (r.bernoulli(0.7)) q.ixp_id = pick_ixp();
      break;
    }
    case 2: {  // group_by
      q.op = op_code::group_by;
      q.dim = static_cast<group_dim>(r.uniform_int(0, k_n_group_dims - 1));
      if (r.bernoulli(0.3))
        q.cls_filter = static_cast<std::uint8_t>(r.uniform_int(0, 2));
      if (q.dim != group_dim::ixp && r.bernoulli(0.3)) q.ixp_id = pick_ixp();
      break;
    }
    default: {  // diff: adjacent epoch pair, the longitudinal view
      q.op = op_code::diff;
      if (labels_.size() >= 2) {
        const auto j = static_cast<std::size_t>(
            r.uniform_int(0, static_cast<std::int64_t>(labels_.size()) - 2));
        q.epoch = labels_[j];
        q.epoch_to = labels_[j + 1];
      } else {
        // Degenerate single-epoch catalog: diff latest against itself.
        q.epoch.clear();
        q.epoch_to.clear();
      }
      break;
    }
  }
  return q;
}

double workload::gap_s(std::uint64_t i) const {
  if (cfg_.target_qps <= 0.0) return 0.0;
  // Per-block intensity: block b of 64 requests runs at
  // target_qps * exp(normal(0, burstiness)) — bursts and lulls on a
  // ~block timescale, smooth Poisson within a block.
  constexpr std::uint64_t k_block = 64;
  auto block_rng = root_.stream("burst", i / k_block);
  const double intensity = std::exp(block_rng.normal(0.0, cfg_.burstiness));
  auto gap_rng = root_.stream("gap", i);
  return gap_rng.exponential(1.0 / (cfg_.target_qps * intensity));
}

}  // namespace opwat::portal
