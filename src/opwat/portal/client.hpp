// Blocking / pipelined client for the portal's binary protocol — the
// counterpart opwat_query, the load harness and the tests all drive.
//
// One client owns one TCP connection.  call() is the simple
// request/response path; send() + receive()/try_receive() decouple the
// two sides so a load generator can keep a window of requests in
// flight (responses may arrive out of order under the server's worker
// pool — correlate by request id).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "opwat/net/tcp.hpp"
#include "opwat/portal/protocol.hpp"

namespace opwat::portal {

class client {
 public:
  /// Connects immediately; throws net::socket_error on failure.
  client(const std::string& addr, std::uint16_t port);

  /// Sends one request frame (blocks until fully written).  Throws
  /// net::socket_error when the connection is gone.
  void send(const request& r);

  /// Receives the next response frame.  Blocks up to timeout_ms total
  /// (-1 = forever) — a single deadline, regardless of how many partial
  /// reads arrive; nullopt on timeout.  Throws net::socket_error when
  /// the server closed the connection, protocol_error on malformed
  /// bytes.
  [[nodiscard]] std::optional<response> receive(int timeout_ms = -1);

  /// Non-blocking receive: a response if one is already buffered /
  /// readable, nullopt otherwise.
  [[nodiscard]] std::optional<response> try_receive();

  /// send() + receive(): the one-outstanding-request convenience.
  [[nodiscard]] response call(const request& r);

  /// Half-closes the write side (the server drains what it admitted).
  void shutdown_write();
  void close() { fd_.reset(); }
  [[nodiscard]] int fd() const noexcept { return fd_.get(); }

 private:
  /// Decodes one complete frame out of inbuf_, if buffered.
  [[nodiscard]] std::optional<response> extract();

  net::unique_fd fd_;
  std::string inbuf_;
};

}  // namespace opwat::portal
