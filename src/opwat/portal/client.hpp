// Blocking / pipelined client for the portal's binary protocol — the
// counterpart opwat_query, the load harness and the tests all drive.
//
// One client owns one TCP connection.  call() is the simple
// request/response path; send() + receive()/try_receive() decouple the
// two sides so a load generator can keep a window of requests in
// flight (responses may arrive out of order under the server's worker
// pool — correlate by request id).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "opwat/net/tcp.hpp"
#include "opwat/portal/protocol.hpp"

namespace opwat::portal {

/// Knobs for call_retry().  Defaults suit a loopback portal: four
/// attempts, 10 ms → 1 s exponential backoff, no overall deadline.
struct retry_config {
  /// Total tries including the first (1 = no retries).
  std::uint32_t max_attempts = 4;
  /// Backoff before retry k is min(base << k, max) plus jitter.
  std::uint32_t base_backoff_ms = 10;
  std::uint32_t max_backoff_ms = 1000;
  /// Budget for the WHOLE call — every receive() wait and every backoff
  /// sleep is clamped to what remains of it.  -1 = unbounded.
  int deadline_ms = -1;
  /// Seed for the deterministic jitter stream (util::rng): two clients
  /// given different seeds desynchronize their retry storms, while a
  /// test replaying one seed sees the exact same backoff schedule.
  std::uint64_t jitter_seed = 0x5eed;
};

/// What call_retry() did, cumulative per client.
struct retry_stats {
  std::uint64_t attempts = 0;          ///< tries sent (first + retries)
  std::uint64_t retries = 0;           ///< attempts after the first
  std::uint64_t reconnects = 0;        ///< sockets re-established
  std::uint64_t giveups = 0;           ///< calls that exhausted the budget
  std::uint64_t transient_errors = 0;  ///< retryable failures seen
};

class client {
 public:
  /// Connects immediately; throws net::socket_error on failure.
  client(const std::string& addr, std::uint16_t port);

  /// Sends one request frame (blocks until fully written).  Throws
  /// net::socket_error when the connection is gone.
  void send(const request& r);

  /// Receives the next response frame.  Blocks up to timeout_ms total
  /// (-1 = forever) — a single deadline, regardless of how many partial
  /// reads arrive; nullopt on timeout.  Throws net::socket_error when
  /// the server closed the connection, protocol_error on malformed
  /// bytes.
  [[nodiscard]] std::optional<response> receive(int timeout_ms = -1);

  /// Non-blocking receive: a response if one is already buffered /
  /// readable, nullopt otherwise.
  [[nodiscard]] std::optional<response> try_receive();

  /// send() + receive(): the one-outstanding-request convenience.
  [[nodiscard]] response call(const request& r);

  /// Self-healing call(): retries transient failures — socket errors
  /// (with an automatic reconnect) and `overloaded` / `shutting_down`
  /// responses — under exponential backoff with deterministic jitter,
  /// all bounded by cfg.deadline_ms.  Permanent failures (`bad_request`,
  /// `unknown_epoch`, ...) return immediately: retrying a request the
  /// server already rejected as wrong only amplifies load.  All ops in
  /// the current protocol are reads, hence idempotent and safe to
  /// resend; a future mutating op must be fenced out here.  When the
  /// budget runs out, returns the last typed transient response if one
  /// arrived, else rethrows the connection error.
  [[nodiscard]] response call_retry(const request& r,
                                    const retry_config& cfg = {});

  /// Drops the current connection (if any) and dials again; clears any
  /// half-received bytes.  Throws net::socket_error on failure.
  void reconnect();

  /// Cumulative call_retry() bookkeeping for this client.
  [[nodiscard]] const retry_stats& stats() const noexcept { return rstats_; }

  /// Half-closes the write side (the server drains what it admitted).
  void shutdown_write();
  void close() { fd_.reset(); }
  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  [[nodiscard]] bool connected() const noexcept { return fd_.valid(); }

 private:
  /// Decodes one complete frame out of inbuf_, if buffered.
  [[nodiscard]] std::optional<response> extract();

  std::string addr_;
  std::uint16_t port_ = 0;
  net::unique_fd fd_;
  std::string inbuf_;
  retry_stats rstats_;
};

}  // namespace opwat::portal
