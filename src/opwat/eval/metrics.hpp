// Validation sets and metrics, exactly as defined in Table 3:
//
//   COV = |INF ∩ VD| / |VD|
//   FPR = |INF_R ∩ VD_L| / |INF ∩ VD_L|
//   FNR = |INF_L ∩ VD_R| / |INF ∩ VD_R|
//   PRE = |INF_R ∩ VD_R| / |INF_R|          (restricted to validated ifaces)
//   ACC = (|INF_R ∩ VD_R| + |INF_L ∩ VD_L|) / |INF|
//
// All sets are interface-level; inferences for peers without validation
// data are ignored (INF is implicitly intersected with VD).
#pragma once

#include <set>

#include "opwat/infer/types.hpp"

namespace opwat::eval {

struct validation_sets {
  std::set<infer::iface_key> remote;  // VD_R
  std::set<infer::iface_key> local;   // VD_L

  [[nodiscard]] std::size_t size() const noexcept { return remote.size() + local.size(); }
  [[nodiscard]] bool contains(const infer::iface_key& k) const {
    return remote.contains(k) || local.contains(k);
  }
  /// Merges another validation set into this one.
  void merge(const validation_sets& other);
};

struct metrics {
  double cov = 0, fpr = 0, fnr = 0, pre = 0, acc = 0;
  std::size_t inferred_in_vd = 0;  // |INF ∩ VD|
  std::size_t vd_size = 0;
  std::size_t true_remote = 0, false_remote = 0;  // within VD
  std::size_t true_local = 0, false_local = 0;
};

/// Scores an inference map against validation data.  Only interfaces
/// present in `vd` and actually inferred (non-unknown) are counted.
[[nodiscard]] metrics compute_metrics(const infer::inference_map& inf,
                                      const validation_sets& vd);

/// Same, but restricted to inferences produced by one step (for Table 4's
/// per-step rows).
[[nodiscard]] metrics compute_metrics_for_step(const infer::inference_map& inf,
                                               const validation_sets& vd,
                                               infer::method_step step);

}  // namespace opwat::eval
