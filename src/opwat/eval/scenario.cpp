#include "opwat/eval/scenario.hpp"

#include <algorithm>

namespace opwat::eval {

scenario scenario::build(const scenario_config& cfg) {
  scenario s;
  s.cfg = cfg;
  s.w = world::generate(cfg.world);

  const auto snapshots = db::make_standard_snapshots(s.w, cfg.db_seed);
  s.view = db::merged_view::build(snapshots);
  s.prefix2as = db::ip2as::build(s.w);
  s.lat = measure::latency_model{cfg.latency_seed};
  s.vps = measure::make_vantage_points(s.w, cfg.vps, util::rng{cfg.vp_seed});

  // Traceroute corpus from member ASes (the RIPE Atlas analogue).
  {
    const measure::traceroute_engine engine{s.w, s.lat, cfg.traceroute};
    util::rng tr{cfg.trace_seed};
    auto sources = engine.connected_ases();
    tr.shuffle(sources);
    if (sources.size() > cfg.traceroute_sources) sources.resize(cfg.traceroute_sources);
    s.traces = engine.campaign(sources, cfg.targets_per_source, tr);
  }

  // Scope: largest IXPs (by merged-view member interfaces) with >= 1
  // alive VP.
  std::vector<world::ixp_id> with_vp;
  for (const auto& x : s.w.ixps) {
    const bool has_vp = std::any_of(s.vps.begin(), s.vps.end(), [&](const auto& vp) {
      return vp.ixp == x.id && vp.alive;
    });
    if (has_vp && !s.view.interfaces_of_ixp(x.id).empty()) with_vp.push_back(x.id);
  }
  std::sort(with_vp.begin(), with_vp.end(), [&](world::ixp_id a, world::ixp_id b) {
    return s.ixp_size(a) > s.ixp_size(b);
  });
  if (with_vp.size() > cfg.top_n_ixps) with_vp.resize(cfg.top_n_ixps);
  s.scope = std::move(with_vp);

  s.validation = build_validation(s.w, cfg.validation, s.scope);
  return s;
}

infer::pipeline_result scenario::run_inference() const {
  return run_inference(cfg.pipeline);
}

infer::pipeline_result scenario::run_inference(
    const infer::pipeline_config& override_cfg) const {
  return infer::pipeline_builder::from_config(override_cfg).build().run(inputs());
}

infer::pipeline_result scenario::run_inference_parallel(std::size_t threads) const {
  auto cfg2 = cfg.pipeline;
  cfg2.execution = infer::parallelism::parallel;
  cfg2.threads = threads;
  return run_inference(cfg2);
}

scenario_config default_scenario_config() {
  scenario_config cfg;
  return cfg;
}

scenario_config small_scenario_config(std::uint64_t seed) {
  scenario_config cfg;
  cfg.world = world::tiny_config(seed);
  cfg.traceroute_sources = 60;
  cfg.targets_per_source = 25;
  cfg.top_n_ixps = 8;
  cfg.validation.n_operator_ixps = 3;
  cfg.validation.n_website_ixps = 3;
  return cfg;
}

}  // namespace opwat::eval
