#include "opwat/eval/validation.hpp"

#include <algorithm>
#include <set>

#include "opwat/geo/metro.hpp"

namespace opwat::eval {

std::vector<world::ixp_id> validation_data::test_ixps() const {
  std::vector<world::ixp_id> out;
  for (const auto& v : ixps)
    if (!v.in_control) out.push_back(v.ixp);
  return out;
}

std::vector<world::ixp_id> validation_data::control_ixps() const {
  std::vector<world::ixp_id> out;
  for (const auto& v : ixps)
    if (v.in_control) out.push_back(v.ixp);
  return out;
}

validation_data build_validation(const world::world& w, const validation_config& cfg,
                                 std::span<const world::ixp_id> measured_scope) {
  validation_data out;
  util::rng rng{cfg.seed};
  const std::set<world::ixp_id> scope{measured_scope.begin(), measured_scope.end()};

  // Candidate IXPs ordered by size (ids are size-ranked by construction).
  std::vector<world::ixp_id> in_scope, out_of_scope;
  for (const auto& x : w.ixps) {
    if (w.memberships_of_ixp(x.id).empty()) continue;
    (scope.contains(x.id) ? in_scope : out_of_scope).push_back(x.id);
  }
  // The paper's control IXPs (EPIX, Any2, AMS-IX HK/SF, ...) are metro-
  // concentrated; mirror that by preferring single-metro IXPs for the
  // control pool so the §4 RTT study is comparable.
  std::stable_sort(out_of_scope.begin(), out_of_scope.end(),
                   [&](world::ixp_id a, world::ixp_id b) {
                     const auto wa = geo::is_wide_area(w.ixp_facility_points(a));
                     const auto wb = geo::is_wide_area(w.ixp_facility_points(b));
                     return wa < wb;
                   });

  // Operators respond mostly at large IXPs; website lists require the IXP
  // to publish port types.  Both subsets (test = measurable, control =
  // not) are filled, like the Table 2 mix (6 operator + 9 website IXPs,
  // 7 control + 8 test).
  std::vector<std::pair<world::ixp_id, bool>> chosen;  // (ixp, from_operator)
  std::size_t oper_left = cfg.n_operator_ixps;
  std::size_t web_left = cfg.n_website_ixps;
  const auto take_from = [&](const std::vector<world::ixp_id>& pool,
                             std::size_t oper_quota, std::size_t web_quota) {
    std::size_t oper = std::min(oper_quota, oper_left);
    std::size_t web = std::min(web_quota, web_left);
    for (const auto x : pool) {
      if (oper > 0) {
        chosen.push_back({x, true});
        --oper;
        --oper_left;
      } else if (web > 0 && w.ixps[x].publishes_port_types) {
        chosen.push_back({x, false});
        --web;
        --web_left;
      }
      if (oper == 0 && web == 0) break;
    }
  };
  // Roughly half of each kind per subset, then spill leftovers.
  take_from(in_scope, (cfg.n_operator_ixps + 1) / 2, (cfg.n_website_ixps + 1) / 2);
  take_from(out_of_scope, oper_left, web_left);
  take_from(in_scope, oper_left, web_left);

  for (const auto& [xid, from_operator] : chosen) {
    validated_ixp row;
    row.ixp = xid;
    row.from_operator = from_operator;
    row.in_control = !scope.contains(xid);
    row.facilities = w.ixps[xid].facilities.size();
    auto& sets = row.in_control ? out.control : out.test;

    for (const auto mid : w.memberships_of_ixp(xid)) {
      const auto& m = w.memberships[mid];
      ++row.total_peers;
      const bool remote = w.truly_remote(m);
      const infer::iface_key key{xid, m.interface_ip};

      bool validate = false;
      bool label_remote = remote;
      if (from_operator) {
        if (m.how == world::attachment::reseller)
          validate = rng.bernoulli(cfg.operator_reseller_coverage);
        else if (!remote)
          validate = rng.bernoulli(cfg.operator_local_coverage);
        // Long-cable / federation members: "what goes on beyond that
        // cable" is invisible to the operator -> not in the list.
      } else {
        if (!rng.bernoulli(cfg.website_coverage)) {
          validate = false;
        } else if (m.port == world::port_kind::virtual_reseller) {
          validate = true;
          label_remote = true;
        } else if (!remote) {
          validate = true;
          label_remote = false;
        } else if (cfg.website_mislabels_long_cable) {
          validate = true;  // physical port published -> read as local
          label_remote = false;
        }
      }
      if (!validate) continue;
      ++row.validated;
      if (label_remote) {
        ++row.validated_remote;
        sets.remote.insert(key);
      } else {
        ++row.validated_local;
        sets.local.insert(key);
      }
    }
    out.ixps.push_back(row);
  }

  // Largest IXPs first, like Table 2.
  std::sort(out.ixps.begin(), out.ixps.end(),
            [](const validated_ixp& a, const validated_ixp& b) {
              return a.total_peers > b.total_peers;
            });
  return out;
}

}  // namespace opwat::eval
