// Portal snapshot exporter — the paper's "Prototype and Portal" (§9):
// the authors publish monthly snapshots of their inferences and visualize
// the geographical footprint of IXPs and their members.  This module
// renders one catalog epoch into the equivalent machine-readable JSON
// snapshot: per IXP, its facilities (with coordinates) and every member
// interface with its inferred class, the evidence step, and the measured
// minimum RTT.
//
// The renderer reads ONLY the serve catalog (opwat/serve/catalog.hpp);
// the scenario+pipeline overload is a convenience that ingests into a
// one-epoch catalog first, with byte-identical output.
#pragma once

#include <string>
#include <string_view>

#include "opwat/eval/scenario.hpp"
#include "opwat/infer/pipeline.hpp"
#include "opwat/serve/catalog.hpp"

namespace opwat::eval {

struct portal_options {
  /// Snapshot label, e.g. "2018-04" (the paper publishes monthly).
  /// Used as the epoch label by the scenario+pipeline overload; the
  /// catalog overload always prints the epoch's own label.
  std::string snapshot_label = "synthetic-0";
  bool include_facilities = true;
  bool include_interfaces = true;
};

/// Serializes one ingested epoch of the catalog.  Throws
/// std::invalid_argument for unknown epoch labels.
[[nodiscard]] std::string portal_snapshot_json(const serve::catalog& cat,
                                               std::string_view epoch_label,
                                               const portal_options& opt = {});

/// Convenience: ingest `pr` as epoch `opt.snapshot_label` of a temporary
/// catalog and serialize it.
[[nodiscard]] std::string portal_snapshot_json(const scenario& s,
                                               const infer::pipeline_result& pr,
                                               const portal_options& opt = {});

}  // namespace opwat::eval
