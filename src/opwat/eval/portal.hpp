// Portal snapshot exporter — the paper's "Prototype and Portal" (§9):
// the authors publish monthly snapshots of their inferences and visualize
// the geographical footprint of IXPs and their members.  This module
// renders one pipeline run into the equivalent machine-readable JSON
// snapshot: per IXP, its facilities (with coordinates) and every member
// interface with its inferred class, the evidence step, and the measured
// minimum RTT.
#pragma once

#include <string>

#include "opwat/eval/scenario.hpp"
#include "opwat/infer/pipeline.hpp"

namespace opwat::eval {

struct portal_options {
  /// Snapshot label, e.g. "2018-04" (the paper publishes monthly).
  std::string snapshot_label = "synthetic-0";
  bool include_facilities = true;
  bool include_interfaces = true;
};

/// Serializes the inference results for every scoped IXP.
[[nodiscard]] std::string portal_snapshot_json(const scenario& s,
                                               const infer::pipeline_result& pr,
                                               const portal_options& opt = {});

}  // namespace opwat::eval
