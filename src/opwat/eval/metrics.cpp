#include "opwat/eval/metrics.hpp"

namespace opwat::eval {

void validation_sets::merge(const validation_sets& other) {
  remote.insert(other.remote.begin(), other.remote.end());
  local.insert(other.local.begin(), other.local.end());
}

namespace {

metrics score(const infer::inference_map& inf, const validation_sets& vd,
              infer::method_step only_step) {
  metrics m;
  m.vd_size = vd.size();
  std::size_t inf_in_vd_local = 0;   // |INF ∩ VD_L|
  std::size_t inf_in_vd_remote = 0;  // |INF ∩ VD_R|
  std::size_t inferred_remote = 0;   // |INF_R| within VD

  for (const auto& [key, i] : inf.items()) {
    if (i.cls == infer::peering_class::unknown) continue;
    if (only_step != infer::method_step::none && i.step != only_step) continue;
    const bool vd_remote = vd.remote.contains(key);
    const bool vd_local = vd.local.contains(key);
    if (!vd_remote && !vd_local) continue;
    ++m.inferred_in_vd;
    if (vd_local) ++inf_in_vd_local;
    if (vd_remote) ++inf_in_vd_remote;
    if (i.cls == infer::peering_class::remote) {
      ++inferred_remote;
      if (vd_remote)
        ++m.true_remote;
      else
        ++m.false_remote;
    } else {
      if (vd_local)
        ++m.true_local;
      else
        ++m.false_local;
    }
  }

  const auto ratio = [](std::size_t num, std::size_t den) {
    return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
  };
  m.cov = ratio(m.inferred_in_vd, m.vd_size);
  m.fpr = ratio(m.false_remote, inf_in_vd_local);
  m.fnr = ratio(m.false_local, inf_in_vd_remote);
  m.pre = ratio(m.true_remote, inferred_remote);
  m.acc = ratio(m.true_remote + m.true_local, m.inferred_in_vd);
  return m;
}

}  // namespace

metrics compute_metrics(const infer::inference_map& inf, const validation_sets& vd) {
  return score(inf, vd, infer::method_step::none);
}

metrics compute_metrics_for_step(const infer::inference_map& inf,
                                 const validation_sets& vd, infer::method_step step) {
  return score(inf, vd, step);
}

}  // namespace opwat::eval
