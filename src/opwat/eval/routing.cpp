#include "opwat/eval/routing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "opwat/geo/geodesic.hpp"
#include "opwat/geo/metro.hpp"

namespace opwat::eval {

namespace {

/// Distance from an AS's headquarters to the nearest facility of an IXP,
/// using the merged view's (possibly imperfect) facility coordinates.
double distance_to_ixp(const world::world& w, const db::merged_view& view,
                       world::as_id as, world::ixp_id x) {
  const auto& hq = w.cities[w.ases[as].hq_city].location;
  double best = std::numeric_limits<double>::infinity();
  for (const auto f : view.facilities_of_ixp(x)) {
    const auto loc = view.facility_location(f);
    if (loc) best = std::min(best, geo::geodesic_km(hq, *loc));
  }
  if (!std::isfinite(best)) {
    // Fall back to ground-truth coordinates when the DB lacks geodata.
    for (const auto f : w.ixps[x].facilities)
      best = std::min(best, geo::geodesic_km(hq, w.facilities[f].location));
  }
  return best;
}

}  // namespace

routing_study run_routing_study(const world::world& w, const db::merged_view& view,
                                const db::ip2as& prefix2as,
                                const measure::traceroute_engine& engine,
                                world::ixp_id studied_ixp,
                                const std::vector<net::asn>& remote_members,
                                const routing_config& cfg) {
  routing_study out;
  out.studied_ixp = studied_ixp;
  util::rng rng{cfg.seed};

  // Membership sets per ASN across all IXPs the DB knows about.
  std::map<net::asn, std::set<world::ixp_id>> member_ixps;
  for (const auto x : view.known_ixps())
    for (const auto& e : view.interfaces_of_ixp(x)) member_ixps[e.asn].insert(x);

  const auto studied_members = view.members_of_ixp(studied_ixp);

  for (const auto as_r : remote_members) {
    const auto rit = member_ixps.find(as_r);
    if (rit == member_ixps.end()) continue;
    const auto as_r_id = w.as_by_asn(as_r);
    if (!as_r_id) continue;

    for (const auto as_x : studied_members) {
      if (as_x == as_r) continue;
      if (out.pairs_examined >= cfg.max_pairs) break;
      const auto xit = member_ixps.find(as_x);
      if (xit == member_ixps.end()) continue;

      // Common IXPs beyond the studied one.
      std::vector<world::ixp_id> common;
      for (const auto x : rit->second)
        if (xit->second.contains(x)) common.push_back(x);
      if (common.size() < 2) continue;  // need the studied IXP + one more
      ++out.pairs_examined;

      const auto as_x_id = w.as_by_asn(as_x);
      if (!as_x_id || w.ases[*as_x_id].routed_prefixes.empty()) continue;
      const auto& pfx = w.ases[*as_x_id].routed_prefixes.front();
      const auto trace = engine.run(*as_r_id, pfx.at(1), rng);
      if (!trace || !trace->reached) continue;

      const auto extraction =
          traix::extract(std::span{&*trace, 1}, view, prefix2as);
      world::ixp_id used = world::k_invalid;
      for (const auto& c : extraction.crossings)
        if (c.near_as == as_r && c.far_as == as_x) used = c.ixp;
      if (used == world::k_invalid) continue;
      ++out.crossings_found;

      routing_case rc;
      rc.as_r = as_r;
      rc.as_x = as_x;
      rc.used_ixp = used;
      rc.closest_common_ixp = common.front();
      rc.closest_distance_km = std::numeric_limits<double>::infinity();
      for (const auto x : common) {
        const double d = distance_to_ixp(w, view, *as_r_id, x);
        if (d < rc.closest_distance_km) {
          rc.closest_distance_km = d;
          rc.closest_common_ixp = x;
        }
      }
      rc.used_distance_km = distance_to_ixp(w, view, *as_r_id, used);

      // Classification with a metro-scale tolerance: IXPs within 50 km of
      // the best choice count as compliant.
      const bool used_is_closest =
          rc.used_distance_km <= rc.closest_distance_km + geo::kMetroSeparationKm;
      if (used_is_closest)
        rc.verdict = routing_verdict::hot_potato;
      else if (used == studied_ixp)
        rc.verdict = routing_verdict::rp_detour;
      else if (rc.closest_common_ixp == studied_ixp)
        rc.verdict = routing_verdict::missed_rp;
      else
        rc.verdict = routing_verdict::other;
      out.cases.push_back(rc);
    }
    if (out.pairs_examined >= cfg.max_pairs) break;
  }
  return out;
}

}  // namespace opwat::eval
