#include "opwat/eval/features.hpp"

#include <map>

namespace opwat::eval {

std::vector<member_features> classify_members(const world::world& w,
                                              const db::merged_view& view,
                                              const infer::inference_map& inf) {
  struct tally {
    std::size_t local = 0, remote = 0;
  };
  std::map<net::asn, tally> tallies;
  for (const auto& [key, i] : inf.items()) {
    if (i.cls == infer::peering_class::unknown) continue;
    const auto asn = view.member_of_interface(key.ip);
    if (!asn) continue;
    auto& t = tallies[*asn];
    if (i.cls == infer::peering_class::local)
      ++t.local;
    else
      ++t.remote;
  }

  std::vector<member_features> out;
  out.reserve(tallies.size());
  for (const auto& [asn, t] : tallies) {
    member_features f;
    f.asn = asn;
    f.n_local_ifaces = t.local;
    f.n_remote_ifaces = t.remote;
    f.kind = t.local && t.remote ? member_kind::hybrid
                                 : (t.remote ? member_kind::remote : member_kind::local);
    if (const auto as_id = w.as_by_asn(asn)) {
      const auto& as = w.ases[*as_id];
      f.customer_cone = as.customer_cone;
      f.traffic_gbps = as.traffic_gbps;
      f.user_population = as.user_population;
      f.country = as.country;
    }
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace opwat::eval
