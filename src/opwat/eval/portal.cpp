#include "opwat/eval/portal.hpp"

#include <algorithm>
#include <cmath>

#include "opwat/util/json.hpp"

namespace opwat::eval {

std::string portal_snapshot_json(const scenario& s, const infer::pipeline_result& pr,
                                 const portal_options& opt) {
  util::json_writer w;
  w.begin_object();
  w.key("snapshot").value(opt.snapshot_label);
  w.key("generator").value("opwat");
  w.key("ixps_studied").value(pr.scope.size());

  const std::size_t local = pr.inferences.count(infer::peering_class::local);
  const std::size_t remote = pr.inferences.count(infer::peering_class::remote);
  std::size_t iface_total = 0;
  for (const auto x : pr.scope) iface_total += s.view.interfaces_of_ixp(x).size();
  const std::size_t unknown = iface_total - std::min(iface_total, local + remote);
  w.key("totals").begin_object();
  w.key("local").value(local);
  w.key("remote").value(remote);
  w.key("unknown").value(unknown);
  w.end_object();

  w.key("ixps").begin_array();
  for (const auto x : pr.scope) {
    const auto& ixp = s.w.ixps[x];
    w.begin_object();
    w.key("name").value(ixp.name);
    w.key("peering_lan").value(ixp.peering_lan.to_string());
    w.key("min_physical_capacity_gbps").value(ixp.min_physical_capacity_gbps);
    w.key("local").value(pr.count(x, infer::peering_class::local));
    w.key("remote").value(pr.count(x, infer::peering_class::remote));

    if (opt.include_facilities) {
      w.key("facilities").begin_array();
      for (const auto f : s.view.facilities_of_ixp(x)) {
        w.begin_object();
        w.key("id").value(static_cast<std::uint64_t>(f));
        if (f < s.w.facilities.size()) w.key("name").value(s.w.facilities[f].name);
        if (const auto loc = s.view.facility_location(f)) {
          w.key("lat").value(loc->lat_deg);
          w.key("lon").value(loc->lon_deg);
        }
        w.end_object();
      }
      w.end_array();
    }

    if (opt.include_interfaces) {
      w.key("members").begin_array();
      for (const auto& e : s.view.interfaces_of_ixp(x)) {
        const infer::iface_key key{x, e.ip};
        const auto* inf = pr.inferences.find(key);
        w.begin_object();
        w.key("interface").value(e.ip.to_string());
        w.key("asn").value(static_cast<std::uint64_t>(e.asn.value));
        w.key("class").value(
            std::string{to_string(inf ? inf->cls : infer::peering_class::unknown)});
        if (inf && inf->cls != infer::peering_class::unknown)
          w.key("evidence").value(std::string{to_string(inf->step)});
        // Measurement evidence is exported even for undecided members.
        const double rtt = pr.inferences.rtt_min_ms(key);
        if (!std::isnan(rtt)) w.key("rtt_min_ms").value(rtt);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace opwat::eval
