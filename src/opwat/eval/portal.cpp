#include "opwat/eval/portal.hpp"

#include <cmath>

#include "opwat/util/json.hpp"

namespace opwat::eval {

std::string portal_snapshot_json(const serve::catalog& cat, std::string_view epoch_label,
                                 const portal_options& opt) {
  const auto& ep = cat.of(epoch_label);
  using infer::peering_class;

  util::json_writer w;
  w.begin_object();
  w.key("snapshot").value(ep.label());
  w.key("generator").value("opwat");
  w.key("ixps_studied").value(static_cast<std::uint64_t>(ep.blocks().size()));

  w.key("totals").begin_object();
  w.key("local").value(static_cast<std::uint64_t>(ep.total(peering_class::local)));
  w.key("remote").value(static_cast<std::uint64_t>(ep.total(peering_class::remote)));
  w.key("unknown").value(static_cast<std::uint64_t>(ep.total(peering_class::unknown)));
  w.end_object();

  w.key("ixps").begin_array();
  for (const auto& b : ep.blocks()) {
    const auto& ixp = cat.ixps()[b.ixp];
    w.begin_object();
    w.key("name").value(ixp.name);
    w.key("peering_lan").value(ixp.peering_lan);
    w.key("min_physical_capacity_gbps").value(ixp.min_physical_capacity_gbps);
    w.key("local").value(
        static_cast<std::uint64_t>(b.by_class[static_cast<std::size_t>(peering_class::local)]));
    w.key("remote").value(static_cast<std::uint64_t>(
        b.by_class[static_cast<std::size_t>(peering_class::remote)]));

    if (opt.include_facilities) {
      w.key("facilities").begin_array();
      for (const auto& f : b.facilities) {
        w.begin_object();
        w.key("id").value(static_cast<std::uint64_t>(f.id));
        if (f.has_name) w.key("name").value(f.name);
        if (f.has_location) {
          w.key("lat").value(f.lat_deg);
          w.key("lon").value(f.lon_deg);
        }
        w.end_object();
      }
      w.end_array();
    }

    if (opt.include_interfaces) {
      w.key("members").begin_array();
      for (std::size_t i = b.begin; i < b.end; ++i) {
        const auto cls = static_cast<peering_class>(ep.cls_col()[i]);
        w.begin_object();
        w.key("interface").value(net::ipv4_addr{ep.ip_col()[i]}.to_string());
        w.key("asn").value(static_cast<std::uint64_t>(ep.asn_col()[i]));
        w.key("class").value(std::string{to_string(cls)});
        if (cls != peering_class::unknown)
          w.key("evidence").value(std::string{
              to_string(static_cast<infer::method_step>(ep.step_col()[i]))});
        // Measurement evidence is exported even for undecided members.
        const double rtt = ep.rtt_col()[i];
        if (!std::isnan(rtt)) w.key("rtt_min_ms").value(rtt);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string portal_snapshot_json(const scenario& s, const infer::pipeline_result& pr,
                                 const portal_options& opt) {
  serve::catalog cat;
  cat.ingest(s.w, s.view, pr, opt.snapshot_label);
  return portal_snapshot_json(cat, opt.snapshot_label, opt);
}

}  // namespace opwat::eval
