// Best-effort validation dataset construction (§3.5 / Table 2).
//
// Mirrors how the paper obtained ground truth:
//   - operator lists: IXP operators know which members connect through
//     resellers (virtual ports) but usually cannot see long-cable /
//     carrier attachments "beyond that cable"; their lists cover reseller
//     customers plus a sample of locals;
//   - website lists: some IXPs publish the port type (physical vs virtual)
//     per member; virtual -> remote, colocated physical -> local.
// Validated IXPs are split into a "control" subset (no usable colocated
// VP: used to study RTT-inference challenges, §4) and a "test" subset
// (with VPs: used to validate the methodology end to end, §5.3).
#pragma once

#include <span>
#include <vector>

#include "opwat/eval/metrics.hpp"
#include "opwat/util/rng.hpp"
#include "opwat/world/world.hpp"

namespace opwat::eval {

struct validation_config {
  std::size_t n_operator_ixps = 6;
  std::size_t n_website_ixps = 9;
  /// Operator lists: reseller customers they can flag, locals they bother
  /// to enumerate.
  double operator_reseller_coverage = 0.95;
  double operator_local_coverage = 0.60;
  /// Website port-type pages cover this share of the member base.
  double website_coverage = 0.80;
  /// When true, physical-port remote members (long cable / federation) are
  /// recorded as *local* in website-derived lists — the validation noise
  /// the paper attributes its LINX LON accuracy dip to.  When false they
  /// are simply absent from the lists.
  bool website_mislabels_long_cable = false;
  std::uint64_t seed = 99;
};

struct validated_ixp {
  world::ixp_id ixp = world::k_invalid;
  bool from_operator = false;
  bool in_control = false;  // no usable VP: control subset
  std::size_t facilities = 0;
  std::size_t total_peers = 0;
  std::size_t validated = 0;
  std::size_t validated_local = 0;
  std::size_t validated_remote = 0;
};

struct validation_data {
  std::vector<validated_ixp> ixps;  // Table 2 rows
  validation_sets control;
  validation_sets test;

  [[nodiscard]] validation_sets all() const {
    validation_sets s = control;
    s.merge(test);
    return s;
  }
  [[nodiscard]] std::vector<world::ixp_id> test_ixps() const;
  [[nodiscard]] std::vector<world::ixp_id> control_ixps() const;
};

/// Builds the dataset from the world's ground truth, with the
/// operator/website coverage gaps applied.  IXPs inside `measured_scope`
/// (those with usable colocated VPs) land in the test subset; validated
/// IXPs outside it form the control subset, mirroring Table 2's split.
[[nodiscard]] validation_data build_validation(
    const world::world& w, const validation_config& cfg,
    std::span<const world::ixp_id> measured_scope);

}  // namespace opwat::eval
