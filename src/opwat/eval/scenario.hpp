// One-call experiment scenario: ground-truth world -> noisy DB snapshots
// -> merged view -> vantage points -> traceroute corpus -> (optionally)
// the inference pipeline.  Every bench binary and example builds on this
// so that all reproduced tables/figures share one consistent ecosystem.
#pragma once

#include <vector>

#include "opwat/db/ip2as.hpp"
#include "opwat/db/merge.hpp"
#include "opwat/db/snapshot.hpp"
#include "opwat/eval/validation.hpp"
#include "opwat/infer/engine.hpp"
#include "opwat/measure/latency_model.hpp"
#include "opwat/measure/traceroute.hpp"
#include "opwat/measure/vantage.hpp"
#include "opwat/world/generator.hpp"

namespace opwat::eval {

struct scenario_config {
  world::gen_config world{};
  std::uint64_t db_seed = 11;
  std::uint64_t vp_seed = 23;
  std::uint64_t latency_seed = 31;
  std::uint64_t trace_seed = 47;
  measure::vp_config vps{};
  measure::traceroute_config traceroute{};
  /// The RIPE Atlas corpus analogue: most connected ASes host a probe at
  /// some point over the collection window (the paper: 3.15 B paths).
  std::size_t traceroute_sources = 4000;
  std::size_t targets_per_source = 30;
  validation_config validation{};
  infer::pipeline_config pipeline{};
  /// Scope: the N largest IXPs that have at least one alive VP ("the 30
  /// largest IXPs with usable VPs", §6).
  std::size_t top_n_ixps = 30;
};

struct scenario {
  scenario_config cfg;
  world::world w;
  db::merged_view view;
  db::ip2as prefix2as;
  measure::latency_model lat{0};
  std::vector<measure::vantage_point> vps;
  std::vector<measure::trace> traces;
  std::vector<world::ixp_id> scope;
  validation_data validation;

  /// Builds everything except the pipeline run.
  [[nodiscard]] static scenario build(const scenario_config& cfg);

  /// The scenario's data, bundled for an engine run (spans are valid
  /// while the scenario lives).
  [[nodiscard]] infer::engine_inputs inputs() const {
    return {w, view, prefix2as, lat, vps, traces, scope};
  }

  /// Runs the inference engine with the scenario's (or an overridden)
  /// config, or with a caller-assembled engine.
  [[nodiscard]] infer::pipeline_result run_inference() const;
  [[nodiscard]] infer::pipeline_result run_inference(
      const infer::pipeline_config& override_cfg) const;
  /// Same, on the parallel backend with `threads` workers (0 = hardware
  /// concurrency).  Bit-identical to the serial run of the same config.
  [[nodiscard]] infer::pipeline_result run_inference_parallel(
      std::size_t threads = 0) const;
  [[nodiscard]] infer::pipeline_result run_inference(
      const infer::inference_engine& eng) const {
    return eng.run(inputs());
  }

  /// A traceroute engine bound to this scenario (valid while it lives).
  [[nodiscard]] measure::traceroute_engine make_traceroute_engine() const {
    return measure::traceroute_engine{w, lat, cfg.traceroute};
  }

  /// Member interface count per IXP according to the merged view.
  [[nodiscard]] std::size_t ixp_size(world::ixp_id x) const {
    return view.interfaces_of_ixp(x).size();
  }
};

/// The default full-size scenario used by the benches (~60 IXPs, ~2400
/// ASes) and a small one for tests.
[[nodiscard]] scenario_config default_scenario_config();
[[nodiscard]] scenario_config small_scenario_config(std::uint64_t seed = 7);

}  // namespace opwat::eval
