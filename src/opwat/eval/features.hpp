// Features of remote / local / hybrid members (§6.2, Fig. 11).
//
// A member network is "remote" when all of its inferred IXP connections
// are remote, "local" when all are local, and "hybrid" when it has both.
// Per member we report the features the paper examines: CAIDA-style
// customer cone, PDB-style self-reported traffic level, APNIC-style user
// population, and country of headquarters.
#pragma once

#include <string>
#include <vector>

#include "opwat/db/merge.hpp"
#include "opwat/infer/types.hpp"
#include "opwat/world/world.hpp"

namespace opwat::eval {

enum class member_kind : std::uint8_t { local, remote, hybrid };

[[nodiscard]] constexpr std::string_view to_string(member_kind k) noexcept {
  switch (k) {
    case member_kind::local: return "local";
    case member_kind::remote: return "remote";
    case member_kind::hybrid: return "hybrid";
  }
  return "?";
}

struct member_features {
  net::asn asn;
  member_kind kind = member_kind::local;
  int customer_cone = 0;
  double traffic_gbps = 0.0;
  std::int64_t user_population = 0;
  std::string country;
  std::size_t n_local_ifaces = 0;
  std::size_t n_remote_ifaces = 0;
};

/// Classifies every member AS with at least one non-unknown inference.
/// Cone / traffic / population / country come from the world (standing in
/// for CAIDA, PDB and APNIC datasets).
[[nodiscard]] std::vector<member_features> classify_members(
    const world::world& w, const db::merged_view& view,
    const infer::inference_map& inf);

}  // namespace opwat::eval
