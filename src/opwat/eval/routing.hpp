// Routing implications of remote peering at a large IXP (§6.4).
//
// For each inferred-remote member AS_R of the studied IXP, and each other
// member AS_x sharing at least one more IXP with AS_R, traceroute from
// AS_R toward AS_x's routed prefixes and classify the IXP crossing that
// carries the traffic:
//   - hot-potato: the crossing uses the common IXP closest to AS_R;
//   - rp-detour: traffic crosses the studied IXP remotely although a
//     closer common IXP exists (the paper: 18%);
//   - missed-rp: traffic uses another IXP although the studied IXP is
//     closest to AS_R (the paper: 16%).
#pragma once

#include <vector>

#include "opwat/db/ip2as.hpp"
#include "opwat/db/merge.hpp"
#include "opwat/infer/types.hpp"
#include "opwat/measure/traceroute.hpp"
#include "opwat/traix/crossing.hpp"
#include "opwat/util/rng.hpp"

namespace opwat::eval {

enum class routing_verdict : std::uint8_t { hot_potato, rp_detour, missed_rp, other };

[[nodiscard]] constexpr std::string_view to_string(routing_verdict v) noexcept {
  switch (v) {
    case routing_verdict::hot_potato: return "hot-potato";
    case routing_verdict::rp_detour: return "rp-detour";
    case routing_verdict::missed_rp: return "missed-rp";
    case routing_verdict::other: return "other";
  }
  return "?";
}

struct routing_case {
  net::asn as_r, as_x;
  world::ixp_id used_ixp = world::k_invalid;
  world::ixp_id closest_common_ixp = world::k_invalid;
  double used_distance_km = 0.0;
  double closest_distance_km = 0.0;
  routing_verdict verdict = routing_verdict::other;
};

struct routing_study {
  world::ixp_id studied_ixp = world::k_invalid;
  std::size_t pairs_examined = 0;
  std::size_t crossings_found = 0;
  std::vector<routing_case> cases;

  [[nodiscard]] std::size_t count(routing_verdict v) const {
    std::size_t n = 0;
    for (const auto& c : cases)
      if (c.verdict == v) ++n;
    return n;
  }
};

struct routing_config {
  std::size_t max_pairs = 4000;
  std::uint64_t seed = 0x60d;
};

/// Runs the §6.4 study for `studied_ixp`, treating the members listed in
/// `remote_members` (inferred by the pipeline) as the AS_R population.
[[nodiscard]] routing_study run_routing_study(
    const world::world& w, const db::merged_view& view, const db::ip2as& prefix2as,
    const measure::traceroute_engine& engine, world::ixp_id studied_ixp,
    const std::vector<net::asn>& remote_members, const routing_config& cfg);

}  // namespace opwat::eval
