// Longitudinal study (§8): run the inference pipeline on monthly
// snapshots of an evolving ecosystem and track the remote/local split over
// time — the scale-up of §6.3's one-year analysis the paper proposes.
//
// Each month gets its own database snapshots (only memberships active that
// month are visible, mimicking monthly PDB dumps) and its own measurement
// campaign; the pipeline runs independently per month, every monthly run
// is ingested as one epoch of a serve::catalog ("month-00", "month-01",
// ...), and the join accounting is a cross-epoch diff query
// (serve::diff_epochs): an inferred join is an interface that appeared
// relative to the previous month's epoch, counted per peering class.
// The populated catalog ships in the result, so callers can run any
// further §9-style query (per-metro splits, reclassification history,
// portal exports of any month) without re-running the pipeline.
#pragma once

#include <vector>

#include "opwat/eval/scenario.hpp"
#include "opwat/serve/catalog.hpp"
#include "opwat/world/evolution.hpp"

namespace opwat::eval {

struct monthly_inference {
  int month = 0;
  std::size_t inferred_local = 0;
  std::size_t inferred_remote = 0;
  std::size_t unknown = 0;
  std::size_t truth_local = 0;
  std::size_t truth_remote = 0;
};

struct longitudinal_config {
  int months = 14;
  /// Study scope: the N largest IXPs with VPs (like the paper's 5
  /// LG-equipped IXPs in §6.3).
  std::size_t top_n_ixps = 5;
  /// When non-empty, the study persists its epoch catalog to this
  /// .opwatc snapshot (opwat/serve/store.hpp) and RESUMES from it:
  /// months whose epoch label is already in the file skip the pipeline
  /// entirely (their counts are read back from the stored epoch), and
  /// each newly-computed month is appended to the file as it finishes —
  /// so a 14-month study interrupted after month 9 redoes nothing, and
  /// next month's run only computes the new month.  The file must come
  /// from the SAME scenario and config (labels are positional); the
  /// caller owns that contract, exactly as with any resumed dataset.
  std::string store_path;
};

struct longitudinal_study {
  std::vector<monthly_inference> months;
  /// Aggregate inferred joins over the window, per class (appeared
  /// interfaces between consecutive epochs).
  std::size_t inferred_local_joins = 0;
  std::size_t inferred_remote_joins = 0;
  /// One epoch per studied month, labelled "month-00", "month-01", ...
  serve::catalog epochs;

  /// Ratio of inferred remote joins to local joins (the Fig. 12a headline;
  /// 0 when no local joins were seen).
  [[nodiscard]] double join_ratio() const {
    return inferred_local_joins == 0
               ? 0.0
               : static_cast<double>(inferred_remote_joins) /
                     static_cast<double>(inferred_local_joins);
  }
};

/// Epoch label of a study month ("month-07").
[[nodiscard]] std::string longitudinal_epoch_label(int month);

/// Runs the pipeline once per month on month-filtered views of `s`'s
/// world.  The world must have been generated with months > 0.
[[nodiscard]] longitudinal_study run_longitudinal_study(const scenario& s,
                                                        const longitudinal_config& cfg);

}  // namespace opwat::eval
