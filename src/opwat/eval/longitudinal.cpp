#include "opwat/eval/longitudinal.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace opwat::eval {

namespace {

/// A copy of the world containing only the memberships active at `month`
/// (the monthly-database-dump view).
world::world world_at_month(const world::world& w, int month) {
  world::world wm = w;
  std::vector<world::membership> active;
  active.reserve(wm.memberships.size());
  for (const auto& m : wm.memberships)
    if (w.active_at(m, month)) active.push_back(m);
  for (std::size_t i = 0; i < active.size(); ++i)
    active[i].id = static_cast<world::membership_id>(i);
  wm.memberships = std::move(active);
  wm.finalize();
  return wm;
}

}  // namespace

longitudinal_study run_longitudinal_study(const scenario& s,
                                          const longitudinal_config& cfg) {
  longitudinal_study out;
  std::vector<world::ixp_id> scope = s.scope;
  if (scope.size() > cfg.top_n_ixps) scope.resize(cfg.top_n_ixps);

  // One validated engine, reused across the monthly runs.
  const auto eng = infer::pipeline_builder::from_config(s.cfg.pipeline).build();

  // Interfaces present in last month's database dump: a decision on an
  // interface absent from it is a member join (Fig. 12a's unit).
  std::set<infer::iface_key> prev_present;

  for (int month = 0; month <= cfg.months; ++month) {
    const auto wm = world_at_month(s.w, month);
    // Fresh monthly database dump (fresh noise draw per month).
    const auto snaps =
        db::make_standard_snapshots(wm, s.cfg.db_seed + static_cast<std::uint64_t>(month));
    const auto view = db::merged_view::build(snaps);
    const auto pr =
        eng.run({wm, view, s.prefix2as, s.lat, s.vps, s.traces, scope});

    monthly_inference mi;
    mi.month = month;
    mi.inferred_local = pr.inferences.count(infer::peering_class::local);
    mi.inferred_remote = pr.inferences.count(infer::peering_class::remote);
    // Undecided = member interfaces of the studied IXPs minus decisions.
    std::set<infer::iface_key> present;
    for (const auto x : scope)
      for (const auto& e : view.interfaces_of_ixp(x)) present.insert({x, e.ip});
    mi.unknown =
        present.size() - std::min(present.size(), mi.inferred_local + mi.inferred_remote);
    for (const auto x : scope) {
      for (const auto mid : wm.memberships_of_ixp(x)) {
        const auto& m = wm.memberships[mid];
        (wm.truly_remote(m) ? mi.truth_remote : mi.truth_local)++;
      }
    }

    if (month > 0) {
      for (const auto& [key, inf] : pr.inferences.items()) {
        if (prev_present.contains(key)) continue;  // already present last month
        if (inf.cls == infer::peering_class::local) ++out.inferred_local_joins;
        if (inf.cls == infer::peering_class::remote) ++out.inferred_remote_joins;
      }
    }
    prev_present = std::move(present);
    out.months.push_back(mi);
  }
  return out;
}

}  // namespace opwat::eval
