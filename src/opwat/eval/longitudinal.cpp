#include "opwat/eval/longitudinal.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "opwat/serve/query.hpp"
#include "opwat/serve/store.hpp"

namespace opwat::eval {

namespace {

/// A copy of the world containing only the memberships active at `month`
/// (the monthly-database-dump view).
world::world world_at_month(const world::world& w, int month) {
  world::world wm = w;
  std::vector<world::membership> active;
  active.reserve(wm.memberships.size());
  for (const auto& m : wm.memberships)
    if (w.active_at(m, month)) active.push_back(m);
  for (std::size_t i = 0; i < active.size(); ++i)
    active[i].id = static_cast<world::membership_id>(i);
  wm.memberships = std::move(active);
  wm.finalize();
  return wm;
}

}  // namespace

std::string longitudinal_epoch_label(int month) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "month-%02d", month);
  return buf;
}

longitudinal_study run_longitudinal_study(const scenario& s,
                                          const longitudinal_config& cfg) {
  longitudinal_study out;
  std::vector<world::ixp_id> scope = s.scope;
  if (scope.size() > cfg.top_n_ixps) scope.resize(cfg.top_n_ixps);

  // Resume: epochs already persisted skip their pipeline run below.  A
  // missing file means a fresh study; anything wrong with a file that
  // IS there (unreadable, truncated, bit rot, wrong version) must
  // surface instead of being silently recomputed — and overwritten —
  // over.
  bool store_exists = false;
  if (!cfg.store_path.empty() && std::filesystem::exists(cfg.store_path)) {
    out.epochs = serve::catalog::load(cfg.store_path);
    store_exists = true;
  }

  // One validated engine, reused across the monthly runs.
  const auto eng = infer::pipeline_builder::from_config(s.cfg.pipeline).build();

  for (int month = 0; month <= cfg.months; ++month) {
    const auto label = longitudinal_epoch_label(month);
    const auto wm = world_at_month(s.w, month);

    const auto resumed = out.epochs.find(label);
    if (!resumed) {
      // Fresh monthly database dump (fresh noise draw per month).
      const auto snaps = db::make_standard_snapshots(
          wm, s.cfg.db_seed + static_cast<std::uint64_t>(month));
      const auto view = db::merged_view::build(snaps);
      const auto pr =
          eng.run({wm, view, s.prefix2as, s.lat, s.vps, s.traces, scope});
      const auto eid = out.epochs.ingest(wm, view, pr, label);
      if (!cfg.store_path.empty()) {
        // Extend the store one month at a time (byte-identical to a
        // full save of the prefix — see opwat/serve/store.hpp).
        if (store_exists) {
          out.epochs.append_epoch(cfg.store_path, eid);
        } else {
          out.epochs.save(cfg.store_path);
          store_exists = true;
        }
      }
    }

    // The monthly snapshot is one catalog epoch — computed just now or
    // loaded from the store; all counting below is epoch queries, not
    // pipeline rescans, so it works identically either way.
    const auto& ep = out.epochs.of(label);

    monthly_inference mi;
    mi.month = month;
    mi.inferred_local = ep.total(infer::peering_class::local);
    mi.inferred_remote = ep.total(infer::peering_class::remote);
    mi.unknown = ep.total(infer::peering_class::unknown);
    for (const auto x : scope) {
      for (const auto mid : wm.memberships_of_ixp(x)) {
        const auto& m = wm.memberships[mid];
        (wm.truly_remote(m) ? mi.truth_remote : mi.truth_local)++;
      }
    }

    if (month > 0) {
      // A decision on an interface absent from last month's dump is a
      // member join (Fig. 12a's unit) — exactly the diff's appeared set.
      const auto d =
          serve::diff_epochs(out.epochs, longitudinal_epoch_label(month - 1), label);
      out.inferred_local_joins += d.appeared_of(infer::peering_class::local);
      out.inferred_remote_joins += d.appeared_of(infer::peering_class::remote);
    }
    out.months.push_back(mi);
  }
  return out;
}

}  // namespace opwat::eval
