#include "opwat/eval/longitudinal.hpp"

#include <algorithm>
#include <map>

namespace opwat::eval {

namespace {

/// A copy of the world containing only the memberships active at `month`
/// (the monthly-database-dump view).
world::world world_at_month(const world::world& w, int month) {
  world::world wm = w;
  std::vector<world::membership> active;
  active.reserve(wm.memberships.size());
  for (const auto& m : wm.memberships)
    if (w.active_at(m, month)) active.push_back(m);
  for (std::size_t i = 0; i < active.size(); ++i)
    active[i].id = static_cast<world::membership_id>(i);
  wm.memberships = std::move(active);
  wm.finalize();
  return wm;
}

}  // namespace

longitudinal_study run_longitudinal_study(const scenario& s,
                                          const longitudinal_config& cfg) {
  longitudinal_study out;
  std::vector<world::ixp_id> scope = s.scope;
  if (scope.size() > cfg.top_n_ixps) scope.resize(cfg.top_n_ixps);

  std::map<infer::iface_key, infer::peering_class> prev;

  for (int month = 0; month <= cfg.months; ++month) {
    const auto wm = world_at_month(s.w, month);
    // Fresh monthly database dump (fresh noise draw per month).
    const auto snaps =
        db::make_standard_snapshots(wm, s.cfg.db_seed + static_cast<std::uint64_t>(month));
    const auto view = db::merged_view::build(snaps);
    const auto pr = infer::run_pipeline(wm, view, s.prefix2as, s.lat, s.vps, s.traces,
                                        scope, s.cfg.pipeline);

    monthly_inference mi;
    mi.month = month;
    std::map<infer::iface_key, infer::peering_class> cur;
    for (const auto& [key, inf] : pr.inferences.items()) {
      cur[key] = inf.cls;
      switch (inf.cls) {
        case infer::peering_class::local: ++mi.inferred_local; break;
        case infer::peering_class::remote: ++mi.inferred_remote; break;
        case infer::peering_class::unknown: ++mi.unknown; break;
      }
    }
    for (const auto x : scope) {
      for (const auto mid : wm.memberships_of_ixp(x)) {
        const auto& m = wm.memberships[mid];
        (wm.truly_remote(m) ? mi.truth_remote : mi.truth_local)++;
      }
    }

    if (month > 0) {
      for (const auto& [key, cls] : cur) {
        if (prev.contains(key)) continue;  // already present last month
        if (cls == infer::peering_class::local) ++out.inferred_local_joins;
        if (cls == infer::peering_class::remote) ++out.inferred_remote_joins;
      }
    }
    prev = std::move(cur);
    out.months.push_back(mi);
  }
  return out;
}

}  // namespace opwat::eval
