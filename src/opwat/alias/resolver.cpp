#include "opwat/alias/resolver.hpp"

#include <algorithm>
#include <map>
#include <numeric>

namespace opwat::alias {

resolver_config kapar_like() noexcept { return {.recall = 0.95, .false_merge = 0.03}; }

alias_groups resolver::resolve(std::span<const net::ipv4_addr> candidates) const {
  // Deterministic, order-independent behaviour: work on a sorted, deduped
  // copy and derive all coin flips from stable hashes.
  std::vector<net::ipv4_addr> ifaces{candidates.begin(), candidates.end()};
  std::sort(ifaces.begin(), ifaces.end());
  ifaces.erase(std::unique(ifaces.begin(), ifaces.end()), ifaces.end());

  std::vector<std::size_t> parent(ifaces.size());
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  const auto unite = [&](std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  };

  // Group candidates by true router.
  std::map<world::router_id, std::vector<std::size_t>> by_router;
  for (std::size_t i = 0; i < ifaces.size(); ++i) {
    const auto rid = w_.router_by_interface(ifaces[i]);
    if (rid) by_router[*rid].push_back(i);
  }

  // True aliases: recover each adjacent pair with P(recall); transitive
  // closure happens via union-find, mirroring how MIDAR chains pairwise
  // evidence.
  for (const auto& [rid, members] : by_router) {
    for (std::size_t k = 1; k < members.size(); ++k) {
      util::rng r{util::hash_combine(
          seed_, util::pair_hash_unordered(ifaces[members[k - 1]].value(),
                                           ifaces[members[k]].value()))};
      if (r.bernoulli(cfg_.recall)) unite(members[k - 1], members[k]);
    }
    // A second chance across the group: first<->last (MIDAR probes many
    // pair combinations, not just a chain).
    if (members.size() > 2) {
      util::rng r{util::hash_combine(
          seed_ + 1, util::pair_hash_unordered(ifaces[members.front()].value(),
                                               ifaces[members.back()].value()))};
      if (r.bernoulli(cfg_.recall)) unite(members.front(), members.back());
    }
  }

  // False merges: wrongly join two routers of the same AS (the typical
  // shared-counter failure mode).
  std::map<world::as_id, std::vector<std::size_t>> by_as;
  for (const auto& [rid, members] : by_router)
    by_as[w_.routers[rid].owner].push_back(members.front());
  for (const auto& [as, reps] : by_as) {
    for (std::size_t k = 1; k < reps.size(); ++k) {
      util::rng r{util::hash_combine(
          seed_ + 2, util::pair_hash_unordered(ifaces[reps[k - 1]].value(),
                                               ifaces[reps[k]].value()))};
      if (r.bernoulli(cfg_.false_merge)) unite(reps[k - 1], reps[k]);
    }
  }

  std::map<std::size_t, std::vector<net::ipv4_addr>> groups;
  for (std::size_t i = 0; i < ifaces.size(); ++i) groups[find(i)].push_back(ifaces[i]);
  alias_groups out;
  out.reserve(groups.size());
  for (auto& [root, members] : groups) out.push_back(std::move(members));
  return out;
}

}  // namespace opwat::alias
