// Alias resolution simulation (MIDAR + iffinder analogue, §5.2 Step 4).
//
// Given a set of candidate interface addresses, group the ones that belong
// to the same physical router.  The paper deliberately picked CAIDA's
// precision-biased dataset (MIDAR + iffinder) over the recall-biased one
// (+kapar); the simulator models that trade-off explicitly: true aliases
// are recovered with probability `recall` (per pair, closed transitively)
// and false merges happen with a tiny `false_merge` probability.  Ground
// truth comes from the world's interface->router mapping.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "opwat/net/ipv4.hpp"
#include "opwat/util/rng.hpp"
#include "opwat/world/world.hpp"

namespace opwat::alias {

struct resolver_config {
  double recall = 0.80;        // probability a true alias pair is recovered
  double false_merge = 0.002;  // probability two routers are wrongly merged
};

/// A recall-biased preset approximating the +kapar dataset.
[[nodiscard]] resolver_config kapar_like() noexcept;

/// Disjoint interface groups; each inner vector is one inferred router.
using alias_groups = std::vector<std::vector<net::ipv4_addr>>;

class resolver {
 public:
  resolver(const world::world& w, resolver_config cfg, std::uint64_t seed) noexcept
      : w_(w), cfg_(cfg), seed_(seed) {}

  /// Groups the candidate interfaces into inferred routers.  Interfaces
  /// with unknown ground truth each form a singleton group.  Deterministic
  /// for a given (seed, candidate set).
  [[nodiscard]] alias_groups resolve(std::span<const net::ipv4_addr> candidates) const;

 private:
  const world::world& w_;
  resolver_config cfg_;
  std::uint64_t seed_;
};

}  // namespace opwat::alias
