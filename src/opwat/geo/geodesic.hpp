// Geodesic distance on the WGS-84 ellipsoid.
//
// The paper applies Karney's method [53] to facility coordinates to decide
// whether two facilities are in the same metropolitan area and to compute
// VP-to-facility distances for the feasible-ring test (Step 3).  We provide
// an iterative ellipsoidal inverse (Vincenty's formulation, which agrees
// with Karney's solution to well under the accuracy the methodology needs)
// plus a spherical haversine fallback for the rare non-converging
// antipodal pairs.
#pragma once

#include <optional>

namespace opwat::geo {

/// A WGS-84 coordinate, degrees.
struct geo_point {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend bool operator==(const geo_point&, const geo_point&) = default;
};

/// True if latitude/longitude are inside the valid ranges.
[[nodiscard]] bool is_valid(const geo_point& p) noexcept;

/// Great-circle distance in km on a mean-radius sphere.
[[nodiscard]] double haversine_km(const geo_point& a, const geo_point& b) noexcept;

/// Ellipsoidal inverse geodesic distance in km (iterative).  Falls back to
/// haversine when the iteration does not converge (near-antipodal pairs).
[[nodiscard]] double geodesic_km(const geo_point& a, const geo_point& b) noexcept;

/// Destination point `distance_km` away from `origin` along the initial
/// bearing (degrees clockwise from north), on the sphere.  Used by the world
/// generator to scatter facilities around a city centre.
[[nodiscard]] geo_point offset_km(const geo_point& origin, double bearing_deg,
                                  double distance_km) noexcept;

}  // namespace opwat::geo
