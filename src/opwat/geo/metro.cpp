#include "opwat/geo/metro.hpp"

#include <limits>
#include <numeric>

namespace opwat::geo {

bool same_metro(const geo_point& a, const geo_point& b) noexcept {
  return geodesic_km(a, b) <= kMetroSeparationKm;
}

double max_pairwise_distance_km(std::span<const geo_point> pts) noexcept {
  double best = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i)
    for (std::size_t j = i + 1; j < pts.size(); ++j)
      best = std::max(best, geodesic_km(pts[i], pts[j]));
  return best;
}

double min_distance_km(std::span<const geo_point> a,
                       std::span<const geo_point> b) noexcept {
  if (a.empty() || b.empty()) return std::numeric_limits<double>::infinity();
  double best = std::numeric_limits<double>::infinity();
  for (const auto& p : a)
    for (const auto& q : b) best = std::min(best, geodesic_km(p, q));
  return best;
}

double max_distance_km(std::span<const geo_point> a,
                       std::span<const geo_point> b) noexcept {
  double best = 0.0;
  for (const auto& p : a)
    for (const auto& q : b) best = std::max(best, geodesic_km(p, q));
  return best;
}

bool is_wide_area(std::span<const geo_point> facilities) noexcept {
  for (std::size_t i = 0; i < facilities.size(); ++i)
    for (std::size_t j = i + 1; j < facilities.size(); ++j)
      if (geodesic_km(facilities[i], facilities[j]) > kMetroSeparationKm) return true;
  return false;
}

namespace {
struct union_find {
  std::vector<std::size_t> parent;
  explicit union_find(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[b < a ? a : b] = b < a ? b : a;
  }
};
}  // namespace

std::vector<std::size_t> metro_clusters(std::span<const geo_point> pts) {
  union_find uf{pts.size()};
  for (std::size_t i = 0; i < pts.size(); ++i)
    for (std::size_t j = i + 1; j < pts.size(); ++j)
      if (same_metro(pts[i], pts[j])) uf.unite(i, j);
  // Compact cluster ids in first-seen order.
  std::vector<std::size_t> out(pts.size());
  std::vector<std::size_t> remap(pts.size(), static_cast<std::size_t>(-1));
  std::size_t next = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const std::size_t root = uf.find(i);
    if (remap[root] == static_cast<std::size_t>(-1)) remap[root] = next++;
    out[i] = remap[root];
  }
  return out;
}

}  // namespace opwat::geo
