// RTT <-> distance conversion from the paper (§5.2, Step 3 and Fig. 6).
//
// Upper bound: Katz-Bassett et al. found probe packets travel at most
// v_max = 4/9 * c.  The paper converts a measured RTT_min to a maximum
// distance as d_max = v_max * RTT_min; the Fig. 7 worked example
// (4 ms -> 532 km outer radius) confirms this convention, so we keep it.
//
// Lower bound: the paper fits v_min(d) = a * (ln d - b) to Y.1731
// facility-to-facility delays (the published constants are unit-ambiguous;
// we calibrate a = 27.7 km/ms, b = 3 so the Fig. 7 inner radius of 299 km
// at 4 ms is reproduced exactly — see DESIGN.md).  d_min is the fixed
// point of d = v_min(d) * RTT, found by bisection; below the e^b knee the
// bound degenerates to 0 km.
//
// The same envelope drives the *ground truth* latency model of the
// simulator, so Step 3's ring test faces exactly the distortion it would
// face on real paths (paths are never faster than v_max nor slower than
// the empirical minimum speed).
#pragma once

namespace opwat::geo {

/// Speed of light in km/ms.
inline constexpr double kSpeedOfLightKmPerMs = 299.792458;

/// Katz-Bassett maximum effective packet speed, km/ms ("4/9 c").
inline constexpr double kVMaxKmPerMs = 4.0 / 9.0 * kSpeedOfLightKmPerMs;

/// Calibration of the empirical minimum-speed curve v_min(d) = a(ln d - b).
/// The log fit is only meaningful while it stays below v_max; past that it
/// is clamped to `clamp_fraction * v_max` (real long-haul paths are never
/// slower than a large constant fraction of the fibre speed).
struct speed_fit {
  double a_km_per_ms = 27.7;
  double b = 3.0;
  double clamp_fraction = 0.85;
};

/// Minimum plausible effective speed at distance d (km/ms); 0 below the
/// knee e^b, clamped to clamp_fraction * v_max at long distances.
[[nodiscard]] double v_min_km_per_ms(double distance_km,
                                     const speed_fit& fit = {}) noexcept;

/// Fastest possible RTT for a path of geodesic length d (ms): d / v_max.
[[nodiscard]] double min_rtt_ms_for_distance(double distance_km) noexcept;

/// Slowest plausible RTT for a path of length d (ms): d / v_min(d).
/// Distances below the knee return +infinity (no lower speed bound).
[[nodiscard]] double max_rtt_ms_for_distance(double distance_km,
                                             const speed_fit& fit = {}) noexcept;

/// The feasible distance ring [d_min, d_max] implied by a measured RTT.
struct distance_ring {
  double d_min_km = 0.0;
  double d_max_km = 0.0;

  [[nodiscard]] bool contains(double d_km) const noexcept {
    return d_km >= d_min_km && d_km <= d_max_km;
  }
};

/// Ring implied by RTT_min per the paper's convention (d = v * RTT).
/// Negative RTT is treated as 0.
[[nodiscard]] distance_ring feasible_ring(double rtt_min_ms,
                                          const speed_fit& fit = {}) noexcept;

}  // namespace opwat::geo
