#include "opwat/geo/speed_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace opwat::geo {

double v_min_km_per_ms(double distance_km, const speed_fit& fit) noexcept {
  if (distance_km <= 0.0) return 0.0;
  const double v = fit.a_km_per_ms * (std::log(distance_km) - fit.b);
  const double cap = fit.clamp_fraction * kVMaxKmPerMs;
  return std::min(std::max(v, 0.0), cap);
}

double min_rtt_ms_for_distance(double distance_km) noexcept {
  if (distance_km <= 0.0) return 0.0;
  return distance_km / kVMaxKmPerMs;
}

double max_rtt_ms_for_distance(double distance_km, const speed_fit& fit) noexcept {
  const double v = v_min_km_per_ms(distance_km, fit);
  if (v <= 0.0) return std::numeric_limits<double>::infinity();
  return distance_km / v;
}

distance_ring feasible_ring(double rtt_min_ms, const speed_fit& fit) noexcept {
  if (rtt_min_ms < 0.0) rtt_min_ms = 0.0;
  distance_ring ring;
  ring.d_max_km = kVMaxKmPerMs * rtt_min_ms;

  // d_min is the largest d with v_min(d) * rtt >= d, i.e. the upper fixed
  // point of g(d) = v_min(d) * rtt - d.  g is positive just above the knee
  // e^b and eventually negative (log growth), so bisect on [knee, d_max].
  const double knee = std::exp(fit.b);
  if (ring.d_max_km <= knee) {
    ring.d_min_km = 0.0;
    return ring;
  }
  const auto g = [&](double d) { return v_min_km_per_ms(d, fit) * rtt_min_ms - d; };
  double lo = knee;
  double hi = ring.d_max_km;
  if (g(hi) >= 0.0) {
    // Even the speed-of-light radius is reachable at the minimum speed:
    // the ring collapses to the outer disk boundary region.
    ring.d_min_km = hi;
    return ring;
  }
  // Make sure the bracket starts positive; otherwise no inner exclusion.
  // Probe a few points to find a positive g (g rises from ~0 at the knee).
  double probe = knee * 1.05;
  bool positive_found = false;
  for (int i = 0; i < 64 && probe < hi; ++i, probe *= 1.3) {
    if (g(probe) > 0.0) {
      lo = probe;
      positive_found = true;
      break;
    }
  }
  if (!positive_found) {
    ring.d_min_km = 0.0;
    return ring;
  }
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (g(mid) >= 0.0)
      lo = mid;
    else
      hi = mid;
  }
  ring.d_min_km = 0.5 * (lo + hi);
  return ring;
}

}  // namespace opwat::geo
