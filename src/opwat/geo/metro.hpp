// Metropolitan-area rules from the paper:
//   - a metro area is a disk of diameter 100 km (footnote 2);
//   - facilities more than 50 km apart are in different metro areas (§4.2);
//   - an IXP is "wide-area" iff at least two of its facilities are in
//     different metro areas.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "opwat/geo/geodesic.hpp"

namespace opwat::geo {

/// Distance above which two facilities count as different metro areas (km).
inline constexpr double kMetroSeparationKm = 50.0;

/// True if the two points are within the same metropolitan area.
[[nodiscard]] bool same_metro(const geo_point& a, const geo_point& b) noexcept;

/// Greatest pairwise geodesic distance among the points (0 for < 2 points).
[[nodiscard]] double max_pairwise_distance_km(std::span<const geo_point> pts) noexcept;

/// Smallest pairwise distance between two point sets; +inf if either empty.
[[nodiscard]] double min_distance_km(std::span<const geo_point> a,
                                     std::span<const geo_point> b) noexcept;

/// Largest pairwise distance between two point sets; 0 if either empty.
[[nodiscard]] double max_distance_km(std::span<const geo_point> a,
                                     std::span<const geo_point> b) noexcept;

/// Wide-area test: at least two points more than kMetroSeparationKm apart.
[[nodiscard]] bool is_wide_area(std::span<const geo_point> facilities) noexcept;

/// Single-linkage clustering with the 50 km metro rule; returns the cluster
/// index per input point.  Deterministic (union-find over sorted pairs).
[[nodiscard]] std::vector<std::size_t> metro_clusters(std::span<const geo_point> pts);

}  // namespace opwat::geo
