#include "opwat/geo/geodesic.hpp"

#include <cmath>
#include <numbers>

namespace opwat::geo {

namespace {
constexpr double kDegToRad = std::numbers::pi / 180.0;
constexpr double kRadToDeg = 180.0 / std::numbers::pi;
constexpr double kEarthRadiusKm = 6371.0088;  // IUGG mean radius
// WGS-84.
constexpr double kSemiMajorKm = 6378.137;
constexpr double kFlattening = 1.0 / 298.257223563;
constexpr double kSemiMinorKm = kSemiMajorKm * (1.0 - kFlattening);
}  // namespace

bool is_valid(const geo_point& p) noexcept {
  return p.lat_deg >= -90.0 && p.lat_deg <= 90.0 && p.lon_deg >= -180.0 &&
         p.lon_deg <= 180.0 && std::isfinite(p.lat_deg) && std::isfinite(p.lon_deg);
}

double haversine_km(const geo_point& a, const geo_point& b) noexcept {
  const double phi1 = a.lat_deg * kDegToRad;
  const double phi2 = b.lat_deg * kDegToRad;
  const double dphi = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlmb = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double s1 = std::sin(dphi / 2);
  const double s2 = std::sin(dlmb / 2);
  const double h = s1 * s1 + std::cos(phi1) * std::cos(phi2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double geodesic_km(const geo_point& a, const geo_point& b) noexcept {
  if (a == b) return 0.0;
  const double L = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double U1 = std::atan((1.0 - kFlattening) * std::tan(a.lat_deg * kDegToRad));
  const double U2 = std::atan((1.0 - kFlattening) * std::tan(b.lat_deg * kDegToRad));
  const double sinU1 = std::sin(U1), cosU1 = std::cos(U1);
  const double sinU2 = std::sin(U2), cosU2 = std::cos(U2);

  double lambda = L;
  double sin_sigma = 0, cos_sigma = 0, sigma = 0, cos_sq_alpha = 0, cos2sm = 0;
  for (int i = 0; i < 200; ++i) {
    const double sin_l = std::sin(lambda), cos_l = std::cos(lambda);
    const double t1 = cosU2 * sin_l;
    const double t2 = cosU1 * sinU2 - sinU1 * cosU2 * cos_l;
    sin_sigma = std::sqrt(t1 * t1 + t2 * t2);
    // coincident points: exact-zero guard against the 0/0 below
    // opwat-lint: allow(float-compare): only exact 0.0 divides by zero here
    if (sin_sigma == 0.0) return 0.0;
    cos_sigma = sinU1 * sinU2 + cosU1 * cosU2 * cos_l;
    sigma = std::atan2(sin_sigma, cos_sigma);
    const double sin_alpha = cosU1 * cosU2 * sin_l / sin_sigma;
    cos_sq_alpha = 1.0 - sin_alpha * sin_alpha;
    // opwat-lint: allow(float-compare): equatorial-path guard — only an
    // exact 0.0 denominator is invalid in the Vincenty term
    cos2sm = cos_sq_alpha != 0.0 ? cos_sigma - 2.0 * sinU1 * sinU2 / cos_sq_alpha : 0.0;
    const double C =
        kFlattening / 16.0 * cos_sq_alpha * (4.0 + kFlattening * (4.0 - 3.0 * cos_sq_alpha));
    const double lambda_prev = lambda;
    lambda = L + (1.0 - C) * kFlattening * sin_alpha *
                     (sigma + C * sin_sigma *
                                  (cos2sm + C * cos_sigma * (-1.0 + 2.0 * cos2sm * cos2sm)));
    if (std::abs(lambda - lambda_prev) < 1e-12) {
      const double u_sq = cos_sq_alpha *
                          (kSemiMajorKm * kSemiMajorKm - kSemiMinorKm * kSemiMinorKm) /
                          (kSemiMinorKm * kSemiMinorKm);
      const double A =
          1.0 + u_sq / 16384.0 * (4096.0 + u_sq * (-768.0 + u_sq * (320.0 - 175.0 * u_sq)));
      const double B = u_sq / 1024.0 * (256.0 + u_sq * (-128.0 + u_sq * (74.0 - 47.0 * u_sq)));
      const double d_sigma =
          B * sin_sigma *
          (cos2sm + B / 4.0 *
                        (cos_sigma * (-1.0 + 2.0 * cos2sm * cos2sm) -
                         B / 6.0 * cos2sm * (-3.0 + 4.0 * sin_sigma * sin_sigma) *
                             (-3.0 + 4.0 * cos2sm * cos2sm)));
      return kSemiMinorKm * A * (sigma - d_sigma);
    }
  }
  return haversine_km(a, b);  // antipodal fallback
}

geo_point offset_km(const geo_point& origin, double bearing_deg,
                    double distance_km) noexcept {
  const double delta = distance_km / kEarthRadiusKm;
  const double theta = bearing_deg * kDegToRad;
  const double phi1 = origin.lat_deg * kDegToRad;
  const double lmb1 = origin.lon_deg * kDegToRad;
  const double phi2 = std::asin(std::sin(phi1) * std::cos(delta) +
                                std::cos(phi1) * std::sin(delta) * std::cos(theta));
  const double lmb2 =
      lmb1 + std::atan2(std::sin(theta) * std::sin(delta) * std::cos(phi1),
                        std::cos(delta) - std::sin(phi1) * std::sin(phi2));
  geo_point out{phi2 * kRadToDeg, lmb2 * kRadToDeg};
  while (out.lon_deg > 180.0) out.lon_deg -= 360.0;
  while (out.lon_deg < -180.0) out.lon_deg += 360.0;
  return out;
}

}  // namespace opwat::geo
