// Ping campaign engine (§3.1, §5.2 Step 2).
//
// From every vantage point inside an IXP, ping every member interface of
// that IXP repeatedly (the paper: every 2 h for 2 days = 24 rounds), apply
// the TTL-match and TTL-switch filters of Castro et al., and keep the
// minimum RTT per {VP, interface} pair.  The engine also measures each
// VP's RTT to the IXP route server, which Step 2 uses to discard
// management-LAN Atlas probes (RTT >= 1 ms to the route server).
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "opwat/measure/latency_model.hpp"
#include "opwat/measure/vantage.hpp"
#include "opwat/net/ipv4.hpp"
#include "opwat/util/rng.hpp"
#include "opwat/world/world.hpp"

namespace opwat::measure {

struct ping_config {
  int rounds = 24;
  double iface_response_rate_lg = 0.95;     // Table 5: 95% responsive via LGs
  double iface_response_rate_atlas = 0.75;  // Table 5: 75% responsive via Atlas
  double offsubnet_reply_rate = 0.01;       // dropped by the TTL-match filter
  double ttl_switch_rate = 0.005;           // series dropped by TTL-switch
  bool apply_ttl_filters = true;
};

/// A ping target: an interface on some IXP's peering LAN.
struct ping_target {
  net::ipv4_addr ip;
  world::ixp_id ixp = world::k_invalid;
};

/// Aggregated result for one {VP, interface} pair.
struct ping_measurement {
  std::size_t vp_index = 0;
  net::ipv4_addr target;
  world::ixp_id ixp = world::k_invalid;
  bool responsive = false;
  double rtt_min_ms = std::numeric_limits<double>::infinity();
  int samples_total = 0;
  int samples_kept = 0;
};

struct ping_campaign {
  std::vector<ping_measurement> measurements;
  /// RTT from each VP (parallel to the input span) to its IXP route server.
  std::vector<double> route_server_rtt_ms;
};

/// Runs the campaign.  Target interfaces are pinged from every alive VP
/// whose `ixp` matches the target's; ground-truth RTTs come from the
/// latency model via the interface's true router position in `w`.  VPs
/// whose IXP appears in no target are skipped entirely (their
/// route-server RTT stays +inf).  Every draw is keyed by (rng seed, VP
/// index, target ip) — never by iteration order — so campaigns over
/// target subsets reproduce the full campaign's values exactly.
[[nodiscard]] ping_campaign run_ping_campaign(const world::world& w,
                                              const latency_model& lat,
                                              std::span<const vantage_point> vps,
                                              std::span<const ping_target> targets,
                                              const ping_config& cfg, util::rng rng);

}  // namespace opwat::measure
