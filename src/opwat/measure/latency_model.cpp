#include "opwat/measure/latency_model.hpp"

#include <cmath>

#include "opwat/util/rng.hpp"

namespace opwat::measure {

namespace {
std::uint64_t point_tag(const net_point& p) noexcept {
  const auto lat = static_cast<std::int64_t>(p.location.lat_deg * 1e6);
  const auto lon = static_cast<std::int64_t>(p.location.lon_deg * 1e6);
  return util::hash_combine(static_cast<std::uint64_t>(lat),
                            static_cast<std::uint64_t>(lon));
}
}  // namespace

double latency_model::base_rtt_ms(const net_point& a, const net_point& b,
                                  std::uint64_t path_tag) const noexcept {
  // Stable per-pair randomness: same endpoints always see the same path.
  const std::uint64_t pair_tag =
      util::hash_combine(util::pair_hash_unordered(point_tag(a), point_tag(b)),
                         util::hash_combine(seed_, path_tag));
  util::rng pr{pair_tag};

  if (a.facility && b.facility && *a.facility == *b.facility)
    return pr.uniform(0.12, 0.45);  // same switch room

  const double d = geo::geodesic_km(a.location, b.location);
  if (d < 1.0) return pr.uniform(0.15, 0.7);

  // Effective speed inside the Fig. 6 envelope, with safety margins so
  // the fixed equipment overhead (which lowers the effective end-to-end
  // speed) cannot push the minimum RTT outside the feasible band.
  const double v_hi = 0.92 * geo::kVMaxKmPerMs;
  const double v_lo_raw = geo::v_min_km_per_ms(d, fit_);
  const double v_lo = std::min(v_hi * 0.98, std::max(1.15 * v_lo_raw, 55.0));
  // Skew towards the fast end: long-haul paths are usually close to great
  // circle fibre, metro paths are messier.
  const double u = std::pow(pr.uniform01(), 2.0);
  const double v = v_hi - (v_hi - v_lo) * u;
  const double overhead_ms = pr.uniform(0.08, 0.3);
  return d / v + overhead_ms;
}

double latency_model::sample_rtt_ms(const net_point& a, const net_point& b,
                                    util::rng& r, std::uint64_t path_tag) const noexcept {
  double rtt = base_rtt_ms(a, b, path_tag);
  rtt += r.exponential(0.12);
  if (r.bernoulli(0.01)) rtt += r.uniform(4.0, 60.0);  // transient congestion
  return rtt;
}

net_point latency_model::point_of_router(const world::world& w, world::router_id rid) {
  const auto& rt = w.routers.at(rid);
  net_point p;
  p.location = w.router_location(rt);
  p.facility = rt.facility;
  return p;
}

net_point latency_model::point_of_facility(const world::world& w,
                                           world::facility_id fid) {
  const auto& f = w.facilities.at(fid);
  return {f.location, f.id};
}

}  // namespace opwat::measure
