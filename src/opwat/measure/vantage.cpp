#include "opwat/measure/vantage.hpp"

namespace opwat::measure {

std::string_view to_string(vp_type t) noexcept {
  return t == vp_type::looking_glass ? "LG" : "Atlas";
}

std::vector<vantage_point> make_vantage_points(const world::world& w,
                                               const vp_config& cfg, util::rng rng) {
  std::vector<vantage_point> vps;
  for (const auto& x : w.ixps) {
    if (x.facilities.empty()) continue;
    if (x.has_looking_glass) {
      vantage_point vp;
      vp.name = "lg." + x.name;
      vp.type = vp_type::looking_glass;
      vp.ixp = x.id;
      vp.facility = x.facilities.front();
      vp.location = w.facilities[vp.facility].location;
      vp.in_peering_lan = true;
      vp.rounds_rtt_up = rng.bernoulli(cfg.lg_round_fraction);
      vps.push_back(std::move(vp));
    }
    const auto n_atlas = static_cast<std::size_t>(rng.exponential(cfg.atlas_per_ixp_mean));
    for (std::size_t k = 0; k < n_atlas; ++k) {
      vantage_point vp;
      vp.type = vp_type::atlas;
      vp.name = "atlas." + x.name + "." + std::to_string(k + 1);
      vp.ixp = x.id;
      vp.facility = x.facilities[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(x.facilities.size()) - 1))];
      vp.location = w.facilities[vp.facility].location;
      vp.in_peering_lan = false;
      vp.alive = !rng.bernoulli(cfg.atlas_dead_fraction);
      if (rng.bernoulli(cfg.atlas_mgmt_fraction)) {
        vp.in_mgmt_lan = true;
        vp.mgmt_extra_ms = rng.uniform(cfg.mgmt_extra_ms_lo, cfg.mgmt_extra_ms_hi);
      }
      vps.push_back(std::move(vp));
    }
  }
  return vps;
}

}  // namespace opwat::measure
