#include "opwat/measure/y1731.hpp"

#include "opwat/geo/geodesic.hpp"
#include "opwat/util/stats.hpp"

namespace opwat::measure {

std::vector<facility_pair_delay> facility_delay_matrix(const world::world& w,
                                                       const latency_model& lat,
                                                       world::ixp_id ixp,
                                                       int samples_per_pair,
                                                       util::rng rng) {
  std::vector<facility_pair_delay> out;
  const auto& facs = w.ixps.at(ixp).facilities;
  for (std::size_t i = 0; i < facs.size(); ++i) {
    for (std::size_t j = i + 1; j < facs.size(); ++j) {
      const auto pa = latency_model::point_of_facility(w, facs[i]);
      const auto pb = latency_model::point_of_facility(w, facs[j]);
      std::vector<double> samples;
      samples.reserve(static_cast<std::size_t>(samples_per_pair));
      for (int s = 0; s < samples_per_pair; ++s)
        samples.push_back(lat.sample_rtt_ms(pa, pb, rng));
      facility_pair_delay d;
      d.a = facs[i];
      d.b = facs[j];
      d.distance_km = geo::geodesic_km(pa.location, pb.location);
      d.median_rtt_ms = util::median(samples);
      out.push_back(d);
    }
  }
  return out;
}

}  // namespace opwat::measure
