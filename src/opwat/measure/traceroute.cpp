#include "opwat/measure/traceroute.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace opwat::measure {

traceroute_engine::traceroute_engine(const world::world& w, const latency_model& lat,
                                     traceroute_config cfg)
    : w_(w), lat_(lat), cfg_(cfg) {
  as_memberships_.assign(w.ases.size(), {});
  ixp_memberships_.assign(w.ixps.size(), {});
  as_private_.assign(w.ases.size(), {});
  for (const auto& m : w.memberships) {
    as_memberships_[m.member].push_back(m.id);
    ixp_memberships_[m.ixp].push_back(m.id);
  }
  for (std::size_t i = 0; i < w.private_links.size(); ++i) {
    as_private_[w.private_links[i].a].push_back(i);
    as_private_[w.private_links[i].b].push_back(i);
  }
  for (const auto& as : w.ases)
    if (!as_memberships_[as.id].empty() || !as_private_[as.id].empty())
      connected_.push_back(as.id);
  for (const auto& as : w.ases)
    for (const auto& p : as.routed_prefixes) routed_lookup_.insert(p, as.id);
}

net::ipv4_addr traceroute_engine::egress_iface(world::router_id rid,
                                               std::uint64_t tag) const {
  const auto& rt = w_.routers[rid];
  if (rt.interfaces.empty()) return net::ipv4_addr{0};
  const auto idx = util::hash_combine(rid, tag) % rt.interfaces.size();
  return rt.interfaces[idx];
}

const traceroute_engine::bfs_tree& traceroute_engine::tree_for(world::as_id src) const {
  if (tree_cache_.src == src && !tree_cache_.seen.empty()) return tree_cache_;
  // Full BFS over the bipartite AS<->IXP graph plus private edges.
  // Private interconnects are explored first: networks prefer their
  // (cheaper, dedicated) private links over IXP fabric when both exist.
  bfs_tree t;
  t.src = src;
  t.parent_edge.assign(w_.ases.size(), {});
  t.parent_as.assign(w_.ases.size(), world::k_invalid);
  t.seen.assign(w_.ases.size(), 0);
  std::vector<char> ixp_seen(w_.ixps.size(), 0);
  std::vector<int> depth(w_.ases.size(), 0);

  std::deque<world::as_id> queue;
  queue.push_back(src);
  t.seen[src] = 1;

  while (!queue.empty()) {
    const auto u = queue.front();
    queue.pop_front();
    if (depth[u] >= cfg_.max_as_hops) continue;

    const auto visit = [&](world::as_id v, const as_edge& e) {
      if (t.seen[v]) return;
      t.seen[v] = 1;
      t.parent_edge[v] = e;
      t.parent_as[v] = u;
      depth[v] = depth[u] + 1;
      queue.push_back(v);
    };

    for (const auto pidx : as_private_[u]) {
      const auto& pl = w_.private_links[pidx];
      const auto v = pl.a == u ? pl.b : pl.a;
      as_edge e;
      e.to = v;
      e.via_private = pidx;
      visit(v, e);
    }
    for (const auto mid : as_memberships_[u]) {
      const auto x = w_.memberships[mid].ixp;
      if (ixp_seen[x]) continue;
      ixp_seen[x] = 1;
      for (const auto mid2 : ixp_memberships_[x]) {
        const auto v = w_.memberships[mid2].member;
        if (v == u) continue;
        as_edge e;
        e.to = v;
        e.via_ixp = x;
        visit(v, e);
      }
    }
  }
  tree_cache_ = std::move(t);
  return tree_cache_;
}

std::optional<std::vector<traceroute_engine::as_edge>> traceroute_engine::find_path(
    world::as_id src, world::as_id dst) const {
  if (src == dst) return std::vector<as_edge>{};
  const auto& t = tree_for(src);
  if (!t.seen[dst]) return std::nullopt;
  std::vector<as_edge> path;
  for (world::as_id cur = dst; cur != src; cur = t.parent_as[cur])
    path.push_back(t.parent_edge[cur]);
  std::reverse(path.begin(), path.end());
  return path;
}

std::optional<trace> traceroute_engine::run(world::as_id src, net::ipv4_addr dst,
                                            util::rng& r) const {
  const auto dst_as = routed_lookup_.lookup(dst);
  if (!dst_as || src >= w_.ases.size()) return std::nullopt;
  const auto as_path = find_path(src, *dst_as);
  if (!as_path) return std::nullopt;

  trace t;
  t.src_as = src;
  t.dst = dst;

  // Membership of an AS at an IXP (first match).
  const auto membership_at = [&](world::as_id as, world::ixp_id x) -> const world::membership* {
    for (const auto mid : as_memberships_[as])
      if (w_.memberships[mid].ixp == x) return &w_.memberships[mid];
    return nullptr;
  };

  // The router an AS uses to take edge e out of itself.
  const auto egress_router = [&](world::as_id as, const as_edge& e) -> world::router_id {
    if (e.via_ixp != world::k_invalid) {
      const auto* m = membership_at(as, e.via_ixp);
      return m ? m->router : world::k_invalid;
    }
    const auto& pl = w_.private_links[e.via_private];
    return pl.a == as ? pl.router_a : pl.router_b;
  };

  double cum_rtt = 0.3;  // departure through the source network
  std::optional<net_point> prev_point;

  const auto emit = [&](net::ipv4_addr ip, const net_point& at) {
    if (prev_point) cum_rtt += lat_.base_rtt_ms(*prev_point, at, 1);
    prev_point = at;
    hop h;
    h.rtt_ms = cum_rtt + r.exponential(0.15);
    if (r.bernoulli(cfg_.star_rate)) {
      h.star = true;
    } else {
      h.ip = ip;
    }
    t.hops.push_back(h);
  };

  if (as_path->empty()) {
    // Intra-AS destination.
    if (as_memberships_[src].empty() && as_private_[src].empty()) return std::nullopt;
    const auto rid = !as_memberships_[src].empty()
                         ? w_.memberships[as_memberships_[src].front()].router
                         : w_.private_links[as_private_[src].front()].router_a;
    const auto p = latency_model::point_of_router(w_, rid);
    emit(egress_iface(rid, 0), p);
    emit(dst, p);
    t.reached = true;
    return t;
  }

  // Source hop: the egress interface of the router taking the first edge.
  world::as_id cur_as = src;
  {
    const auto rid = egress_router(src, as_path->front());
    if (rid == world::k_invalid) return std::nullopt;
    emit(egress_iface(rid, 0), latency_model::point_of_router(w_, rid));
  }

  for (std::size_t i = 0; i < as_path->size(); ++i) {
    const auto& e = (*as_path)[i];
    const auto v = e.to;
    world::router_id ingress_router = world::k_invalid;

    if (e.via_ixp != world::k_invalid) {
      const auto* m = membership_at(v, e.via_ixp);
      if (!m) return std::nullopt;
      ingress_router = m->router;
      emit(m->interface_ip, latency_model::point_of_router(w_, m->router));
    } else {
      const auto& pl = w_.private_links[e.via_private];
      const bool v_is_a = pl.a == v;
      ingress_router = v_is_a ? pl.router_a : pl.router_b;
      emit(v_is_a ? pl.ip_a : pl.ip_b,
           latency_model::point_of_router(w_, ingress_router));
    }

    const bool is_last = i + 1 == as_path->size();
    if (is_last) {
      // Destination address inside v.
      emit(t.dst, latency_model::point_of_router(w_, ingress_router));
      t.reached = true;
    } else {
      // Internal hop: the egress interface toward the next edge.  Emitted
      // even when ingress == egress router (routers answer with the
      // outgoing interface), which is what lets traIXroute see the triplet.
      const auto rid = egress_router(v, (*as_path)[i + 1]);
      if (rid == world::k_invalid) return std::nullopt;
      net::ipv4_addr ip = egress_iface(rid, i + 1);
      // Third-party artifact: a different router in the same facility
      // answers instead.
      if (r.bernoulli(cfg_.third_party_rate)) {
        const auto& rt = w_.routers[rid];
        if (rt.facility) {
          for (const auto& other : w_.routers) {
            if (other.id != rid && other.facility == rt.facility &&
                !other.interfaces.empty()) {
              ip = other.interfaces.front();
              break;
            }
          }
        }
      }
      emit(ip, latency_model::point_of_router(w_, rid));
    }
    cur_as = v;
  }
  (void)cur_as;
  return t;
}

std::vector<trace> traceroute_engine::campaign(std::span<const world::as_id> sources,
                                               std::size_t targets_per_src,
                                               util::rng& r) const {
  std::vector<trace> out;
  for (const auto src : sources) {
    for (std::size_t k = 0; k < targets_per_src; ++k) {
      const auto dst_as = connected_[static_cast<std::size_t>(
          r.uniform_int(0, static_cast<std::int64_t>(connected_.size()) - 1))];
      const auto& prefixes = w_.ases[dst_as].routed_prefixes;
      if (prefixes.empty()) continue;
      const auto& p = prefixes[static_cast<std::size_t>(
          r.uniform_int(0, static_cast<std::int64_t>(prefixes.size()) - 1))];
      auto t = run(src, p.at(1), r);
      if (t) out.push_back(std::move(*t));
    }
  }
  return out;
}

trace traceroute_engine::run_from_vp(const net_point& vp_point,
                                     net::ipv4_addr member_iface, util::rng& r) const {
  trace t;
  t.dst = member_iface;
  const auto rid = w_.router_by_interface(member_iface);
  if (!rid) return t;
  const auto target = latency_model::point_of_router(w_, *rid);
  hop h;
  h.ip = member_iface;
  h.rtt_ms = lat_.sample_rtt_ms(vp_point, target, r);
  t.hops.push_back(h);
  t.reached = true;
  return t;
}

}  // namespace opwat::measure
