// Ground-truth latency synthesis.
//
// Every RTT the measurement engines report is derived from the geodesic
// distance between the two attachment points, an effective per-path speed
// drawn deterministically inside the paper's Fig. 6 envelope
// [v_min(d), v_max], a small equipment overhead, and additive positive
// jitter per sample.  Because real paths obey the same envelope, Step 3's
// feasible-ring test faces exactly the geometry it faces in the wild:
// min-RTTs never imply speeds above 4/9 c, and long-haul paths are never
// slower than the empirical minimum speed.
#pragma once

#include <cstdint>
#include <optional>

#include "opwat/geo/geodesic.hpp"
#include "opwat/geo/speed_model.hpp"
#include "opwat/util/rng.hpp"
#include "opwat/world/world.hpp"

namespace opwat::measure {

/// A point attached to the network: coordinates plus (when applicable) the
/// facility housing the equipment, so same-facility paths can be modelled
/// as switch-local.
struct net_point {
  geo::geo_point location;
  std::optional<world::facility_id> facility;
};

class latency_model {
 public:
  explicit latency_model(std::uint64_t seed, geo::speed_fit fit = {}) noexcept
      : seed_(seed), fit_(fit) {}

  /// Deterministic minimum (uncongested) RTT between two points in ms.
  /// `path_tag` disambiguates parallel paths between the same endpoints.
  [[nodiscard]] double base_rtt_ms(const net_point& a, const net_point& b,
                                   std::uint64_t path_tag = 0) const noexcept;

  /// One measurement sample: base RTT plus positive jitter and rare spikes.
  [[nodiscard]] double sample_rtt_ms(const net_point& a, const net_point& b,
                                     util::rng& r, std::uint64_t path_tag = 0) const noexcept;

  /// Attachment point of a router in the world.
  [[nodiscard]] static net_point point_of_router(const world::world& w,
                                                 world::router_id rid);

  /// Attachment point of a facility.
  [[nodiscard]] static net_point point_of_facility(const world::world& w,
                                                   world::facility_id fid);

  [[nodiscard]] const geo::speed_fit& fit() const noexcept { return fit_; }

 private:
  std::uint64_t seed_;
  geo::speed_fit fit_;
};

}  // namespace opwat::measure
