// Y.1731-style inter-facility performance monitoring (§4.2, Fig. 2a/6).
//
// Wide-area IXPs such as NET-IX and NL-IX measure delay between their own
// sites with precisely timestamped test frames.  The simulator's analogue
// samples the latency model between every facility pair of an IXP and
// reports the per-pair median RTT, which feeds the Fig. 2a matrix and the
// Fig. 6 speed-envelope calibration.
#pragma once

#include <vector>

#include "opwat/measure/latency_model.hpp"
#include "opwat/util/rng.hpp"
#include "opwat/world/world.hpp"

namespace opwat::measure {

struct facility_pair_delay {
  world::facility_id a = world::k_invalid;
  world::facility_id b = world::k_invalid;
  double distance_km = 0.0;
  double median_rtt_ms = 0.0;
};

/// Pairwise facility delay matrix for one IXP (upper triangle).
[[nodiscard]] std::vector<facility_pair_delay> facility_delay_matrix(
    const world::world& w, const latency_model& lat, world::ixp_id ixp,
    int samples_per_pair, util::rng rng);

}  // namespace opwat::measure
