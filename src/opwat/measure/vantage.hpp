// Vantage points for the ping campaigns (§3.1).
//
// Two flavours, mirroring the paper:
//   - Looking glasses (LGs): interfaces directly inside the IXP peering
//     LAN.  High response rates; many LGs round RTTs up to whole
//     milliseconds (§6.1 Step 2), which Step 2 must correct for.
//   - RIPE Atlas probes: colocated in an IXP facility but NOT inside the
//     peering LAN; some sit in a management LAN with structurally inflated
//     RTTs and must be filtered out via the route-server test; some never
//     answer at all.
#pragma once

#include <string>
#include <vector>

#include "opwat/measure/latency_model.hpp"
#include "opwat/util/rng.hpp"
#include "opwat/world/world.hpp"

namespace opwat::measure {

enum class vp_type : std::uint8_t { looking_glass, atlas };

[[nodiscard]] std::string_view to_string(vp_type t) noexcept;

struct vantage_point {
  std::string name;
  vp_type type = vp_type::looking_glass;
  world::ixp_id ixp = world::k_invalid;        // the IXP it can measure
  world::facility_id facility = world::k_invalid;
  geo::geo_point location;
  bool in_peering_lan = false;
  bool in_mgmt_lan = false;     // inflated-RTT Atlas probes
  double mgmt_extra_ms = 0.0;   // structural inflation for mgmt-LAN probes
  bool alive = true;            // some Atlas probes never respond
  bool rounds_rtt_up = false;   // LG integer-millisecond rounding

  [[nodiscard]] net_point point() const { return {location, facility}; }
};

struct vp_config {
  double atlas_per_ixp_mean = 1.4;
  double atlas_mgmt_fraction = 0.30;   // probes in a management LAN
  double atlas_dead_fraction = 0.20;   // probes that never answer (14/66)
  double lg_round_fraction = 0.55;     // LGs that round RTTs up
  double mgmt_extra_ms_lo = 2.0;
  double mgmt_extra_ms_hi = 35.0;
};

/// Generates the VP population for every IXP in the world.
[[nodiscard]] std::vector<vantage_point> make_vantage_points(const world::world& w,
                                                             const vp_config& cfg,
                                                             util::rng rng);

}  // namespace opwat::measure
