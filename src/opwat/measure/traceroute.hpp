// Traceroute path synthesis over the simulated peering fabric (§3.1).
//
// Paths are computed at the AS level over the bipartite AS<->IXP
// membership graph plus private facility interconnects, then expanded to
// IP hops with the exact semantics traIXroute expects (§3.3): when a path
// enters member B of IXP x coming from member A, the hop sequence is
//     ... , <A's egress interface> , <B's address on x's peering LAN> ,
//     <B's internal interface> , ...
// The engine injects the classic artifacts the paper has to tolerate:
// missing hops (stars), occasional third-party interfaces, and per-hop
// RTT noise.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "opwat/measure/latency_model.hpp"
#include "opwat/net/ipv4.hpp"
#include "opwat/util/rng.hpp"
#include "opwat/world/world.hpp"

namespace opwat::measure {

struct hop {
  net::ipv4_addr ip;
  double rtt_ms = 0.0;
  bool star = false;  // no reply at this hop
};

struct trace {
  world::as_id src_as = world::k_invalid;
  net::ipv4_addr dst;
  std::vector<hop> hops;
  bool reached = false;
};

struct traceroute_config {
  double star_rate = 0.04;
  double third_party_rate = 0.015;
  int max_as_hops = 5;
};

class traceroute_engine {
 public:
  traceroute_engine(const world::world& w, const latency_model& lat,
                    traceroute_config cfg = {});

  /// Traceroute from a router of `src` toward `dst` (resolved to its AS
  /// via routed prefixes).  Returns std::nullopt when no route exists over
  /// the simulated fabric.
  [[nodiscard]] std::optional<trace> run(world::as_id src, net::ipv4_addr dst,
                                         util::rng& r) const;

  /// Campaign: traceroutes from each source AS to `targets_per_src`
  /// random routed addresses (the RIPE-Atlas-corpus analogue).
  [[nodiscard]] std::vector<trace> campaign(std::span<const world::as_id> sources,
                                            std::size_t targets_per_src,
                                            util::rng& r) const;

  /// Traceroute from an in-IXP vantage point to a member interface on the
  /// same LAN (used for the Fig. 12b ping-vs-traceroute comparison).
  [[nodiscard]] trace run_from_vp(const net_point& vp_point, net::ipv4_addr member_iface,
                                  util::rng& r) const;

  /// ASes that have at least one IXP membership or private link (useful
  /// sources/destinations).
  [[nodiscard]] const std::vector<world::as_id>& connected_ases() const noexcept {
    return connected_;
  }

 private:
  struct as_edge {
    world::as_id to;
    // Exactly one of the two is valid:
    world::ixp_id via_ixp = world::k_invalid;
    std::size_t via_private = static_cast<std::size_t>(-1);
  };

  struct bfs_tree {
    world::as_id src = world::k_invalid;
    std::vector<as_edge> parent_edge;
    std::vector<world::as_id> parent_as;
    std::vector<char> seen;
  };

  [[nodiscard]] std::optional<std::vector<as_edge>> find_path(world::as_id src,
                                                              world::as_id dst) const;
  const bfs_tree& tree_for(world::as_id src) const;
  [[nodiscard]] net::ipv4_addr egress_iface(world::router_id rid, std::uint64_t tag) const;

  const world::world& w_;
  const latency_model& lat_;
  traceroute_config cfg_;
  // Adjacency: AS -> memberships (IXPs), AS -> private link indices.
  std::vector<std::vector<world::membership_id>> as_memberships_;
  std::vector<std::vector<std::size_t>> as_private_;
  std::vector<std::vector<world::membership_id>> ixp_memberships_;
  std::vector<world::as_id> connected_;
  net::lpm_table<world::as_id> routed_lookup_;
  // Single-entry BFS-tree cache: campaigns iterate source by source.
  mutable bfs_tree tree_cache_;
};

}  // namespace opwat::measure
