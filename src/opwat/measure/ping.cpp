#include "opwat/measure/ping.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace opwat::measure {

namespace {

/// Stable per-interface response behaviour: the same interface either
/// answers pings or does not, independent of which VP asks — modulated by
/// the VP type's reachability (Atlas probes sit outside the LAN and fail
/// more often).
bool target_responds(const vantage_point& vp, net::ipv4_addr ip,
                     const ping_config& cfg, std::uint64_t seed) {
  const double rate = vp.type == vp_type::looking_glass ? cfg.iface_response_rate_lg
                                                        : cfg.iface_response_rate_atlas;
  util::rng r{util::hash_combine(util::hash_combine(seed, ip.value()),
                                 vp.type == vp_type::looking_glass ? 1 : 2)};
  return r.bernoulli(rate);
}

}  // namespace

ping_campaign run_ping_campaign(const world::world& w, const latency_model& lat,
                                std::span<const vantage_point> vps,
                                std::span<const ping_target> targets,
                                const ping_config& cfg, util::rng rng) {
  ping_campaign out;
  out.route_server_rtt_ms.assign(vps.size(), std::numeric_limits<double>::infinity());

  // A VP only pings its own IXP's members, so VPs whose IXP has no
  // target have nothing to measure — skipping them keeps a scope-sharded
  // campaign (the engine's parallel executor) from re-sampling every
  // VP's route-server RTT once per shard.
  std::set<world::ixp_id> target_ixps;
  for (const auto& tgt : targets) target_ixps.insert(tgt.ixp);

  for (std::size_t vi = 0; vi < vps.size(); ++vi) {
    const auto& vp = vps[vi];
    if (!vp.alive || !target_ixps.contains(vp.ixp)) continue;
    auto vr = rng.fork(vi);

    // Route-server RTT (used by the management-LAN filter).
    const auto& x = w.ixps.at(vp.ixp);
    if (!x.facilities.empty()) {
      const auto rs_point = latency_model::point_of_facility(w, x.facilities.front());
      double rs_min = std::numeric_limits<double>::infinity();
      for (int k = 0; k < 4; ++k)
        rs_min = std::min(rs_min,
                          lat.sample_rtt_ms(vp.point(), rs_point, vr) + vp.mgmt_extra_ms);
      if (vp.in_peering_lan) rs_min = std::min(rs_min, 0.3);  // same L2 segment
      out.route_server_rtt_ms[vi] = vp.rounds_rtt_up ? std::ceil(rs_min) : rs_min;
    }

    for (const auto& tgt : targets) {
      if (tgt.ixp != vp.ixp) continue;
      ping_measurement pm;
      pm.vp_index = vi;
      pm.target = tgt.ip;
      pm.ixp = tgt.ixp;
      pm.samples_total = cfg.rounds;

      const auto mid = w.membership_by_interface(tgt.ip);
      if (!mid || !target_responds(vp, tgt.ip, cfg, rng.seed())) {
        out.measurements.push_back(pm);
        continue;
      }
      const auto& m = w.memberships[*mid];
      const auto router_point = latency_model::point_of_router(w, m.router);

      auto tr = vr.fork(tgt.ip.value());
      // TTL-switch filter: inconsistent initial TTLs discard the series.
      if (cfg.apply_ttl_filters && tr.bernoulli(cfg.ttl_switch_rate)) {
        out.measurements.push_back(pm);
        continue;
      }
      double best = std::numeric_limits<double>::infinity();
      int kept = 0;
      for (int round = 0; round < cfg.rounds; ++round) {
        // TTL-match filter: off-subnet replies are dropped.
        if (cfg.apply_ttl_filters && tr.bernoulli(cfg.offsubnet_reply_rate)) continue;
        const double rtt =
            lat.sample_rtt_ms(vp.point(), router_point, tr) + vp.mgmt_extra_ms;
        best = std::min(best, rtt);
        ++kept;
      }
      if (kept > 0) {
        pm.responsive = true;
        pm.samples_kept = kept;
        pm.rtt_min_ms = vp.rounds_rtt_up ? std::max(1.0, std::ceil(best)) : best;
      }
      out.measurements.push_back(pm);
    }
  }
  return out;
}

}  // namespace opwat::measure
