#include "opwat/traix/crossing.hpp"

#include <algorithm>
#include <optional>

namespace opwat::traix {

namespace {

/// AS attribution of a hop: IXP interfaces resolve through the merged
/// view's interface table, everything else through prefix2as.
std::optional<net::asn> as_of(net::ipv4_addr ip, const db::merged_view& view,
                              const db::ip2as& prefix2as) {
  if (const auto a = view.member_of_interface(ip)) return a;
  if (view.ixp_of_address(ip)) return std::nullopt;  // unmapped LAN address
  return prefix2as.lookup(ip);
}

}  // namespace

extraction extract(std::span<const measure::trace> traces, const db::merged_view& view,
                   const db::ip2as& prefix2as, util::thread_pool* pool) {
  // Parallel path: contiguous chunks, extracted independently, then
  // concatenated in chunk order — identical bytes to the serial sweep.
  if (pool && pool->size() > 1 && traces.size() >= 2 * pool->size()) {
    // A few chunks per worker evens out corpora whose trace lengths vary.
    const std::size_t n_chunks =
        std::min(traces.size(), std::max<std::size_t>(1, pool->size() * 4));
    const std::size_t per = (traces.size() + n_chunks - 1) / n_chunks;
    std::vector<extraction> parts((traces.size() + per - 1) / per);
    pool->parallel_for(parts.size(), [&](std::size_t i) {
      const auto from = i * per;
      parts[i] = extract(traces.subspan(from, std::min(per, traces.size() - from)),
                         view, prefix2as, nullptr);
    });
    extraction out;
    std::size_t nc = 0, na = 0, np = 0;
    for (const auto& p : parts) {
      nc += p.crossings.size();
      na += p.adjacencies.size();
      np += p.private_links.size();
    }
    out.crossings.reserve(nc);
    out.adjacencies.reserve(na);
    out.private_links.reserve(np);
    for (auto& p : parts) {
      out.crossings.insert(out.crossings.end(), p.crossings.begin(), p.crossings.end());
      out.adjacencies.insert(out.adjacencies.end(), p.adjacencies.begin(),
                             p.adjacencies.end());
      out.private_links.insert(out.private_links.end(), p.private_links.begin(),
                               p.private_links.end());
    }
    return out;
  }

  extraction out;
  for (const auto& t : traces) {
    const auto& hops = t.hops;
    for (std::size_t i = 0; i < hops.size(); ++i) {
      if (hops[i].star) continue;
      const auto ixp = view.ixp_of_address(hops[i].ip);

      // --- Step-4 adjacency: previous hop owned by a member of this IXP.
      if (ixp && i >= 1 && !hops[i - 1].star && !view.ixp_of_address(hops[i - 1].ip)) {
        const auto prev_as = as_of(hops[i - 1].ip, view, prefix2as);
        if (prev_as && view.is_member(*ixp, *prev_as))
          out.adjacencies.push_back({hops[i - 1].ip, *prev_as, *ixp});
      }

      // --- Full triplet rule.
      if (ixp && i >= 1 && i + 1 < hops.size() && !hops[i - 1].star && !hops[i + 1].star) {
        const auto as2 = view.member_of_interface(hops[i].ip);
        const auto as1 = as_of(hops[i - 1].ip, view, prefix2as);
        const auto as3 = as_of(hops[i + 1].ip, view, prefix2as);
        if (as1 && as2 && as3 && *as2 == *as3 && *as1 != *as2 &&
            view.is_member(*ixp, *as1) && view.is_member(*ixp, *as2)) {
          ixp_crossing c;
          c.ixp = *ixp;
          c.near_as = *as1;
          c.far_as = *as2;
          c.near_ip = hops[i - 1].ip;
          c.ixp_ip = hops[i].ip;
          c.rtt_to_ixp_ip_ms = hops[i].rtt_ms;
          c.rtt_to_near_ip_ms = hops[i - 1].rtt_ms;
          out.crossings.push_back(c);
        }
      }

      // --- Step-5 private adjacency: consecutive non-IXP hops in
      // different ASes.
      if (i >= 1 && !hops[i - 1].star && !ixp && !view.ixp_of_address(hops[i - 1].ip)) {
        const auto as_a = prefix2as.lookup(hops[i - 1].ip);
        const auto as_b = prefix2as.lookup(hops[i].ip);
        if (as_a && as_b && *as_a != *as_b)
          out.private_links.push_back({hops[i - 1].ip, hops[i].ip, *as_a, *as_b});
      }
    }
  }
  return out;
}

}  // namespace opwat::traix
