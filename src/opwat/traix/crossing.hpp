// traIXroute-style IXP crossing detection (§3.3).
//
// A crossing is detected in an IP path when a triplet (IP1, IP2, IP3)
// satisfies:
//   (i)   IP2 belongs to an IXP peering prefix and is assigned to the same
//         AS as IP3,
//   (ii)  the AS of IP1 differs from the AS of IP2,
//   (iii) both ASes are members of the IXP owning IP2's prefix.
// The module also extracts the looser {IPx, IXP-interface} adjacency pairs
// that Step 4 (multi-IXP routers) consumes, and the private (non-IXP)
// AS-level adjacencies that Step 5 consumes.
#pragma once

#include <span>
#include <vector>

#include "opwat/db/ip2as.hpp"
#include "opwat/db/merge.hpp"
#include "opwat/measure/traceroute.hpp"
#include "opwat/util/thread_pool.hpp"

namespace opwat::traix {

struct ixp_crossing {
  world::ixp_id ixp = world::k_invalid;
  net::asn near_as;                // member entering the IXP
  net::asn far_as;                 // member owning the IXP interface
  net::ipv4_addr near_ip;          // IP1
  net::ipv4_addr ixp_ip;           // IP2 (on the peering LAN)
  double rtt_to_ixp_ip_ms = 0.0;   // traceroute RTT at the LAN hop
  double rtt_to_near_ip_ms = 0.0;  // traceroute RTT at the preceding hop
};

/// {IPx, IXP} adjacency: a member-owned interface immediately preceding an
/// address of that IXP's peering LAN (Step 4 input).
struct member_ixp_adjacency {
  net::ipv4_addr member_ip;
  net::asn member_as;
  world::ixp_id ixp = world::k_invalid;
};

/// A private (non-IXP) interconnection seen in a path: consecutive hops in
/// different ASes with no peering LAN in between (Step 5 input).
struct private_adjacency {
  net::ipv4_addr ip_a;
  net::ipv4_addr ip_b;
  net::asn as_a;
  net::asn as_b;
};

struct extraction {
  std::vector<ixp_crossing> crossings;
  std::vector<member_ixp_adjacency> adjacencies;
  std::vector<private_adjacency> private_links;
};

/// Runs the triplet rule and the Step-4/Step-5 extractors over a corpus.
/// `view` supplies IXP prefixes/memberships; `prefix2as` attributes
/// non-IXP addresses.
///
/// Traces are independent and the output vectors follow corpus order, so
/// a non-null `pool` fans the corpus out in contiguous chunks and
/// concatenates the per-chunk extractions in chunk order — byte-identical
/// to the single-threaded sweep for any pool size or chunking.
[[nodiscard]] extraction extract(std::span<const measure::trace> traces,
                                 const db::merged_view& view, const db::ip2as& prefix2as,
                                 util::thread_pool* pool = nullptr);

}  // namespace opwat::traix
