// Fig. 2b — Maximum distance between IXP facilities vs member count, and
// the prevalence of wide-area IXPs: the paper finds 14.4% of IXPs (and
// 20% of the 50 largest) have facilities in different metro areas.
#include "common.hpp"

#include <algorithm>

#include "opwat/geo/metro.hpp"

namespace {

using namespace opwat;

void print_fig2b() {
  const auto& s = benchx::shared_scenario();

  struct row {
    world::ixp_id id;
    std::size_t members;
    double span_km;
    bool wide;
  };
  std::vector<row> rows;
  for (const auto& x : s.w.ixps) {
    const auto members = s.w.memberships_of_ixp(x.id).size();
    if (members < 2) continue;
    const auto pts = s.w.ixp_facility_points(x.id);
    rows.push_back({x.id, members, geo::max_pairwise_distance_km(pts),
                    geo::is_wide_area(pts)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const row& a, const row& b) { return a.members > b.members; });

  std::cout << "Fig. 2b: max facility distance vs IXP member count\n";
  util::text_table t;
  t.header({"IXP", "#Members", "Max fac. distance km", "Wide-area?"});
  for (std::size_t i = 0; i < std::min<std::size_t>(rows.size(), 15); ++i)
    t.row({s.w.ixps[rows[i].id].name, std::to_string(rows[i].members),
           util::fmt_double(rows[i].span_km, 0), rows[i].wide ? "yes" : "no"});
  t.footer("(top 15 by member count shown)");
  t.print(std::cout);

  const auto wide_total = static_cast<double>(
      std::count_if(rows.begin(), rows.end(), [](const row& r) { return r.wide; }));
  std::cout << "wide-area IXPs: " << wide_total << "/" << rows.size() << " = "
            << util::fmt_percent(wide_total / static_cast<double>(rows.size()))
            << "  (paper: 64/446 = 14.4%)\n";
  const std::size_t top = std::min<std::size_t>(rows.size(), 50);
  const auto wide_top = static_cast<double>(std::count_if(
      rows.begin(), rows.begin() + static_cast<std::ptrdiff_t>(top),
      [](const row& r) { return r.wide; }));
  std::cout << "wide-area among the " << top << " largest: "
            << util::fmt_percent(wide_top / static_cast<double>(top))
            << "  (paper: 10/50 = 20%)\n";
  double max_span = 0;
  for (const auto& r : rows) max_span = std::max(max_span, r.span_km);
  std::cout << "largest footprint: " << util::fmt_double(max_span, 0)
            << " km  (paper: NL-IX London-Bucharest > 1,300 km)\n";
}

void bm_wide_area_classification(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  for (auto _ : state) {
    std::size_t wide = 0;
    for (const auto& x : s.w.ixps) {
      const auto pts = s.w.ixp_facility_points(x.id);
      if (geo::is_wide_area(pts)) ++wide;
    }
    benchmark::DoNotOptimize(wide);
  }
}
BENCHMARK(bm_wide_area_classification);

}  // namespace

OPWAT_BENCH_MAIN(print_fig2b)
