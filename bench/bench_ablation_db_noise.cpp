// Ablation — sensitivity to colocation-database quality: sweep the
// AS-facility record drop rate (the paper's Fig. 5 observes 18% missing
// for remote peers) and re-run the whole pipeline on each DB variant.
#include "common.hpp"

#include "opwat/db/snapshot.hpp"

namespace {

using namespace opwat;

void print_ablation() {
  const auto base = benchx::shared_scenario();  // copy config + world reuse
  // One validated engine, re-run against each degraded DB variant.
  const auto engine = infer::pipeline_builder::from_config(base.cfg.pipeline).build();

  std::cout << "Ablation: colocation-data incompleteness sweep (test subset)\n";
  util::text_table t;
  t.header({"AS-facility drop rate", "FPR", "FNR", "PRE", "ACC", "COV"});
  for (const double drop : {0.0, 0.18, 0.40, 0.70, 1.0}) {
    // Rebuild the DB stack with the modified PDB noise profile.
    util::rng seed{base.cfg.db_seed};
    std::vector<db::snapshot> snaps;
    for (const auto kind : {db::source_kind::website, db::source_kind::he,
                            db::source_kind::pdb, db::source_kind::pch,
                            db::source_kind::inflect}) {
      auto noise = db::default_noise(kind);
      if (kind == db::source_kind::pdb) noise.drop_as_facility = drop;
      snaps.push_back(db::make_snapshot(base.w, kind, noise,
                                        seed.fork(static_cast<std::uint64_t>(kind))));
    }
    const auto view = db::merged_view::build(snaps);
    const auto pr = engine.run({base.w, view, base.prefix2as, base.lat, base.vps,
                                base.traces, base.scope});
    const auto m = eval::compute_metrics(pr.inferences, base.validation.test);
    t.row({util::fmt_percent(drop, 0), util::fmt_percent(m.fpr),
           util::fmt_percent(m.fnr), util::fmt_percent(m.pre),
           util::fmt_percent(m.acc), util::fmt_percent(m.cov)});
  }
  t.footer("Colocation data is the pipeline's backbone: as AS-facility records "
           "vanish, Step 3 falls back to 'unknown' (coverage drops) and Steps 4/5 "
           "lose their anchors, while precision degrades gracefully.");
  t.print(std::cout);
}

void bm_rebuild_with_noise(benchmark::State& state) {
  const auto& base = benchx::shared_scenario();
  for (auto _ : state) {
    auto noise = db::default_noise(db::source_kind::pdb);
    noise.drop_as_facility = 0.4;
    auto snap = db::make_snapshot(base.w, db::source_kind::pdb, noise, util::rng{3});
    benchmark::DoNotOptimize(snap.as_facilities.size());
  }
}
BENCHMARK(bm_rebuild_with_noise);

}  // namespace

OPWAT_BENCH_MAIN(print_ablation)
