// Catalog persistence + concurrent serving throughput: the durable
// .opwatc snapshot format (opwat/serve/store.hpp) and the RCU
// shared_catalog (opwat/serve/shared_catalog.hpp).
//
// Measures, on the shared scenario (OPWAT_BENCH_SCALE=tiny swaps in the
// small smoke scenario):
//   - save: catalog -> .opwatc bytes on disk (ms, MB/s, file size);
//   - load: .opwatc -> queryable catalog (ms, MB/s);
//   - append_epoch: extending an existing snapshot by one epoch;
//   - concurrent serving: N reader threads issuing portal-style queries
//     against shared_catalog snapshots while a writer publishes new
//     epochs — queries/sec under ingest, the §9 many-users claim.
//
// Prints a table plus a machine-readable JSON blob; writes the JSON to
// $OPWAT_BENCH_JSON and the snapshot file to $OPWAT_BENCH_SNAPSHOT when
// set (the CI bench-smoke step uploads both as workflow artifacts).
#include "common.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "opwat/serve/query.hpp"
#include "opwat/serve/shared_catalog.hpp"
#include "opwat/serve/store.hpp"
#include "opwat/util/json.hpp"

namespace {

using namespace opwat;
using infer::peering_class;

constexpr int k_io_repetitions = 3;
constexpr int k_readers = 3;
constexpr int k_writer_epochs = 4;

double elapsed_ms(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

std::string snapshot_path() {
  if (const char* p = std::getenv("OPWAT_BENCH_SNAPSHOT")) return p;
  return "catalog_io.opwatc";
}

serve::catalog make_catalog() {
  const auto& s = benchx::shared_scenario();
  serve::catalog cat;
  cat.ingest(s.w, s.view, benchx::shared_pipeline(), "A");
  return cat;
}

std::size_t file_size(const std::string& path) {
  std::ifstream f{path, std::ios::binary | std::ios::ate};
  return f ? static_cast<std::size_t>(f.tellg()) : 0;
}

double mb_per_sec(std::size_t bytes, double ms) {
  return ms > 0.0 ? (static_cast<double>(bytes) / 1e6) / (ms / 1e3) : 0.0;
}

void print_catalog_io() {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();
  const auto cat = make_catalog();
  const auto path = snapshot_path();

  // --- save / load ----------------------------------------------------------
  double save_best_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < k_io_repetitions; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    cat.save(path);
    save_best_ms = std::min(save_best_ms, elapsed_ms(t0));
  }
  const auto bytes = file_size(path);

  double load_best_ms = std::numeric_limits<double>::infinity();
  std::size_t loaded_rows = 0;
  for (int rep = 0; rep < k_io_repetitions; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto loaded = serve::catalog::load(path);
    load_best_ms = std::min(load_best_ms, elapsed_ms(t0));
    loaded_rows = loaded.of("A").rows();
    benchmark::DoNotOptimize(&loaded);
  }

  // --- append_epoch ---------------------------------------------------------
  // Extend a single-epoch file by one epoch (same pipeline result under
  // a new label: append cost is serialization + prefix check, not
  // inference).
  double append_best_ms = std::numeric_limits<double>::infinity();
  const std::string append_path = path + ".append";
  for (int rep = 0; rep < k_io_repetitions; ++rep) {
    serve::catalog two = make_catalog();
    two.save(append_path);
    const auto eid = two.ingest(s.w, s.view, pr, "B");
    const auto t0 = std::chrono::steady_clock::now();
    two.append_epoch(append_path, eid);
    append_best_ms = std::min(append_best_ms, elapsed_ms(t0));
  }
  std::remove(append_path.c_str());

  // --- queries/sec under concurrent ingest ----------------------------------
  serve::shared_catalog sc{make_catalog()};
  std::atomic<bool> writer_done{false};
  std::atomic<std::size_t> queries{0};

  // Readers run (and are counted) ONLY while the writer is publishing,
  // so queries/sec genuinely measures the under-ingest regime rather
  // than an uncontended tail after the last epoch landed.
  std::vector<std::thread> readers;
  readers.reserve(k_readers);
  for (int t = 0; t < k_readers; ++t) {
    readers.emplace_back([&] {
      std::size_t n = 0;
      do {
        const auto snap = sc.snapshot();
        const auto label = snap->labels().back();
        auto q = serve::query(*snap).epoch(label).cls(peering_class::remote);
        benchmark::DoNotOptimize(q.count());
        const auto groups =
            serve::query(*snap).epoch(label).cls(peering_class::remote).by_step().group_counts();
        benchmark::DoNotOptimize(&groups);
        n += 2;
      } while (!writer_done.load(std::memory_order_acquire));
      queries.fetch_add(n, std::memory_order_relaxed);
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::thread writer{[&] {
    for (int e = 0; e < k_writer_epochs; ++e)
      sc.ingest(s.w, s.view, pr, "w-" + std::to_string(e));
    writer_done.store(true, std::memory_order_release);
  }};
  writer.join();
  const double ingest_window_ms = elapsed_ms(t0);
  for (auto& r : readers) r.join();
  const double qps = ingest_window_ms > 0.0
                         ? static_cast<double>(queries.load()) /
                               (ingest_window_ms / 1e3)
                         : 0.0;

  // --- report ---------------------------------------------------------------
  util::text_table t{"Catalog persistence & concurrent serving"};
  t.header({"metric", "value"});
  t.row({"file size", std::to_string(bytes) + " B (" +
                          std::to_string(loaded_rows) + " rows/epoch)"});
  t.row({"save", util::fmt_double(save_best_ms, 2) + " ms (" +
                     util::fmt_double(mb_per_sec(bytes, save_best_ms), 1) + " MB/s)"});
  t.row({"load", util::fmt_double(load_best_ms, 2) + " ms (" +
                     util::fmt_double(mb_per_sec(bytes, load_best_ms), 1) + " MB/s)"});
  t.row({"append_epoch", util::fmt_double(append_best_ms, 2) + " ms"});
  t.row({"concurrent ingest window", util::fmt_double(ingest_window_ms, 2) + " ms (" +
                                         std::to_string(k_writer_epochs) + " epochs)"});
  t.row({"queries/sec under ingest",
         util::fmt_double(qps, 1) + " (" + std::to_string(k_readers) + " readers)"});
  t.footer("readers query immutable RCU snapshots; the writer copies, ingests "
           "and publishes with a brief pointer swap");
  t.print(std::cout);

  util::json_writer w;
  w.begin_object();
  w.key("bench").value("catalog_io");
  const char* scale = std::getenv("OPWAT_BENCH_SCALE");
  w.key("scale").value(scale && std::string_view{scale} == "tiny" ? "tiny" : "paper");
  w.key("snapshot_path").value(path);
  w.key("file_bytes").value(static_cast<std::uint64_t>(bytes));
  w.key("rows_per_epoch").value(static_cast<std::uint64_t>(loaded_rows));
  w.key("save_ms").value(save_best_ms);
  w.key("save_mb_per_sec").value(mb_per_sec(bytes, save_best_ms));
  w.key("load_ms").value(load_best_ms);
  w.key("load_mb_per_sec").value(mb_per_sec(bytes, load_best_ms));
  w.key("append_ms").value(append_best_ms);
  w.key("concurrent").begin_object();
  w.key("readers").value(static_cast<std::uint64_t>(k_readers));
  w.key("writer_epochs").value(static_cast<std::uint64_t>(k_writer_epochs));
  w.key("queries_during_ingest").value(static_cast<std::uint64_t>(queries.load()));
  w.key("ingest_window_ms").value(ingest_window_ms);
  w.key("queries_per_sec").value(qps);
  w.end_object();
  w.end_object();

  std::cout << "\nJSON: " << w.str() << "\n";
  if (const char* out_path = std::getenv("OPWAT_BENCH_JSON")) {
    std::ofstream out{out_path};
    out << w.str() << "\n";
    std::cout << "(written to " << out_path << ")\n";
  }
  std::cout << "(snapshot written to " << path << ")\n";
}

void BM_save(benchmark::State& state) {
  const auto cat = make_catalog();
  const auto path = snapshot_path() + ".bm";
  for (auto _ : state) cat.save(path);
  std::remove(path.c_str());
}
BENCHMARK(BM_save)->Unit(benchmark::kMillisecond);

void BM_load(benchmark::State& state) {
  const auto cat = make_catalog();
  const auto path = snapshot_path() + ".bm";
  cat.save(path);
  for (auto _ : state) {
    const auto loaded = serve::catalog::load(path);
    benchmark::DoNotOptimize(&loaded);
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_load)->Unit(benchmark::kMillisecond);

void BM_snapshot_acquire(benchmark::State& state) {
  const serve::shared_catalog sc{make_catalog()};
  for (auto _ : state) {
    const auto snap = sc.snapshot();
    benchmark::DoNotOptimize(snap.get());
  }
}
BENCHMARK(BM_snapshot_acquire);

}  // namespace

OPWAT_BENCH_MAIN(print_catalog_io)
