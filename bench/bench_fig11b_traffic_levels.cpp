// Fig. 11b — Self-reported traffic levels of inferred local / remote /
// hybrid members.  Shape targets: local and remote distributions are
// similar; hybrids reach the very high traffic classes; remote peering
// spans everything from hundreds of Mbit/s to hundreds of Gbit/s.
#include "common.hpp"

#include "opwat/eval/features.hpp"
#include "opwat/util/stats.hpp"

namespace {

using namespace opwat;

void print_fig11b() {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();
  const auto members = eval::classify_members(s.w, s.view, pr.inferences);

  util::ecdf traffic[3];
  for (const auto& m : members)
    traffic[static_cast<std::size_t>(m.kind)].add(m.traffic_gbps);

  std::cout << "Fig. 11b: traffic levels (Gbps, self-reported analogue) per class\n";
  util::text_table t;
  t.header({"Class", "N", "<0.1G", "<1G", "<10G", "<100G", "p99 Gbps"});
  const char* names[3] = {"local", "remote", "hybrid"};
  for (int i = 0; i < 3; ++i) {
    const auto& e = traffic[i];
    t.row({names[i], std::to_string(e.size()), util::fmt_percent(e.at(0.1)),
           util::fmt_percent(e.at(1.0)), util::fmt_percent(e.at(10.0)),
           util::fmt_percent(e.at(100.0)),
           e.empty() ? "-" : util::fmt_double(e.quantile(0.99), 1)});
  }
  t.footer("Paper: local and remote traffic distributions similar; hybrids present "
           "at very high levels; remote peers range 100s of Mbit/s - 100s of Gbit/s.");
  t.print(std::cout);

  // Country concentration, as in §6.2's headquarter statistics.
  util::category_counter countries[3];
  for (const auto& m : members)
    if (!m.country.empty())
      countries[static_cast<std::size_t>(m.kind)].add(m.country);
  for (int i = 0; i < 3; ++i) {
    std::string best;
    std::size_t best_n = 0;
    for (const auto& [c, n] : countries[i].items())
      if (n > best_n) {
        best = c;
        best_n = n;
      }
    if (!best.empty())
      std::cout << "most common HQ country for " << names[i] << " members: " << best
                << " (" << util::fmt_percent(countries[i].fraction(best)) << ")\n";
  }
}

void bm_traffic_ecdf(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();
  const auto members = eval::classify_members(s.w, s.view, pr.inferences);
  for (auto _ : state) {
    util::ecdf e;
    for (const auto& m : members) e.add(m.traffic_gbps);
    benchmark::DoNotOptimize(e.at(10.0));
  }
}
BENCHMARK(bm_traffic_ecdf);

}  // namespace

OPWAT_BENCH_MAIN(print_fig11b)
