// Fig. 2a — Median RTTs between the facilities of a wide-area IXP
// (NET-IX analogue), measured Y.1731-style between the IXP's own sites.
// Shape target: for a continental footprint, the vast majority (paper:
// 87%) of facility pairs exceed 10 ms — no RTT threshold can work there.
#include "common.hpp"

#include "opwat/geo/metro.hpp"
#include "opwat/measure/y1731.hpp"
#include "opwat/util/stats.hpp"

namespace {

using namespace opwat;

world::ixp_id widest_ixp(const eval::scenario& s) {
  world::ixp_id best = world::k_invalid;
  double best_span = -1.0;
  for (const auto& x : s.w.ixps) {
    const auto pts = s.w.ixp_facility_points(x.id);
    const double span = geo::max_pairwise_distance_km(pts);
    if (span > best_span) {
      best_span = span;
      best = x.id;
    }
  }
  return best;
}

void print_fig2a() {
  const auto& s = benchx::shared_scenario();
  const auto xid = widest_ixp(s);
  const auto& x = s.w.ixps[xid];
  const auto matrix =
      measure::facility_delay_matrix(s.w, s.lat, xid, 24, util::rng{2});

  std::cout << "Fig. 2a: median inter-facility RTT of the widest-area IXP ("
            << x.name << ", " << x.facilities.size() << " facilities)\n";
  util::text_table t;
  t.header({"Facility A", "Facility B", "Distance km", "Median RTT ms"});
  std::size_t over_10ms = 0;
  for (const auto& d : matrix) {
    t.row({s.w.facilities[d.a].name, s.w.facilities[d.b].name,
           util::fmt_double(d.distance_km, 0), util::fmt_double(d.median_rtt_ms, 2)});
    if (d.median_rtt_ms > 10.0) ++over_10ms;
  }
  t.print(std::cout);
  if (!matrix.empty()) {
    std::cout << "pairs with median RTT > 10 ms: "
              << util::fmt_percent(static_cast<double>(over_10ms) /
                                   static_cast<double>(matrix.size()))
              << "  (paper: 87% for NET-IX's 16 international sites)\n";
  }
  // The paper also notes sub-10ms international pairs (FRA-PRA at 7 ms).
  for (const auto& d : matrix) {
    if (d.median_rtt_ms < 10.0 &&
        s.w.facilities[d.a].city != s.w.facilities[d.b].city) {
      std::cout << "example sub-10ms cross-city pair: " << s.w.facilities[d.a].name
                << " <-> " << s.w.facilities[d.b].name << " at "
                << util::fmt_double(d.median_rtt_ms, 1) << " ms\n";
      break;
    }
  }
}

void bm_y1731_matrix(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  const auto xid = widest_ixp(s);
  for (auto _ : state) {
    auto m = measure::facility_delay_matrix(s.w, s.lat, xid, 24, util::rng{2});
    benchmark::DoNotOptimize(m.size());
  }
}
BENCHMARK(bm_y1731_matrix);

}  // namespace

OPWAT_BENCH_MAIN(print_fig2a)
