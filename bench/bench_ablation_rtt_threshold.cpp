// Ablation — sweep of the RTT threshold for the Castro et al. baseline
// (the paper uses 10 ms; §4.1 shows 2 ms already flags most remotes but
// no threshold avoids both error modes).
#include "common.hpp"

#include "opwat/infer/baseline.hpp"

namespace {

using namespace opwat;

void print_ablation() {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();
  const auto& vd = s.validation.test;

  std::cout << "Ablation: RTT-threshold sweep for the baseline (test subset)\n";
  util::text_table t;
  t.header({"Threshold ms", "FPR", "FNR", "PRE", "ACC", "COV"});
  for (const double thr : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    const auto base = infer::run_baseline_on(pr, {.threshold_ms = thr});
    const auto m = eval::compute_metrics(base, vd);
    t.row({util::fmt_double(thr, 1), util::fmt_percent(m.fpr), util::fmt_percent(m.fnr),
           util::fmt_percent(m.pre), util::fmt_percent(m.acc), util::fmt_percent(m.cov)});
  }
  const auto ours = eval::compute_metrics(pr.inferences, vd);
  t.row({"pipeline (no threshold)", util::fmt_percent(ours.fpr),
         util::fmt_percent(ours.fnr), util::fmt_percent(ours.pre),
         util::fmt_percent(ours.acc), util::fmt_percent(ours.cov)});
  t.footer("No single threshold beats the multi-signal pipeline: low thresholds "
           "flag wide-area locals as remote (FPR), high thresholds absorb nearby "
           "remotes as local (FNR).");
  t.print(std::cout);
}

void bm_baseline_sweep(benchmark::State& state) {
  const auto& pr = benchx::shared_pipeline();
  for (auto _ : state) {
    for (const double thr : {1.0, 5.0, 10.0, 20.0}) {
      auto base = infer::run_baseline_on(pr, {.threshold_ms = thr});
      benchmark::DoNotOptimize(base.items().size());
    }
  }
}
BENCHMARK(bm_baseline_sweep);

}  // namespace

OPWAT_BENCH_MAIN(print_ablation)
