// Fig. 1a — Distribution of the number of colocation facilities per AS
// and per IXP (source in the paper: PDB/Inflect; here: the merged noisy
// view, i.e. the same vantage the methodology has).
#include "common.hpp"

#include <set>

#include "opwat/util/stats.hpp"

namespace {

using namespace opwat;

void print_fig1a() {
  const auto& s = benchx::shared_scenario();

  util::ecdf as_facs, ixp_facs;
  std::set<net::asn> member_ases;
  for (const auto x : s.view.known_ixps())
    for (const auto& e : s.view.interfaces_of_ixp(x)) member_ases.insert(e.asn);
  for (const auto asn : member_ases)
    as_facs.add(static_cast<double>(s.view.facilities_of_as(asn).size()));
  for (const auto x : s.view.known_ixps()) {
    const auto n = s.view.facilities_of_ixp(x).size();
    if (n > 0) ixp_facs.add(static_cast<double>(n));
  }

  std::cout << "Fig. 1a: distribution of #facilities per ASN and per IXP\n";
  util::text_table t;
  t.header({"Entity", "N", "<=1 fac", "<=2", "<=5", "<=10", ">10"});
  const auto row = [&](const char* name, const util::ecdf& e) {
    t.row({name, std::to_string(e.size()), util::fmt_percent(e.at(1.0)),
           util::fmt_percent(e.at(2.0)), util::fmt_percent(e.at(5.0)),
           util::fmt_percent(e.at(10.0)), util::fmt_percent(1.0 - e.at(10.0))});
  };
  row("ASes (IXP members)", as_facs);
  row("IXPs", ixp_facs);
  t.footer("Paper: ~60% of IXPs and ASes present in a single facility; only ~5% in "
           "more than 10.");
  t.print(std::cout);
}

void bm_facility_lookup(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  std::vector<net::asn> asns;
  for (const auto x : s.scope)
    for (const auto& e : s.view.interfaces_of_ixp(x)) asns.push_back(e.asn);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.view.facilities_of_as(asns[i++ % asns.size()]).size());
  }
}
BENCHMARK(bm_facility_lookup);

}  // namespace

OPWAT_BENCH_MAIN(print_fig1a)
