// Table 1 — Overview of the IXP (IPv4) dataset and contribution of each
// data source: total / unique / conflicting prefixes and interfaces per
// source after merging with the preference order websites > HE > PDB > PCH.
#include "common.hpp"

#include "opwat/db/merge.hpp"
#include "opwat/db/snapshot.hpp"

namespace {

using namespace opwat;
using util::fmt_count;
using util::fmt_percent;

void print_table1() {
  const auto& s = benchx::shared_scenario();
  const auto& view = s.view;

  util::text_table t{
      "Table 1: IXP dataset overview and contribution of each data source "
      "(synthetic reproduction)"};
  t.header({"Source", "Prefixes Total", "Unique", "Conflicts", "Interfaces Total",
            "Unique", "Conflicts"});
  for (const auto& st : view.stats()) {
    const auto conf_pct = [&](std::size_t conflicts, std::size_t total) {
      if (conflicts == 0 || total == 0) return std::string{"0"};
      return std::to_string(conflicts) + " (" +
             fmt_percent(static_cast<double>(conflicts) / static_cast<double>(total), 2) +
             ")";
    };
    t.row({std::string{db::to_string(st.kind)}, fmt_count(static_cast<long long>(st.prefixes_total)),
           fmt_count(static_cast<long long>(st.prefixes_unique)),
           conf_pct(st.prefixes_conflicts, st.prefixes_total),
           fmt_count(static_cast<long long>(st.interfaces_total)),
           fmt_count(static_cast<long long>(st.interfaces_unique)),
           conf_pct(st.interfaces_conflicts, st.interfaces_total)});
  }
  t.row({"Total (merged)", fmt_count(static_cast<long long>(view.prefix_count())), "-", "-",
         fmt_count(static_cast<long long>(view.interface_count())), "-", "-"});
  t.footer("Paper: 731 prefixes / 31,690 interfaces across 703 IXPs; conflicts "
           "0.27-0.37% per source.  Shape target: websites contribute few unique "
           "entries, lower-preference sources carry small conflict rates.");
  t.print(std::cout);
}

void bm_merge(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  const auto snaps = db::make_standard_snapshots(s.w, 11);
  for (auto _ : state) {
    auto view = db::merged_view::build(snaps);
    benchmark::DoNotOptimize(view.interface_count());
  }
}
BENCHMARK(bm_merge);

void bm_snapshot(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  for (auto _ : state) {
    auto snap = db::make_snapshot(s.w, db::source_kind::pdb,
                                  db::default_noise(db::source_kind::pdb),
                                  util::rng{42});
    benchmark::DoNotOptimize(snap.interfaces.size());
  }
}
BENCHMARK(bm_snapshot);

}  // namespace

OPWAT_BENCH_MAIN(print_table1)
