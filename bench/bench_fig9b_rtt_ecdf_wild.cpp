// Fig. 9b — ECDF of the minimum RTT per responsive IXP peering interface
// across the 30 studied IXPs.  Shape targets: ~75% of interfaces within
// 2 ms of their VP; >20% above 10 ms (double the 2014 level).
#include "common.hpp"

#include <cmath>

#include "opwat/util/stats.hpp"

namespace {

using namespace opwat;

void print_fig9b() {
  const auto& pr = benchx::shared_pipeline();

  util::ecdf rtts;
  for (const auto& [key, observations] : pr.rtt.observations) {
    const double best = pr.rtt.best_rtt(key);
    if (!std::isnan(best)) rtts.add(best);
  }

  std::cout << "Fig. 9b: ECDF of min RTT per responsive interface (wild campaign)\n";
  util::text_table t;
  t.header({"Probe x (ms)", "F(x)"});
  for (const double x : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0})
    t.row({util::fmt_double(x, 1), util::fmt_percent(rtts.at(x))});
  t.footer("Paper: 75% of interfaces within 2 ms; >20% above 10 ms.");
  t.print(std::cout);
  std::cout << "interfaces measured: " << rtts.size() << ", median RTT: "
            << (rtts.empty() ? 0.0 : rtts.quantile(0.5)) << " ms\n";
}

void bm_best_rtt(benchmark::State& state) {
  const auto& pr = benchx::shared_pipeline();
  for (auto _ : state) {
    double sum = 0;
    for (const auto& [key, obs] : pr.rtt.observations) {
      const double best = pr.rtt.best_rtt(key);
      if (!std::isnan(best)) sum += best;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(bm_best_rtt);

}  // namespace

OPWAT_BENCH_MAIN(print_fig9b)
