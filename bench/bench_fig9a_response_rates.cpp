// Fig. 9a — Response rates of LGs vs Atlas probes: queried vs responsive
// interface counts per vantage point.  LGs sit inside the peering LAN and
// answer best; Atlas probes outside the LAN lose ~25%.
#include "common.hpp"

#include <map>

namespace {

using namespace opwat;

void print_fig9a() {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();

  struct per_vp {
    std::size_t queried = 0, responsive = 0;
  };
  std::map<std::size_t, per_vp> stats;
  for (const auto& pm : pr.rtt.campaign.measurements) {
    auto& st = stats[pm.vp_index];
    ++st.queried;
    if (pm.responsive) ++st.responsive;
  }

  std::cout << "Fig. 9a: per-VP queried vs responsive interfaces\n";
  util::text_table t;
  t.header({"VP", "Type", "Queried", "Responsive", "Rate"});
  double lg_q = 0, lg_r = 0, at_q = 0, at_r = 0;
  std::size_t shown = 0;
  for (const auto& [vi, st] : stats) {
    const auto& vp = s.vps[vi];
    const bool lg = vp.type == measure::vp_type::looking_glass;
    (lg ? lg_q : at_q) += static_cast<double>(st.queried);
    (lg ? lg_r : at_r) += static_cast<double>(st.responsive);
    if (shown < 16) {
      ++shown;
      t.row({vp.name, std::string{measure::to_string(vp.type)},
             std::to_string(st.queried), std::to_string(st.responsive),
             st.queried ? util::fmt_percent(static_cast<double>(st.responsive) /
                                            static_cast<double>(st.queried))
                        : "-"});
    }
  }
  t.footer("(first 16 VPs shown)");
  t.print(std::cout);
  std::cout << "LG aggregate response rate:    "
            << util::fmt_percent(lg_q > 0 ? lg_r / lg_q : 0.0)
            << "  (paper: 95%)\n";
  std::cout << "Atlas aggregate response rate: "
            << util::fmt_percent(at_q > 0 ? at_r / at_q : 0.0)
            << "  (paper: 75%; 14 of 66 probes never answered)\n";
  std::size_t dead = 0, total_atlas = 0;
  for (const auto& vp : s.vps) {
    if (vp.type != measure::vp_type::atlas) continue;
    ++total_atlas;
    if (!vp.alive) ++dead;
  }
  std::cout << "dead Atlas probes: " << dead << "/" << total_atlas << "\n";
}

void bm_campaign_scan(benchmark::State& state) {
  const auto& pr = benchx::shared_pipeline();
  for (auto _ : state) {
    std::size_t responsive = 0;
    for (const auto& pm : pr.rtt.campaign.measurements)
      if (pm.responsive) ++responsive;
    benchmark::DoNotOptimize(responsive);
  }
}
BENCHMARK(bm_campaign_scan);

}  // namespace

OPWAT_BENCH_MAIN(print_fig9a)
