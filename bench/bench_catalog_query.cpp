// Catalog serving throughput: ingest cost and queries/sec for the §9
// portal query shapes over the serve catalog.
//
// Measures, on the shared scenario (OPWAT_BENCH_SCALE=tiny swaps in the
// small smoke scenario; the default is the full paper-scale one):
//   - ingest: pipeline_result -> columnar epoch (ms, rows/sec);
//   - indexed counts: per-(IXP, class) lookups across the whole scope;
//   - group-by: remote members per evidence step;
//   - ECDF: RTT distribution of remote members;
//   - filtered page: metro + class filter with pagination;
//   - diff: cross-epoch appeared/disappeared/reclassified scan.
//
// Prints a table plus a machine-readable JSON blob, and writes the JSON
// to the file named by OPWAT_BENCH_JSON when set (the CI bench-smoke
// step uploads it as a workflow artifact next to the parallel-scaling
// one), so the serving-throughput claim is a measured artifact.
#include "common.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>

#include "opwat/serve/query.hpp"
#include "opwat/util/json.hpp"

namespace {

using namespace opwat;
using infer::peering_class;

constexpr int k_ingest_repetitions = 5;

serve::catalog make_two_epoch_catalog() {
  const auto& s = benchx::shared_scenario();
  serve::catalog cat;
  cat.ingest(s.w, s.view, benchx::shared_pipeline(), "A");
  // A perturbed second epoch (different pipeline seed) so diff queries
  // have real appeared/reclassified work to do.
  auto cfg = s.cfg.pipeline;
  cfg.seed ^= 0x9e3779b97f4a7c15ull;
  cat.ingest(s.w, s.view, s.run_inference(cfg), "B");
  return cat;
}

const serve::catalog& two_epoch_catalog() {
  static const serve::catalog cat = make_two_epoch_catalog();
  return cat;
}

/// Busiest *mapped* metro of epoch A's remote members (stable filter
/// target); "" when every remote member is unmapped — the "(unmapped)"
/// display bucket is not a filterable metro name.
std::string busiest_remote_metro(const serve::catalog& cat) {
  for (const auto& g : serve::query(cat)
                           .epoch("A")
                           .cls(peering_class::remote)
                           .by_metro()
                           .group_counts())
    if (cat.metro_by_name(g.key)) return g.key;
  return {};
}

double elapsed_ms(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

void print_catalog_query() {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();

  // --- ingest ---------------------------------------------------------------
  double ingest_best_ms = std::numeric_limits<double>::infinity();
  std::size_t rows = 0;
  for (int rep = 0; rep < k_ingest_repetitions; ++rep) {
    serve::catalog fresh;
    const auto t0 = std::chrono::steady_clock::now();
    fresh.ingest(s.w, s.view, pr, "ingest");
    const double ms = elapsed_ms(t0);
    ingest_best_ms = std::min(ingest_best_ms, ms);
    rows = fresh.of("ingest").rows();
    benchmark::DoNotOptimize(&fresh);
  }

  const auto& cat = two_epoch_catalog();
  const std::string metro = busiest_remote_metro(cat);

  // --- query workloads ------------------------------------------------------
  struct workload {
    const char* name;
    std::size_t (*run)(const serve::catalog&, const std::string&);
  };
  const workload workloads[] = {
      {"indexed_count_per_ixp_class",
       [](const serve::catalog& c, const std::string&) {
         std::size_t n = 0;
         const auto& ep = c.of("A");
         for (const auto& b : ep.blocks()) {
           n += ep.count(b.ixp, peering_class::remote);
           n += ep.count(b.ixp, peering_class::local);
         }
         return n;
       }},
      {"group_remote_by_step",
       [](const serve::catalog& c, const std::string&) {
         return serve::query(c)
             .epoch("A")
             .cls(peering_class::remote)
             .by_step()
             .group_counts()
             .size();
       }},
      {"rtt_ecdf_remote",
       [](const serve::catalog& c, const std::string&) {
         return serve::query(c).epoch("A").cls(peering_class::remote).rtt_ecdf(20).size();
       }},
      {"metro_filter_page",
       [](const serve::catalog& c, const std::string& m) {
         auto qb = serve::query(c).epoch("A").cls(peering_class::remote);
         if (!m.empty()) qb.metro(m);
         return qb.sort_by_rtt().page(0, 25).rows().size();
       }},
      {"diff_epochs",
       [](const serve::catalog& c, const std::string&) {
         const auto d = serve::diff_epochs(c, "A", "B");
         return d.appeared.size() + d.disappeared.size() + d.reclassified.size();
       }},
  };

  util::json_writer w;
  w.begin_object();
  w.key("bench").value("catalog_query");
  const char* scale = std::getenv("OPWAT_BENCH_SCALE");
  w.key("scale").value(scale && std::string_view{scale} == "tiny" ? "tiny" : "paper");
  w.key("rows_per_epoch").value(static_cast<std::uint64_t>(rows));
  w.key("ixps").value(static_cast<std::uint64_t>(cat.of("A").blocks().size()));
  w.key("ingest_ms").value(ingest_best_ms);
  w.key("ingest_rows_per_sec")
      .value(ingest_best_ms > 0.0
                 ? static_cast<double>(rows) / (ingest_best_ms / 1e3)
                 : 0.0);
  w.key("queries").begin_array();

  util::text_table t{"Catalog serving throughput"};
  t.header({"query", "iterations", "total ms", "queries/sec"});
  t.row({"(ingest)", std::to_string(k_ingest_repetitions),
         util::fmt_double(ingest_best_ms, 2) + " (best)",
         util::fmt_double(ingest_best_ms > 0.0 ? 1e3 / ingest_best_ms : 0.0, 1)});
  for (const auto& wl : workloads) {
    // Calibrate the iteration count so each workload runs ~200 ms.
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t sink = wl.run(cat, metro);
    const double once_ms = std::max(1e-4, elapsed_ms(t0));
    const auto iters = static_cast<std::size_t>(
        std::clamp(200.0 / once_ms, 1.0, 100000.0));
    const auto t1 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) sink += wl.run(cat, metro);
    const double total_ms = std::max(1e-4, elapsed_ms(t1));
    benchmark::DoNotOptimize(sink);
    const double qps = static_cast<double>(iters) / (total_ms / 1e3);

    t.row({wl.name, std::to_string(iters), util::fmt_double(total_ms, 2),
           util::fmt_double(qps, 1)});
    w.begin_object();
    w.key("query").value(wl.name);
    w.key("iterations").value(static_cast<std::uint64_t>(iters));
    w.key("total_ms").value(total_ms);
    w.key("queries_per_sec").value(qps);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  t.footer("indexed counts answer from per-block counters; the scans touch one "
           "columnar epoch");
  t.print(std::cout);
  std::cout << "\nJSON: " << w.str() << "\n";

  if (const char* path = std::getenv("OPWAT_BENCH_JSON")) {
    std::ofstream out{path};
    out << w.str() << "\n";
    std::cout << "(written to " << path << ")\n";
  }
}

void BM_ingest(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();
  for (auto _ : state) {
    serve::catalog fresh;
    fresh.ingest(s.w, s.view, pr, "ingest");
    benchmark::DoNotOptimize(&fresh);
  }
}
BENCHMARK(BM_ingest)->Unit(benchmark::kMillisecond);

void BM_indexed_counts(benchmark::State& state) {
  const auto& ep = two_epoch_catalog().of("A");
  for (auto _ : state) {
    std::size_t n = 0;
    for (const auto& b : ep.blocks()) n += ep.count(b.ixp, peering_class::remote);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_indexed_counts);

void BM_group_by_step(benchmark::State& state) {
  const auto& cat = two_epoch_catalog();
  for (auto _ : state) {
    const auto g = serve::query(cat)
                       .epoch("A")
                       .cls(peering_class::remote)
                       .by_step()
                       .group_counts();
    benchmark::DoNotOptimize(&g);
  }
}
BENCHMARK(BM_group_by_step);

void BM_diff_epochs(benchmark::State& state) {
  const auto& cat = two_epoch_catalog();
  for (auto _ : state) {
    const auto d = serve::diff_epochs(cat, "A", "B");
    benchmark::DoNotOptimize(&d);
  }
}
BENCHMARK(BM_diff_epochs)->Unit(benchmark::kMillisecond);

}  // namespace

OPWAT_BENCH_MAIN(print_catalog_query)
