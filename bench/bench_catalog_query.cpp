// Catalog serving throughput: ingest cost and per-query-shape latency
// for the §9 portal query shapes over the serve catalog, executed on
// the vectorized engine (opwat/serve/exec.hpp) with the retained
// row-at-a-time reference evaluator timed alongside as the speedup
// baseline.
//
// Measures, on the shared scenario (OPWAT_BENCH_SCALE=tiny swaps in the
// small smoke scenario; the default is the full paper-scale one):
//   - ingest: pipeline_result -> columnar epoch + indexes (ms, rows/sec);
//   - indexed counts: per-(IXP, class) lookups across the whole scope;
//   - group-by: remote members per evidence step (dense accumulation);
//   - ECDF: RTT distribution of remote members;
//   - filtered page: metro + class filter, nth_element partial top-k;
//   - member: ASN point lookup through the permutation index;
//   - RTT band: selection-vector scan with zone-map block skipping;
//   - diff: sort-merge cross-epoch join.
//
// For every shape it reports queries/sec, p50/p99 latency (via the
// util/stats percentile helpers), rows scanned vs rows skipped, and the
// speedup over the reference engine.  The JSON goes to stdout and to
// $OPWAT_BENCH_JSON when set.  When $OPWAT_BENCH_RESULTS_PREFIX is set,
// the full query RESULTS (not timings) of both engines are written to
// <prefix>.vectorized.json and <prefix>.reference.json — the CI bench
// smoke step diffs them and fails on any byte difference.  The bench
// itself also exits non-zero if the two engines ever disagree.
#include "common.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "opwat/serve/query.hpp"
#include "opwat/util/json.hpp"
#include "opwat/util/stats.hpp"

namespace {

using namespace opwat;
using infer::peering_class;
using serve::exec::mode;

constexpr int k_ingest_repetitions = 5;

serve::catalog make_two_epoch_catalog() {
  const auto& s = benchx::shared_scenario();
  serve::catalog cat;
  cat.ingest(s.w, s.view, benchx::shared_pipeline(), "A");
  // A perturbed second epoch (different pipeline seed) so diff queries
  // have real appeared/reclassified work to do.
  auto cfg = s.cfg.pipeline;
  cfg.seed ^= 0x9e3779b97f4a7c15ull;
  cat.ingest(s.w, s.view, s.run_inference(cfg), "B");
  return cat;
}

const serve::catalog& two_epoch_catalog() {
  static const serve::catalog cat = make_two_epoch_catalog();
  return cat;
}

/// Stable filter targets for the parameterized shapes.
struct bench_ctx {
  /// Busiest *mapped* metro of epoch A's remote members ("" when every
  /// remote member is unmapped — "(unmapped)" is a display bucket, not
  /// a filterable metro name).
  std::string metro;
  /// Most frequent member ASN of epoch A (smallest on ties).
  net::asn hot_asn{};
  /// Interquartile-ish RTT band of epoch A's measured rows — selective
  /// enough that zone maps skip blocks, wide enough to match rows.
  double rtt_lo = 0.0;
  double rtt_hi = 0.0;
};

bench_ctx make_ctx(const serve::catalog& cat) {
  bench_ctx ctx;
  for (const auto& g : serve::query(cat)
                           .epoch("A")
                           .cls(peering_class::remote)
                           .by_metro()
                           .group_counts())
    if (cat.metro_by_name(g.key)) {
      ctx.metro = g.key;
      break;
    }

  const auto& ep = cat.of("A");
  std::unordered_map<std::uint32_t, std::size_t> freq;
  for (const auto a : ep.asn_col()) ++freq[a];
  std::size_t best = 0;
  std::uint32_t best_asn = 0;
  // opwat-lint: allow(unordered-iter): max-reduction with a total (count,
  // asn) tie-break picks the same winner in any visit order
  for (const auto& [a, n] : freq)
    if (n > best || (n == best && a < best_asn)) {
      best = n;
      best_asn = a;
    }
  ctx.hot_asn = net::asn{best_asn};

  util::ecdf rtts;
  for (const auto r : ep.rtt_col())
    if (!std::isnan(r)) rtts.add(r);
  if (!rtts.empty()) {
    ctx.rtt_lo = rtts.quantile(0.25);
    ctx.rtt_hi = rtts.quantile(0.5);
  }
  return ctx;
}

double elapsed_ms(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

// --- query shapes ------------------------------------------------------------

std::size_t run_indexed_counts(const serve::catalog& c, const bench_ctx&, mode,
                               serve::exec::stats*) {
  std::size_t n = 0;
  const auto& ep = c.of("A");
  for (const auto& b : ep.blocks()) {
    n += ep.count(b.ixp, peering_class::remote);
    n += ep.count(b.ixp, peering_class::local);
  }
  return n;
}

std::size_t run_group_by_step(const serve::catalog& c, const bench_ctx&, mode m,
                              serve::exec::stats* st) {
  return serve::query(c)
      .engine(m)
      .collect_stats(st)
      .epoch("A")
      .cls(peering_class::remote)
      .by_step()
      .group_counts()
      .size();
}

std::size_t run_rtt_ecdf(const serve::catalog& c, const bench_ctx&, mode m,
                         serve::exec::stats* st) {
  return serve::query(c)
      .engine(m)
      .collect_stats(st)
      .epoch("A")
      .cls(peering_class::remote)
      .rtt_ecdf(20)
      .size();
}

std::size_t run_metro_page(const serve::catalog& c, const bench_ctx& ctx, mode m,
                           serve::exec::stats* st) {
  auto qb = serve::query(c).engine(m).collect_stats(st).epoch("A").cls(
      peering_class::remote);
  if (!ctx.metro.empty()) qb.metro(ctx.metro);
  return qb.sort_by_rtt().page(0, 25).rows().size();
}

std::size_t run_member_rows(const serve::catalog& c, const bench_ctx& ctx, mode m,
                            serve::exec::stats* st) {
  return serve::query(c)
      .engine(m)
      .collect_stats(st)
      .epoch("A")
      .member(ctx.hot_asn)
      .rows()
      .size();
}

std::size_t run_rtt_band_count(const serve::catalog& c, const bench_ctx& ctx, mode m,
                               serve::exec::stats* st) {
  return serve::query(c)
      .engine(m)
      .collect_stats(st)
      .epoch("A")
      .rtt_between(ctx.rtt_lo, ctx.rtt_hi)
      .count();
}

std::size_t run_diff(const serve::catalog& c, const bench_ctx&, mode m,
                     serve::exec::stats*) {
  const auto d = m == mode::reference ? serve::diff_epochs_reference(c, "A", "B")
                                      : serve::diff_epochs(c, "A", "B");
  return d.appeared.size() + d.disappeared.size() + d.reclassified.size();
}

struct workload {
  const char* name;
  std::size_t (*run)(const serve::catalog&, const bench_ctx&, mode,
                     serve::exec::stats*);
};

constexpr workload k_workloads[] = {
    {"indexed_count_per_ixp_class", run_indexed_counts},
    {"group_remote_by_step", run_group_by_step},
    {"rtt_ecdf_remote", run_rtt_ecdf},
    {"metro_filter_page", run_metro_page},
    {"member_rows", run_member_rows},
    {"rtt_band_count", run_rtt_band_count},
    {"diff_epochs", run_diff},
};

// --- morsel-parallel scan scaling --------------------------------------------

/// The scan-heavy shapes where query::threads(n) engages the parallel
/// kernels (member() point lookups and capped row collections keep
/// their serial fast paths, so they are not in this set).
std::size_t run_group_by_step_threaded(const serve::catalog& c, const bench_ctx&,
                                       std::size_t threads,
                                       serve::exec::stats* st) {
  return serve::query(c)
      .threads(threads)
      .collect_stats(st)
      .epoch("A")
      .cls(peering_class::remote)
      .by_step()
      .group_counts()
      .size();
}

std::size_t run_rtt_ecdf_threaded(const serve::catalog& c, const bench_ctx&,
                                  std::size_t threads, serve::exec::stats* st) {
  return serve::query(c)
      .threads(threads)
      .collect_stats(st)
      .epoch("A")
      .cls(peering_class::remote)
      .rtt_ecdf(20)
      .size();
}

std::size_t run_rtt_band_count_threaded(const serve::catalog& c,
                                        const bench_ctx& ctx,
                                        std::size_t threads,
                                        serve::exec::stats* st) {
  return serve::query(c)
      .threads(threads)
      .collect_stats(st)
      .epoch("A")
      .rtt_between(ctx.rtt_lo, ctx.rtt_hi)
      .count();
}

struct threaded_workload {
  const char* name;
  std::size_t (*run)(const serve::catalog&, const bench_ctx&, std::size_t,
                     serve::exec::stats*);
};

constexpr threaded_workload k_threaded_workloads[] = {
    {"group_remote_by_step", run_group_by_step_threaded},
    {"rtt_ecdf_remote", run_rtt_ecdf_threaded},
    {"rtt_band_count", run_rtt_band_count_threaded},
};

constexpr std::size_t k_thread_counts[] = {1, 2, 4, 8};

// --- result digests (the CI engine-equivalence gate) -------------------------

void write_rows(util::json_writer& w, const serve::catalog& c,
                const std::vector<serve::iface_row>& rows) {
  w.begin_array();
  for (const auto& r : rows) {
    w.begin_object();
    w.key("ip").value(r.ip.to_string());
    w.key("ixp").value(static_cast<std::uint64_t>(r.ixp));
    w.key("asn").value(static_cast<std::uint64_t>(r.asn.value));
    w.key("class").value(std::string{to_string(r.cls)});
    w.key("step").value(std::string{to_string(r.step)});
    if (!std::isnan(r.rtt_min_ms)) w.key("rtt_min_ms").value(r.rtt_min_ms);
    w.key("feasible").value(static_cast<std::int64_t>(r.feasible_facilities));
    if (!std::isnan(r.port_gbps)) w.key("port_gbps").value(r.port_gbps);
    w.key("metro").value(std::string{c.metro_name(r.metro)});
    w.end_object();
  }
  w.end_array();
}

void write_groups(util::json_writer& w, const std::vector<serve::group_count>& gs) {
  w.begin_array();
  for (const auto& g : gs) {
    w.begin_object();
    w.key("key").value(g.key);
    w.key("count").value(static_cast<std::uint64_t>(g.count));
    w.end_object();
  }
  w.end_array();
}

/// Serializes every benchmarked query's full RESULTS (no timings) for
/// one engine.  Byte-equality of the two engines' digests is the
/// correctness gate.
std::string result_digest(const serve::catalog& c, const bench_ctx& ctx, mode m) {
  // No engine label inside the document: the two digests must be
  // byte-identical, so a plain `diff` works in CI (the filename carries
  // the engine).
  util::json_writer w;
  w.begin_object();

  w.key("indexed_counts").begin_array();
  {
    const auto& ep = c.of("A");
    for (const auto& b : ep.blocks()) {
      w.begin_object();
      w.key("ixp").value(static_cast<std::uint64_t>(b.ixp));
      w.key("remote").value(
          static_cast<std::uint64_t>(ep.count(b.ixp, peering_class::remote)));
      w.key("local").value(
          static_cast<std::uint64_t>(ep.count(b.ixp, peering_class::local)));
      w.end_object();
    }
  }
  w.end_array();

  w.key("group_remote_by_step");
  write_groups(w, serve::query(c).engine(m).epoch("A").cls(peering_class::remote)
                   .by_step()
                   .group_counts());

  w.key("rtt_ecdf_remote").begin_array();
  for (const auto& p :
       serve::query(c).engine(m).epoch("A").cls(peering_class::remote).rtt_ecdf(20)) {
    w.begin_object();
    w.key("upper_ms").value(p.upper_ms);
    w.key("cum").value(static_cast<std::uint64_t>(p.cum_count));
    w.key("fraction").value(p.fraction);
    w.end_object();
  }
  w.end_array();

  {
    auto qb = serve::query(c).engine(m).epoch("A").cls(peering_class::remote);
    if (!ctx.metro.empty()) qb.metro(ctx.metro);
    w.key("metro_filter_page");
    write_rows(w, c, qb.sort_by_rtt().page(0, 25).rows());
  }

  w.key("member_rows");
  write_rows(w, c, serve::query(c).engine(m).epoch("A").member(ctx.hot_asn).rows());

  {
    auto qb =
        serve::query(c).engine(m).epoch("A").rtt_between(ctx.rtt_lo, ctx.rtt_hi);
    w.key("rtt_band_count").value(static_cast<std::uint64_t>(qb.count()));
    w.key("rtt_band_rows");
    write_rows(w, c, qb.rows());
  }

  {
    const auto d = m == mode::reference ? serve::diff_epochs_reference(c, "A", "B")
                                        : serve::diff_epochs(c, "A", "B");
    w.key("diff").begin_object();
    w.key("appeared");
    write_rows(w, c, d.appeared);
    w.key("disappeared");
    write_rows(w, c, d.disappeared);
    w.key("reclassified").begin_array();
    for (const auto& r : d.reclassified) {
      w.begin_object();
      w.key("before");
      write_rows(w, c, {r.before});
      w.key("after");
      write_rows(w, c, {r.after});
      w.end_object();
    }
    w.end_array();
    w.key("appeared_by_class").begin_array();
    for (const auto n : d.appeared_by_class)
      w.value(static_cast<std::uint64_t>(n));
    w.end_array();
    w.end_object();
  }

  w.end_object();
  return w.str();
}

// --- driver ------------------------------------------------------------------

void print_catalog_query() {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();

  // --- ingest ---------------------------------------------------------------
  double ingest_best_ms = std::numeric_limits<double>::infinity();
  std::size_t rows = 0;
  for (int rep = 0; rep < k_ingest_repetitions; ++rep) {
    serve::catalog fresh;
    const auto t0 = std::chrono::steady_clock::now();
    fresh.ingest(s.w, s.view, pr, "ingest");
    const double ms = elapsed_ms(t0);
    ingest_best_ms = std::min(ingest_best_ms, ms);
    rows = fresh.of("ingest").rows();
    benchmark::DoNotOptimize(&fresh);
  }

  const auto& cat = two_epoch_catalog();
  const auto ctx = make_ctx(cat);

  // --- engine-equivalence gate ----------------------------------------------
  const auto digest_vec = result_digest(cat, ctx, mode::vectorized);
  const auto digest_ref = result_digest(cat, ctx, mode::reference);
  if (const char* prefix = std::getenv("OPWAT_BENCH_RESULTS_PREFIX")) {
    std::ofstream{std::string{prefix} + ".vectorized.json"} << digest_vec << "\n";
    std::ofstream{std::string{prefix} + ".reference.json"} << digest_ref << "\n";
  }
  if (digest_vec != digest_ref) {
    std::cerr << "FATAL: vectorized engine results differ from the reference "
                 "evaluator\n";
    std::exit(1);
  }

  // --- query workloads ------------------------------------------------------
  util::json_writer w;
  w.begin_object();
  w.key("bench").value("catalog_query");
  const char* scale = std::getenv("OPWAT_BENCH_SCALE");
  w.key("scale").value(scale && std::string_view{scale} == "tiny" ? "tiny" : "paper");
  w.key("rows_per_epoch").value(static_cast<std::uint64_t>(rows));
  w.key("ixps").value(static_cast<std::uint64_t>(cat.of("A").blocks().size()));
  w.key("engine").value("vectorized");
  w.key("results_identical_to_reference").value(true);
  w.key("ingest_ms").value(ingest_best_ms);
  w.key("ingest_rows_per_sec")
      .value(ingest_best_ms > 0.0
                 ? static_cast<double>(rows) / (ingest_best_ms / 1e3)
                 : 0.0);
  w.key("queries").begin_array();

  util::text_table t{"Catalog serving throughput (vectorized engine)"};
  t.header({"query", "iters", "queries/sec", "p50 ms", "p99 ms", "speedup", "scanned",
            "skipped"});
  t.row({"(ingest)", std::to_string(k_ingest_repetitions),
         util::fmt_double(ingest_best_ms > 0.0 ? 1e3 / ingest_best_ms : 0.0, 1),
         util::fmt_double(ingest_best_ms, 2) + " (best)", "-", "-", "-", "-"});

  for (const auto& wl : k_workloads) {
    // Calibrate the iteration count so each workload runs ~200 ms.
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t sink = wl.run(cat, ctx, mode::vectorized, nullptr);
    const double once_ms = std::max(1e-4, elapsed_ms(t0));
    const auto iters = static_cast<std::size_t>(
        std::clamp(200.0 / once_ms, 1.0, 100000.0));

    // Clean throughput loop (no per-iteration clocks, so the timer
    // overhead never pollutes the qps or the speedup ratio).
    const auto t1 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i)
      sink += wl.run(cat, ctx, mode::vectorized, nullptr);
    const double total_ms = std::max(1e-4, elapsed_ms(t1));
    const double qps = static_cast<double>(iters) / (total_ms / 1e3);

    // Separate capped sampling loop for the latency percentiles.  Each
    // sample brackets a batch of runs sized so the batch takes >= ~2 us
    // — otherwise the two steady_clock calls per sample would dominate
    // the sub-microsecond shapes and the percentiles would measure the
    // timer, not the query.  Reported latency = batch time / batch.
    const auto batch = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(0.002 / once_ms)));
    const auto samples = std::min<std::size_t>(std::max<std::size_t>(iters / batch, 1),
                                               2000);
    std::vector<double> lat_ms;
    lat_ms.reserve(samples);
    for (std::size_t i = 0; i < samples; ++i) {
      const auto it0 = std::chrono::steady_clock::now();
      for (std::size_t j = 0; j < batch; ++j)
        sink += wl.run(cat, ctx, mode::vectorized, nullptr);
      lat_ms.push_back(elapsed_ms(it0) / static_cast<double>(batch));
    }
    const auto pct = util::summarize(lat_ms);

    // Reference-engine baseline (~100 ms budget): the pre-vectorization
    // row-at-a-time path, for the speedup column.
    const auto r0 = std::chrono::steady_clock::now();
    sink += wl.run(cat, ctx, mode::reference, nullptr);
    const double ref_once_ms = std::max(1e-4, elapsed_ms(r0));
    const auto ref_iters = static_cast<std::size_t>(
        std::clamp(100.0 / ref_once_ms, 1.0, 100000.0));
    const auto r1 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ref_iters; ++i)
      sink += wl.run(cat, ctx, mode::reference, nullptr);
    const double ref_total_ms = std::max(1e-4, elapsed_ms(r1));
    const double ref_qps = static_cast<double>(ref_iters) / (ref_total_ms / 1e3);
    const double speedup = ref_qps > 0.0 ? qps / ref_qps : 0.0;

    // Scan accounting of one execution.
    serve::exec::stats st;
    sink += wl.run(cat, ctx, mode::vectorized, &st);
    benchmark::DoNotOptimize(sink);

    t.row({wl.name, std::to_string(iters), util::fmt_double(qps, 1),
           util::fmt_double(pct.median, 4), util::fmt_double(pct.p99, 4),
           util::fmt_double(speedup, 2) + "x", std::to_string(st.rows_scanned),
           std::to_string(st.rows_skipped)});
    w.begin_object();
    w.key("query").value(wl.name);
    w.key("iterations").value(static_cast<std::uint64_t>(iters));
    w.key("total_ms").value(total_ms);
    w.key("queries_per_sec").value(qps);
    w.key("p50_ms").value(pct.median);
    w.key("p99_ms").value(pct.p99);
    w.key("latency_sample_batch").value(static_cast<std::uint64_t>(batch));
    w.key("rows_scanned").value(static_cast<std::uint64_t>(st.rows_scanned));
    w.key("rows_skipped").value(static_cast<std::uint64_t>(st.rows_skipped));
    w.key("blocks_skipped").value(static_cast<std::uint64_t>(st.blocks_skipped));
    w.key("reference_queries_per_sec").value(ref_qps);
    w.key("speedup_vs_reference").value(speedup);
    w.end_object();
  }

  // --- morsel-parallel scan scaling -----------------------------------------
  // Each scan-heavy shape re-runs under query::threads(n) for n in
  // {1, 2, 4, 8}; the serial vectorized run above is the speedup
  // baseline.  The thread-variant entries fold into the same
  // $OPWAT_BENCH_JSON schema as distinct query names ("shape@tN"), so
  // bench_summary.py and the CI regression gate pick them up unchanged.
  util::text_table tt{"Morsel-parallel scan scaling"};
  tt.header({"query", "threads", "queries/sec", "p50 ms", "p99 ms",
             "speedup vs serial", "morsels"});
  for (const auto& wl : k_threaded_workloads) {
    // Serial vectorized baseline, timed here so the ratio compares
    // like with like (same calibration policy as the main loop).
    const auto s0 = std::chrono::steady_clock::now();
    std::size_t sink = wl.run(cat, ctx, 0, nullptr);
    const double serial_once_ms = std::max(1e-4, elapsed_ms(s0));
    const auto serial_iters = static_cast<std::size_t>(
        std::clamp(100.0 / serial_once_ms, 1.0, 100000.0));
    const auto s1 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < serial_iters; ++i)
      sink += wl.run(cat, ctx, 0, nullptr);
    const double serial_qps = static_cast<double>(serial_iters) /
                              (std::max(1e-4, elapsed_ms(s1)) / 1e3);

    for (const auto threads : k_thread_counts) {
      const auto t0 = std::chrono::steady_clock::now();
      sink += wl.run(cat, ctx, threads, nullptr);
      const double once_ms = std::max(1e-4, elapsed_ms(t0));
      const auto iters = static_cast<std::size_t>(
          std::clamp(100.0 / once_ms, 1.0, 100000.0));
      const auto t1 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < iters; ++i)
        sink += wl.run(cat, ctx, threads, nullptr);
      const double total_ms = std::max(1e-4, elapsed_ms(t1));
      const double qps = static_cast<double>(iters) / (total_ms / 1e3);

      const auto batch = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::ceil(0.002 / once_ms)));
      const auto samples = std::min<std::size_t>(
          std::max<std::size_t>(iters / batch, 1), 1000);
      std::vector<double> lat_ms;
      lat_ms.reserve(samples);
      for (std::size_t i = 0; i < samples; ++i) {
        const auto it0 = std::chrono::steady_clock::now();
        for (std::size_t j = 0; j < batch; ++j)
          sink += wl.run(cat, ctx, threads, nullptr);
        lat_ms.push_back(elapsed_ms(it0) / static_cast<double>(batch));
      }
      const auto pct = util::summarize(lat_ms);
      const double speedup = serial_qps > 0.0 ? qps / serial_qps : 0.0;

      serve::exec::stats st;
      sink += wl.run(cat, ctx, threads, &st);
      benchmark::DoNotOptimize(sink);

      const std::string name =
          std::string{wl.name} + "@t" + std::to_string(threads);
      tt.row({name, std::to_string(threads), util::fmt_double(qps, 1),
              util::fmt_double(pct.median, 4), util::fmt_double(pct.p99, 4),
              util::fmt_double(speedup, 2) + "x", std::to_string(st.morsels)});
      w.begin_object();
      w.key("query").value(name);
      w.key("threads").value(static_cast<std::uint64_t>(threads));
      w.key("iterations").value(static_cast<std::uint64_t>(iters));
      w.key("total_ms").value(total_ms);
      w.key("queries_per_sec").value(qps);
      w.key("p50_ms").value(pct.median);
      w.key("p99_ms").value(pct.p99);
      w.key("latency_sample_batch").value(static_cast<std::uint64_t>(batch));
      w.key("rows_scanned").value(static_cast<std::uint64_t>(st.rows_scanned));
      w.key("rows_skipped").value(static_cast<std::uint64_t>(st.rows_skipped));
      w.key("blocks_skipped").value(static_cast<std::uint64_t>(st.blocks_skipped));
      w.key("morsels").value(static_cast<std::uint64_t>(st.morsels));
      w.key("serial_queries_per_sec").value(serial_qps);
      w.key("speedup_vs_serial").value(speedup);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();

  t.footer("speedup = vectorized qps / reference (row-at-a-time) qps; scanned/"
           "skipped = rows touched vs pruned by zone maps + permutation index");
  t.print(std::cout);
  std::cout << "\n";
  tt.footer(
      "speedup = threaded qps / serial vectorized qps (same shape); morsels = "
      "per-execution morsel count at the default morsel size");
  tt.print(std::cout);
  std::cout << "\nengine results identical to reference: yes\n";
  std::cout << "\nJSON: " << w.str() << "\n";

  if (const char* path = std::getenv("OPWAT_BENCH_JSON")) {
    std::ofstream out{path};
    out << w.str() << "\n";
    std::cout << "(written to " << path << ")\n";
  }
}

void BM_ingest(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();
  for (auto _ : state) {
    serve::catalog fresh;
    fresh.ingest(s.w, s.view, pr, "ingest");
    benchmark::DoNotOptimize(&fresh);
  }
}
BENCHMARK(BM_ingest)->Unit(benchmark::kMillisecond);

void BM_indexed_counts(benchmark::State& state) {
  const auto& ep = two_epoch_catalog().of("A");
  for (auto _ : state) {
    std::size_t n = 0;
    for (const auto& b : ep.blocks()) n += ep.count(b.ixp, peering_class::remote);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_indexed_counts);

void BM_group_by_step(benchmark::State& state) {
  const auto& cat = two_epoch_catalog();
  for (auto _ : state) {
    const auto g = serve::query(cat)
                       .epoch("A")
                       .cls(peering_class::remote)
                       .by_step()
                       .group_counts();
    benchmark::DoNotOptimize(&g);
  }
}
BENCHMARK(BM_group_by_step);

void BM_member_rows(benchmark::State& state) {
  const auto& cat = two_epoch_catalog();
  const auto ctx = make_ctx(cat);
  for (auto _ : state) {
    const auto r = serve::query(cat).epoch("A").member(ctx.hot_asn).rows();
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_member_rows);

void BM_rtt_band_count(benchmark::State& state) {
  const auto& cat = two_epoch_catalog();
  const auto ctx = make_ctx(cat);
  for (auto _ : state) {
    const auto n =
        serve::query(cat).epoch("A").rtt_between(ctx.rtt_lo, ctx.rtt_hi).count();
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_rtt_band_count);

void BM_diff_epochs(benchmark::State& state) {
  const auto& cat = two_epoch_catalog();
  for (auto _ : state) {
    const auto d = serve::diff_epochs(cat, "A", "B");
    benchmark::DoNotOptimize(&d);
  }
}
BENCHMARK(BM_diff_epochs)->Unit(benchmark::kMillisecond);

}  // namespace

OPWAT_BENCH_MAIN(print_catalog_query)
