// §8 extension — "Beyond Pings": decouple the methodology from in-IXP
// vantage points by deriving member-to-IXP delays from traceroute RTT
// differences at IXP crossings (validated by Fig. 12b).
//
// Experiment: remove ALL vantage points from half of the studied IXPs
// (pings become impossible there, as for most of the world's 700+ IXPs)
// and compare
//   (a) the ping-only pipeline, which goes blind on those IXPs, with
//   (b) the augmented pipeline using traceroute-derived RTTs.
#include "common.hpp"

#include <set>

#include "opwat/infer/step2b_traceroute_rtt.hpp"

namespace {

using namespace opwat;
using infer::peering_class;

void print_extension() {
  const auto& s = benchx::shared_scenario();

  // Blind half the scope: drop every VP of the odd-ranked IXPs.
  std::set<world::ixp_id> blinded;
  for (std::size_t i = 1; i < s.scope.size(); i += 2) blinded.insert(s.scope[i]);
  std::vector<measure::vantage_point> vps;
  for (const auto& vp : s.vps)
    if (!blinded.contains(vp.ixp)) vps.push_back(vp);

  const auto run = [&](bool use_ext) {
    auto cfg = s.cfg.pipeline;
    cfg.use_traceroute_rtt = use_ext;
    cfg.traceroute_rtt.require_local_near = false;  // ping-free anchoring
    return infer::pipeline_builder::from_config(cfg).build().run(
        {s.w, s.view, s.prefix2as, s.lat, vps, s.traces, s.scope});
  };
  const auto ping_only = run(false);
  const auto augmented = run(true);

  const auto coverage_on = [&](const infer::pipeline_result& pr,
                               bool blinded_only) {
    std::size_t inferred = 0, total = 0;
    for (const auto x : s.scope) {
      if (blinded_only != blinded.contains(x)) continue;
      total += s.view.interfaces_of_ixp(x).size();
      inferred += pr.count(x, peering_class::local) + pr.count(x, peering_class::remote);
    }
    return total ? static_cast<double>(inferred) / static_cast<double>(total) : 0.0;
  };

  std::cout << "Extension (sec. 8): traceroute-derived RTTs vs missing vantage "
               "points\n";
  std::cout << "IXPs blinded (all VPs removed): " << blinded.size() << "/"
            << s.scope.size() << "\n\n";
  util::text_table t;
  t.header({"Pipeline", "COV @ blinded IXPs", "COV @ VP IXPs", "ACC (test subset)",
            "PRE (test subset)"});
  for (const auto* name : {"ping-only", "with traceroute RTTs"}) {
    const auto& pr = std::string{name} == "ping-only" ? ping_only : augmented;
    const auto m = eval::compute_metrics(pr.inferences, s.validation.test);
    t.row({name, util::fmt_percent(coverage_on(pr, true)),
           util::fmt_percent(coverage_on(pr, false)), util::fmt_percent(m.acc),
           util::fmt_percent(m.pre)});
  }
  t.footer("Traceroute deltas recover coverage at IXPs without any usable VP — "
           "the paper's plan for scaling the methodology in space and time.");
  t.print(std::cout);
  std::cout << "crossings used for RTT derivation: "
            << augmented.beyond_pings.crossings_used << "/"
            << augmented.beyond_pings.crossings_seen << ", virtual VPs: "
            << augmented.beyond_pings.virtual_vps.size() << "\n";
}

void bm_derive_rtts(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();
  infer::traceroute_rtt_config cfg;
  cfg.require_local_near = false;
  for (auto _ : state) {
    auto result = infer::derive_traceroute_rtts(s.view, pr.paths, pr.inferences, cfg);
    benchmark::DoNotOptimize(result.observations.size());
  }
}
BENCHMARK(bm_derive_rtts)->Unit(benchmark::kMillisecond);

}  // namespace

OPWAT_BENCH_MAIN(print_extension)
