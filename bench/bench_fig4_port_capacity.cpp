// Fig. 4 — Capacity of IXP ports for remote vs local peers (control
// validation subset).  Shape targets: no local peer below the IXP's
// minimum physical capacity; ~27% of remote peers on fractional (FE)
// reseller ports; 100GE ports exclusively local.
#include "common.hpp"

#include "opwat/util/stats.hpp"

namespace {

using namespace opwat;

const char* capacity_class(double gbps, double cmin) {
  if (gbps < cmin) return "fractional (<Cmin)";
  if (gbps < 10.0) return "1GE-class";
  if (gbps < 40.0) return "10GE-class";
  if (gbps < 100.0) return "40GE-class";
  return "100GE-class";
}

void print_fig4() {
  const auto& s = benchx::shared_scenario();

  util::category_counter local, remote;
  std::size_t local_below_cmin = 0;
  for (const auto& row : s.validation.ixps) {
    const double cmin = s.w.ixps[row.ixp].min_physical_capacity_gbps;
    for (const auto mid : s.w.memberships_of_ixp(row.ixp)) {
      const auto& m = s.w.memberships[mid];
      const infer::iface_key key{m.ixp, m.interface_ip};
      const auto vd = s.validation.all();
      if (!vd.contains(key)) continue;
      const auto* cls = capacity_class(m.port_capacity_gbps, cmin);
      if (vd.remote.contains(key)) {
        remote.add(cls);
      } else {
        local.add(cls);
        if (m.port_capacity_gbps < cmin) ++local_below_cmin;
      }
    }
  }

  std::cout << "Fig. 4: port capacities of validated local vs remote peers\n";
  util::text_table t;
  t.header({"Capacity class", "Local", "Local %", "Remote", "Remote %"});
  for (const auto* cls : {"fractional (<Cmin)", "1GE-class", "10GE-class",
                          "40GE-class", "100GE-class"}) {
    t.row({cls, std::to_string(local.count(cls)), util::fmt_percent(local.fraction(cls)),
           std::to_string(remote.count(cls)), util::fmt_percent(remote.fraction(cls))});
  }
  t.footer("Paper: no local peer below 1GE (Cmin); 27% of remote peers on 1FE-5FE "
           "fractional ports; 100GE+ ports only local.");
  t.print(std::cout);
  std::cout << "local peers below Cmin: " << local_below_cmin << "  (must be 0)\n";
  std::cout << "remote peers on fractional ports: "
            << util::fmt_percent(remote.fraction("fractional (<Cmin)"))
            << "  (paper: ~27%)\n";
}

void bm_port_classification(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  for (auto _ : state) {
    std::size_t fractional = 0;
    for (const auto& m : s.w.memberships)
      if (m.port_capacity_gbps < s.w.ixps[m.ixp].min_physical_capacity_gbps)
        ++fractional;
    benchmark::DoNotOptimize(fractional);
  }
}
BENCHMARK(bm_port_classification);

}  // namespace

OPWAT_BENCH_MAIN(print_fig4)
