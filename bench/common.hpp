// Shared infrastructure for the bench binaries.
//
// Every bench reproduces one table or figure of the paper from the same
// full-size scenario (60 IXPs / 2,400 ASes / 30-IXP measurement scope) so
// numbers are comparable across benches, then times its hot path with
// google-benchmark.  OPWAT_BENCH_MAIN(print_fn) expands to a main() that
// prints the reproduction and then runs the registered benchmarks.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>

#include "opwat/eval/metrics.hpp"
#include "opwat/eval/scenario.hpp"
#include "opwat/serve/catalog.hpp"
#include "opwat/util/strings.hpp"
#include "opwat/util/table.hpp"

namespace opwat::benchx {

/// The scenario every bench shares (built once per process).  Setting
/// OPWAT_BENCH_SCALE=tiny in the environment swaps in the small test
/// scenario — the CI smoke path, where benches must only prove they run
/// and emit their artifacts, not produce paper-scale numbers.
const eval::scenario& shared_scenario();

/// The pipeline result on the shared scenario (run once per process).
const infer::pipeline_result& shared_pipeline();

/// The shared pipeline result ingested as epoch "bench" of a serve
/// catalog (built once per process): the store the figure benches query
/// instead of rescanning the pipeline result.
const serve::catalog& shared_catalog();
inline constexpr const char* k_shared_epoch = "bench";

/// Ground-truth remoteness of a merged-view interface (for figures that
/// plot against the truth, e.g. Fig. 1b / Fig. 4 control-set views).
bool truly_remote(const eval::scenario& s, net::ipv4_addr iface);

}  // namespace opwat::benchx

#define OPWAT_BENCH_MAIN(print_fn)                       \
  int main(int argc, char** argv) {                      \
    print_fn();                                          \
    benchmark::Initialize(&argc, &argv[0]);              \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();                 \
    benchmark::Shutdown();                               \
    return 0;                                            \
  }
