// Table 5 — Statistics of interfaces involved in the ping campaign: per
// VP type, the number of usable VPs, queried and responsive interfaces,
// distinct member ASes and covered IXPs.
#include "common.hpp"

#include <set>

namespace {

using namespace opwat;

void print_table5() {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();

  struct stats {
    std::set<std::size_t> vps;
    std::set<net::ipv4_addr> queried, responsive;
    std::set<net::asn> members;
    std::set<world::ixp_id> ixps;
  };
  stats per_type[2];  // [0]=LG, [1]=Atlas

  const std::set<std::size_t> usable{pr.rtt.usable_vps.begin(), pr.rtt.usable_vps.end()};
  for (const auto& pm : pr.rtt.campaign.measurements) {
    const auto& vp = s.vps[pm.vp_index];
    if (!usable.contains(pm.vp_index)) continue;
    auto& st = per_type[vp.type == measure::vp_type::looking_glass ? 0 : 1];
    st.vps.insert(pm.vp_index);
    st.queried.insert(pm.target);
    if (pm.responsive) st.responsive.insert(pm.target);
    if (const auto asn = s.view.member_of_interface(pm.target)) st.members.insert(*asn);
    st.ixps.insert(pm.ixp);
  }

  util::text_table t{"Table 5: statistics of interfaces involved in the ping campaign"};
  t.header({"VP Type", "#VPs", "#Ifaces Queried", "#Responsive", "%", "#Members",
            "#IXPs"});
  std::set<net::ipv4_addr> all_queried, all_responsive;
  std::set<net::asn> all_members;
  std::set<world::ixp_id> all_ixps;
  const char* names[2] = {"LG", "Atlas"};
  for (int i = 0; i < 2; ++i) {
    const auto& st = per_type[i];
    const double pct = st.queried.empty()
                           ? 0.0
                           : static_cast<double>(st.responsive.size()) /
                                 static_cast<double>(st.queried.size());
    t.row({names[i], std::to_string(st.vps.size()), std::to_string(st.queried.size()),
           std::to_string(st.responsive.size()), util::fmt_percent(pct, 0),
           std::to_string(st.members.size()), std::to_string(st.ixps.size())});
    all_queried.insert(st.queried.begin(), st.queried.end());
    all_responsive.insert(st.responsive.begin(), st.responsive.end());
    all_members.insert(st.members.begin(), st.members.end());
    all_ixps.insert(st.ixps.begin(), st.ixps.end());
  }
  const double tot_pct = all_queried.empty()
                             ? 0.0
                             : static_cast<double>(all_responsive.size()) /
                                   static_cast<double>(all_queried.size());
  t.row({"Total", std::to_string(per_type[0].vps.size() + per_type[1].vps.size()),
         std::to_string(all_queried.size()), std::to_string(all_responsive.size()),
         util::fmt_percent(tot_pct, 0), std::to_string(all_members.size()),
         std::to_string(all_ixps.size())});
  t.footer("Paper: LG 23 VPs / 3,806 queried / 95% responsive; Atlas 22 / 6,457 / 75%; "
           "total 45 VPs, 10,578 interfaces, 73%, 6,444 members, 30 IXPs.");
  t.footer("Management-LAN filter removed " +
           std::to_string(pr.rtt.mgmt_filtered_vps.size()) +
           " Atlas probes (paper: 21).");
  t.print(std::cout);
}

void bm_ping_campaign(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  std::vector<measure::ping_target> targets;
  for (const auto x : s.scope)
    for (const auto& e : s.view.interfaces_of_ixp(x)) targets.push_back({e.ip, x});
  const measure::ping_config cfg;
  for (auto _ : state) {
    auto c = measure::run_ping_campaign(s.w, s.lat, s.vps, targets, cfg, util::rng{7});
    benchmark::DoNotOptimize(c.measurements.size());
  }
}
BENCHMARK(bm_ping_campaign)->Unit(benchmark::kMillisecond);

}  // namespace

OPWAT_BENCH_MAIN(print_table5)
