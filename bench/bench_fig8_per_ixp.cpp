// Fig. 8 — Per-IXP precision and accuracy of the combined methodology on
// the test validation subset, ordered by IXP size.  Shape target:
// consistently high (>= ~0.9) across IXPs.
#include "common.hpp"

#include <algorithm>

namespace {

using namespace opwat;

void print_fig8() {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();

  std::cout << "Fig. 8: per-IXP validation results (test subset, ordered by size)\n";
  util::text_table t;
  t.header({"IXP", "#Validated", "PRE", "ACC", "COV"});
  double worst_pre = 1.0, worst_acc = 1.0;
  for (const auto& row : s.validation.ixps) {
    if (row.in_control) continue;
    // Restrict the validation sets to this IXP.
    eval::validation_sets vd;
    for (const auto& k : s.validation.test.remote)
      if (k.ixp == row.ixp) vd.remote.insert(k);
    for (const auto& k : s.validation.test.local)
      if (k.ixp == row.ixp) vd.local.insert(k);
    if (vd.size() == 0) continue;
    const auto m = eval::compute_metrics(pr.inferences, vd);
    // PRE is undefined for IXPs whose validated set has no remote peers
    // (e.g. IXPs without a reseller programme).
    t.row({s.w.ixps[row.ixp].name, std::to_string(vd.size()),
           vd.remote.empty() ? "-" : util::fmt_percent(m.pre),
           util::fmt_percent(m.acc), util::fmt_percent(m.cov)});
    if (m.pre > 0) worst_pre = std::min(worst_pre, m.pre);
    if (m.acc > 0) worst_acc = std::min(worst_acc, m.acc);
  }
  t.footer("Paper: consistent across IXPs; lowest precision 92% (SeattleIX, "
           "incomplete colocation data), lowest accuracy 91% (LINX LON, colocated "
           "members on non-fractional reseller ports).");
  t.print(std::cout);
  std::cout << "worst per-IXP precision: " << util::fmt_percent(worst_pre)
            << ", worst per-IXP accuracy: " << util::fmt_percent(worst_acc) << "\n";
}

void bm_per_ixp_metrics(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();
  for (auto _ : state) {
    double acc_sum = 0;
    for (const auto& row : s.validation.ixps) {
      eval::validation_sets vd;
      for (const auto& k : s.validation.test.remote)
        if (k.ixp == row.ixp) vd.remote.insert(k);
      for (const auto& k : s.validation.test.local)
        if (k.ixp == row.ixp) vd.local.insert(k);
      acc_sum += eval::compute_metrics(pr.inferences, vd).acc;
    }
    benchmark::DoNotOptimize(acc_sum);
  }
}
BENCHMARK(bm_per_ixp_metrics);

}  // namespace

OPWAT_BENCH_MAIN(print_fig8)
