// Fig. 6 — Inter-facility RTT as a function of distance, with the
// v_max = 4/9 c upper-speed bound and the empirical v_min(d) log fit
// (calibrated so the Fig. 7 example reproduces: 4 ms -> ring [299, 532] km).
// Every Y.1731 sample must fall inside the envelope.
#include "common.hpp"

#include <cmath>

#include "opwat/geo/metro.hpp"
#include "opwat/geo/speed_model.hpp"
#include "opwat/measure/y1731.hpp"

namespace {

using namespace opwat;

void print_fig6() {
  const auto& s = benchx::shared_scenario();

  // Collect facility-to-facility delays from every multi-facility IXP
  // (the paper uses NL-IX + NET-IX Y.1731 feeds).
  std::vector<measure::facility_pair_delay> samples;
  for (const auto& x : s.w.ixps) {
    if (x.facilities.size() < 2) continue;
    const auto m = measure::facility_delay_matrix(s.w, s.lat, x.id, 9,
                                                  util::rng{x.id + 1});
    samples.insert(samples.end(), m.begin(), m.end());
  }

  std::cout << "Fig. 6: inter-facility RTT vs distance with speed bounds\n";
  util::text_table t;
  t.header({"Distance km", "Median RTT ms", "min RTT bound (v_max)",
            "max RTT bound (v_min)", "in envelope?"});
  std::size_t inside = 0, shown = 0;
  for (const auto& d : samples) {
    const double lo = geo::min_rtt_ms_for_distance(d.distance_km);
    const double hi = geo::max_rtt_ms_for_distance(d.distance_km);
    const bool ok = d.median_rtt_ms >= lo * 0.999 && d.median_rtt_ms <= hi * 1.001;
    if (ok) ++inside;
    if (d.distance_km > 40.0 && shown < 14) {
      ++shown;
      t.row({util::fmt_double(d.distance_km, 0), util::fmt_double(d.median_rtt_ms, 2),
             util::fmt_double(lo, 2), std::isinf(hi) ? std::string{"inf"} : util::fmt_double(hi, 2),
             ok ? "yes" : "NO"});
    }
  }
  t.footer("(sample of pairs > 40 km shown)");
  t.print(std::cout);
  std::cout << "samples inside the [v_min, v_max] envelope: " << inside << "/"
            << samples.size() << "\n";
  const auto ring = geo::feasible_ring(4.0);
  std::cout << "Fig. 7 calibration check: 4 ms ring = ["
            << util::fmt_double(ring.d_min_km, 0) << ", "
            << util::fmt_double(ring.d_max_km, 0)
            << "] km  (paper: [299, 532] km)\n";
}

void bm_feasible_ring(benchmark::State& state) {
  double rtt = 0.1;
  for (auto _ : state) {
    const auto ring = geo::feasible_ring(rtt);
    benchmark::DoNotOptimize(ring.d_min_km);
    rtt = rtt > 100.0 ? 0.1 : rtt + 0.37;
  }
}
BENCHMARK(bm_feasible_ring);

void bm_geodesic(benchmark::State& state) {
  const geo::geo_point a{52.37, 4.89};
  geo::geo_point b{50.11, 8.68};
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::geodesic_km(a, b));
    b.lon_deg += 0.01;
    if (b.lon_deg > 170) b.lon_deg = -170;
  }
}
BENCHMARK(bm_geodesic);

}  // namespace

OPWAT_BENCH_MAIN(print_fig6)
