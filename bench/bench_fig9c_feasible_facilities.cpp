// Fig. 9c — Inference result vs number of feasible IXP facilities and
// RTT_min per interface.  Shape target: ~94% of remote-inferred
// interfaces have NO feasible common facility with their IXP; the small
// remainder splits into high-RTT spurious-colocation cases and colocated
// reseller customers caught by Step 1.
#include "common.hpp"

#include <cmath>

#include "opwat/util/stats.hpp"

namespace {

using namespace opwat;
using infer::method_step;
using infer::peering_class;

void print_fig9c() {
  const auto& pr = benchx::shared_pipeline();

  std::size_t remote_total = 0, remote_zero_feasible = 0, remote_some_feasible = 0;
  std::size_t remote_feasible_highrtt = 0, remote_feasible_step1 = 0;
  util::category_counter by_class;
  for (const auto& [key, inf] : pr.inferences.items()) {
    if (inf.feasible_ixp_facilities < 0) continue;
    by_class.add(std::string{to_string(inf.cls)});
    if (inf.cls != peering_class::remote) continue;
    ++remote_total;
    if (inf.feasible_ixp_facilities == 0) {
      ++remote_zero_feasible;
    } else {
      ++remote_some_feasible;
      if (!std::isnan(inf.rtt_min_ms) && inf.rtt_min_ms > 2.0) ++remote_feasible_highrtt;
      if (inf.step == method_step::port_capacity) ++remote_feasible_step1;
    }
  }

  std::cout << "Fig. 9c: inference vs feasible facilities and RTTmin\n";
  util::text_table t;
  t.header({"Quantity", "Value", "Paper"});
  const auto pct = [](std::size_t n, std::size_t d) {
    return d == 0 ? std::string{"-"}
                  : util::fmt_percent(static_cast<double>(n) / static_cast<double>(d));
  };
  t.row({"remote ifaces with 0 feasible IXP facilities",
         pct(remote_zero_feasible, remote_total), "94%"});
  t.row({"remote ifaces with >=1 feasible facility",
         pct(remote_some_feasible, remote_total), "6%"});
  t.row({"  of which RTTmin > 2 ms (spurious colocation)",
         pct(remote_feasible_highrtt, remote_some_feasible), "40%"});
  t.row({"  of which colocated reseller customers (Step 1)",
         pct(remote_feasible_step1, remote_some_feasible), "(rest)"});
  t.print(std::cout);
}

void bm_ring_evaluation(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();
  // Re-evaluate the ring for every observed interface (Step 3's hot loop).
  for (auto _ : state) {
    std::size_t feasible = 0;
    for (const auto& [key, observations] : pr.rtt.observations) {
      const auto member = s.view.member_of_interface(key.ip);
      if (!member || observations.empty()) continue;
      int n = 0;
      (void)infer::evaluate_ring(s.view, s.vps[observations[0].vp_index], key.ixp,
                                 *member, observations[0], {}, &n);
      feasible += static_cast<std::size_t>(n);
    }
    benchmark::DoNotOptimize(feasible);
  }
}
BENCHMARK(bm_ring_evaluation)->Unit(benchmark::kMillisecond);

}  // namespace

OPWAT_BENCH_MAIN(print_fig9c)
