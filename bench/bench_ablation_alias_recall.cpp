// Ablation — alias-resolution operating point (§5.2, footnote 8): the
// paper chose the precision-biased MIDAR+iffinder dataset over the
// recall-biased +kapar one.  Sweep the resolver's recall/false-merge
// trade-off and re-score Steps 4/5.
#include "common.hpp"

#include "opwat/alias/resolver.hpp"

namespace {

using namespace opwat;

void print_ablation() {
  const auto& s = benchx::shared_scenario();
  const auto& vd = s.validation.test;

  struct variant {
    const char* name;
    alias::resolver_config cfg;
  };
  const variant variants[] = {
      {"midar+iffinder-like (paper)", {.recall = 0.80, .false_merge = 0.002}},
      {"perfect resolver", {.recall = 1.0, .false_merge = 0.0}},
      {"kapar-like (recall-biased)", alias::kapar_like()},
      {"low recall", {.recall = 0.40, .false_merge = 0.002}},
      {"aggressive merging", {.recall = 0.95, .false_merge = 0.15}},
  };

  std::cout << "Ablation: alias-resolution operating point (test subset)\n";
  util::text_table t;
  t.header({"Resolver", "Step4 decided", "Step5 decided", "FPR", "FNR", "PRE", "ACC",
            "COV"});
  for (const auto& v : variants) {
    auto cfg = s.cfg.pipeline;
    cfg.resolver = v.cfg;
    const auto pr = s.run_inference(cfg);
    const auto m = eval::compute_metrics(pr.inferences, vd);
    t.row({v.name, std::to_string(pr.s4.decided),
           std::to_string(pr.s5.decided_local + pr.s5.decided_remote),
           util::fmt_percent(m.fpr), util::fmt_percent(m.fnr), util::fmt_percent(m.pre),
           util::fmt_percent(m.acc), util::fmt_percent(m.cov)});
  }
  t.footer("Higher recall buys Step-4/5 coverage; false merges leak labels across "
           "routers and erode precision — the paper's precision-biased choice.");
  t.print(std::cout);
}

void bm_alias_resolution(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();
  const alias::resolver resolve{s.w, {}, 42};
  std::vector<net::ipv4_addr> cands;
  for (const auto& adj : pr.paths.adjacencies) cands.push_back(adj.member_ip);
  if (cands.size() > 2000) cands.resize(2000);
  for (auto _ : state) {
    auto groups = resolve.resolve(cands);
    benchmark::DoNotOptimize(groups.size());
  }
}
BENCHMARK(bm_alias_resolution);

}  // namespace

OPWAT_BENCH_MAIN(print_ablation)
