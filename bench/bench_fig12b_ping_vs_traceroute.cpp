// Fig. 12b — Comparison of ping and traceroute RTTs toward the peering
// interfaces of the largest LG-equipped IXP (LINX LON analogue).  Shape
// target: the two RTT patterns track each other closely, supporting the
// "beyond pings" scale-up direction of §8.
#include "common.hpp"

#include <cmath>

#include "opwat/util/stats.hpp"

namespace {

using namespace opwat;

void print_fig12b() {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();

  // Largest scoped IXP with an LG.
  world::ixp_id target_ixp = world::k_invalid;
  std::size_t lg_vp = 0;
  for (const auto x : pr.scope) {
    for (std::size_t vi = 0; vi < s.vps.size(); ++vi) {
      if (s.vps[vi].ixp == x && s.vps[vi].type == measure::vp_type::looking_glass &&
          s.vps[vi].alive) {
        target_ixp = x;
        lg_vp = vi;
        break;
      }
    }
    if (target_ixp != world::k_invalid) break;
  }
  if (target_ixp == world::k_invalid) {
    std::cout << "no LG-equipped IXP in scope\n";
    return;
  }

  const auto engine = s.make_traceroute_engine();
  util::rng r{1212};
  util::ecdf ping_ecdf, trace_ecdf, abs_diff;
  for (const auto& pm : pr.rtt.campaign.measurements) {
    if (pm.vp_index != lg_vp || !pm.responsive) continue;
    const auto tr = engine.run_from_vp(s.vps[lg_vp].point(), pm.target, r);
    if (!tr.reached || tr.hops.empty()) continue;
    ping_ecdf.add(pm.rtt_min_ms);
    trace_ecdf.add(tr.hops.back().rtt_ms);
    abs_diff.add(std::abs(tr.hops.back().rtt_ms - pm.rtt_min_ms));
  }

  std::cout << "Fig. 12b: ping vs traceroute RTTs for " << s.w.ixps[target_ixp].name
            << " peering interfaces (" << ping_ecdf.size() << " interfaces)\n";
  util::text_table t;
  t.header({"Percentile", "Ping RTT ms", "Traceroute RTT ms"});
  for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    t.row({util::fmt_percent(q, 0),
           ping_ecdf.empty() ? "-" : util::fmt_double(ping_ecdf.quantile(q), 2),
           trace_ecdf.empty() ? "-" : util::fmt_double(trace_ecdf.quantile(q), 2)});
  }
  t.footer("Paper: the RTT patterns from pings and traceroutes are close, enabling "
           "traceroute-based scale-up beyond LG pings.");
  t.print(std::cout);
  if (!abs_diff.empty()) {
    std::cout << "median |ping - traceroute|: "
              << util::fmt_double(abs_diff.quantile(0.5), 2) << " ms; within 2 ms: "
              << util::fmt_percent(abs_diff.at(2.0)) << "\n";
  }
}

void bm_vp_traceroute(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  const auto engine = s.make_traceroute_engine();
  const auto& m = s.w.memberships.front();
  const auto vp_fac = s.w.ixps[m.ixp].facilities.front();
  const measure::net_point vp{s.w.facilities[vp_fac].location, vp_fac};
  util::rng r{4};
  for (auto _ : state) {
    auto t = engine.run_from_vp(vp, m.interface_ip, r);
    benchmark::DoNotOptimize(t.reached);
  }
}
BENCHMARK(bm_vp_traceroute);

}  // namespace

OPWAT_BENCH_MAIN(print_fig12b)
