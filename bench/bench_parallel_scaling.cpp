// Threads-vs-speedup for the parallel sharded executor.
//
// Runs the full inference pipeline on the shared (large) scenario under
// the serial backend and under the parallel backend at 1/2/4/8 worker
// threads, prints a table plus a machine-readable JSON blob, and
// registers google-benchmark timers for the same sweep.  The JSON also
// lands in the file named by OPWAT_BENCH_JSON when set (the CI smoke
// step uploads it as a workflow artifact), so the perf claim is a
// measured artifact, not an assertion.
//
// Determinism note: every configuration below produces a bit-identical
// pipeline_result (tests/test_parallel.cpp enforces it); only wall-clock
// time may differ.
#include "common.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <thread>

#include "opwat/util/json.hpp"

namespace {

using namespace opwat;

constexpr std::size_t k_thread_sweep[] = {1, 2, 4, 8};
constexpr int k_repetitions = 3;

/// Best-of-N wall time of one pipeline run (0 threads = serial backend).
double best_ms(const eval::scenario& s, std::size_t threads) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < k_repetitions; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto pr =
        threads == 0 ? s.run_inference() : s.run_inference_parallel(threads);
    benchmark::DoNotOptimize(&pr);
    best = std::min(best, std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
  }
  return best;
}

void print_scaling() {
  const auto& s = benchx::shared_scenario();
  const double serial_ms = best_ms(s, 0);

  util::json_writer w;
  w.begin_object();
  w.key("bench").value("parallel_scaling");
  w.key("scope_ixps").value(static_cast<std::uint64_t>(s.scope.size()));
  w.key("hardware_concurrency")
      .value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.key("repetitions").value(k_repetitions);
  w.key("serial_ms").value(serial_ms);
  w.key("results").begin_array();

  util::text_table t{"Parallel sharded executor: threads vs speedup"};
  t.header({"backend", "threads", "ms", "speedup vs serial"});
  t.row({"serial", "1", util::fmt_double(serial_ms, 1), "1.00x"});
  for (const auto threads : k_thread_sweep) {
    const double ms = best_ms(s, threads);
    const double speedup = serial_ms / ms;
    t.row({"parallel", std::to_string(threads), util::fmt_double(ms, 1),
           util::fmt_double(speedup, 2) + "x"});
    w.begin_object();
    w.key("threads").value(static_cast<std::uint64_t>(threads));
    w.key("ms").value(ms);
    w.key("speedup").value(speedup);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  t.footer("speedup is hardware-bound: ~1x on a single-core host, "
           "scaling with cores elsewhere");
  t.print(std::cout);
  std::cout << "\nJSON: " << w.str() << "\n";

  if (const char* path = std::getenv("OPWAT_BENCH_JSON")) {
    std::ofstream out{path};
    out << w.str() << "\n";
    std::cout << "(written to " << path << ")\n";
  }
}

void BM_pipeline(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto pr =
        threads == 0 ? s.run_inference() : s.run_inference_parallel(threads);
    benchmark::DoNotOptimize(&pr);
  }
}
BENCHMARK(BM_pipeline)
    ->Arg(0)  // serial backend
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

OPWAT_BENCH_MAIN(print_scaling)
