// Table 2 — Validation data retrieved from IXP operators and websites:
// per-IXP facilities, total peers, validated peers, local/remote split,
// and the control/test subset assignment.
#include "common.hpp"

#include "opwat/eval/validation.hpp"

namespace {

using namespace opwat;

void print_table2() {
  const auto& s = benchx::shared_scenario();

  util::text_table t{"Table 2: validation data from operators (O) and websites (W); "
                     "superscript C = control subset, T = test subset"};
  t.header({"IXP", "Src", "Subset", "#Facilities", "#Total Peers", "#Validated",
            "#Local", "#Remote"});
  std::size_t facs = 0, total = 0, validated = 0, local = 0, remote = 0;
  for (const auto& row : s.validation.ixps) {
    t.row({s.w.ixps[row.ixp].name, row.from_operator ? "O" : "W",
           row.in_control ? "C" : "T", std::to_string(row.facilities),
           std::to_string(row.total_peers), std::to_string(row.validated),
           std::to_string(row.validated_local), std::to_string(row.validated_remote)});
    facs += row.facilities;
    total += row.total_peers;
    validated += row.validated;
    local += row.validated_local;
    remote += row.validated_remote;
  }
  t.row({"Total", "-", "-", std::to_string(facs), std::to_string(total),
         std::to_string(validated), std::to_string(local), std::to_string(remote)});
  t.footer("Paper: 15 IXPs (6 operator + 9 website), 131 facilities, 4,823 peers, "
           "2,410 validated (1,293 local / 1,117 remote).");
  t.print(std::cout);
}

void bm_build_validation(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  for (auto _ : state) {
    auto vd = eval::build_validation(s.w, s.cfg.validation, s.scope);
    benchmark::DoNotOptimize(vd.ixps.size());
  }
}
BENCHMARK(bm_build_validation);

}  // namespace

OPWAT_BENCH_MAIN(print_table2)
