// Fig. 10b — Final inference results for the 30 largest measurable IXPs:
// local/remote member interfaces per IXP.  Shape targets: ~28% of all
// inferred interfaces are remote; >=10% remote at ~90% of IXPs; ~40%
// remote at the largest IXPs.
//
// Counts are served from the shared catalog epoch's per-(IXP, class)
// indexes (bit-identical to pipeline_result::count).
#include "common.hpp"

namespace {

using namespace opwat;
using infer::peering_class;

void print_fig10b() {
  const auto& cat = benchx::shared_catalog();
  const auto& ep = cat.of(benchx::k_shared_epoch);

  std::cout << "Fig. 10b: inferences per IXP (largest first)\n";
  util::text_table t;
  t.header({"IXP", "Local", "Remote", "Unknown", "% Remote (of inferred)"});
  std::size_t total_local = 0, total_remote = 0, over_10pct = 0, ranked = 0;
  double top2_remote_share = 0;
  for (const auto& b : ep.blocks()) {
    const auto local = ep.count(b.ixp, peering_class::local);
    const auto remote = ep.count(b.ixp, peering_class::remote);
    const auto unknown = ep.count(b.ixp, peering_class::unknown);
    const double share =
        local + remote ? static_cast<double>(remote) / static_cast<double>(local + remote)
                       : 0.0;
    t.row({cat.ixps()[b.ixp].name, std::to_string(local), std::to_string(remote),
           std::to_string(unknown), util::fmt_percent(share)});
    total_local += local;
    total_remote += remote;
    if (share >= 0.10) ++over_10pct;
    if (ranked < 2) top2_remote_share += share / 2.0;
    ++ranked;
  }
  t.print(std::cout);
  const double overall = static_cast<double>(total_remote) /
                         static_cast<double>(total_local + total_remote);
  std::cout << "overall remote share: " << util::fmt_percent(overall)
            << "  (paper: 28%)\n";
  std::cout << "IXPs with >=10% remote members: " << over_10pct << "/"
            << ep.blocks().size() << " = "
            << util::fmt_percent(static_cast<double>(over_10pct) /
                                 static_cast<double>(ep.blocks().size()))
            << "  (paper: 90%)\n";
  std::cout << "average remote share at the two largest IXPs: "
            << util::fmt_percent(top2_remote_share)
            << "  (paper: ~40% at DE-CIX and AMS-IX)\n";
}

void bm_count_by_class(benchmark::State& state) {
  const auto& ep = benchx::shared_catalog().of(benchx::k_shared_epoch);
  for (auto _ : state) {
    std::size_t remote = 0;
    for (const auto& b : ep.blocks()) remote += ep.count(b.ixp, peering_class::remote);
    benchmark::DoNotOptimize(remote);
  }
}
BENCHMARK(bm_count_by_class);

}  // namespace

OPWAT_BENCH_MAIN(print_fig10b)
