// §8 extension — longitudinal study: the paper's plan to extend §6.3's
// one-year, five-IXP growth analysis "in space and time" by re-running
// the inference on monthly snapshots.  Ground-truth vs inferred monthly
// series side by side.
#include "common.hpp"

#include "opwat/eval/longitudinal.hpp"
#include "opwat/world/evolution.hpp"

namespace {

using namespace opwat;

constexpr int kMonths = 14;

eval::scenario make_evolving_scenario() {
  eval::scenario_config cfg;
  cfg.world.n_ixps = 16;
  cfg.world.n_ases = 900;
  cfg.world.largest_ixp_members = 220;
  cfg.world.months = kMonths;
  cfg.traceroute_sources = 900;
  cfg.targets_per_source = 20;
  cfg.top_n_ixps = 8;
  return eval::scenario::build(cfg);
}

void print_extension() {
  const auto s = make_evolving_scenario();
  const auto study =
      eval::run_longitudinal_study(s, {.months = kMonths, .top_n_ixps = 5});

  std::cout << "Extension (sec. 8): longitudinal inference over " << kMonths
            << " monthly snapshots, 5 IXPs\n";
  util::text_table t;
  t.header({"Month", "Inferred local", "Inferred remote", "Unknown", "True local",
            "True remote"});
  for (const auto& mi : study.months)
    t.row({std::to_string(mi.month), std::to_string(mi.inferred_local),
           std::to_string(mi.inferred_remote), std::to_string(mi.unknown),
           std::to_string(mi.truth_local), std::to_string(mi.truth_remote)});
  t.print(std::cout);

  std::cout << "inferred joins over the window: local " << study.inferred_local_joins
            << " vs remote " << study.inferred_remote_joins << " -> ratio "
            << util::fmt_double(study.join_ratio(), 2)
            << "x  (paper Fig. 12a: remote ~2x local)\n";
  std::cout << "ground-truth switches in the window: "
            << world::count_remote_to_local_switches(s.w)
            << "  (paper: 18 remote->local cases)\n";
}

void bm_monthly_pipeline(benchmark::State& state) {
  const auto s = make_evolving_scenario();
  for (auto _ : state) {
    auto study = eval::run_longitudinal_study(s, {.months = 3, .top_n_ixps = 3});
    benchmark::DoNotOptimize(study.months.size());
  }
}
BENCHMARK(bm_monthly_pipeline)->Unit(benchmark::kMillisecond);

}  // namespace

OPWAT_BENCH_MAIN(print_extension)
