// Fig. 5 — Number of common IXP facilities for validated local vs remote
// peers, as seen through the (noisy) colocation databases.  Shape
// targets: ~95% of remote peers share no facility with their IXP; ~5%
// appear at one (colocated reseller customers / spurious PDB records);
// local peers overwhelmingly share >= 1, with ~18% missing data.
#include "common.hpp"

#include <algorithm>

#include "opwat/util/stats.hpp"

namespace {

using namespace opwat;

void print_fig5() {
  const auto& s = benchx::shared_scenario();
  const auto vd = s.validation.all();

  util::category_counter local, remote;
  for (const auto& row : s.validation.ixps) {
    const auto& ixp_facs = s.view.facilities_of_ixp(row.ixp);
    for (const auto mid : s.w.memberships_of_ixp(row.ixp)) {
      const auto& m = s.w.memberships[mid];
      const infer::iface_key key{m.ixp, m.interface_ip};
      if (!vd.contains(key)) continue;
      const auto asn = s.w.ases[m.member].asn;
      const auto& as_facs = s.view.facilities_of_as(asn);
      std::string bucket;
      if (as_facs.empty()) {
        bucket = "no data";
      } else {
        std::size_t common = 0;
        for (const auto f : as_facs)
          if (std::find(ixp_facs.begin(), ixp_facs.end(), f) != ixp_facs.end())
            ++common;
        bucket = common == 0 ? "0 common" : (common == 1 ? "1 common" : ">=2 common");
      }
      (vd.remote.contains(key) ? remote : local).add(bucket);
    }
  }

  std::cout << "Fig. 5: common facilities between validated peers and their IXP "
               "(DB view)\n";
  util::text_table t;
  t.header({"Bucket", "Local", "Local %", "Remote", "Remote %"});
  for (const auto* b : {"no data", "0 common", "1 common", ">=2 common"})
    t.row({b, std::to_string(local.count(b)), util::fmt_percent(local.fraction(b)),
           std::to_string(remote.count(b)), util::fmt_percent(remote.fraction(b))});
  t.footer("Paper: all local peers in >=1 IXP facility; 95% of remote peers with no "
           "common facility; no data for 18% of remote peers; ~5% of remote peers "
           "appear at one facility (reseller artifacts).");
  t.print(std::cout);
}

void bm_common_facility_scan(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  for (auto _ : state) {
    std::size_t with_common = 0;
    for (const auto x : s.scope) {
      const auto& ixp_facs = s.view.facilities_of_ixp(x);
      for (const auto& e : s.view.interfaces_of_ixp(x)) {
        for (const auto f : s.view.facilities_of_as(e.asn))
          if (std::find(ixp_facs.begin(), ixp_facs.end(), f) != ixp_facs.end()) {
            ++with_common;
            break;
          }
      }
    }
    benchmark::DoNotOptimize(with_common);
  }
}
BENCHMARK(bm_common_facility_scan);

}  // namespace

OPWAT_BENCH_MAIN(print_fig5)
