// Ablation — the Step-2 VP hygiene of §6.1: the management-LAN probe
// filter (discard Atlas probes with >= 1 ms to the route server) and the
// LG integer-rounding correction.  Disable each and re-score.
#include "common.hpp"

namespace {

using namespace opwat;

void print_ablation() {
  const auto& s = benchx::shared_scenario();
  const auto& vd = s.validation.test;

  struct variant {
    const char* name;
    bool mgmt_filter;
    bool rounding_correction;
  };
  const variant variants[] = {
      {"both filters (paper)", true, true},
      {"no mgmt-LAN filter", false, true},
      {"no LG rounding correction", true, false},
      {"neither", false, false},
  };

  std::cout << "Ablation: Step-2 vantage-point filtering (test subset)\n";
  util::text_table t;
  t.header({"Variant", "usable VPs", "FPR", "FNR", "PRE", "ACC", "COV"});
  for (const auto& v : variants) {
    auto cfg = s.cfg.pipeline;
    cfg.step2.apply_mgmt_filter = v.mgmt_filter;
    cfg.step2.apply_lg_rounding_correction = v.rounding_correction;
    const auto pr = s.run_inference(cfg);
    const auto m = eval::compute_metrics(pr.inferences, vd);
    t.row({v.name, std::to_string(pr.rtt.usable_vps.size()), util::fmt_percent(m.fpr),
           util::fmt_percent(m.fnr), util::fmt_percent(m.pre), util::fmt_percent(m.acc),
           util::fmt_percent(m.cov)});
  }
  t.footer("Management-LAN probes inject structurally inflated RTTs (false remotes); "
           "uncorrected LG rounding inflates the inner ring bound and can exclude "
           "same-facility members (false remotes at metro scale).");
  t.print(std::cout);
}

void bm_pipeline_no_filters(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  auto cfg = s.cfg.pipeline;
  cfg.step2.apply_mgmt_filter = false;
  cfg.step2.apply_lg_rounding_correction = false;
  for (auto _ : state) {
    auto pr = s.run_inference(cfg);
    benchmark::DoNotOptimize(pr.inferences.items().size());
  }
}
BENCHMARK(bm_pipeline_no_filters)->Unit(benchmark::kMillisecond);

}  // namespace

OPWAT_BENCH_MAIN(print_ablation)
