// Fig. 12a — Evolution of remote vs local peering over a 14-month window
// (2017-07 .. 2018-09 in the paper).  Shape targets: remote peers join
// about twice as fast as local peers in absolute counts, churn ~25% more,
// and a handful of members switch from remote to local interconnections.
#include "common.hpp"

#include "opwat/world/evolution.hpp"
#include "opwat/world/generator.hpp"

namespace {

using namespace opwat;

constexpr int kMonths = 14;

world::world make_evolving_world() {
  auto cfg = world::tiny_config(1812);
  cfg.n_ixps = 12;
  cfg.n_ases = 900;
  cfg.largest_ixp_members = 250;
  cfg.months = kMonths;
  return world::generate(cfg);
}

void print_fig12a() {
  const auto w = make_evolving_world();
  const auto tl = world::timeline(
      w, kMonths, [&](const world::membership& m) { return w.truly_remote(m); });

  std::cout << "Fig. 12a: monthly joins/leaves by peering type (ground-truth labels)\n";
  util::text_table t;
  t.header({"Month", "Local active", "Remote active", "Local joins", "Remote joins",
            "Local leaves", "Remote leaves"});
  std::size_t jl = 0, jr = 0, ll = 0, lr = 0;
  for (const auto& mc : tl) {
    t.row({std::to_string(mc.month), std::to_string(mc.local_active),
           std::to_string(mc.remote_active), std::to_string(mc.local_joins),
           std::to_string(mc.remote_joins), std::to_string(mc.local_leaves),
           std::to_string(mc.remote_leaves)});
    jl += mc.local_joins;
    jr += mc.remote_joins;
    ll += mc.local_leaves;
    lr += mc.remote_leaves;
  }
  t.print(std::cout);

  std::cout << "total joins:  local " << jl << " vs remote " << jr << " -> ratio "
            << util::fmt_double(jl ? static_cast<double>(jr) / static_cast<double>(jl) : 0, 2)
            << "x  (paper: remote joins ~2x local)\n";
  const double local_base = static_cast<double>(tl.front().local_active);
  const double remote_base = static_cast<double>(tl.front().remote_active);
  const double leave_rate_l = local_base > 0 ? static_cast<double>(ll) / local_base : 0;
  const double leave_rate_r = remote_base > 0 ? static_cast<double>(lr) / remote_base : 0;
  std::cout << "departure rate: local " << util::fmt_percent(leave_rate_l)
            << " vs remote " << util::fmt_percent(leave_rate_r)
            << " -> remote/local ratio "
            << util::fmt_double(leave_rate_l > 0 ? leave_rate_r / leave_rate_l : 0, 2)
            << "  (paper: remote ~+25%)\n";
  std::cout << "remote->local switches: " << world::count_remote_to_local_switches(w)
            << "  (paper: 18 cases)\n";
}

void bm_timeline(benchmark::State& state) {
  const auto w = make_evolving_world();
  for (auto _ : state) {
    auto tl = world::timeline(
        w, kMonths, [&](const world::membership& m) { return w.truly_remote(m); });
    benchmark::DoNotOptimize(tl.size());
  }
}
BENCHMARK(bm_timeline);

void bm_generate_with_history(benchmark::State& state) {
  for (auto _ : state) {
    auto w = make_evolving_world();
    benchmark::DoNotOptimize(w.memberships.size());
  }
}
BENCHMARK(bm_generate_with_history)->Unit(benchmark::kMillisecond);

}  // namespace

OPWAT_BENCH_MAIN(print_fig12a)
