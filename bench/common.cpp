#include "common.hpp"

#include <cstdlib>
#include <string_view>

namespace opwat::benchx {

const eval::scenario& shared_scenario() {
  static const eval::scenario s = [] {
    const char* scale = std::getenv("OPWAT_BENCH_SCALE");
    if (scale && std::string_view{scale} == "tiny")
      return eval::scenario::build(eval::small_scenario_config());
    return eval::scenario::build(eval::default_scenario_config());
  }();
  return s;
}

const infer::pipeline_result& shared_pipeline() {
  static const infer::pipeline_result pr = shared_scenario().run_inference();
  return pr;
}

const serve::catalog& shared_catalog() {
  static const serve::catalog cat = [] {
    const auto& s = shared_scenario();
    serve::catalog c;
    c.ingest(s.w, s.view, shared_pipeline(), k_shared_epoch);
    return c;
  }();
  return cat;
}

bool truly_remote(const eval::scenario& s, net::ipv4_addr iface) {
  const auto mid = s.w.membership_by_interface(iface);
  if (!mid) return false;
  return s.w.truly_remote(s.w.memberships[*mid]);
}

}  // namespace opwat::benchx
