// Ablation — does the step ORDER of §5.2 matter?  The paper argues Step 1
// goes first (most reliable), Step 4 before Step 5 (higher accuracy).
// We permute the decision order and re-score against the test subset.
#include "common.hpp"

namespace {

using namespace opwat;
using infer::method_step;

const char* short_name(method_step s) {
  switch (s) {
    case method_step::port_capacity: return "port";
    case method_step::rtt_colo: return "rtt+colo";
    case method_step::multi_ixp: return "multi";
    case method_step::private_links: return "priv";
    default: return "?";
  }
}

std::string order_name(const std::vector<method_step>& order) {
  std::string out;
  for (const auto s : order) {
    if (!out.empty()) out += " > ";
    out += short_name(s);
  }
  return out;
}

void print_ablation() {
  const auto& s = benchx::shared_scenario();
  const auto& vd = s.validation.test;

  const std::vector<std::vector<method_step>> orders{
      {method_step::port_capacity, method_step::rtt_colo, method_step::multi_ixp,
       method_step::private_links},  // paper order
      {method_step::rtt_colo, method_step::port_capacity, method_step::multi_ixp,
       method_step::private_links},  // RTT first
      {method_step::port_capacity, method_step::rtt_colo, method_step::private_links,
       method_step::multi_ixp},  // step 5 before step 4
      {method_step::private_links, method_step::multi_ixp, method_step::rtt_colo,
       method_step::port_capacity},  // fully reversed
      {method_step::rtt_colo},       // steps 2+3 alone
      {method_step::port_capacity, method_step::rtt_colo},  // no topology steps
  };

  std::cout << "Ablation: decision-step order (test subset)\n";
  util::text_table t;
  t.header({"Order", "FPR", "FNR", "PRE", "ACC", "COV"});
  for (const auto& order : orders) {
    // The decision order is just a builder argument now.
    const auto pr = s.run_inference(
        infer::pipeline_builder::from_config(s.cfg.pipeline).order(order).build());
    const auto m = eval::compute_metrics(pr.inferences, vd);
    t.row({order_name(order), util::fmt_percent(m.fpr), util::fmt_percent(m.fnr),
           util::fmt_percent(m.pre), util::fmt_percent(m.acc), util::fmt_percent(m.cov)});
  }
  t.footer("The paper's order puts the most precise signals first; moving the "
           "last-resort private-link vote earlier lets a noisier heuristic claim "
           "interfaces the better steps would have decided.");
  t.print(std::cout);
}

void bm_pipeline_paper_order(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  for (auto _ : state) {
    auto pr = s.run_inference();
    benchmark::DoNotOptimize(pr.inferences.items().size());
  }
}
BENCHMARK(bm_pipeline_paper_order)->Unit(benchmark::kMillisecond);

}  // namespace

OPWAT_BENCH_MAIN(print_ablation)
