// Fig. 10a — Contribution of each inference step per IXP.  Shape targets:
// Steps 2+3 (RTT+colo) carry the bulk of the inferences; Step 1 averages
// ~10% (up to ~40% at reseller-heavy IXPs, zero where reselling is not
// offered); Step 5 only fires at a minority of IXPs.
//
// Counts are served from the shared catalog epoch's per-(IXP, step)
// indexes (bit-identical to pipeline_result::contribution); the timer
// compares the indexed path against the fluent query API.
#include "common.hpp"

#include "opwat/serve/query.hpp"

namespace {

using namespace opwat;
using infer::method_step;

void print_fig10a() {
  const auto& cat = benchx::shared_catalog();
  const auto& ep = cat.of(benchx::k_shared_epoch);

  std::cout << "Fig. 10a: contribution of each inference step per IXP\n";
  util::text_table t;
  t.header({"IXP", "Ifaces", "Step1 port", "Step2+3 rtt+colo", "Step4 multi-IXP",
            "Step5 private", "Unknown"});
  double s1_sum = 0;
  std::size_t ixps_with_s5 = 0;
  for (const auto& b : ep.blocks()) {
    const double total = static_cast<double>(b.end - b.begin);
    if (total == 0) continue;
    const auto c1 = ep.contribution(b.ixp, method_step::port_capacity);
    const auto c3 = ep.contribution(b.ixp, method_step::rtt_colo);
    const auto c4 = ep.contribution(b.ixp, method_step::multi_ixp);
    const auto c5 = ep.contribution(b.ixp, method_step::private_links);
    const auto unknown = total - static_cast<double>(c1 + c3 + c4 + c5);
    t.row({cat.ixps()[b.ixp].name, std::to_string(static_cast<std::size_t>(total)),
           util::fmt_percent(c1 / total), util::fmt_percent(c3 / total),
           util::fmt_percent(c4 / total), util::fmt_percent(c5 / total),
           util::fmt_percent(unknown / total)});
    s1_sum += c1 / total;
    if (c5 > 0) ++ixps_with_s5;
  }
  t.footer("Paper: Step 1 ~10% on average (40% at France-IX, 0 at HKIX); Steps 2+3 "
           "and 4 dominate; Step 5 needed at 11 of 30 IXPs.");
  t.print(std::cout);
  std::cout << "Step-1 average contribution: "
            << util::fmt_percent(s1_sum / static_cast<double>(ep.blocks().size()))
            << "; IXPs where Step 5 fired: " << ixps_with_s5 << "/"
            << ep.blocks().size() << "\n";
}

void bm_contributions_indexed(benchmark::State& state) {
  const auto& ep = benchx::shared_catalog().of(benchx::k_shared_epoch);
  for (auto _ : state) {
    std::size_t total = 0;
    for (const auto& b : ep.blocks())
      for (const auto step : {method_step::port_capacity, method_step::rtt_colo,
                              method_step::multi_ixp, method_step::private_links})
        total += ep.contribution(b.ixp, step);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(bm_contributions_indexed);

void bm_contributions_query_api(benchmark::State& state) {
  const auto& cat = benchx::shared_catalog();
  const auto& ep = cat.of(benchx::k_shared_epoch);
  for (auto _ : state) {
    std::size_t total = 0;
    for (const auto& b : ep.blocks())
      for (const auto step : {method_step::port_capacity, method_step::rtt_colo,
                              method_step::multi_ixp, method_step::private_links})
        total += serve::query(cat)
                     .epoch(benchx::k_shared_epoch)
                     .at_ixp(cat.ixps()[b.ixp].id)
                     .step(step)
                     .count();
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(bm_contributions_query_api);

}  // namespace

OPWAT_BENCH_MAIN(print_fig10a)
