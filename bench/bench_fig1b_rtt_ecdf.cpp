// Fig. 1b — ECDF of minimum RTTs toward remote vs local peers in the
// CONTROL validation subset.  The paper obtained one-time ping access
// inside these IXPs; we model that as a temporary operator-run vantage
// point in each control IXP's first facility.
//
// Headline shape: 99% of local peers < 1 ms, but 18% of REMOTE peers are
// also < 1 ms and 40% < 10 ms — the reason a pure RTT threshold fails.
#include "common.hpp"

#include "opwat/measure/ping.hpp"
#include "opwat/util/stats.hpp"

namespace {

using namespace opwat;

void print_fig1b() {
  const auto& s = benchx::shared_scenario();

  // One-time operator VPs inside each control IXP.
  std::vector<measure::vantage_point> vps;
  std::vector<measure::ping_target> targets;
  for (const auto x : s.validation.control_ixps()) {
    const auto& ixp = s.w.ixps[x];
    if (ixp.facilities.empty()) continue;
    measure::vantage_point vp;
    vp.name = "operator." + ixp.name;
    vp.type = measure::vp_type::looking_glass;
    vp.ixp = x;
    vp.facility = ixp.facilities.front();
    vp.location = s.w.facilities[vp.facility].location;
    vp.in_peering_lan = true;
    vp.rounds_rtt_up = false;  // operator-grade measurements
    vps.push_back(vp);
    for (const auto mid : s.w.memberships_of_ixp(x))
      targets.push_back({s.w.memberships[mid].interface_ip, x});
  }

  measure::ping_config cfg;  // every 20 min for 2 days in the paper
  cfg.rounds = 144;
  const auto campaign =
      measure::run_ping_campaign(s.w, s.lat, vps, targets, cfg, util::rng{404});

  util::ecdf local, remote;
  const auto vd = s.validation.control;
  for (const auto& pm : campaign.measurements) {
    if (!pm.responsive) continue;
    const infer::iface_key key{pm.ixp, pm.target};
    if (vd.local.contains(key))
      local.add(pm.rtt_min_ms);
    else if (vd.remote.contains(key))
      remote.add(pm.rtt_min_ms);
  }

  std::cout << "Fig. 1b: ECDF of min RTT for remote and local peers (control subset)\n";
  util::text_table t;
  t.header({"Class", "N", "<1ms", "<2ms", "<10ms", "<50ms", "median ms"});
  const auto row = [&](const char* name, const util::ecdf& e) {
    t.row({name, std::to_string(e.size()), util::fmt_percent(e.at(1.0)),
           util::fmt_percent(e.at(2.0)), util::fmt_percent(e.at(10.0)),
           util::fmt_percent(e.at(50.0)),
           e.empty() ? "-" : util::fmt_double(e.quantile(0.5), 2)});
  };
  row("local", local);
  row("remote", remote);
  t.footer("Paper: 99% of local peers < 1 ms; 18% of remote < 1 ms; 40% of remote "
           "< 10 ms (the [Castro] threshold).");
  t.print(std::cout);
}

void bm_control_campaign(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  const auto x = s.validation.control_ixps().empty() ? s.scope.front()
                                                     : s.validation.control_ixps().front();
  const auto& ixp = s.w.ixps[x];
  std::vector<measure::vantage_point> vps;
  measure::vantage_point vp;
  vp.type = measure::vp_type::looking_glass;
  vp.ixp = x;
  vp.facility = ixp.facilities.front();
  vp.location = s.w.facilities[vp.facility].location;
  vp.in_peering_lan = true;
  vps.push_back(vp);
  std::vector<measure::ping_target> targets;
  for (const auto mid : s.w.memberships_of_ixp(x))
    targets.push_back({s.w.memberships[mid].interface_ip, x});
  for (auto _ : state) {
    auto c = measure::run_ping_campaign(s.w, s.lat, vps, targets, {}, util::rng{5});
    benchmark::DoNotOptimize(c.measurements.size());
  }
}
BENCHMARK(bm_control_campaign);

}  // namespace

OPWAT_BENCH_MAIN(print_fig1b)
