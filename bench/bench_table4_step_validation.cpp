// Table 4 — Validation of each step of the algorithm on the test subset:
// FPR / FNR / PRE / ACC / COV per step, the RTT-threshold baseline, and
// the combined pipeline.  This is the paper's headline result.
#include "common.hpp"

#include "opwat/infer/baseline.hpp"

namespace {

using namespace opwat;
using infer::method_step;
using util::fmt_percent;

std::vector<std::string> metric_row(const std::string& name, const eval::metrics& m,
                                    bool pre_only = false) {
  const auto n = std::to_string(m.inferred_in_vd);
  if (m.inferred_in_vd == 0) return {name, "-", "-", "-", "-", "-", "0"};
  if (pre_only)
    return {name, "-", "-", fmt_percent(m.pre), "-", fmt_percent(m.cov), n};
  return {name, fmt_percent(m.fpr), fmt_percent(m.fnr), fmt_percent(m.pre),
          fmt_percent(m.acc), fmt_percent(m.cov), n};
}

void print_table4() {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();
  const auto& vd = s.validation.test;

  util::text_table t{"Table 4: validation of each step of the algorithm (test subset)"};
  t.header({"Methodology / Feature", "FPR", "FNR", "PRE", "ACC", "COV", "n in VD"});

  // Baseline: RTT_min with a 10 ms threshold (Castro et al.).
  const auto base = infer::run_baseline_on(pr);
  t.row(metric_row("RTTmin [Castro et al.]", eval::compute_metrics(base, vd)));

  // Step 1: port capacity (precision/coverage only, like the paper).
  t.row(metric_row("Step 1: Port Capacity",
                   eval::compute_metrics_for_step(pr.inferences, vd,
                                                  method_step::port_capacity),
                   /*pre_only=*/true));
  // Steps 2+3: RTT + colocation.
  t.row(metric_row("Step 2+3: RTTmin+Colo",
                   eval::compute_metrics_for_step(pr.inferences, vd,
                                                  method_step::rtt_colo)));
  // Step 4: multi-IXP routers.
  t.row(metric_row("Step 4: Multi-IXP",
                   eval::compute_metrics_for_step(pr.inferences, vd,
                                                  method_step::multi_ixp)));
  // Step 5: private links.
  t.row(metric_row("Step 5: Private Links",
                   eval::compute_metrics_for_step(pr.inferences, vd,
                                                  method_step::private_links)));
  // Combined.
  t.row(metric_row("Combined", eval::compute_metrics(pr.inferences, vd)));
  t.footer("Paper: baseline 17.5/25.7/85/77/84 (%); combined 4/7.2/95/94.5/93 (%).");
  t.footer("Shape target: combined beats the baseline on every metric; per-step "
           "COV here reflects each step's share within the cascade.");
  t.print(std::cout);
}

void bm_full_pipeline(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  for (auto _ : state) {
    auto pr = s.run_inference();
    benchmark::DoNotOptimize(pr.inferences.items().size());
  }
}
BENCHMARK(bm_full_pipeline)->Unit(benchmark::kMillisecond);

void bm_baseline(benchmark::State& state) {
  const auto& pr = benchx::shared_pipeline();
  for (auto _ : state) {
    auto base = infer::run_baseline_on(pr);
    benchmark::DoNotOptimize(base.items().size());
  }
}
BENCHMARK(bm_baseline);

void bm_metrics(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();
  for (auto _ : state) {
    auto m = eval::compute_metrics(pr.inferences, s.validation.test);
    benchmark::DoNotOptimize(m.acc);
  }
}
BENCHMARK(bm_metrics);

}  // namespace

OPWAT_BENCH_MAIN(print_table4)
