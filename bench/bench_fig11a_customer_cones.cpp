// Fig. 11a — Customer cones of inferred local / remote / hybrid IXP
// members.  Shape targets: local and remote cones look alike; hybrid
// members (local at some IXPs, remote at others) have roughly an order
// of magnitude larger cones — they are the big multi-market ISPs.
#include "common.hpp"

#include "opwat/eval/features.hpp"
#include "opwat/util/stats.hpp"

namespace {

using namespace opwat;
using eval::member_kind;

void print_fig11a() {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();
  const auto members = eval::classify_members(s.w, s.view, pr.inferences);

  util::ecdf cones[3];
  std::size_t counts[3] = {0, 0, 0};
  for (const auto& m : members) {
    const auto idx = static_cast<std::size_t>(m.kind);
    cones[idx].add(static_cast<double>(m.customer_cone));
    ++counts[idx];
  }

  std::cout << "Fig. 11a: customer cones of inferred member classes\n";
  util::text_table t;
  t.header({"Class", "N", "share", "median cone", "p90 cone", "mean cone"});
  const std::size_t total = members.size();
  const char* names[3] = {"local", "remote", "hybrid"};
  double means[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    const auto& e = cones[i];
    double sum = 0;
    for (const auto& [x, y] : e.curve()) (void)x, (void)y;
    // mean via quantile curve is awkward; recompute directly:
    // (curve() collapses duplicates, so walk members again)
    for (const auto& m : members)
      if (static_cast<int>(m.kind) == i) sum += m.customer_cone;
    means[i] = counts[i] ? sum / static_cast<double>(counts[i]) : 0.0;
    t.row({names[i], std::to_string(counts[i]),
           util::fmt_percent(static_cast<double>(counts[i]) / static_cast<double>(total)),
           e.empty() ? "-" : util::fmt_double(e.quantile(0.5), 0),
           e.empty() ? "-" : util::fmt_double(e.quantile(0.9), 0),
           util::fmt_double(means[i], 1)});
  }
  t.footer("Paper: 63.7% local / 23.4% remote / 12.9% hybrid of 2,959 member ASes; "
           "hybrid cones ~10x larger; local and remote alike.");
  t.print(std::cout);
  if (means[0] > 0)
    std::cout << "hybrid/local mean-cone ratio: "
              << util::fmt_double(means[2] / means[0], 1) << "x  (paper: ~10x)\n";
}

void bm_classify_members(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();
  for (auto _ : state) {
    auto members = eval::classify_members(s.w, s.view, pr.inferences);
    benchmark::DoNotOptimize(members.size());
  }
}
BENCHMARK(bm_classify_members);

}  // namespace

OPWAT_BENCH_MAIN(print_fig11a)
